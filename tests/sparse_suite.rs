//! The sparse workload suite: verdict stability, three-way execution
//! parity, and edge matrices for every generated kernel.

use irr_repro::driver::{compile_source, CompilationReport, DispatchTier, DriverOptions};
use irr_repro::exec::{ExecOutcome, Interp};
use irr_repro::programs::sparse::{
    kernels, producer_kernels, ExpectedTier, SparseProgram, SparseScale,
};
use irr_repro::runtime::{run_hybrid_seeded, HybridConfig, HybridOutcome};
use irr_repro::sparse::Structure;

fn compile_kernel(k: &SparseProgram) -> CompilationReport {
    compile_source(&k.source, DriverOptions::with_iaa())
        .unwrap_or_else(|e| panic!("{}: parse error: {e}", k.name))
}

fn run_sequential(k: &SparseProgram, rep: &CompilationReport) -> ExecOutcome {
    let mut it = Interp::new(&rep.program);
    for (var, data) in k.resolve_presets(&rep.program) {
        it.preset_array(var, data);
    }
    it.run()
        .unwrap_or_else(|e| panic!("{}: sequential run: {e}", k.name))
}

fn run_hybrid_config(
    k: &SparseProgram,
    rep: &CompilationReport,
    config: HybridConfig,
) -> HybridOutcome {
    run_hybrid_seeded(rep, config, &k.resolve_presets(&rep.program))
        .unwrap_or_else(|e| panic!("{}: hybrid run: {e}", k.name))
}

/// Asserts `got` and `want` agree on printed output and on every
/// non-privatized variable in the final store.
fn assert_parity(
    k: &SparseProgram,
    rep: &CompilationReport,
    got: &ExecOutcome,
    want: &ExecOutcome,
) {
    assert_eq!(got.output, want.output, "{}: printed output", k.name);
    let privatized: std::collections::HashSet<_> = rep
        .verdicts
        .iter()
        .flat_map(|v| {
            v.privatized_scalars
                .iter()
                .copied()
                .chain(v.privatized_arrays.iter().map(|(a, _)| *a))
        })
        .collect();
    for (vid, info) in rep.program.symbols.iter() {
        if privatized.contains(&vid) {
            continue;
        }
        if info.is_array() {
            assert_eq!(
                got.store.array_as_reals(vid),
                want.store.array_as_reals(vid),
                "{}: array {}",
                k.name,
                info.name
            );
        } else {
            assert_eq!(
                got.store.scalar(vid),
                want.store.scalar(vid),
                "{}: scalar {}",
                k.name,
                info.name
            );
        }
    }
}

fn structures() -> [Structure; 3] {
    [
        Structure::Banded { bandwidth: 8 },
        Structure::Uniform,
        Structure::PowerLaw,
    ]
}

/// Every kernel's main loop lands on its expected dispatch tier with
/// its expected strategy facts, for all three matrix structures.
#[test]
fn verdicts_are_stable() {
    for structure in structures() {
        for k in kernels(&SparseScale::test(structure, 42)) {
            let rep = compile_kernel(&k);
            let v = rep
                .verdict(&k.label)
                .unwrap_or_else(|| panic!("{}: no verdict for {}", k.name, k.label));
            let tier_ok = match k.expected_tier {
                ExpectedTier::CompileTimeParallel => {
                    matches!(v.tier, DispatchTier::CompileTimeParallel)
                }
                ExpectedTier::RuntimeGuarded => matches!(v.tier, DispatchTier::RuntimeGuarded(_)),
                ExpectedTier::Sequential => matches!(v.tier, DispatchTier::Sequential),
            };
            assert!(
                tier_ok,
                "{} ({}): expected {:?}, got {:?} (blockers: {:?})",
                k.name,
                structure.tag(),
                k.expected_tier,
                v.tier,
                v.blockers
            );
            assert_eq!(
                v.strategy_facts.name(),
                k.expected_facts,
                "{} ({}): strategy facts",
                k.name,
                structure.tag()
            );
        }
    }
}

/// Three-way parity at small size: hybrid with strategies, hybrid with
/// the write-log only, and the plain sequential interpreter must agree
/// on every observable.
#[test]
fn three_way_parity_for_every_kernel() {
    for k in kernels(&SparseScale::test(Structure::Uniform, 7)) {
        let rep = compile_kernel(&k);
        let seq = run_sequential(&k, &rep);
        let on = run_hybrid_config(&k, &rep, HybridConfig::default());
        let off = run_hybrid_config(
            &k,
            &rep,
            HybridConfig {
                enable_strategies: false,
                ..HybridConfig::default()
            },
        );
        assert_parity(&k, &rep, &on.outcome, &seq);
        assert_parity(&k, &rep, &off.outcome, &seq);
        assert_eq!(
            on.telemetry.fallbacks(),
            0,
            "{}: {:?}",
            k.name,
            on.telemetry
        );
        assert_eq!(
            off.telemetry.fallbacks(),
            0,
            "{}: {:?}",
            k.name,
            off.telemetry
        );
    }
}

/// The guarded kernels actually clear their guards and dispatch
/// parallel; the strategy kernels commit through their strategies.
#[test]
fn dispatch_telemetry_matches_the_tier_map() {
    for k in kernels(&SparseScale::test(Structure::Uniform, 21)) {
        let rep = compile_kernel(&k);
        let out = run_hybrid_config(&k, &rep, HybridConfig::default());
        let t = &out.telemetry;
        match k.expected_tier {
            ExpectedTier::CompileTimeParallel => {
                assert!(t.compile_time_parallel >= 1, "{}: {t:?}", k.name);
            }
            ExpectedTier::RuntimeGuarded => {
                assert!(t.guarded_parallel >= 1, "{}: {t:?}", k.name);
                assert_eq!(t.guarded_sequential, 0, "{}: {t:?}", k.name);
            }
            ExpectedTier::Sequential => {
                if k.expected_facts == "consecutive-append" {
                    assert!(t.concat_parallel >= 1, "{}: {t:?}", k.name);
                } else {
                    assert!(t.sequential_proven >= 1, "{}: {t:?}", k.name);
                }
            }
        }
        match k.expected_facts {
            "disjoint-affine" => assert!(t.strategy_in_place >= 1, "{}: {t:?}", k.name),
            "consecutive-append" => assert!(t.strategy_concat >= 1, "{}: {t:?}", k.name),
            _ => {}
        }
    }
}

/// The runtime inspectors survive 10M-nonzero index arrays: the
/// offset–length scan over a 10M-element prefix-sum chain, the chunked
/// parallel bitmap injectivity inspector over a 10M permutation (dense
/// range), and the sparse-set fallback over 10M widely-scattered
/// values. Inspectors are called directly on a preset store — no
/// interpreted initialization loops — so the test stays fast.
#[test]
fn inspectors_survive_ten_million_nonzeros() {
    use irr_repro::exec::{
        inspect_injective, inspect_injective_parallel, inspect_offset_length, Inspection,
    };
    use irr_repro::frontend::parse_program;
    use irr_repro::sparse::{generate, int_array, random_permutation, MatrixSpec};

    const NNZ: usize = 10_000_000;
    const ROWS: usize = 100_000;
    let m = generate(&MatrixSpec::square(ROWS, NNZ, Structure::Uniform, 99));
    assert_eq!(m.nnz(), NNZ);

    // Declared extents are irrelevant: inspectors read the preset's
    // materialized data.
    let p = parse_program(
        "program t
         integer ptr(1), len(1), perm(1), wide(1)
         end",
    )
    .unwrap();
    let (ptr, len) = (
        p.symbols.lookup("ptr").unwrap(),
        p.symbols.lookup("len").unwrap(),
    );
    let (perm, wide) = (
        p.symbols.lookup("perm").unwrap(),
        p.symbols.lookup("wide").unwrap(),
    );
    let mut it = Interp::new(&p);
    it.preset_array(ptr, int_array(&m.ptr));
    it.preset_array(len, int_array(&m.len));
    it.preset_array(perm, int_array(&random_permutation(NNZ, 7)));
    // Widely-scattered distinct values: range ~1000x the section, so
    // the parallel inspector takes the sparse-set path.
    let scattered: Vec<i64> = (1..=NNZ as i64).map(|k| k * 1009).collect();
    it.preset_array(wide, int_array(&scattered));
    let store = it.run().unwrap().store;

    assert_eq!(
        inspect_offset_length(&store, ptr, len, 1, ROWS as i64),
        Inspection::ParallelOk
    );
    assert_eq!(
        inspect_injective_parallel(&store, perm, 1, NNZ as i64, 8),
        Inspection::ParallelOk
    );
    assert_eq!(
        inspect_injective_parallel(&store, wide, 1, NNZ as i64, 8),
        Inspection::ParallelOk
    );
    // A single duplicate at the far end must still be caught.
    let mut broken = random_permutation(NNZ, 7);
    broken[NNZ - 1] = broken[0];
    let mut it2 = Interp::new(&p);
    it2.preset_array(perm, int_array(&broken));
    let store2 = it2.run().unwrap().store;
    assert_eq!(
        inspect_injective_parallel(&store2, perm, 1, NNZ as i64, 8),
        Inspection::Sequential
    );
    assert_eq!(
        inspect_injective(&store2, perm, 1, NNZ as i64),
        Inspection::Sequential
    );
}

/// Every producer kernel's consumer loop promotes to compile-time
/// parallel with at least one retired residual check, for all three
/// matrix structures — the value-evolution analysis proves the
/// in-program offset–length chains and the reversal-fill injectivity.
#[test]
fn producer_kernels_promote_across_structures() {
    for structure in structures() {
        let mut promoted = 0;
        for k in producer_kernels(&SparseScale::test(structure, 42)) {
            let rep = compile_kernel(&k);
            let v = rep
                .verdict(&k.label)
                .unwrap_or_else(|| panic!("{}: no verdict for {}", k.name, k.label));
            assert!(
                matches!(v.tier, DispatchTier::CompileTimeParallel),
                "{} ({}): expected promotion, got {:?} (blockers: {:?})",
                k.name,
                structure.tag(),
                v.tier,
                v.blockers
            );
            assert!(
                !v.retired_checks.is_empty(),
                "{} ({}): promoted but no retired checks — the tier is not owed to evolution",
                k.name,
                structure.tag()
            );
            promoted += 1;
        }
        assert!(promoted >= 3, "{}: {promoted} promoted", structure.tag());
    }
}

/// The producer kernels keep three-way parity with the sequential
/// interpreter and dispatch without fallbacks, and the telemetry
/// records the evolution promotion: at least one compile-time-parallel
/// entry owed to evolution, with its inspections counted as retired
/// instead of run.
#[test]
fn producer_kernels_keep_parity_and_retire_inspections() {
    for k in producer_kernels(&SparseScale::test(Structure::Uniform, 7)) {
        let rep = compile_kernel(&k);
        let seq = run_sequential(&k, &rep);
        let on = run_hybrid_config(&k, &rep, HybridConfig::default());
        let off = run_hybrid_config(
            &k,
            &rep,
            HybridConfig {
                enable_strategies: false,
                ..HybridConfig::default()
            },
        );
        assert_parity(&k, &rep, &on.outcome, &seq);
        assert_parity(&k, &rep, &off.outcome, &seq);
        let t = &on.telemetry;
        assert_eq!(t.fallbacks(), 0, "{}: {t:?}", k.name);
        assert!(t.promoted_by_evolution >= 1, "{}: {t:?}", k.name);
        assert!(t.inspections_retired >= 1, "{}: {t:?}", k.name);
        assert!(t.compile_time_parallel >= 1, "{}: {t:?}", k.name);
    }
}

/// Satellite check for the sanitizer: the shadow tracer replays every
/// evolution-retired check against the live store at each promoted
/// loop entry. A promotion the tracer contradicts is a soundness bug,
/// so a clean audit across structures is the ground truth that the
/// compile-time proofs match the data the inspectors used to see.
#[test]
fn sanitizer_confirms_every_promotion() {
    use irr_repro::sanitizer::{audit_report_seeded, AuditConfig};
    for structure in structures() {
        for k in producer_kernels(&SparseScale::test(structure, 13)) {
            let rep = compile_kernel(&k);
            let audit = audit_report_seeded(
                &rep,
                &AuditConfig {
                    inputs: 2,
                    ..AuditConfig::default()
                },
                &k.resolve_presets(&rep.program),
            );
            assert_eq!(audit.runs_failed, 0, "{}: {:?}", k.name, audit.findings);
            assert_eq!(
                audit.violations(),
                0,
                "{} ({}): evolution promotion contradicted: {:?}",
                k.name,
                structure.tag(),
                audit.findings
            );
        }
    }
}

/// Zero-nonzero and single-row producer matrices (the satellite-3 edge
/// cases): a zero-trip histogram still yields a monotone-nondecreasing
/// — not strictly increasing — chain, which is exactly what the
/// offset–length discharge needs, so the consumers stay promoted and
/// parity holds on empty and single-segment windows.
#[test]
fn producer_kernels_keep_promotion_at_edge_scales() {
    for scale in [
        SparseScale {
            n: 8,
            nnz: 0,
            structure: Structure::Uniform,
            seed: 3,
        },
        SparseScale {
            n: 1,
            nnz: 16,
            structure: Structure::Banded { bandwidth: 4 },
            seed: 4,
        },
    ] {
        for k in producer_kernels(&scale) {
            let rep = compile_kernel(&k);
            let v = rep
                .verdict(&k.label)
                .unwrap_or_else(|| panic!("{}: no verdict for {}", k.name, k.label));
            assert!(
                matches!(v.tier, DispatchTier::CompileTimeParallel),
                "{} (n={}, nnz={}): {:?} (blockers: {:?})",
                k.name,
                scale.n,
                scale.nnz,
                v.tier,
                v.blockers
            );
            let seq = run_sequential(&k, &rep);
            let on = run_hybrid_config(&k, &rep, HybridConfig::default());
            assert_parity(&k, &rep, &on.outcome, &seq);
        }
    }
}

/// Zero-nonzero and single-row matrices: every kernel still compiles,
/// runs, and keeps hybrid/sequential parity (loops are zero-trip or
/// single-iteration, guards inspect empty or tiny sections).
#[test]
fn edge_matrices_keep_parity() {
    for scale in [
        SparseScale {
            n: 8,
            nnz: 0,
            structure: Structure::Uniform,
            seed: 3,
        },
        SparseScale {
            n: 1,
            nnz: 16,
            structure: Structure::Banded { bandwidth: 4 },
            seed: 4,
        },
    ] {
        for k in kernels(&scale) {
            let rep = compile_kernel(&k);
            let seq = run_sequential(&k, &rep);
            let on = run_hybrid_config(&k, &rep, HybridConfig::default());
            assert_parity(&k, &rep, &on.outcome, &seq);
        }
    }
}
