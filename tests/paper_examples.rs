//! End-to-end checks of every worked example in the paper, plus
//! thread-level verification that the benchmark kernels' irregular
//! loops really are parallel.

use irr_driver::{compile_source, DriverOptions, PhaseOrder, ReductionOp};
use irr_exec::{run_loop_parallel, Interp, ParallelPlan, ReduceOp};
use irr_frontend::VarId;

fn map_reductions(rs: &[(VarId, ReductionOp)]) -> Vec<(VarId, ReduceOp)> {
    rs.iter()
        .filter_map(|(v, op)| {
            let op = match op {
                ReductionOp::Sum => ReduceOp::Sum,
                ReductionOp::Min => ReduceOp::Min,
                ReductionOp::Max => ReduceOp::Max,
                ReductionOp::Product => return None,
            };
            Some((*v, op))
        })
        .collect()
}
use irr_programs::{all, Scale};

/// Fig. 1(b): the array stack. The outer loop parallelizes via the
/// STACK evidence.
#[test]
fn fig1b_stack_loop_parallelizes() {
    let src = "program fig1b
      integer i, j, n, m, p, cond(64)
      real t(64), work(64), out(64)
      n = 32
      m = 24
      call init
      do 100 i = 1, n
        p = 0
        do j = 1, m
          p = p + 1
          t(p) = work(j) + i
          if (cond(j) > 0) then
            ! drain the stack: reads reach elements pushed in *earlier*
            ! j-iterations, so only the stack discipline proves
            ! written-before-read
            while (p >= 1)
              out(i) = out(i) + t(p)
              p = p - 1
            endwhile
          endif
        enddo
 100  continue
      print out(1), out(32)
    end
    subroutine init
      integer w
      do w = 1, 64
        work(w) = w * 0.25
        cond(w) = mod(w, 3)
      enddo
    end";
    let rep = compile_source(src, DriverOptions::with_iaa()).unwrap();
    let v = rep.verdict("FIG1B/do100").expect("loop exists");
    assert!(v.parallel, "{v:?}");
    assert!(v.privatized_arrays.iter().any(|(_, tag)| *tag == "STACK"));
    let without = compile_source(src, DriverOptions::without_iaa()).unwrap();
    assert!(!without.verdict("FIG1B/do100").unwrap().parallel);
}

/// Fig. 1(c): indirect read through a bounded index array.
#[test]
fn fig1c_indirect_privatization() {
    let src = "program fig1c
      integer i, j, k, n, m, q, pos(64)
      real x(64), y(64), z(64, 64)
      n = 16
      m = 32
      call gather
      do 100 i = 1, n
        do j = 1, m
          x(j) = y(i) + j * 0.5
        enddo
        do k = 1, q
          z(i, k) = x(pos(k))
        enddo
 100  continue
      print z(1, 1)
    end
    subroutine gather
      integer w
      do w = 1, 64
        y(w) = mod(w * 3, 7) * 0.4
      enddo
      q = 0
      do w = 1, m
        if (y(w) > 1.0) then
          q = q + 1
          pos(q) = w
        endif
      enddo
    end";
    let rep = compile_source(src, DriverOptions::with_iaa()).unwrap();
    let v = rep.verdict("FIG1C/do100").expect("loop exists");
    assert!(v.parallel, "{v:?}");
    assert!(v.privatized_arrays.iter().any(|(_, tag)| *tag == "CFB"));
    assert!(
        !compile_source(src, DriverOptions::without_iaa())
            .unwrap()
            .verdict("FIG1C/do100")
            .unwrap()
            .parallel
    );
}

/// The Fig. 15 phase-order ablation on a real benchmark: DYFESM's
/// offset-length loops need interprocedural queries (pptr/iblen are
/// defined in `setup`), so the original per-unit organization loses
/// them.
#[test]
fn phase_order_ablation_on_dyfesm() {
    let b = all(Scale::Test)
        .into_iter()
        .find(|b| b.name == "DYFESM")
        .unwrap();
    let reorganized = compile_source(&b.source, DriverOptions::with_iaa()).unwrap();
    let original = compile_source(
        &b.source,
        DriverOptions {
            phase_order: PhaseOrder::Original,
            ..DriverOptions::with_iaa()
        },
    )
    .unwrap();
    for label in &b.irregular_labels {
        assert!(reorganized.verdict(label).unwrap().parallel, "{label}");
        assert!(
            !original.verdict(label).unwrap().parallel,
            "{label} should need the reorganized phases"
        );
    }
}

/// APO (no inlining, no interprocedural constants) is strictly weaker
/// than Polaris on at least one benchmark loop inventory.
#[test]
fn apo_is_weakest() {
    for b in all(Scale::Test) {
        let apo = compile_source(&b.source, DriverOptions::apo()).unwrap();
        let polaris = compile_source(&b.source, DriverOptions::without_iaa()).unwrap();
        let with = compile_source(&b.source, DriverOptions::with_iaa()).unwrap();
        let napo = apo.parallel_labels().len();
        let npol = polaris.parallel_labels().len();
        let nwith = with.parallel_labels().len();
        assert!(napo <= npol, "{}: APO {napo} > Polaris {npol}", b.name);
        assert!(npol < nwith, "{}: IAA must add loops", b.name);
    }
}

/// Thread-level verification: each benchmark's headline irregular loop
/// executes in parallel chunks with results identical to the sequential
/// run.
#[test]
fn benchmark_irregular_loops_execute_in_parallel() {
    for b in all(Scale::Test) {
        let rep = compile_source(&b.source, DriverOptions::with_iaa()).unwrap();
        let seq = Interp::new(&rep.program).run().unwrap();
        // The headline loop is the first irregular label; it must be a
        // do-loop reachable at top level of its procedure (benchmark
        // kernels are built that way) — run it chunked.
        let label = b.irregular_labels[0];
        let v = rep.verdict(label).unwrap();
        let plan = ParallelPlan {
            threads: 3,
            privatized: v
                .privatized_scalars
                .iter()
                .copied()
                .chain(v.privatized_arrays.iter().map(|(a, _)| *a))
                .collect(),
            reductions: map_reductions(&v.reductions),
            ..ParallelPlan::default()
        };
        let par = match run_loop_parallel(&rep.program, v.loop_stmt, &plan) {
            Ok(st) => st,
            Err(e) => panic!("{}: {label}: {e}", b.name),
        };
        // Every non-privatized array must match exactly.
        for (vid, info) in rep.program.symbols.iter() {
            if !info.is_array() || plan.privatized.contains(&vid) {
                continue;
            }
            assert_eq!(
                seq.store.array_as_reals(vid),
                par.array_as_reals(vid),
                "{}: array {} differs after parallel {label}",
                b.name,
                info.name
            );
        }
    }
}

/// Table 2's analysis share: the property analysis is a bounded
/// fraction of compilation (the paper: 4.5%–10.9% on full codes).
#[test]
fn property_analysis_time_is_bounded() {
    for b in all(Scale::Test) {
        let rep = compile_source(&b.source, DriverOptions::with_iaa()).unwrap();
        assert!(
            rep.stats.property_time <= rep.stats.total_time,
            "{}",
            b.name
        );
        // TREE needs no property queries (the stack analysis is pure
        // bDFS); every other benchmark issues them.
        if b.name != "TREE" {
            assert!(
                rep.stats.property_queries > 0,
                "{}: IAA ran queries",
                b.name
            );
        }
    }
}

/// The annotated-source emission (Polaris's output artifact) is inert:
/// the directives are comments, so the annotated benchmark kernels
/// reparse and run to identical checksums.
#[test]
fn annotated_benchmarks_run_identically() {
    for b in all(Scale::Test) {
        let rep = compile_source(&b.source, DriverOptions::with_iaa()).unwrap();
        let annotated = irr_driver::emit_annotated(&rep);
        assert!(
            annotated.contains("!$omp parallel do"),
            "{}: no directives emitted",
            b.name
        );
        let reparsed = irr_frontend::parse_program(&annotated)
            .unwrap_or_else(|e| panic!("{}: {e}\n{annotated}", b.name));
        let out1 = Interp::new(&rep.program).run().unwrap().output;
        let out2 = Interp::new(&reparsed).run().unwrap().output;
        assert_eq!(out1, out2, "{}", b.name);
    }
}
