//! End-to-end integration over the five benchmark kernels: parse →
//! pipeline → analyses → verdicts → execution. This is the repo's
//! equivalent of the paper's headline claim — "nine loops in five real
//! programs that could not be handled by the traditional methods were
//! found parallel" — checked mechanically.

use irr_driver::{compile_source, DriverOptions};
use irr_exec::Interp;
use irr_programs::{all, Scale};

#[test]
fn irregular_loops_parallel_only_with_iaa() {
    for b in all(Scale::Test) {
        let with = compile_source(&b.source, DriverOptions::with_iaa())
            .unwrap_or_else(|e| panic!("{}: {e}", b.name));
        let without = compile_source(&b.source, DriverOptions::without_iaa()).unwrap();
        for label in &b.irregular_labels {
            let vw = with.verdict(label).unwrap_or_else(|| {
                panic!(
                    "{}: loop {label} missing; have {:?}",
                    b.name,
                    with.verdicts.iter().map(|v| &v.label).collect::<Vec<_>>()
                )
            });
            assert!(
                vw.parallel,
                "{}: {label} should be parallel with IAA: {vw:#?}",
                b.name
            );
            let vo = without.verdict(label).unwrap();
            assert!(
                !vo.parallel,
                "{}: {label} should NOT be parallel without IAA",
                b.name
            );
        }
    }
}

#[test]
fn transformed_programs_run_and_match_originals() {
    for b in all(Scale::Test) {
        let original = irr_frontend::parse_program(&b.source).unwrap();
        let out1 = Interp::new(&original)
            .run()
            .unwrap_or_else(|e| panic!("{}: {e}", b.name));
        let compiled = compile_source(&b.source, DriverOptions::with_iaa()).unwrap();
        let out2 = Interp::new(&compiled.program)
            .run()
            .unwrap_or_else(|e| panic!("{} (transformed): {e}", b.name));
        assert_eq!(
            out1.output, out2.output,
            "{}: pass pipeline changed observable behavior",
            b.name
        );
        assert!(!out1.output.is_empty(), "{} prints a checksum", b.name);
    }
}

#[test]
fn paper_loop_inventory() {
    // The paper: nine newly parallelized loops across the five programs
    // (Table 3's starred rows). Our kernels reproduce that inventory.
    let mut starred = 0;
    for b in all(Scale::Test) {
        starred += b.irregular_labels.len();
    }
    // TRFD 1 + DYFESM 5 + BDNA 1 + P3M 1 + TREE 1 = 9.
    assert_eq!(starred, 9);
}

#[test]
fn helper_loops_match_table3_unstarred_rows() {
    // Table 3's unstarred rows: loops that are analyzed (their CW
    // results feed the starred loops) but not themselves parallelized.
    let helper_labels: &[(&str, &str)] = &[
        ("BDNA", "ACTFOR/do236"),
        ("P3M", "PP/do50"),
        ("P3M", "PP/do57"),
    ];
    for (prog, label) in helper_labels {
        let b = all(Scale::Test)
            .into_iter()
            .find(|b| b.name == *prog)
            .unwrap();
        let rep = compile_source(&b.source, DriverOptions::with_iaa()).unwrap();
        let v = rep
            .verdict(label)
            .unwrap_or_else(|| panic!("{prog}: {label} missing"));
        // do50 (the distance fill) is a regular parallel loop in P3M;
        // the *gather* loops stay serial.
        if label.ends_with("do50") {
            continue;
        }
        assert!(!v.parallel, "{prog}: helper {label} is serial: {v:?}");
    }
}

#[test]
fn benchmark_checksums_are_stable() {
    // Golden outputs guard the kernels against accidental workload
    // changes (the profile-based experiments depend on them).
    let expected = [
        ("TRFD", 1),
        ("DYFESM", 1),
        ("BDNA", 1),
        ("P3M", 1),
        ("TREE", 1),
    ];
    for (name, lines) in expected {
        let b = all(Scale::Test)
            .into_iter()
            .find(|b| b.name == name)
            .unwrap();
        let p = irr_frontend::parse_program(&b.source).unwrap();
        let out = Interp::new(&p).run().unwrap();
        assert_eq!(out.output.len(), lines, "{name}");
        let v: f64 = out.output[0]
            .split_whitespace()
            .next()
            .unwrap()
            .parse()
            .unwrap();
        assert!(v.is_finite() && v != 0.0, "{name}: checksum {v}");
        // Determinism: a second run prints the same.
        let out2 = Interp::new(&p).run().unwrap();
        assert_eq!(out.output, out2.output, "{name} must be deterministic");
    }
}
