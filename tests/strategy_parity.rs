//! Strategy parity suite: proof-directed execution strategies must be
//! semantically invisible.
//!
//! Every program runs three ways — hybrid with strategies enabled
//! (in-place / concat commits where proven), hybrid with strategies
//! disabled (every parallel dispatch through the transactional
//! write-log), and pure sequential interpretation — and all three must
//! agree on the final store, printed output, and execution statistics.
//! The corpus is the five benchmark kernels plus the paper figures,
//! with dedicated kernels for the zero-trip, single-iteration, and
//! consecutively-written (concat) edge cases.

use irr_driver::{compile_source, CompilationReport, DriverOptions};
use irr_exec::{Interp, Store, Value};
use irr_programs::{all, Scale};
use irr_runtime::{run_hybrid, HybridConfig, HybridOutcome};
use irr_sanitizer::figures;

fn compiled(src: &str) -> CompilationReport {
    compile_source(src, DriverOptions::with_iaa()).expect("compiles")
}

fn strategies(enable: bool) -> HybridConfig {
    HybridConfig {
        enable_strategies: enable,
        ..HybridConfig::default()
    }
}

fn reals_eq(a: f64, b: f64) -> bool {
    let scale = a.abs().max(b.abs()).max(1.0);
    (a - b).abs() <= 1e-9 * scale
}

/// Asserts `hybrid` reproduced the sequential run exactly: output,
/// store (privatized scratch excluded), and per-loop statistics.
fn assert_sequential_parity(name: &str, rep: &CompilationReport, hybrid: &HybridOutcome) {
    let seq = Interp::new(&rep.program).run().expect("sequential run");
    assert_eq!(
        hybrid.outcome.output.len(),
        seq.output.len(),
        "{name}: output length differs"
    );
    for (got, want) in hybrid.outcome.output.iter().zip(&seq.output) {
        let close = match (got.parse::<f64>(), want.parse::<f64>()) {
            (Ok(g), Ok(w)) => reals_eq(g, w),
            _ => got == want,
        };
        assert!(close, "{name}: output differs: {got} vs {want}");
    }
    assert_store_eq(name, rep, &seq.store, &hybrid.outcome.store);
    assert_eq!(
        hybrid.outcome.stats.total_cost, seq.stats.total_cost,
        "{name}: total cost differs"
    );
    for (stmt, seq_stats) in &seq.stats.loops {
        let got = hybrid
            .outcome
            .stats
            .loops
            .get(stmt)
            .unwrap_or_else(|| panic!("{name}: loop stats dropped for {stmt:?}"));
        assert_eq!(got.invocations, seq_stats.invocations, "{name}: {stmt:?}");
        assert_eq!(got.total_cost, seq_stats.total_cost, "{name}: {stmt:?}");
    }
}

fn assert_store_eq(name: &str, rep: &CompilationReport, seq: &Store, got: &Store) {
    // Privatized variables are per-worker scratch whose post-loop
    // values are unobservable; every other variable must match.
    let privatized: std::collections::HashSet<irr_frontend::VarId> = rep
        .verdicts
        .iter()
        .flat_map(|v| {
            v.privatized_scalars
                .iter()
                .copied()
                .chain(v.privatized_arrays.iter().map(|(a, _)| *a))
        })
        .collect();
    for (vid, info) in rep.program.symbols.iter() {
        if privatized.contains(&vid) {
            continue;
        }
        if info.is_array() {
            match (seq.array_as_reals(vid), got.array_as_reals(vid)) {
                (Some(want), Some(have)) => {
                    assert_eq!(
                        want.len(),
                        have.len(),
                        "{name}: array {} length differs",
                        info.name
                    );
                    for (k, (w, h)) in want.iter().zip(&have).enumerate() {
                        assert!(
                            reals_eq(*w, *h),
                            "{name}: {}({}) differs: {w} vs {h}",
                            info.name,
                            k + 1
                        );
                    }
                }
                (want, have) => assert_eq!(
                    want.is_some(),
                    have.is_some(),
                    "{name}: array {} materialization differs",
                    info.name
                ),
            }
        } else {
            let (want, have) = (seq.scalar(vid), got.scalar(vid));
            let close = match (want, have) {
                (Value::Real(w), Value::Real(h)) => reals_eq(w, h),
                _ => want == have,
            };
            assert!(
                close,
                "{name}: scalar {} differs: {want:?} vs {have:?}",
                info.name
            );
        }
    }
}

/// Runs `src` both ways and asserts three-way parity; returns both
/// outcomes for telemetry assertions.
fn three_way(name: &str, rep: &CompilationReport) -> (HybridOutcome, HybridOutcome) {
    let with = run_hybrid(rep, strategies(true)).unwrap_or_else(|e| panic!("{name} (on): {e}"));
    let without =
        run_hybrid(rep, strategies(false)).unwrap_or_else(|e| panic!("{name} (off): {e}"));
    assert_sequential_parity(&format!("{name} (strategies on)"), rep, &with);
    assert_sequential_parity(&format!("{name} (strategies off)"), rep, &without);
    (with, without)
}

#[test]
fn benchmarks_and_figures_agree_under_all_strategy_modes() {
    let mut targets: Vec<(String, String)> = all(Scale::Test)
        .into_iter()
        .map(|b| (b.name.to_string(), b.source))
        .collect();
    targets.extend(
        figures()
            .into_iter()
            .map(|f| (f.name.to_string(), f.source.to_string())),
    );
    let mut in_place_commits = 0u64;
    for (name, src) in &targets {
        let rep = compiled(src);
        let (with, without) = three_way(name, &rep);
        in_place_commits += with.telemetry.strategy_in_place;
        assert_eq!(
            without.telemetry.strategy_in_place + without.telemetry.strategy_concat,
            0,
            "{name}: strategies disabled must commit only through the write-log: {:?}",
            without.telemetry
        );
    }
    assert!(
        in_place_commits > 0,
        "the corpus must exercise the in-place strategy at least once"
    );
}

#[test]
fn zero_trip_and_single_iteration_loops_are_strategy_safe() {
    // `mod(n, 2) = 0` for n = 8: the proven-disjoint loop is zero-trip
    // (no workers spawn, the planned strategy commits vacuously);
    // `mod(n, 2) + 1 = 1`: a single iteration exercises the degenerate
    // one-chunk window.
    for (name, trip) in [("zero-trip", "mod(n, 2)"), ("one-trip", "mod(n, 2) + 1")] {
        let src = format!(
            "program t
             integer i, n, m
             real x(8)
             n = 8
             m = {trip}
             do i = 1, n
               x(i) = i * 1.0
             enddo
             do 20 i = 1, m
               x(i) = i * 2.0
 20          continue
             print x(1), m
             end"
        );
        let rep = compiled(&src);
        let (with, _) = three_way(name, &rep);
        assert_eq!(
            with.telemetry.fallbacks(),
            0,
            "{name}: {:?}",
            with.telemetry
        );
        assert!(
            with.telemetry.strategy_in_place >= 1,
            "{name}: both loops are proven disjoint: {:?}",
            with.telemetry
        );
    }
}

#[test]
fn in_place_write_log_and_sequential_agree_on_affine_offsets() {
    // The in-place strategy's sharpest edge: affine offset windows
    // (`y(i + 1)`) against the array extent, plus a scalar reduction
    // combined without logging any array traffic.
    let src = "program t
         integer i, n
         real s, big(128), y(129)
         n = 128
         s = 0.0
         do i = 1, n
           big(i) = i * 0.5
         enddo
         do 20 i = 1, n
           y(i + 1) = big(i) + i
           s = s + big(i)
 20      continue
         print y(2), y(129), s
         end";
    let rep = compiled(src);
    let (with, without) = three_way("affine-offset", &rep);
    assert!(
        with.telemetry.strategy_in_place >= 1,
        "strategies on must commit in place: {:?}",
        with.telemetry
    );
    assert!(
        without.telemetry.strategy_write_log >= 1,
        "strategies off must commit through the write-log: {:?}",
        without.telemetry
    );
    assert_eq!(with.telemetry.fallbacks(), 0, "{:?}", with.telemetry);
    assert_eq!(without.telemetry.fallbacks(), 0, "{:?}", without.telemetry);
}

#[test]
fn concat_kernel_agrees_and_commits_positionally() {
    // A consecutively-written gather (§2.2): sequential tier promoted
    // to parallel dispatch by the privatize-and-concat strategy. The
    // concatenated result must be byte-identical to the sequential
    // append order.
    let src = "program t
         integer i, n, q, ind(64)
         real x(64)
         n = 64
         q = 0
         do i = 1, n
           x(i) = mod(i, 3) * 1.0
         enddo
         do 20 i = 1, n
           if (x(i) > 0.5) then
             q = q + 1
             ind(q) = i
           endif
 20      continue
         print q, ind(1)
         end";
    let rep = compiled(src);
    let (with, without) = three_way("concat-gather", &rep);
    assert!(
        with.telemetry.strategy_concat >= 1,
        "strategies on must commit a positional concat: {:?}",
        with.telemetry
    );
    assert_eq!(
        without.telemetry.concat_parallel, 0,
        "strategies off must not promote the sequential tier: {:?}",
        without.telemetry
    );
    assert_eq!(with.telemetry.fallbacks(), 0, "{:?}", with.telemetry);
}
