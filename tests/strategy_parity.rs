//! Execution-mode parity suite: proof-directed strategies and the
//! compiled bytecode tier must be semantically invisible.
//!
//! Every program runs four ways — **compiled** (bytecode tier for
//! sequential leaves and parallel workers, strategies enabled),
//! **strategies** (tree-walk engines, in-place / concat commits where
//! proven), **write-log** (tree-walk, every parallel dispatch through
//! the transactional write-log), and pure **sequential**
//! interpretation — and all four must agree on the final store, the
//! printed output, and the execution statistics (the compiled tier
//! replays the tree-walk's fuel accounting instruction for
//! instruction). The corpus is the five benchmark kernels, the paper
//! figures, the generated sparse kernels, and a SplitMix64-randomized
//! program sweep, plus dedicated kernels for the zero-trip,
//! single-iteration, and consecutively-written (concat) edge cases.

use irr_driver::{compile_source, CompilationReport, DriverOptions};
use irr_exec::{ArrayData, ExecOutcome, Interp, SplitMix64, Store, Value};
use irr_frontend::VarId;
use irr_programs::fuzz::random_loop_program;
use irr_programs::sparse::{kernels, SparseScale};
use irr_programs::{all, Scale};
use irr_runtime::{run_hybrid_seeded, HybridConfig, HybridOutcome};
use irr_sanitizer::figures;
use irr_sparse::Structure;

type Presets = Vec<(VarId, ArrayData)>;

fn compile(src: &str) -> CompilationReport {
    compile_source(src, DriverOptions::with_iaa()).expect("compiles")
}

/// The three hybrid modes of the matrix; the fourth way is the pure
/// sequential interpreter every mode is compared against.
const MODES: [(&str, bool, bool); 3] = [
    // (name, enable_compiled, enable_strategies)
    ("compiled", true, true),
    ("strategies", false, true),
    ("write-log", false, false),
];

fn mode_config(enable_compiled: bool, enable_strategies: bool) -> HybridConfig {
    HybridConfig {
        enable_compiled,
        enable_strategies,
        ..HybridConfig::default()
    }
}

fn reals_eq(a: f64, b: f64) -> bool {
    let scale = a.abs().max(b.abs()).max(1.0);
    (a - b).abs() <= 1e-9 * scale
}

fn run_sequential(rep: &CompilationReport, presets: &Presets) -> ExecOutcome {
    let mut it = Interp::new(&rep.program);
    for (var, data) in presets {
        it.preset_array(*var, data.clone());
    }
    it.run().expect("sequential run")
}

/// Asserts `hybrid` reproduced the sequential run exactly: output,
/// store (privatized scratch excluded), and per-loop statistics.
fn assert_sequential_parity(
    name: &str,
    rep: &CompilationReport,
    presets: &Presets,
    hybrid: &HybridOutcome,
) {
    let seq = run_sequential(rep, presets);
    assert_eq!(
        hybrid.outcome.output.len(),
        seq.output.len(),
        "{name}: output length differs"
    );
    for (got, want) in hybrid.outcome.output.iter().zip(&seq.output) {
        let (g_toks, w_toks): (Vec<&str>, Vec<&str>) = (
            got.split_whitespace().collect(),
            want.split_whitespace().collect(),
        );
        assert_eq!(
            g_toks.len(),
            w_toks.len(),
            "{name}: output differs: {got} vs {want}"
        );
        for (g, w) in g_toks.iter().zip(&w_toks) {
            // Token-wise approximate compare: parallel reductions may
            // reassociate float sums across chunk boundaries.
            let close = match (g.parse::<f64>(), w.parse::<f64>()) {
                (Ok(g), Ok(w)) => reals_eq(g, w),
                _ => g == w,
            };
            assert!(close, "{name}: output differs: {got} vs {want}");
        }
    }
    assert_store_eq(name, rep, &seq.store, &hybrid.outcome.store);
    assert_eq!(
        hybrid.outcome.stats.total_cost, seq.stats.total_cost,
        "{name}: total cost differs"
    );
    for (stmt, seq_stats) in &seq.stats.loops {
        let got = hybrid
            .outcome
            .stats
            .loops
            .get(stmt)
            .unwrap_or_else(|| panic!("{name}: loop stats dropped for {stmt:?}"));
        assert_eq!(got.invocations, seq_stats.invocations, "{name}: {stmt:?}");
        assert_eq!(got.total_cost, seq_stats.total_cost, "{name}: {stmt:?}");
    }
}

fn assert_store_eq(name: &str, rep: &CompilationReport, seq: &Store, got: &Store) {
    // Privatized variables are per-worker scratch whose post-loop
    // values are unobservable; every other variable must match.
    let privatized: std::collections::HashSet<irr_frontend::VarId> = rep
        .verdicts
        .iter()
        .flat_map(|v| {
            v.privatized_scalars
                .iter()
                .copied()
                .chain(v.privatized_arrays.iter().map(|(a, _)| *a))
        })
        .collect();
    for (vid, info) in rep.program.symbols.iter() {
        if privatized.contains(&vid) {
            continue;
        }
        if info.is_array() {
            match (seq.array_as_reals(vid), got.array_as_reals(vid)) {
                (Some(want), Some(have)) => {
                    assert_eq!(
                        want.len(),
                        have.len(),
                        "{name}: array {} length differs",
                        info.name
                    );
                    for (k, (w, h)) in want.iter().zip(&have).enumerate() {
                        assert!(
                            reals_eq(*w, *h),
                            "{name}: {}({}) differs: {w} vs {h}",
                            info.name,
                            k + 1
                        );
                    }
                }
                (want, have) => assert_eq!(
                    want.is_some(),
                    have.is_some(),
                    "{name}: array {} materialization differs",
                    info.name
                ),
            }
        } else {
            let (want, have) = (seq.scalar(vid), got.scalar(vid));
            let close = match (want, have) {
                (Value::Real(w), Value::Real(h)) => reals_eq(w, h),
                _ => want == have,
            };
            assert!(
                close,
                "{name}: scalar {} differs: {want:?} vs {have:?}",
                info.name
            );
        }
    }
}

/// Runs the full mode matrix against the sequential baseline; returns
/// the hybrid outcomes in [`MODES`] order (compiled, strategies,
/// write-log) for telemetry assertions.
fn four_way(name: &str, rep: &CompilationReport, presets: &Presets) -> Vec<HybridOutcome> {
    MODES
        .iter()
        .map(|(mode, compiled, strategies)| {
            let out = run_hybrid_seeded(rep, mode_config(*compiled, *strategies), presets)
                .unwrap_or_else(|e| panic!("{name} ({mode}): {e}"));
            assert_sequential_parity(&format!("{name} ({mode})"), rep, presets, &out);
            out
        })
        .collect()
}

#[test]
fn benchmarks_and_figures_agree_under_all_modes() {
    let mut targets: Vec<(String, String)> = all(Scale::Test)
        .into_iter()
        .map(|b| (b.name.to_string(), b.source))
        .collect();
    targets.extend(
        figures()
            .into_iter()
            .map(|f| (f.name.to_string(), f.source.to_string())),
    );
    let mut in_place_commits = 0u64;
    let mut compiled_commits = 0u64;
    for (name, src) in &targets {
        let rep = compile(src);
        let outs = four_way(name, &rep, &Vec::new());
        let (with_compiled, with, without) = (&outs[0], &outs[1], &outs[2]);
        in_place_commits += with.telemetry.strategy_in_place;
        compiled_commits += with_compiled.telemetry.compiled_loops;
        assert_eq!(
            without.telemetry.strategy_in_place + without.telemetry.strategy_concat,
            0,
            "{name}: strategies disabled must commit only through the write-log: {:?}",
            without.telemetry
        );
        assert_eq!(
            with.telemetry.compiled_loops, 0,
            "{name}: compiled tier disabled must stay on the tree-walk: {:?}",
            with.telemetry
        );
    }
    assert!(
        in_place_commits > 0,
        "the corpus must exercise the in-place strategy at least once"
    );
    assert!(
        compiled_commits > 0,
        "the corpus must exercise the compiled tier at least once"
    );
}

#[test]
fn sparse_kernels_agree_under_all_modes() {
    for k in kernels(&SparseScale::test(Structure::Uniform, 11)) {
        let rep = compile(&k.source);
        let presets = k.resolve_presets(&rep.program);
        four_way(k.name, &rep, &presets);
    }
}

#[test]
fn randomized_programs_agree_under_all_modes() {
    let mut rng = SplitMix64::new(0xC0FFEE);
    for case in 0..16 {
        let src = random_loop_program(&mut rng);
        let rep = compile(&src);
        four_way(&format!("random-{case}"), &rep, &Vec::new());
    }
}

#[test]
fn zero_trip_and_single_iteration_loops_are_strategy_safe() {
    // `mod(n, 2) = 0` for n = 8: the proven-disjoint loop is zero-trip
    // (no workers spawn, the planned strategy commits vacuously);
    // `mod(n, 2) + 1 = 1`: a single iteration exercises the degenerate
    // one-chunk window.
    for (name, trip) in [("zero-trip", "mod(n, 2)"), ("one-trip", "mod(n, 2) + 1")] {
        let src = format!(
            "program t
             integer i, n, m
             real x(8)
             n = 8
             m = {trip}
             do i = 1, n
               x(i) = i * 1.0
             enddo
             do 20 i = 1, m
               x(i) = i * 2.0
 20          continue
             print x(1), m
             end"
        );
        let rep = compile(&src);
        let outs = four_way(name, &rep, &Vec::new());
        let with = &outs[1];
        assert_eq!(
            with.telemetry.fallbacks(),
            0,
            "{name}: {:?}",
            with.telemetry
        );
        assert!(
            with.telemetry.strategy_in_place >= 1,
            "{name}: both loops are proven disjoint: {:?}",
            with.telemetry
        );
    }
}

#[test]
fn in_place_write_log_and_sequential_agree_on_affine_offsets() {
    // The in-place strategy's sharpest edge: affine offset windows
    // (`y(i + 1)`) against the array extent, plus a scalar reduction
    // combined without logging any array traffic.
    let src = "program t
         integer i, n
         real s, big(128), y(129)
         n = 128
         s = 0.0
         do i = 1, n
           big(i) = i * 0.5
         enddo
         do 20 i = 1, n
           y(i + 1) = big(i) + i
           s = s + big(i)
 20      continue
         print y(2), y(129), s
         end";
    let rep = compile(src);
    let outs = four_way("affine-offset", &rep, &Vec::new());
    let (with, without) = (&outs[1], &outs[2]);
    assert!(
        with.telemetry.strategy_in_place >= 1,
        "strategies on must commit in place: {:?}",
        with.telemetry
    );
    assert!(
        without.telemetry.strategy_write_log >= 1,
        "strategies off must commit through the write-log: {:?}",
        without.telemetry
    );
    assert_eq!(with.telemetry.fallbacks(), 0, "{:?}", with.telemetry);
    assert_eq!(without.telemetry.fallbacks(), 0, "{:?}", without.telemetry);
}

#[test]
fn concat_kernel_agrees_and_commits_positionally() {
    // A consecutively-written gather (§2.2): sequential tier promoted
    // to parallel dispatch by the privatize-and-concat strategy. The
    // concatenated result must be byte-identical to the sequential
    // append order.
    let src = "program t
         integer i, n, q, ind(64)
         real x(64)
         n = 64
         q = 0
         do i = 1, n
           x(i) = mod(i, 3) * 1.0
         enddo
         do 20 i = 1, n
           if (x(i) > 0.5) then
             q = q + 1
             ind(q) = i
           endif
 20      continue
         print q, ind(1)
         end";
    let rep = compile(src);
    let outs = four_way("concat-gather", &rep, &Vec::new());
    let (with, without) = (&outs[1], &outs[2]);
    assert!(
        with.telemetry.strategy_concat >= 1,
        "strategies on must commit a positional concat: {:?}",
        with.telemetry
    );
    assert_eq!(
        without.telemetry.concat_parallel, 0,
        "strategies off must not promote the sequential tier: {:?}",
        without.telemetry
    );
    assert_eq!(with.telemetry.fallbacks(), 0, "{:?}", with.telemetry);
}
