//! Chaos suite for the transactional parallel dispatch path.
//!
//! Every test injects faults through a deterministic [`FaultPlan`]
//! (scripted sites or a SplitMix64-seeded schedule) and asserts the
//! recovery contract: the run **completes**, the final store, printed
//! output, and execution statistics are **identical to the pure
//! sequential run**, and the fault is **attributed** in telemetry under
//! its reason code. The randomized sweep replays the five benchmark
//! kernels and the paper figures under fault schedules; re-running with
//! the same seed replays the identical schedule (CI pins one).

use irr_driver::{compile_source, CompilationReport, DispatchTier, DriverOptions, StrategyFacts};
use irr_exec::{FaultKind, FaultPlan, Interp, Store, TraceConfig, Value};
use irr_programs::{all, Scale};
use irr_runtime::{
    run_hybrid, run_hybrid_with_faults, HybridConfig, HybridDispatcher, HybridOutcome,
};
use irr_sanitizer::{audit_report, figures, AuditConfig, AuditMode};

/// `p(i) = mod(i*3, n) + 1` is a permutation for `n = 8` — guarded at
/// compile time, passes inspection at run time, so without injected
/// faults the loop dispatches parallel exactly once.
const GUARDED_SRC: &str = "program t
     integer i, n, p(8)
     real z(8), x(8)
     n = 8
     do i = 1, n
       p(i) = mod(i * 3, n) + 1
       x(i) = i * 1.0
     enddo
     do 20 i = 1, n
       z(p(i)) = x(i) * 2.0
 20  continue
     print z(1), z(8)
     end";

/// `p(i) = mod(i, 4) + 1` collides for `n = 8`: an honest inspection
/// fails, so the only way this loop dispatches parallel is an injected
/// inspector lie — and the merge must then catch the genuine conflict.
const COLLIDING_SRC: &str = "program t
     integer i, n, p(8)
     real z(8), x(8)
     n = 8
     do i = 1, n
       p(i) = mod(i, 4) + 1
       x(i) = i * 1.0
     enddo
     do 20 i = 1, n
       z(p(i)) = x(i) * 2.0
 20  continue
     print z(1), z(4)
     end";

/// A guarded loop re-entered five times with unchanged bounds and index
/// arrays, for quarantine/retry scenarios.
const REENTRANT_SRC: &str = "program t
     integer i, r, n, p(8)
     real z(8), x(8)
     n = 8
     do i = 1, n
       p(i) = mod(i * 3, n) + 1
       x(i) = i * 1.0
     enddo
     do r = 1, 5
       do 20 i = 1, n
         z(p(i)) = x(i) + r
 20    continue
     enddo
     print z(1), z(8)
     end";

fn compiled(src: &str) -> CompilationReport {
    compile_source(src, DriverOptions::with_iaa()).expect("compiles")
}

/// Exact-attribution tests leave the watchdog off: these tests assert
/// precise fallback counts, and a deadline would let an *honest* worker
/// that the OS deschedules under load register a spurious timeout.
fn chaos_config() -> HybridConfig {
    HybridConfig::default()
}

/// Tests exercising the watchdog: stalls sleep well past the deadline,
/// honest Test-scale chunks finish orders of magnitude under it.
fn watchdog_config() -> HybridConfig {
    HybridConfig {
        worker_deadline_ms: Some(50),
        ..HybridConfig::default()
    }
}

const STALL_MS: u64 = 150;

/// Floating-point equality modulo reassociation: a parallel `Sum`
/// reduction combines per-worker partials in a different association
/// order than the sequential loop, which can move the last ulp. A
/// tight relative tolerance accepts exactly that and still catches any
/// genuine corruption (lost writes, wrong values, double-applied
/// merges).
fn reals_eq(a: f64, b: f64) -> bool {
    a == b || (a - b).abs() <= 1e-9 * a.abs().max(b.abs())
}

/// Asserts the chaos run is observably identical to the sequential run:
/// printed output, every scalar and array of the final store, total
/// statement cost, and per-loop invocation counts and costs. Integers,
/// strings, and costs compare exactly; reals modulo reassociation.
fn assert_sequential_parity(name: &str, rep: &CompilationReport, hybrid: &HybridOutcome) {
    let seq = Interp::new(&rep.program).run().expect("sequential run");
    assert_eq!(
        hybrid.outcome.output.len(),
        seq.output.len(),
        "{name}: output length differs"
    );
    for (got, want) in hybrid.outcome.output.iter().zip(&seq.output) {
        let close = match (got.parse::<f64>(), want.parse::<f64>()) {
            (Ok(g), Ok(w)) => reals_eq(g, w),
            _ => got == want,
        };
        assert!(close, "{name}: output differs: {got} vs {want}");
    }
    assert_store_eq(name, rep, &seq.store, &hybrid.outcome.store);
    assert_eq!(
        hybrid.outcome.stats.total_cost, seq.stats.total_cost,
        "{name}: total cost differs"
    );
    for (stmt, seq_stats) in &seq.stats.loops {
        let got = hybrid
            .outcome
            .stats
            .loops
            .get(stmt)
            .unwrap_or_else(|| panic!("{name}: loop stats dropped for {stmt:?}"));
        assert_eq!(got.invocations, seq_stats.invocations, "{name}: {stmt:?}");
        assert_eq!(got.total_cost, seq_stats.total_cost, "{name}: {stmt:?}");
    }
}

fn assert_store_eq(name: &str, rep: &CompilationReport, seq: &Store, got: &Store) {
    // Privatized variables are per-worker scratch: the compiler only
    // privatizes values that are dead after the loop, and the parallel
    // merge excludes them even on success — their post-loop values are
    // unobservable and legitimately differ between dispatch paths.
    let privatized: std::collections::HashSet<irr_frontend::VarId> = rep
        .verdicts
        .iter()
        .flat_map(|v| {
            v.privatized_scalars
                .iter()
                .copied()
                .chain(v.privatized_arrays.iter().map(|(a, _)| *a))
        })
        .collect();
    for (vid, info) in rep.program.symbols.iter() {
        if privatized.contains(&vid) {
            continue;
        }
        if info.is_array() {
            match (seq.array_as_reals(vid), got.array_as_reals(vid)) {
                (Some(want), Some(have)) => {
                    assert_eq!(
                        want.len(),
                        have.len(),
                        "{name}: array {} length differs",
                        info.name
                    );
                    for (k, (w, h)) in want.iter().zip(&have).enumerate() {
                        assert!(
                            reals_eq(*w, *h),
                            "{name}: array {}({}) differs: {w} vs {h}",
                            info.name,
                            k + 1
                        );
                    }
                }
                (want, have) => assert_eq!(
                    want, have,
                    "{name}: array {} materialization differs",
                    info.name
                ),
            }
        } else {
            let (want, have) = (seq.scalar(vid), got.scalar(vid));
            let close = match (want, have) {
                (Value::Real(w), Value::Real(h)) => reals_eq(w, h),
                _ => want == have,
            };
            assert!(
                close,
                "{name}: scalar {} differs: {want:?} vs {have:?}",
                info.name
            );
        }
    }
}

// ---- scripted faults: one test per failure class, exact attribution ----
//
// Site numbering: the initialization loop of these programs is
// compile-time parallel and consumes site 0; the guarded target loop
// (`do20`) is site 1.

#[test]
fn forged_conflict_falls_back_and_quarantines() {
    let rep = compiled(GUARDED_SRC);
    let plan = FaultPlan::scripted([(1, FaultKind::ForgeConflict)]);
    let (hybrid, plan) = run_hybrid_with_faults(&rep, chaos_config(), plan).unwrap();
    assert_sequential_parity("forge", &rep, &hybrid);
    let t = hybrid.telemetry;
    assert_eq!(t.fallback_conflict, 1, "{t:?}");
    assert_eq!(t.fallbacks(), 1, "{t:?}");
    assert_eq!(t.quarantine_poisonings, 1, "{t:?}");
    assert_eq!(t.guarded_parallel, 1, "the dispatch itself happened: {t:?}");
    assert_eq!(plan.fired_count("forge-conflict"), 1);
    assert_eq!(plan.fired()[0].site, 1);
}

#[test]
fn worker_panic_falls_back_with_attribution() {
    let rep = compiled(GUARDED_SRC);
    let plan = FaultPlan::scripted([(1, FaultKind::PanicWorker { worker: 1 })]);
    let (hybrid, plan) = run_hybrid_with_faults(&rep, chaos_config(), plan).unwrap();
    assert_sequential_parity("panic", &rep, &hybrid);
    let t = hybrid.telemetry;
    assert_eq!(t.fallback_panic, 1, "{t:?}");
    assert_eq!(t.fallbacks(), 1, "{t:?}");
    assert_eq!(plan.fired_count("panic-worker"), 1);
}

#[test]
fn stalled_worker_times_out_and_falls_back() {
    let rep = compiled(GUARDED_SRC);
    let plan = FaultPlan::scripted([(
        1,
        FaultKind::StallWorker {
            worker: 0,
            stall_ms: STALL_MS,
        },
    )]);
    let (hybrid, plan) = run_hybrid_with_faults(&rep, watchdog_config(), plan).unwrap();
    assert_sequential_parity("stall", &rep, &hybrid);
    let t = hybrid.telemetry;
    assert_eq!(t.fallback_timeout, 1, "{t:?}");
    assert_eq!(t.fallbacks(), 1, "{t:?}");
    assert_eq!(plan.fired_count("stall-worker"), 1);
}

#[test]
fn stall_without_watchdog_only_delays() {
    // With no deadline configured the stall is just latency: the
    // dispatch completes, nothing falls back.
    let rep = compiled(GUARDED_SRC);
    let plan = FaultPlan::scripted([(
        1,
        FaultKind::StallWorker {
            worker: 0,
            stall_ms: 20,
        },
    )]);
    let config = HybridConfig {
        worker_deadline_ms: None,
        ..HybridConfig::default()
    };
    let (hybrid, _) = run_hybrid_with_faults(&rep, config, plan).unwrap();
    assert_sequential_parity("stall-no-watchdog", &rep, &hybrid);
    assert_eq!(hybrid.telemetry.fallbacks(), 0, "{:?}", hybrid.telemetry);
}

#[test]
fn inspector_lie_is_caught_by_the_merge() {
    // The honest run dispatches this loop sequentially (the guard
    // fails); the lie forces a parallel dispatch of a genuinely
    // conflicting schedule. The merge must catch it and the fallback
    // must restore exact sequential semantics.
    let rep = compiled(COLLIDING_SRC);
    let honest = run_hybrid(&rep, chaos_config()).unwrap();
    assert_eq!(honest.telemetry.guarded_sequential, 1);
    assert_eq!(honest.telemetry.fallbacks(), 0);

    let plan = FaultPlan::scripted([(1, FaultKind::LieInspector)]);
    let (hybrid, plan) = run_hybrid_with_faults(&rep, chaos_config(), plan).unwrap();
    assert_sequential_parity("lie", &rep, &hybrid);
    let t = hybrid.telemetry;
    assert_eq!(t.guarded_parallel, 1, "the lie dispatched parallel: {t:?}");
    assert_eq!(t.fallback_conflict, 1, "{t:?}");
    assert_eq!(
        t.inspections_run, 0,
        "the lie bypassed the inspector: {t:?}"
    );
    assert_eq!(plan.fired_count("lie-inspector"), 1);
}

#[test]
fn lie_inspector_under_in_place_strategies_attributes_exactly() {
    // Strategies are enabled by default, so the colliding kernel's init
    // loop commits in place while the lied-about guarded dispatch (a
    // guarded entry never carries a disjointness proof, so its plan
    // stays write-log) must still be caught by the merge. Attribution
    // is exact: one conflict fallback, no strategy commit from the
    // aborted dispatch, one in-place commit from the honest loop.
    let rep = compiled(COLLIDING_SRC);
    let plan = FaultPlan::scripted([(1, FaultKind::LieInspector)]);
    let (hybrid, plan) = run_hybrid_with_faults(&rep, chaos_config(), plan).unwrap();
    assert_sequential_parity("lie-under-strategies", &rep, &hybrid);
    let t = hybrid.telemetry;
    assert_eq!(t.guarded_parallel, 1, "{t:?}");
    assert_eq!(t.fallback_conflict, 1, "{t:?}");
    assert_eq!(t.fallback_strategy, 0, "{t:?}");
    assert_eq!(
        t.strategy_in_place, 1,
        "the init loop committed in place: {t:?}"
    );
    assert_eq!(
        t.strategy_write_log, 0,
        "the lied dispatch aborted before commit: {t:?}"
    );
    assert_eq!(plan.fired_count("lie-inspector"), 1);

    // The sanitizer side of the same lie: a verdict falsified all the
    // way to a disjointness proof (the fact that would license in-place
    // commits) is caught by the shadow-memory audit, and the witness
    // names the strategy the forged proof would have driven.
    let mut forged = compiled(COLLIDING_SRC);
    let z = forged.program.symbols.lookup("z").unwrap();
    let v = forged
        .verdicts
        .iter_mut()
        .find(|v| v.label == "T/do20")
        .unwrap();
    v.parallel = true;
    v.tier = DispatchTier::CompileTimeParallel;
    v.strategy_facts = StrategyFacts::DisjointAffine {
        arrays: vec![(z, 0)],
    };
    let audit = audit_report(
        &forged,
        &AuditConfig {
            seed: 42,
            inputs: 2,
            mode: AuditMode::Soundness,
        },
    );
    assert_eq!(audit.violations(), 1, "{:?}", audit.findings);
    let f = &audit.findings[0];
    assert_eq!(f.label, "T/do20");
    assert!(
        f.detail.contains("in-place-disjoint"),
        "witness must report the strategy: {}",
        f.detail
    );
    assert!(f.witness.is_some(), "{f:?}");
}

#[test]
fn forged_disjointness_facts_are_refused_by_the_executor() {
    // A forged verdict claims the all-iterations-write-x(1) loop is
    // compile-time parallel under a disjoint-affine proof. The executor
    // re-derives the proof on every dispatch, finds none (the subscript
    // is not `i + c`), and silently downgrades to the write-log — whose
    // merge then catches the genuine write-write conflict, so the
    // forged fact can never reach the raw in-place path.
    let src = "program t
         integer i, n
         real x(8), y(8)
         n = 8
         do i = 1, n
           y(i) = i * 1.0
         enddo
         do 20 i = 1, n
           x(1) = y(i) * 2.0
 20      continue
         print x(1)
         end";
    let mut rep = compiled(src);
    let x = rep.program.symbols.lookup("x").unwrap();
    {
        let v = rep
            .verdicts
            .iter_mut()
            .find(|v| v.label == "T/do20")
            .unwrap();
        assert!(!v.parallel, "honest verdict is sequential: {v:?}");
        v.parallel = true;
        v.tier = DispatchTier::CompileTimeParallel;
        v.strategy_facts = StrategyFacts::DisjointAffine {
            arrays: vec![(x, 0)],
        };
    }
    let hybrid = run_hybrid(&rep, chaos_config()).unwrap();
    assert_sequential_parity("forged-facts", &rep, &hybrid);
    let t = hybrid.telemetry;
    assert_eq!(t.compile_time_parallel, 2, "{t:?}");
    assert_eq!(
        t.fallback_conflict, 1,
        "the downgraded write-log caught the conflict: {t:?}"
    );
    assert_eq!(
        t.strategy_in_place, 1,
        "only the honest init loop committed in place: {t:?}"
    );
    assert_eq!(t.strategy_write_log, 0, "{t:?}");
    assert_eq!(
        t.fallback_strategy, 0,
        "the downgrade is silent, not a violation: {t:?}"
    );
}

#[test]
fn compile_time_parallel_dispatch_also_recovers() {
    // Faults are not a guarded-tier privilege: a compile-time-parallel
    // dispatch that fails at runtime falls back the same way.
    let src = "program t
         integer i, n
         real x(100), y(100)
         n = 100
         do i = 1, n
           y(i) = 1.0
         enddo
         do i = 1, n
           x(i) = y(i) * 2.0
         enddo
         print x(1)
         end";
    let rep = compiled(src);
    let plan = FaultPlan::scripted([
        (0, FaultKind::ForgeConflict),
        (1, FaultKind::PanicWorker { worker: 2 }),
    ]);
    let (hybrid, plan) = run_hybrid_with_faults(&rep, chaos_config(), plan).unwrap();
    assert_sequential_parity("ct-parallel", &rep, &hybrid);
    let t = hybrid.telemetry;
    assert_eq!(t.fallback_conflict, 1, "{t:?}");
    assert_eq!(t.fallback_panic, 1, "{t:?}");
    assert_eq!(t.quarantine_poisonings, 2, "{t:?}");
    assert_eq!(plan.fired().len(), 2);
}

// ---- edge cases: zero-trip, single iteration, nesting, tracing ----

#[test]
fn zero_trip_dispatch_consumes_no_fault_site() {
    // `m = mod(n, 2) = 0`: the guarded loop is zero-trip. No workers
    // spawn, so no fault can fire — the site is not consumed and the
    // scripted fault stays idle.
    let src = "program t
         integer i, n, m, p(8)
         real z(8), x(8)
         n = 8
         m = mod(n, 2)
         do i = 1, n
           p(i) = mod(i * 3, n) + 1
           x(i) = i * 1.0
           z(i) = 0.0
         enddo
         do 20 i = 1, m
           z(p(i)) = x(i) * 2.0
 20      continue
         print z(1), i
         end";
    let rep = compiled(src);
    // Site 1 would be the zero-trip loop if it consumed a site — the
    // scripted fault must stay idle.
    let plan = FaultPlan::scripted([(1, FaultKind::ForgeConflict)]);
    let (hybrid, plan) = run_hybrid_with_faults(&rep, chaos_config(), plan).unwrap();
    assert_sequential_parity("zero-trip", &rep, &hybrid);
    assert_eq!(hybrid.telemetry.fallbacks(), 0, "{:?}", hybrid.telemetry);
    assert_eq!(
        plan.sites(),
        1,
        "only the init loop consumed a site; the zero-trip dispatch none"
    );
    assert!(plan.fired().is_empty());
}

#[test]
fn single_iteration_loop_survives_every_fault_class() {
    // `m = mod(n, 7) = 1` for n = 8: the guarded loop runs exactly one
    // iteration in one chunk; worker indices reduce modulo 1.
    let src = "program t
         integer i, n, m, p(8)
         real z(8), x(8)
         n = 8
         m = mod(n, 7)
         do i = 1, n
           p(i) = mod(i * 3, n) + 1
           x(i) = i * 1.0
           z(i) = 0.0
         enddo
         do 20 i = 1, m
           z(p(i)) = x(i) * 2.0
 20      continue
         print z(1), i
         end";
    let rep = compiled(src);
    let faults = [
        FaultKind::ForgeConflict,
        FaultKind::PanicWorker { worker: 5 },
        FaultKind::StallWorker {
            worker: 2,
            stall_ms: STALL_MS,
        },
    ];
    for kind in faults {
        let plan = FaultPlan::scripted([(1, kind)]);
        let (hybrid, plan) = run_hybrid_with_faults(&rep, watchdog_config(), plan).unwrap();
        assert_sequential_parity(kind.name(), &rep, &hybrid);
        assert_eq!(
            hybrid.telemetry.fallbacks(),
            1,
            "{}: {:?}",
            kind.name(),
            hybrid.telemetry
        );
        assert_eq!(plan.fired_count(kind.name()), 1);
    }
}

#[test]
fn nested_fallback_quarantines_then_retries_after_budget() {
    // The guarded inner loop is entered five times by the outer loop
    // (sites 1..; site 0 is the init loop). Entry 2 (site 2) is forged
    // into a conflict: the schedule is poisoned with a 2-entry budget,
    // entries 3 and 4 are pinned sequential, and entry 5 re-inspects
    // from scratch and goes parallel again.
    let rep = compiled(REENTRANT_SRC);
    let config = HybridConfig {
        quarantine_retries: 2,
        ..chaos_config()
    };
    let plan = FaultPlan::scripted([(2, FaultKind::ForgeConflict)]);
    let (hybrid, plan) = run_hybrid_with_faults(&rep, config, plan).unwrap();
    assert_sequential_parity("nested", &rep, &hybrid);
    let t = hybrid.telemetry;
    assert_eq!(t.fallback_conflict, 1, "{t:?}");
    assert_eq!(t.quarantine_poisonings, 1, "{t:?}");
    assert_eq!(t.quarantined, 2, "budget pins exactly 2 entries: {t:?}");
    assert_eq!(t.guarded_parallel, 3, "entries 1, 2, and 5: {t:?}");
    assert_eq!(t.inspections_run, 2, "initial + post-quarantine: {t:?}");
    assert_eq!(plan.sites(), 4, "quarantined entries consume no site");
    assert_eq!(plan.fired_count("forge-conflict"), 1);
}

#[test]
fn zero_retry_budget_drops_the_schedule_immediately() {
    // With a zero budget nothing is pinned: the failed schedule is
    // evicted from the cache and the very next entry re-inspects.
    let rep = compiled(REENTRANT_SRC);
    let config = HybridConfig {
        quarantine_retries: 0,
        ..chaos_config()
    };
    let plan = FaultPlan::scripted([(2, FaultKind::ForgeConflict)]);
    let (hybrid, _) = run_hybrid_with_faults(&rep, config, plan).unwrap();
    assert_sequential_parity("zero-budget", &rep, &hybrid);
    let t = hybrid.telemetry;
    assert_eq!(t.quarantined, 0, "{t:?}");
    assert_eq!(t.guarded_parallel, 5, "every entry dispatches: {t:?}");
    assert_eq!(t.inspections_run, 2, "failure forces re-inspection: {t:?}");
}

/// Counts the interpreter's loop events for one traced loop.
#[derive(Default)]
struct IterCounter {
    enters: usize,
    iters: Vec<i64>,
    exits: usize,
}

struct IterRecorder(std::rc::Rc<std::cell::RefCell<IterCounter>>);

impl irr_exec::trace::AccessTracer for IterRecorder {
    fn loop_enter(&mut self, _: &Store, _: irr_frontend::StmtId, _: i64, _: i64, _: i64) {
        self.0.borrow_mut().enters += 1;
    }
    fn loop_iter(&mut self, _: irr_frontend::StmtId, iter: i64) {
        self.0.borrow_mut().iters.push(iter);
    }
    fn loop_exit(&mut self, _: irr_frontend::StmtId) {
        self.0.borrow_mut().exits += 1;
    }
    fn read_element(&mut self, _: irr_frontend::VarId, _: usize) {}
    fn write_element(&mut self, _: irr_frontend::VarId, _: usize) {}
    fn read_scalar(&mut self, _: irr_frontend::VarId) {}
    fn write_scalar(&mut self, _: irr_frontend::VarId) {}
}

#[test]
fn fallback_under_tracer_records_the_sequential_re_execution() {
    let rep = compiled(GUARDED_SRC);
    let target = rep.verdict("T/do20").unwrap().loop_stmt;

    // Successful parallel dispatch: the loop is not traced (the
    // sanitizer audits sequential semantics only).
    let counts = std::rc::Rc::new(std::cell::RefCell::new(IterCounter::default()));
    let mut it = Interp::new(&rep.program);
    it.attach_tracer(
        TraceConfig::only([target]),
        Box::new(IterRecorder(counts.clone())),
    );
    let mut d = HybridDispatcher::new(&rep, chaos_config());
    it.run_dispatched(&mut d).unwrap();
    assert_eq!(d.telemetry.guarded_parallel, 1);
    assert_eq!(counts.borrow().iters.len(), 0, "parallel runs are untraced");

    // Forged failure: the fallback re-executes sequentially, and the
    // trace must contain the full iteration stream 1..=8.
    let counts = std::rc::Rc::new(std::cell::RefCell::new(IterCounter::default()));
    let mut it = Interp::new(&rep.program);
    it.attach_tracer(
        TraceConfig::only([target]),
        Box::new(IterRecorder(counts.clone())),
    );
    let mut d = HybridDispatcher::new(&rep, chaos_config());
    d.set_fault_plan(FaultPlan::scripted([(1, FaultKind::ForgeConflict)]));
    it.run_dispatched(&mut d).unwrap();
    assert_eq!(d.telemetry.fallback_conflict, 1, "{:?}", d.telemetry);
    let c = counts.borrow();
    assert_eq!(c.enters, 1);
    assert_eq!(c.exits, 1);
    assert_eq!(c.iters, (1..=8).collect::<Vec<i64>>());
}

// ---- randomized sweep over the benchmark suite and paper figures ----

#[test]
fn randomized_chaos_sweep_preserves_sequential_semantics() {
    let mut targets: Vec<(String, String)> = all(Scale::Test)
        .into_iter()
        .map(|b| (b.name.to_string(), b.source))
        .collect();
    targets.extend(
        figures()
            .into_iter()
            .map(|f| (f.name.to_string(), f.source.to_string())),
    );
    let config = HybridConfig {
        quarantine_retries: 1,
        ..watchdog_config()
    };
    for (name, src) in &targets {
        let rep = compiled(src);
        for seed in 1..=3u64 {
            // 40% of dispatch sites draw a fault; stalls sleep past the
            // watchdog deadline.
            let plan = FaultPlan::randomized(seed, 400, STALL_MS);
            let (hybrid, plan) = run_hybrid_with_faults(&rep, config, plan).unwrap();
            let label = format!("{name} seed {seed}");
            assert_sequential_parity(&label, &rep, &hybrid);
            let t = hybrid.telemetry;
            // Attribution: every fired fault of a deterministic class
            // shows up under its reason code. Only an inspector lie may
            // produce no fallback (when the schedule happened to be
            // conflict-free anyway).
            let forged = plan.fired_count("forge-conflict") as u64;
            let lied = plan.fired_count("lie-inspector") as u64;
            assert_eq!(
                t.fallback_panic,
                plan.fired_count("panic-worker") as u64,
                "{label}: {t:?}"
            );
            // `>=`, not `==`: with the watchdog armed, an honest worker
            // the OS deschedules past the deadline under load is a
            // legitimate extra timeout fallback (still sequential-exact).
            assert!(
                t.fallback_timeout >= plan.fired_count("stall-worker") as u64,
                "{label}: {t:?}"
            );
            assert!(
                t.fallback_conflict >= forged && t.fallback_conflict <= forged + lied,
                "{label}: conflicts {} outside [{}, {}]: {t:?}",
                t.fallback_conflict,
                forged,
                forged + lied
            );
            assert_eq!(t.fallback_shape, 0, "{label}: {t:?}");
        }
    }
}

#[test]
fn same_seed_replays_identical_fault_schedule() {
    let rep = compiled(REENTRANT_SRC);
    let run = |seed| {
        let plan = FaultPlan::randomized(seed, 500, STALL_MS);
        let (hybrid, plan) = run_hybrid_with_faults(&rep, chaos_config(), plan).unwrap();
        (hybrid.telemetry, plan.fired().to_vec())
    };
    let (t1, fired1) = run(7);
    let (t2, fired2) = run(7);
    assert_eq!(t1, t2);
    assert_eq!(fired1, fired2);
}

#[test]
fn sanitizer_audit_stays_clean_on_chaos_targets() {
    // The dependence sanitizer audits the *sequential* semantics every
    // fallback must reproduce. It must stay clean on exactly the
    // programs the chaos sweep replays — this is the same invariant
    // `sanitizer-audit --chaos` gates in CI.
    let config = AuditConfig {
        seed: 42,
        inputs: 2,
        mode: AuditMode::Soundness,
    };
    for b in all(Scale::Test) {
        let rep = compiled(&b.source);
        let audit = audit_report(&rep, &config);
        assert_eq!(audit.violations(), 0, "{}: {:?}", b.name, audit.findings);
    }
}
