//! Property-based soundness tests (deterministic, offline).
//!
//! Two invariants over *randomly generated* programs:
//!
//! 1. **Pass soundness** — the Fig. 15 scalar pipeline preserves
//!    observable behavior: interpreting the transformed program prints
//!    exactly what the original prints.
//! 2. **Parallelization soundness** — every loop the driver declares
//!    parallel really is: executing it in 4 thread-chunks (with the
//!    verdict's privatized variables and reductions) produces exactly
//!    the sequential store, with no write conflicts.
//!
//! The generator is deliberately adversarial for these analyses: it
//! mixes regular sweeps, shifted accesses, consecutively-written fills,
//! conditional gather loops, indirect uses, scalar temporaries, and
//! reductions. Cases are drawn from an in-tree [`SplitMix64`] stream so
//! the suite is reproducible without a property-testing framework.

use irr_driver::{compile_source, DriverOptions, ReductionOp};
use irr_exec::{run_loop_parallel, Interp, ParallelPlan, ReduceOp, SplitMix64, Value};
use irr_frontend::VarId;

/// Maps the driver's recognized reduction operators onto the executor's
/// merge operators (products are not chunk-mergeable; none are generated
/// here).
fn map_reductions(rs: &[(VarId, ReductionOp)]) -> Vec<(VarId, ReduceOp)> {
    rs.iter()
        .filter_map(|(v, op)| {
            let op = match op {
                ReductionOp::Sum => ReduceOp::Sum,
                ReductionOp::Min => ReduceOp::Min,
                ReductionOp::Max => ReduceOp::Max,
                ReductionOp::Product => return None,
            };
            Some((*v, op))
        })
        .collect()
}
use irr_frontend::StmtKind;

/// One candidate loop-body shape for the generated outer loop.
#[derive(Clone, Copy, Debug)]
enum BodyShape {
    /// a(i) = b(i) * k + i
    Regular,
    /// a(i) = a(i+1) + 1 (carried!)
    ShiftedRead,
    /// a(1) = i (carried output dependence, observable)
    ConstantTarget,
    /// fill tmp(1..m) then read tmp(j)
    ScratchFill,
    /// conditional gather into idx via q, then z(idx(k)) use
    GatherUse,
    /// s = s + a(i)
    Reduction,
    /// s = max(s, a(i)) — exercises the min/max reduction merge.
    MaxReduction,
    /// t = a(i); b(i) = t * 2 (privatizable scalar)
    ScalarTemp,
    /// q = q + 1; a(q) = i (consecutively written)
    ConsecutiveFill,
}

const ALL_SHAPES: [BodyShape; 9] = [
    BodyShape::Regular,
    BodyShape::ShiftedRead,
    BodyShape::ConstantTarget,
    BodyShape::ScratchFill,
    BodyShape::GatherUse,
    BodyShape::Reduction,
    BodyShape::MaxReduction,
    BodyShape::ScalarTemp,
    BodyShape::ConsecutiveFill,
];

/// Draws 1–3 body shapes from the random stream.
fn draw_shapes(rng: &mut SplitMix64) -> Vec<BodyShape> {
    let count = rng.range_usize(1, 3);
    (0..count).map(|_| *rng.choose(&ALL_SHAPES)).collect()
}

/// Generates a whole program from a list of loop shapes.
fn render_program(shapes: &[BodyShape], n: usize, seed: i64) -> String {
    let mut loops = String::new();
    for (k, shape) in shapes.iter().enumerate() {
        let label = 100 + 10 * k;
        let body = match shape {
            BodyShape::Regular => format!(
                "  do {label} i = 1, {n}\n    a(i) = b(i) * 2.0 + i\n {label} continue\n"
            ),
            BodyShape::ShiftedRead => format!(
                "  do {label} i = 1, {nm}\n    a(i) = a(i + 1) + 1.0\n {label} continue\n",
                nm = n - 1
            ),
            BodyShape::ConstantTarget => format!(
                "  do {label} i = 1, {n}\n    a(1) = a(1) + i\n {label} continue\n"
            ),
            BodyShape::ScratchFill => format!(
                "  do {label} i = 1, {n}\n    do j = 1, 8\n      tmp(j) = b(i) + j\n    enddo\n    c(i) = tmp(1) + tmp(8)\n {label} continue\n"
            ),
            BodyShape::GatherUse => format!(
                "  q = 0\n  do {label} i = 1, {n}\n    if (b(i) > 0.5) then\n      q = q + 1\n      idx(q) = i\n    endif\n {label} continue\n  do k = 1, q\n    z(idx(k)) = b(idx(k)) * 3.0\n  enddo\n"
            ),
            BodyShape::Reduction => format!(
                "  do {label} i = 1, {n}\n    s = s + b(i)\n {label} continue\n"
            ),
            BodyShape::MaxReduction => format!(
                "  do {label} i = 1, {n}\n    s = max(s, b(i) + i * 0.5)\n {label} continue\n"
            ),
            BodyShape::ScalarTemp => format!(
                "  do {label} i = 1, {n}\n    t = b(i) * 0.5\n    c(i) = t + t\n {label} continue\n"
            ),
            BodyShape::ConsecutiveFill => format!(
                "  q = 0\n  do {label} i = 1, {n}\n    q = q + 1\n    a(q) = i * 1.0\n {label} continue\n"
            ),
        };
        loops.push_str(&body);
    }
    format!(
        "program gen
  integer i, j, k, q, n, idx({n})
  real a({n}), b({n}), c({n}), z({n}), tmp(8), s, t
  n = {n}
  call init
{loops}  print s, a(1), a({n}), c(1), z(1)
end

subroutine init
  integer w
  do w = 1, {n}
    b(w) = mod(w * {seed}, 17) * 0.1
    a(w) = mod(w * 3, 5) * 1.0
  enddo
end
"
    )
}

/// Invariant 1: the pass pipeline preserves printed output.
#[test]
fn passes_preserve_semantics() {
    let mut rng = SplitMix64::new(0x5001);
    for _ in 0..48 {
        let shapes = draw_shapes(&mut rng);
        let seed = rng.range_i64(1, 49);
        let src = render_program(&shapes, 24, seed);
        let original = irr_frontend::parse_program(&src).unwrap();
        let before = Interp::new(&original).run().unwrap();
        let rep = compile_source(&src, DriverOptions::with_iaa()).unwrap();
        let after = Interp::new(&rep.program).run().unwrap();
        assert_eq!(before.output, after.output, "output diverged for\n{src}");
    }
}

/// Invariant 2: loops judged parallel execute correctly in chunks.
#[test]
fn parallel_verdicts_are_sound() {
    let mut rng = SplitMix64::new(0x5002);
    for _ in 0..48 {
        let shapes = draw_shapes(&mut rng);
        let seed = rng.range_i64(1, 49);
        let threads = rng.range_usize(2, 4);
        let src = render_program(&shapes, 24, seed);
        let rep = compile_source(&src, DriverOptions::with_iaa()).unwrap();
        let seq = Interp::new(&rep.program).run().unwrap();
        let main = rep.program.main();
        let top_level: Vec<_> = rep.program.procedures[main.index()].body.clone();
        for v in &rep.verdicts {
            if !v.parallel || !top_level.contains(&v.loop_stmt) {
                continue;
            }
            if !matches!(rep.program.stmt(v.loop_stmt).kind, StmtKind::Do { .. }) {
                continue;
            }
            let plan = ParallelPlan {
                threads,
                privatized: v
                    .privatized_scalars
                    .iter()
                    .copied()
                    .chain(v.privatized_arrays.iter().map(|(a, _)| *a))
                    .collect(),
                reductions: map_reductions(&v.reductions),
                ..ParallelPlan::default()
            };
            let par = run_loop_parallel(&rep.program, v.loop_stmt, &plan)
                .unwrap_or_else(|e| panic!("{}: {e}\n{src}", v.label));
            // Compare non-privatized state. Reductions compare with a
            // floating-point tolerance (chunked summation reassociates).
            for (vid, info) in rep.program.symbols.iter() {
                if plan.privatized.contains(&vid) {
                    continue;
                }
                if info.is_array() {
                    let a = seq.store.array_as_reals(vid);
                    let b = par.array_as_reals(vid);
                    assert_eq!(a, b, "array {} differs\n{}", info.name, src);
                } else if plan.reductions.iter().any(|(r, _)| *r == vid) {
                    let (x, y) = (seq.store.scalar(vid).as_real(), par.scalar(vid).as_real());
                    assert!(
                        (x - y).abs() <= 1e-9 * (1.0 + x.abs()),
                        "reduction {} differs: {x} vs {y}",
                        info.name
                    );
                } else {
                    // The loop variable's final value is restored by the
                    // executor; everything else must match exactly.
                    let (x, y) = (seq.store.scalar(vid), par.scalar(vid));
                    let same = match (x, y) {
                        (Value::Int(p), Value::Int(r)) => p == r,
                        (p, r) => p.as_real() == r.as_real(),
                    };
                    assert!(same, "scalar {} differs: {x:?} vs {y:?}\n{src}", info.name);
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Adversarial audits: the dependence sanitizer cross-checks verdicts on
// programs built to stress the exact seams where static reasoning and
// dynamic behavior can disagree.
// ---------------------------------------------------------------------

use irr_driver::DispatchTier;
use irr_exec::TraceConfig;
use irr_sanitizer::{audit_report, AuditConfig, AuditMode, DepKind, DependenceTracer, FindingKind};

fn audit_cfg() -> AuditConfig {
    AuditConfig {
        seed: 0x5A11,
        inputs: 4,
        mode: AuditMode::Full,
    }
}

/// Stack discipline broken by popping below the iteration's own bottom:
/// iteration `i` pops past its own pushes into an element iteration
/// `i - 1` pushed — a real carried flow dependence. The verdict must be
/// sequential, the tracer must exhibit the dependence, and the audit
/// must report neither a violation nor a precision gap.
#[test]
fn stack_pop_below_bottom_is_carried_and_stays_serial() {
    let src = "program t
         integer i, p, n
         real stk(64), out(64)
         n = 16
         p = 0
         do 100 i = 1, n
           p = p + 1
           stk(p) = i * 1.0
           out(i) = stk(p)
           if (p >= 2) then
             p = p - 1
             out(i) = out(i) + stk(p)
           endif
 100     continue
         print out(1), out(16)
         end";
    let rep = compile_source(src, DriverOptions::with_iaa()).unwrap();
    let v = rep.verdict("T/do100").expect("verdict exists");
    assert!(!v.parallel, "pop-below-bottom must stay serial: {v:?}");
    assert!(matches!(v.tier, DispatchTier::Sequential), "{v:?}");
    // The dynamic run really exhibits the carried flow dependence on the
    // stack array.
    let (tracer, handle) = DependenceTracer::from_report(&rep);
    let mut it = Interp::new(&rep.program);
    it.attach_tracer(TraceConfig::only([v.loop_stmt]), Box::new(tracer));
    it.run().unwrap();
    let log = handle.borrow().clone();
    let stk = rep.program.symbols.lookup("stk").unwrap();
    let ex = &log.executions_of(v.loop_stmt)[0];
    let w = ex
        .dep_on(stk, DepKind::Flow)
        .expect("carried flow dependence on stk observed");
    assert_eq!(w.distance(), 1, "{w:?}");
    // And the audit agrees with the verdict: no finding of either kind.
    let audit = audit_report(&rep, &audit_cfg());
    assert!(audit.is_sound(), "{:?}", audit.findings);
    assert!(
        !audit.findings.iter().any(|f| f.label == "T/do100"),
        "{:?}",
        audit.findings
    );
}

/// A runtime-guarded loop whose index array is smashed *through a
/// procedure call* between two dynamic executions: the guard must be
/// replayed at each entry, pass on the injective first execution, fail
/// on the corrupted second — and because the dependent execution was
/// never cleared, the audit stays sound.
#[test]
fn index_array_mutated_through_call_between_executions() {
    // `smash` is padded past the inlining threshold (dead statements
    // behind `r < 0`) so the call — and the mutation it hides from the
    // analysis — survives the pass pipeline.
    let mut filler = String::new();
    for k in 0..60 {
        filler.push_str(&format!("  dummy({}) = {k}\n", k + 1));
    }
    let src = format!(
        "program t
         integer i, r, n, p(8), dummy(64)
         real z(8), x(8)
         n = 8
         do i = 1, n
           p(i) = mod(i * 3, n) + 1
           x(i) = i * 1.0
         enddo
         do 50 r = 1, 2
           do 20 i = 1, n
             z(p(i)) = x(i) + r
 20        continue
           call smash
 50      continue
         print z(1), z(8)
         end
         subroutine smash
           p(2) = p(1)
           if (r < 0) then
{filler}           endif
         end"
    );
    let rep = compile_source(&src, DriverOptions::with_iaa()).unwrap();
    let v = rep.verdict("T/do20").expect("verdict exists");
    assert!(
        matches!(v.tier, DispatchTier::RuntimeGuarded(_)),
        "inner loop must be runtime-guarded: {v:?}"
    );
    let (tracer, handle) = DependenceTracer::from_report(&rep);
    let mut it = Interp::new(&rep.program);
    it.attach_tracer(TraceConfig::only([v.loop_stmt]), Box::new(tracer));
    it.run().unwrap();
    let log = handle.borrow().clone();
    let execs = log.executions_of(v.loop_stmt);
    assert_eq!(execs.len(), 2);
    // Execution 1: p is a mod-permutation, guard passes, no dependence.
    assert_eq!(execs[0].guard_passed, Some(true));
    assert!(!execs[0].has_deps(), "{:?}", execs[0]);
    // Execution 2: the call collapsed p(2) onto p(1); the replayed guard
    // fails, and the run exhibits the output dependence on z the guard
    // protected against.
    assert_eq!(execs[1].guard_passed, Some(false));
    let z = rep.program.symbols.lookup("z").unwrap();
    assert!(
        execs[1].dep_on(z, DepKind::Output).is_some(),
        "{:?}",
        execs[1]
    );
    // The audit holds the loop to the parallel standard only on the
    // execution the guard cleared — which was dependence-free.
    let audit = audit_report(&rep, &audit_cfg());
    assert!(audit.is_sound(), "{:?}", audit.findings);
}

/// A zero-trip loop under tracing: enters and exits without iterations,
/// exhibits nothing, and is neither a violation nor flagged as a
/// precision gap (a dependence never had a chance to manifest).
#[test]
fn zero_trip_loop_under_tracing_is_silent() {
    let src = "program t
         integer i, n
         real x(8)
         n = 0
         do 10 i = 1, n
           x(1) = x(1) + i
 10      continue
         print x(1)
         end";
    let rep = compile_source(src, DriverOptions::with_iaa()).unwrap();
    let v = rep.verdict("T/do10").expect("verdict exists");
    let (tracer, handle) = DependenceTracer::from_report(&rep);
    let mut it = Interp::new(&rep.program);
    it.attach_tracer(TraceConfig::only([v.loop_stmt]), Box::new(tracer));
    it.run().unwrap();
    let log = handle.borrow().clone();
    let execs = log.executions_of(v.loop_stmt);
    assert_eq!(execs.len(), 1);
    assert_eq!(execs[0].iterations, 0);
    assert!(!execs[0].has_deps());
    let audit = audit_report(&rep, &audit_cfg());
    assert!(audit.findings.is_empty(), "{:?}", audit.findings);
}

/// A deliberately broken verdict — a dependent loop promoted to
/// `CompileTimeParallel` by hand — is caught by the auditor with a
/// concrete, minimized witness naming the array, element, and the
/// writer/reader iterations.
#[test]
fn injected_broken_verdict_is_caught() {
    let src = "program t
         integer i, n
         real x(32)
         n = 32
         do 10 i = 2, n
           x(i) = x(i - 1) * 1.5 + 1.0
 10      continue
         print x(32)
         end";
    let mut rep = compile_source(src, DriverOptions::with_iaa()).unwrap();
    let v = rep
        .verdicts
        .iter_mut()
        .find(|v| v.label == "T/do10")
        .expect("verdict exists");
    assert!(!v.parallel, "the loop really is dependent");
    v.parallel = true;
    v.tier = DispatchTier::CompileTimeParallel;
    let audit = audit_report(&rep, &audit_cfg());
    assert_eq!(audit.violations(), 1, "{:?}", audit.findings);
    let f = &audit.findings[0];
    assert_eq!(f.kind, FindingKind::SoundnessViolation);
    assert_eq!(f.label, "T/do10");
    let w = f.witness.expect("concrete witness");
    let x = rep.program.symbols.lookup("x").unwrap();
    assert_eq!(w.var, x);
    assert_eq!(w.kind, DepKind::Flow);
    assert_eq!(w.distance(), 1, "witness is minimized: {w:?}");
    assert!(w.element.is_some());
    assert!(f.detail.contains("T/do10"), "{}", f.detail);
}

/// The analyses never claim independence for the loops the generator
/// makes deliberately dependent.
#[test]
fn dependent_shapes_stay_serial() {
    for seed in 1i64..50 {
        for shape in [BodyShape::ShiftedRead, BodyShape::ConstantTarget] {
            let src = render_program(std::slice::from_ref(&shape), 24, seed);
            let rep = compile_source(&src, DriverOptions::with_iaa()).unwrap();
            for v in &rep.verdicts {
                if v.label.starts_with("GEN/do1") {
                    assert!(!v.parallel, "{:?} must stay serial ({shape:?})", v.label);
                }
            }
        }
    }
}
