//! End-to-end acceptance tests for the hybrid inspector–executor
//! runtime: a loop the compile-time solver cannot prove independent is
//! parallelized through a run-time guard, the versioned schedule cache
//! amortizes inspections across executions, and writes to the index
//! array force exactly one re-inspection.

use irr_driver::{compile_source, DispatchTier, DriverOptions, ResidualCheck};
use irr_exec::{inspect_bounded, inspect_injective, inspect_offset_length, Inspection, Interp};
use irr_runtime::{run_hybrid, HybridConfig};

/// The flagship scenario: `p(i) = mod(i*3, n) + 1` is a permutation of
/// `1..=n` for `n = 8` (since `gcd(3, 8) = 1`) — a fact the static
/// injectivity checkers cannot derive. The guarded loop executes four
/// times inside the `r` loop; on the fourth pass the program first
/// overwrites `p(1)`, making `p` non-injective.
const HYBRID_SRC: &str = "program t
     integer i, r, n, p(8)
     real z(8), x(8)
     n = 8
     do i = 1, n
       p(i) = mod(i * 3, n) + 1
       x(i) = i * 1.0
     enddo
     do r = 1, 4
       if (r == 4) then
         p(1) = 1
       endif
       do 20 i = 1, n
         z(p(i)) = x(i) + r
 20    continue
     enddo
     print z(1), z(2), z(8)
     end";

#[test]
fn unknown_injectivity_is_guarded_not_parallel() {
    let rep = compile_source(HYBRID_SRC, DriverOptions::with_iaa()).unwrap();
    let v = rep.verdict("T/do20").expect("verdict for the guarded loop");
    assert!(
        !v.parallel,
        "the solver must not prove the mod-permutation injective: {v:?}"
    );
    let DispatchTier::RuntimeGuarded(guard) = &v.tier else {
        panic!("expected a runtime guard, got {:?}", v.tier);
    };
    let program = &rep.program;
    let p = program.symbols.lookup("p").unwrap();
    assert_eq!(
        guard.groups,
        vec![vec![ResidualCheck::Injective { array: p }]]
    );
    // The verdict's blockers name the missing fact, not just "maybe".
    assert!(
        v.blockers.iter().any(|b| b.contains("runtime-checkable")),
        "{:?}",
        v.blockers
    );
}

#[test]
fn schedule_cache_amortizes_inspections_and_invalidates_on_write() {
    let rep = compile_source(HYBRID_SRC, DriverOptions::with_iaa()).unwrap();
    let seq = Interp::new(&rep.program).run().unwrap();
    let hybrid = run_hybrid(&rep, HybridConfig::default()).unwrap();
    // Semantics preserved (the 4th, non-injective pass runs sequentially).
    assert_eq!(hybrid.outcome.output, seq.output);
    let t = hybrid.telemetry;
    // Four dynamic entries: inspect once, reuse twice, re-inspect once
    // after the single store to `p`.
    assert_eq!(t.inspections_run, 2, "{t:?}");
    assert_eq!(t.cache_hits, 2, "{t:?}");
    assert_eq!(t.cache_invalidations, 1, "{t:?}");
    assert_eq!(t.guarded_parallel, 3, "{t:?}");
    assert_eq!(t.guarded_sequential, 1, "{t:?}");
}

#[test]
fn without_cache_every_entry_pays_the_inspector() {
    let rep = compile_source(HYBRID_SRC, DriverOptions::with_iaa()).unwrap();
    let hybrid = run_hybrid(
        &rep,
        HybridConfig {
            cache_schedules: false,
            ..HybridConfig::default()
        },
    )
    .unwrap();
    let t = hybrid.telemetry;
    assert_eq!(t.inspections_run, 4, "{t:?}");
    assert_eq!(t.cache_hits, 0, "{t:?}");
}

#[test]
fn guarded_zero_trip_loop_is_vacuously_parallel() {
    // The guarded loop's bound is 0 at run time but opaque to the solver
    // (`mod` is uninterpreted symbolically, so it cannot prove the
    // section `[1:m]` empty): the loop stays guarded, the inspection
    // section is empty at run time, the guard passes vacuously, and the
    // zero-trip parallel path preserves sequential semantics (induction
    // var left at lo).
    let src = "program t
         integer i, n, m, p(8)
         real z(8), x(8)
         n = 8
         m = mod(n, 2)
         do i = 1, n
           p(i) = mod(i * 3, n) + 1
           x(i) = i * 1.0
           z(i) = 0.0
         enddo
         do 20 i = 1, m
           z(p(i)) = x(i) * 2.0
 20      continue
         print z(1), i
         end";
    let rep = compile_source(src, DriverOptions::with_iaa()).unwrap();
    let v = rep.verdict("T/do20").unwrap();
    assert!(matches!(v.tier, DispatchTier::RuntimeGuarded(_)), "{v:?}");
    let seq = Interp::new(&rep.program).run().unwrap();
    let hybrid = run_hybrid(&rep, HybridConfig::default()).unwrap();
    assert_eq!(hybrid.outcome.output, seq.output);
    assert_eq!(
        hybrid.telemetry.guarded_parallel, 1,
        "{:?}",
        hybrid.telemetry
    );
}

#[test]
fn mutation_can_also_clear_a_previously_failing_guard() {
    // First entry: p collides (mod 4) -> sequential fallback. The fix-up
    // pass rewrites p into a permutation; second entry re-inspects (the
    // version moved) and dispatches parallel.
    let src = "program t
         integer i, r, n, p(8)
         real z(8), x(8)
         n = 8
         do i = 1, n
           p(i) = mod(i, 4) + 1
           x(i) = i * 1.0
         enddo
         do r = 1, 2
           do 20 i = 1, n
             z(p(i)) = x(i) + r
 20        continue
           if (r == 1) then
             do i = 1, n
               p(i) = i
             enddo
           endif
         enddo
         print z(1), z(8)
         end";
    let rep = compile_source(src, DriverOptions::with_iaa()).unwrap();
    let seq = Interp::new(&rep.program).run().unwrap();
    let hybrid = run_hybrid(&rep, HybridConfig::default()).unwrap();
    assert_eq!(hybrid.outcome.output, seq.output);
    let t = hybrid.telemetry;
    assert_eq!(t.guarded_sequential, 1, "{t:?}");
    assert_eq!(t.guarded_parallel, 1, "{t:?}");
    assert_eq!(t.inspections_run, 2, "{t:?}");
    assert_eq!(t.cache_invalidations, 1, "{t:?}");
}

#[test]
fn hybrid_store_and_stats_match_sequential_end_to_end() {
    // The write-log executor must leave the hybrid run observably
    // identical to the sequential run: final store, loop statistics,
    // and total statement cost — the workers' accounting is aggregated,
    // not dropped, and the O(writes) merge reconstructs the exact
    // sequential store from the chunks' write logs.
    let rep = compile_source(HYBRID_SRC, DriverOptions::with_iaa()).unwrap();
    let seq = Interp::new(&rep.program).run().unwrap();
    let hybrid = run_hybrid(&rep, HybridConfig::default()).unwrap();
    assert!(
        hybrid.telemetry.guarded_parallel > 0,
        "{:?}",
        hybrid.telemetry
    );
    assert_eq!(hybrid.outcome.store, seq.store);
    assert_eq!(hybrid.outcome.stats.total_cost, seq.stats.total_cost);
    for (stmt, seq_stats) in &seq.stats.loops {
        let par_stats = hybrid
            .outcome
            .stats
            .loops
            .get(stmt)
            .unwrap_or_else(|| panic!("loop stats dropped for {stmt:?}"));
        assert_eq!(par_stats.invocations, seq_stats.invocations, "{stmt:?}");
        assert_eq!(par_stats.total_cost, seq_stats.total_cost, "{stmt:?}");
    }
}

// ---- inspector edge cases (empty / unmaterialized / out-of-bounds) ----

fn empty_store() -> (irr_frontend::Program, irr_exec::Store) {
    let p = irr_frontend::parse_program(
        "program t
         integer idx(10), ptr(11), len(10)
         end",
    )
    .unwrap();
    let out = Interp::new(&p).run().unwrap();
    (p, out.store)
}

#[test]
fn empty_sections_are_parallel_ok_in_all_inspectors() {
    // hi < lo is vacuously fine even when the arrays were never
    // materialized: a zero-trip loop reads nothing.
    let (p, store) = empty_store();
    let idx = p.symbols.lookup("idx").unwrap();
    let ptr = p.symbols.lookup("ptr").unwrap();
    let len = p.symbols.lookup("len").unwrap();
    assert_eq!(inspect_injective(&store, idx, 5, 4), Inspection::ParallelOk);
    assert_eq!(inspect_injective(&store, idx, 1, 0), Inspection::ParallelOk);
    assert_eq!(
        inspect_bounded(&store, idx, 5, 4, 0, 0),
        Inspection::ParallelOk
    );
    assert_eq!(
        inspect_offset_length(&store, ptr, len, 5, 4),
        Inspection::ParallelOk
    );
}

#[test]
fn unmaterialized_arrays_fail_nonempty_inspections() {
    let (p, store) = empty_store();
    let idx = p.symbols.lookup("idx").unwrap();
    let ptr = p.symbols.lookup("ptr").unwrap();
    let len = p.symbols.lookup("len").unwrap();
    assert_eq!(inspect_injective(&store, idx, 1, 3), Inspection::Sequential);
    assert_eq!(
        inspect_bounded(&store, idx, 1, 3, 0, 100),
        Inspection::Sequential
    );
    assert_eq!(
        inspect_offset_length(&store, ptr, len, 1, 3),
        Inspection::Sequential
    );
}

#[test]
fn out_of_bounds_sections_fail_inspections() {
    let p = irr_frontend::parse_program(
        "program t
         integer idx(10), i
         do i = 1, 10
           idx(i) = i
         enddo
         end",
    )
    .unwrap();
    let store = Interp::new(&p).run().unwrap().store;
    let idx = p.symbols.lookup("idx").unwrap();
    assert_eq!(inspect_injective(&store, idx, 0, 5), Inspection::Sequential);
    assert_eq!(
        inspect_injective(&store, idx, 1, 11),
        Inspection::Sequential
    );
    assert_eq!(
        inspect_bounded(&store, idx, 1, 11, 1, 10),
        Inspection::Sequential
    );
}

#[test]
fn store_versions_track_writes_not_reads() {
    let p = irr_frontend::parse_program(
        "program t
         integer idx(10), i
         real s
         do i = 1, 10
           idx(i) = i
         enddo
         s = idx(3) * 1.0
         print s
         end",
    )
    .unwrap();
    let idx = p.symbols.lookup("idx").unwrap();
    let out = Interp::new(&p).run().unwrap();
    let v0 = out.store.array_version(idx);
    assert!(v0 > 0, "writes must bump the version");
    // Reads (the `s = idx(3)` line already ran) leave no further trace:
    // re-running an identical program yields the same version.
    let out2 = Interp::new(&p).run().unwrap();
    assert_eq!(out2.store.array_version(idx), v0);
}
