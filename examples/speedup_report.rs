//! A miniature Fig. 16: compile the five benchmark kernels under the
//! three compiler configurations, profile them, and print simulated
//! speedups (small `Test`-scale inputs; `cargo run --release -p
//! irr-bench --bin fig16` produces the full-scale figure).
//!
//! ```sh
//! cargo run --release --example speedup_report
//! ```

use irr_bench::{profile_run, speedup_curve, Config};
use irr_repro::exec::MachineModel;
use irr_repro::programs::{all, Scale};

fn main() {
    let origin = MachineModel::origin2000();
    let procs = [1usize, 4, 16];
    println!(
        "{:<8} {:<12} {:>8} {:>8} {:>8}   parallel coverage",
        "program", "config", "P=1", "P=4", "P=16"
    );
    for b in all(Scale::Test) {
        for config in Config::all() {
            let run = profile_run(&b.source, config);
            let curve = speedup_curve(&run, &origin, &procs);
            println!(
                "{:<8} {:<12} {:>8.2} {:>8.2} {:>8.2}   {:.0}%",
                b.name,
                config.label(),
                curve[0],
                curve[1],
                curve[2],
                run.profile.parallel_coverage() * 100.0
            );
        }
        println!();
    }
    println!(
        "Shapes to look for (the paper's Fig. 16): the IAA configuration \
         dominates wherever the irregular loops matter; DYFESM's tiny \
         regions make every parallel version slower on the Origin model."
    );
}
