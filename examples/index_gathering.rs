//! The index-gathering pattern of §4 (Fig. 14): collect the indices of
//! interesting elements, then operate through them. The gathered values
//! are provably injective and bounded, enabling both the injective
//! dependence test and the closed-form-bound privatization.
//!
//! ```sh
//! cargo run --example index_gathering
//! ```

use irr_repro::core::property::ArrayPropertyAnalysis;
use irr_repro::core::{AnalysisCtx, Property, PropertyQuery};
use irr_repro::driver::{compile_source, DriverOptions};
use irr_repro::frontend::parse_program;
use irr_repro::symbolic::{Section, SymExpr};

fn main() {
    let source = "
program gather
  integer i, k, q, n, ind(64)
  real x(64), z(64)
  n = 64
  call init
  ! Fig. 14: gather the indices of the positive elements
  q = 0
  do 100 i = 1, n
    if (x(i) > 0) then
      q = q + 1
      ind(q) = i
    endif
 100 continue
  ! use them: z(ind(k)) touches pairwise-distinct elements
  do 200 k = 1, q
    z(ind(k)) = x(ind(k)) * 2.0
 200 continue
  print z(1), z(64)
end

subroutine init
  integer a
  do a = 1, 64
    x(a) = mod(a * 7, 11) - 5.0
  enddo
end
";
    // 1. Ask the property analysis directly (the demand a dependence
    //    test would generate).
    let program = parse_program(source).expect("parses");
    let ctx = AnalysisCtx::new(&program);
    let mut apa = ArrayPropertyAnalysis::new(&ctx);
    let ind = program.symbols.lookup("ind").unwrap();
    let q = program.symbols.lookup("q").unwrap();
    let n = program.symbols.lookup("n").unwrap();
    let gather_loop = program
        .stmts_in(&program.procedures[program.main().index()].body)
        .into_iter()
        .find(|s| program.stmt(*s).kind.is_loop())
        .unwrap();
    let section = Section::range1(SymExpr::int(1), SymExpr::var(q));
    for property in [
        Property::Injective,
        Property::MonotoneNonDecreasing,
        // Bounded by the gathering loop's own bounds [1, n] (§4); the
        // raw program is queried before constant propagation, so the
        // bound is symbolic.
        Property::ClosedFormBound {
            lo: Some(SymExpr::int(1)),
            hi: Some(SymExpr::var(n)),
        },
    ] {
        let verified = apa.check(&PropertyQuery {
            array: ind,
            property: property.clone(),
            section: section.clone(),
            at_stmt: gather_loop,
        });
        println!(
            "ind(1:q) {property}: {}",
            if verified { "VERIFIED" } else { "unknown" }
        );
        assert!(verified);
    }
    println!(
        "(query stats: {} queries, {} solver nodes visited)",
        apa.stats.queries, apa.stats.nodes_visited
    );

    // 2. And through the full driver: do200 parallelizes via the
    //    injective test.
    let rep = compile_source(source, DriverOptions::with_iaa()).expect("parses");
    let v = rep.verdict("GATHER/do200").expect("loop exists");
    println!(
        "\nGATHER/do200 parallel: {} (via {:?})",
        v.parallel, v.independent_arrays
    );
    assert!(v.parallel);
    let without = compile_source(source, DriverOptions::without_iaa()).expect("parses");
    assert!(!without.verdict("GATHER/do200").unwrap().parallel);
    println!("...and serial without the irregular analyses, as expected.");
}
