//! The Compressed Column Storage scenario of Fig. 3 / Fig. 13: a sparse
//! matrix stored segment-by-segment through `offset`/`length` index
//! arrays, traversed by a loop the offset–length dependence test
//! (§3.2.7) proves parallel — then *executed* in parallel threads to
//! confirm the verdict.
//!
//! ```sh
//! cargo run --example sparse_ccs
//! ```

use irr_repro::driver::{compile_source, DriverOptions};
use irr_repro::exec::{run_loop_parallel, Interp, ParallelPlan};

fn main() {
    let source = "
program ccs
  integer i, j, ncol, offset(65), length(64)
  real data(600), colsum(64)
  ncol = 64
  call build
  ! scale every column in place: the offset-length test proves the
  ! segments [offset(i) : offset(i)+length(i)-1] disjoint across i
  do 200 i = 1, ncol
    do j = 1, length(i)
      data(offset(i) + j - 1) = data(offset(i) + j - 1) * 0.5 + 1.0
    enddo
    do j = 1, length(i)
      colsum(i) = colsum(i) + data(offset(i) + j - 1)
    enddo
 200 continue
  print colsum(1), colsum(64)
end

subroutine build
  integer k
  do k = 1, 64
    length(k) = mod(k * 5, 8) + 1
  enddo
  offset(1) = 1
  do k = 1, 64
    offset(k + 1) = offset(k) + length(k)
  enddo
  do k = 1, 600
    data(k) = mod(k, 10) * 0.1
  enddo
end
";
    let rep = compile_source(source, DriverOptions::with_iaa()).expect("parses");
    let v = rep.verdict("CCS/do200").expect("loop exists");
    println!("CCS/do200 parallel: {}", v.parallel);
    println!("  independent arrays:");
    for (a, test) in &v.independent_arrays {
        println!("    {} via {}", rep.program.symbols.name(*a), test);
    }
    println!("  properties verified on demand:");
    for (a, p) in &v.properties_used {
        println!("    {a}: {p}");
    }
    assert!(v.parallel, "the offset-length test proves do200 parallel");

    // Trust, but verify: run the loop across 4 threads and compare with
    // the sequential execution.
    let seq = Interp::new(&rep.program).run().expect("runs");
    let plan = ParallelPlan {
        threads: 4,
        privatized: v
            .privatized_scalars
            .iter()
            .copied()
            .chain(v.privatized_arrays.iter().map(|(a, _)| *a))
            .collect(),
        reductions: vec![],
        ..ParallelPlan::default()
    };
    let par = run_loop_parallel(&rep.program, v.loop_stmt, &plan).expect("no write conflicts");
    let data = rep.program.symbols.lookup("data").unwrap();
    assert_eq!(
        seq.store.array_as_reals(data),
        par.array_as_reals(data),
        "parallel execution matches sequential"
    );
    println!("\n4-thread execution matched the sequential run exactly.");
    println!("checksums: {}", seq.output.join(" | "));
}
