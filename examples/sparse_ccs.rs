//! The Compressed Column Storage scenario of Fig. 3 / Fig. 13, grown
//! into the full sparse workload suite: matrices from the seeded
//! generator (`irr-sparse`) are lowered into the nine mini-Fortran
//! kernels of `irr_programs::sparse`, compiled, and dispatched through
//! the hybrid runtime. For one small and one large instance the example
//! prints every kernel's dispatch tier and execution strategy, then
//! proves the verdicts honest by checking hybrid/sequential parity on
//! the CCS column-scaling kernel.
//!
//! ```sh
//! cargo run --example sparse_ccs
//! ```

use irr_repro::driver::DispatchTier;
use irr_repro::driver::{compile_source, DriverOptions};
use irr_repro::exec::Interp;
use irr_repro::programs::sparse::{kernels, SparseScale};
use irr_repro::runtime::{run_hybrid_seeded, HybridConfig};
use irr_repro::sparse::Structure;

fn main() {
    let small = SparseScale {
        n: 64,
        nnz: 600,
        structure: Structure::Banded { bandwidth: 8 },
        seed: 13,
    };
    let large = SparseScale {
        n: 4096,
        nnz: 200_000,
        structure: Structure::PowerLaw,
        seed: 13,
    };

    for (title, scale) in [("small", &small), ("large", &large)] {
        println!(
            "== {title} instance: n = {}, nnz = {}, {} structure ==",
            scale.n,
            scale.nnz,
            scale.structure.tag()
        );
        println!("{:<10} {:<28} strategy", "kernel", "dispatch tier");
        for k in kernels(scale) {
            let rep = compile_source(&k.source, DriverOptions::with_iaa()).expect("parses");
            let v = rep.verdict(&k.label).expect("loop exists");
            let tier = match &v.tier {
                DispatchTier::CompileTimeParallel => "compile-time parallel".to_string(),
                DispatchTier::RuntimeGuarded(g) => {
                    format!("runtime-guarded ({} group(s))", g.groups.len())
                }
                DispatchTier::Sequential => "sequential".to_string(),
            };
            println!("{:<10} {:<28} {}", k.name, tier, v.strategy_facts.name());
        }
        println!();
    }

    // Trust, but verify: the CCS column-scaling kernel is the paper's
    // Fig. 3 loop. Its offset/length arrays come preset from the
    // generator, so the offset-length property is *not* provable at
    // compile time — the dispatcher inspects the prefix-sum chain at
    // runtime, clears the guard, and commits a parallel execution that
    // must match the sequential interpreter bit for bit.
    let colscale = kernels(&large)
        .into_iter()
        .find(|k| k.name == "colscale")
        .expect("colscale kernel");
    let rep = compile_source(&colscale.source, DriverOptions::with_iaa()).expect("parses");
    let presets = colscale.resolve_presets(&rep.program);

    let mut seq = Interp::new(&rep.program);
    for (var, data) in &presets {
        seq.preset_array(*var, data.clone());
    }
    let seq = seq.run().expect("sequential run");

    let hybrid = run_hybrid_seeded(&rep, HybridConfig::default(), &presets).expect("hybrid run");
    assert_eq!(seq.output, hybrid.outcome.output, "printed output parity");
    let cval = rep.program.symbols.lookup("cval").unwrap();
    assert_eq!(
        seq.store.array_as_reals(cval),
        hybrid.outcome.store.array_as_reals(cval),
        "scaled values parity"
    );
    let t = &hybrid.telemetry;
    assert!(t.guarded_parallel >= 1, "guard cleared: {t:?}");
    assert_eq!(t.guarded_sequential, 0, "no guard rejections: {t:?}");

    println!("colscale on the large instance:");
    println!(
        "  guard inspections run: {}, guarded parallel entries: {}",
        t.inspections_run, t.guarded_parallel
    );
    println!("  hybrid execution matched the sequential run exactly.");
    println!("  checksums: {}", seq.output.join(" | "));
}
