//! The hybrid inspector–executor runtime: three dispatch tiers in one
//! program.
//!
//! The compiler's verdict for each loop lands in one of three tiers:
//!
//! 1. `CompileTimeParallel` — independence proven statically; no
//!    run-time checks at all.
//! 2. `RuntimeGuarded` — the dependence tester matched a parallelizable
//!    shape but one property (here: injectivity of the index array `p`)
//!    stayed unproven. The compiler emits a guard naming exactly that
//!    residual check; the runtime inspects the live store at loop entry
//!    and dispatches parallel or sequential per execution, caching the
//!    verdict against the store's write-version counters.
//! 3. `Sequential` — a real dependence (or an uncheckable blocker).
//!
//! ```sh
//! cargo run --release --example hybrid_fallback
//! ```

use irr_repro::driver::{compile_source, DispatchTier, DriverOptions};
use irr_repro::exec::Interp;
use irr_repro::runtime::{run_hybrid, HybridConfig};

/// One program, three loops, three tiers. `p(i) = mod(i*3, n) + 1` is a
/// permutation of `1..=n` for `n = 64` (gcd(3, 64) = 1) — true at run
/// time, but outside what the static injectivity checkers prove. The
/// `r` loop re-enters the guarded loop four times and overwrites `p(1)`
/// before the last entry, breaking injectivity mid-run.
const SRC: &str = "program hybrid
     integer i, r, n, p(64)
     real a(64), z(64), x(64)
     n = 64
     do i = 1, n
       p(i) = mod(i * 3, n) + 1
       x(i) = i * 1.0
       a(i) = 0.0
       z(i) = 0.0
     enddo
     do i = 1, n
       a(i) = x(i) * 2.0
     enddo
     do r = 1, 4
       if (r == 4) then
         p(1) = 1
       endif
       do 20 i = 1, n
         z(p(i)) = x(i) + r
 20    continue
     enddo
     print a(1), z(1), z(64)
     end";

fn tier_name(tier: &DispatchTier) -> String {
    match tier {
        DispatchTier::CompileTimeParallel => "compile-time parallel".into(),
        DispatchTier::RuntimeGuarded(g) => {
            format!("runtime-guarded ({} group(s))", g.groups.len())
        }
        DispatchTier::Sequential => "sequential".into(),
    }
}

fn main() {
    let rep = compile_source(SRC, DriverOptions::with_iaa()).expect("compiles");

    println!("== compile-time verdicts ==");
    for v in &rep.verdicts {
        println!("  {:28} -> {}", v.label, tier_name(&v.tier));
        for b in &v.blockers {
            println!("       blocker: {b}");
        }
    }

    let seq = Interp::new(&rep.program).run().expect("sequential run");
    let hybrid = run_hybrid(&rep, HybridConfig::default()).expect("hybrid run");
    assert_eq!(hybrid.outcome.output, seq.output, "semantics preserved");

    let t = hybrid.telemetry;
    println!("\n== hybrid execution telemetry ==");
    println!(
        "  compile-time parallel dispatches: {}",
        t.compile_time_parallel
    );
    println!("  guarded parallel dispatches:      {}", t.guarded_parallel);
    println!(
        "  guarded sequential fallbacks:     {}",
        t.guarded_sequential
    );
    println!(
        "  sequential dispatches:            {} ({} proven, {} unknown, {} non-unit step)",
        t.sequential_unguarded(),
        t.sequential_proven,
        t.sequential_unknown_loop,
        t.sequential_non_unit_step
    );
    println!("  inspections run:                  {}", t.inspections_run);
    println!("  schedule-cache hits:              {}", t.cache_hits);
    println!(
        "  schedule-cache invalidations:     {}",
        t.cache_invalidations
    );

    println!(
        "\nThe guarded loop entered {} times but the inspector ran only {} \
         time(s):\nre-entries with unchanged index arrays hit the versioned \
         schedule cache,\nand the single store to p(1) forced exactly {} \
         re-inspection (which failed,\nso the final entry fell back to the \
         sequential loop version).",
        t.guarded_dispatches(),
        t.inspections_run,
        t.cache_invalidations,
    );
    println!("\noutput: {:?}", hybrid.outcome.output);
}
