//! Quickstart: compile the paper's motivating example (Fig. 1(a)) and
//! see the irregular analyses at work.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use irr_repro::driver::{compile_source, DriverOptions};

fn main() {
    // Fig. 1(a): x() is filled through the irregular single-indexed
    // pointer p inside a while loop, then read as x(1..p). No closed
    // form for p exists, so traditional privatization fails — the
    // consecutively-written analysis (§2.2) is what parallelizes do-k.
    let source = "
program fig1a
  integer i, j, k, n, p, link(64, 16)
  real x(64), y(64), z(16, 64)
  n = 16
  call init
  do 100 k = 1, n
    p = 0
    i = link(1, k)
    while (i /= 0)
      p = p + 1
      x(p) = y(i)
      i = link(i, k)
    endwhile
    do j = 1, p
      z(k, j) = x(j)
    enddo
 100 continue
  print z(1, 1), z(16, 1)
end

subroutine init
  integer a, b
  do a = 1, 64
    y(a) = a * 0.5
    do b = 1, 16
      link(a, b) = mod(a + b, 40)
    enddo
  enddo
end
";
    println!("=== With the irregular array access analyses (the paper) ===");
    let with = compile_source(source, DriverOptions::with_iaa()).expect("parses");
    report(&with);

    println!("\n=== Without them (traditional Polaris) ===");
    let without = compile_source(source, DriverOptions::without_iaa()).expect("parses");
    report(&without);

    println!(
        "\nThe k-loop is parallel only with the consecutively-written \
         analysis: the while loop's writes provably cover x(1..p)."
    );

    // The Polaris-style output artifact: the program annotated with
    // parallel directives.
    println!("\n=== Annotated output (directives on cleared loops) ===");
    for line in irr_repro::driver::emit_annotated(&with).lines() {
        if line.trim_start().starts_with("!$omp") || line.trim_start().starts_with("do ") {
            println!("{line}");
        }
    }
}

fn report(rep: &irr_repro::driver::CompilationReport) {
    for v in &rep.verdicts {
        print!(
            "  {:<16} {}",
            v.label,
            if v.parallel { "PARALLEL" } else { "serial  " }
        );
        if !v.privatized_arrays.is_empty() {
            let names: Vec<String> = v
                .privatized_arrays
                .iter()
                .map(|(a, tag)| format!("{}[{}]", rep.program.symbols.name(*a), tag))
                .collect();
            print!("  privatized: {}", names.join(", "));
        }
        if !v.blockers.is_empty() {
            print!("  blockers: {}", v.blockers.join("; "));
        }
        println!();
    }
}
