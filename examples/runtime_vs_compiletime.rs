//! The paper's §1 argument: user assertions and run-time tests are
//! alternatives to static analysis of irregular accesses, but "run-time
//! analysis methods ... introduce overhead that is not always
//! negligible". This example runs both on the same CCS program: the
//! compile-time offset–length verification (once, at compile time) and
//! the run-time inspector (every execution), and times them.
//!
//! ```sh
//! cargo run --release --example runtime_vs_compiletime
//! ```

use irr_repro::core::property::ArrayPropertyAnalysis;
use irr_repro::core::{AnalysisCtx, DistanceSpec, Property, PropertyQuery};
use irr_repro::exec::{inspect_offset_length, Inspection, Interp};
use irr_repro::frontend::parse_program;
use irr_repro::symbolic::{Section, SymExpr};
use std::time::Instant;

fn main() {
    let nseg = 2000;
    let src = format!(
        "program ccs
  integer i, k, ptr({np1}), len({nseg})
  real data(20000)
  do k = 1, {nseg}
    len(k) = mod(k * 5, 8) + 1
  enddo
  ptr(1) = 1
  do k = 1, {nseg}
    ptr(k + 1) = ptr(k) + len(k)
  enddo
  do 10 i = 1, {nseg}
    do k = 1, len(i)
      data(ptr(i) + k - 1) = i + k
    enddo
 10 continue
end
",
        np1 = nseg + 1,
    );
    let program = parse_program(&src).expect("parses");

    // --- compile time: one demand-driven query -------------------------
    let ctx = AnalysisCtx::new(&program);
    let mut apa = ArrayPropertyAnalysis::new(&ctx);
    let ptr = program.symbols.lookup("ptr").unwrap();
    let len = program.symbols.lookup("len").unwrap();
    let loop10 = program
        .stmts_in(&program.procedures[program.main().index()].body)
        .into_iter()
        .find(|s| {
            matches!(
                program.stmt(*s).kind,
                irr_repro::frontend::StmtKind::Do {
                    label: Some(10),
                    ..
                }
            )
        })
        .unwrap();
    let t0 = Instant::now();
    let verified = apa.check(&PropertyQuery {
        array: ptr,
        property: Property::ClosedFormDistance {
            distance: DistanceSpec::Array(len),
        },
        section: Section::range1(SymExpr::int(1), SymExpr::int(nseg - 1)),
        at_stmt: loop10,
    });
    let compile_time = t0.elapsed();
    assert!(verified);
    println!(
        "compile-time verification: ptr has closed-form distance len \
         — {:?}, paid ONCE ({} solver nodes)",
        compile_time, apa.stats.nodes_visited
    );

    // --- run time: the inspector pays on every execution ----------------
    let store = Interp::new(&program).run().expect("runs").store;
    let t1 = Instant::now();
    let reps = 100;
    let mut ok = true;
    for _ in 0..reps {
        ok &= inspect_offset_length(&store, ptr, len, 1, nseg) == Inspection::ParallelOk;
    }
    let per_exec = t1.elapsed() / reps;
    assert!(ok);
    println!(
        "run-time inspector:        O(segments) walk of ptr/len \
         — {per_exec:?} per execution, paid EVERY time"
    );
    println!(
        "\nWith {nseg} segments the inspector must also keep the \
         sequential loop version around for the failing case — the code\n\
         growth and recurring overhead the paper's compile-time approach \
         avoids."
    );
}
