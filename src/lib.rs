//! Umbrella crate for the reproduction of Lin & Padua, *Compiler Analysis
//! of Irregular Memory Accesses* (PLDI 2000).
//!
//! This crate re-exports the whole workspace so the examples in
//! `examples/` and the cross-crate integration tests in `tests/` can use
//! one import root. See the individual crates for the substance:
//!
//! - [`frontend`] — the mini-Fortran language,
//! - [`graph`] — CFGs, the hierarchical control graph, bounded DFS,
//! - [`symbolic`] — symbolic expressions and array-section algebra,
//! - [`core`] — the paper's analyses (single-indexed access analysis and
//!   demand-driven interprocedural array property analysis),
//! - [`passes`] — the normalization pipeline,
//! - [`deptest`] — dependence tests (range / offset-length / injective),
//! - [`privatize`] — the extended privatization test,
//! - [`driver`] — the parallelizing pipeline,
//! - [`exec`] — the interpreter and machine models,
//! - [`runtime`] — the hybrid inspector–executor runtime with versioned
//!   schedule caching,
//! - [`programs`] — the five benchmark kernels,
//! - [`sparse`] — SPARK00-class sparse matrix generators,
//! - [`sanitizer`] — the shadow-memory dependence auditor.

pub use irr_core as core;
pub use irr_deptest as deptest;
pub use irr_driver as driver;
pub use irr_exec as exec;
pub use irr_frontend as frontend;
pub use irr_graph as graph;
pub use irr_passes as passes;
pub use irr_privatize as privatize;
pub use irr_programs as programs;
pub use irr_runtime as runtime;
pub use irr_sanitizer as sanitizer;
pub use irr_sparse as sparse;
pub use irr_symbolic as symbolic;
