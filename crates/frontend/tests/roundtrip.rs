//! Property-based round-trip tests: parse → print → parse → print is a
//! fixpoint, and the reparsed program has the same shape. Random
//! programs are drawn from a deterministic in-tree [`SplitMix64`]
//! stream, so the suite runs offline and is reproducible from the seeds
//! below.

use irr_exec::SplitMix64;
use irr_frontend::{parse_program, print_program, StmtKind};

/// A random statement in a small safe fragment (literal loop bounds,
/// in-bounds subscripts).
#[derive(Clone, Debug)]
enum S {
    AssignScalar(u8, E),
    AssignElem(u8, E, E),
    Do(u8, i64, i64, Vec<S>),
    While(E, Vec<S>),
    If(E, Vec<S>, Vec<S>),
    Print(E),
}

#[derive(Clone, Debug)]
enum E {
    Int(i64),
    Real(i64),
    Scalar(u8),
    Elem(u8, Box<E>),
    Add(Box<E>, Box<E>),
    Sub(Box<E>, Box<E>),
    Mul(Box<E>, Box<E>),
    Mod(Box<E>, i64),
    Min(Box<E>, Box<E>),
    Neg(Box<E>),
}

fn draw_expr(rng: &mut SplitMix64, depth: u32) -> E {
    let leaf = depth == 0 || rng.below(3) == 0;
    if leaf {
        match rng.below(3) {
            0 => E::Int(rng.range_i64(-9, 9)),
            1 => E::Real(rng.range_i64(-9, 9)),
            _ => E::Scalar(rng.below(3) as u8),
        }
    } else {
        let d = depth - 1;
        match rng.below(7) {
            0 => E::Elem(rng.below(2) as u8, Box::new(draw_expr(rng, d))),
            1 => E::Add(Box::new(draw_expr(rng, d)), Box::new(draw_expr(rng, d))),
            2 => E::Sub(Box::new(draw_expr(rng, d)), Box::new(draw_expr(rng, d))),
            3 => E::Mul(Box::new(draw_expr(rng, d)), Box::new(draw_expr(rng, d))),
            4 => E::Mod(Box::new(draw_expr(rng, d)), rng.range_i64(1, 8)),
            5 => E::Min(Box::new(draw_expr(rng, d)), Box::new(draw_expr(rng, d))),
            _ => E::Neg(Box::new(draw_expr(rng, d))),
        }
    }
}

fn draw_stmts(rng: &mut SplitMix64, depth: u32, lo: usize, hi: usize) -> Vec<S> {
    let count = rng.range_usize(lo, hi);
    (0..count).map(|_| draw_stmt(rng, depth)).collect()
}

fn draw_stmt(rng: &mut SplitMix64, depth: u32) -> S {
    let structural = depth > 0 && rng.below(2) == 0;
    if !structural {
        match rng.below(3) {
            0 => S::AssignScalar(rng.below(3) as u8, draw_expr(rng, 3)),
            1 => S::AssignElem(rng.below(2) as u8, draw_expr(rng, 3), draw_expr(rng, 3)),
            _ => S::Print(draw_expr(rng, 3)),
        }
    } else {
        let d = depth - 1;
        match rng.below(3) {
            0 => S::Do(
                rng.below(3) as u8,
                rng.range_i64(1, 3),
                rng.range_i64(1, 7),
                draw_stmts(rng, d, 1, 2),
            ),
            1 => S::While(draw_expr(rng, 3), draw_stmts(rng, d, 1, 2)),
            _ => S::If(
                draw_expr(rng, 3),
                draw_stmts(rng, d, 1, 2),
                draw_stmts(rng, d, 0, 1),
            ),
        }
    }
}

fn scalar_name(v: u8) -> &'static str {
    ["n1", "n2", "xs"][v as usize % 3]
}

fn array_name(a: u8) -> &'static str {
    ["arr", "brr"][a as usize % 2]
}

fn render_expr(e: &E, out: &mut String) {
    match e {
        E::Int(v) => {
            if *v < 0 {
                out.push_str(&format!("(0 - {})", -v));
            } else {
                out.push_str(&v.to_string());
            }
        }
        E::Real(v) => out.push_str(&format!("({v}.0 + 0.5)")),
        E::Scalar(v) => out.push_str(scalar_name(*v)),
        E::Elem(a, i) => {
            out.push_str(array_name(*a));
            out.push_str("(mod(");
            render_expr(i, out);
            out.push_str(", 8) + 1)");
        }
        E::Add(a, b) => bin(out, a, "+", b),
        E::Sub(a, b) => bin(out, a, "-", b),
        E::Mul(a, b) => bin(out, a, "*", b),
        E::Mod(a, c) => {
            out.push_str("mod(");
            render_expr(a, out);
            out.push_str(&format!(", {c})"));
        }
        E::Min(a, b) => {
            out.push_str("min(");
            render_expr(a, out);
            out.push_str(", ");
            render_expr(b, out);
            out.push(')');
        }
        E::Neg(a) => {
            out.push_str("(-");
            render_expr(a, out);
            out.push(')');
        }
    }
}

fn bin(out: &mut String, a: &E, op: &str, b: &E) {
    out.push('(');
    render_expr(a, out);
    out.push_str(&format!(" {op} "));
    render_expr(b, out);
    out.push(')');
}

fn render_stmt(s: &S, ind: usize, out: &mut String, fuel_guard: &mut u32) {
    let pad = "  ".repeat(ind);
    match s {
        S::AssignScalar(v, e) => {
            out.push_str(&format!("{pad}{} = ", scalar_name(*v)));
            render_expr(e, out);
            out.push('\n');
        }
        S::AssignElem(a, i, e) => {
            out.push_str(&format!("{pad}{}(mod(", array_name(*a)));
            render_expr(i, out);
            out.push_str(", 8) + 1) = ");
            render_expr(e, out);
            out.push('\n');
        }
        S::Do(v, lo, hi, body) => {
            out.push_str(&format!("{pad}do {} = {lo}, {hi}\n", scalar_name(*v)));
            for b in body {
                render_stmt(b, ind + 1, out, fuel_guard);
            }
            out.push_str(&format!("{pad}enddo\n"));
        }
        S::While(c, body) => {
            // Bound the while with a dedicated counter so interpretation
            // terminates.
            *fuel_guard += 1;
            let g = format!("nw{fuel_guard}");
            out.push_str(&format!("{pad}{g} = 0\n"));
            out.push_str(&format!("{pad}while ({g} < 3 .and. ("));
            render_expr(c, out);
            out.push_str(") /= 0)\n");
            out.push_str(&format!("{pad}  {g} = {g} + 1\n"));
            for b in body {
                render_stmt(b, ind + 1, out, fuel_guard);
            }
            out.push_str(&format!("{pad}endwhile\n"));
        }
        S::If(c, t, e) => {
            out.push_str(&format!("{pad}if (("));
            render_expr(c, out);
            out.push_str(") > 0) then\n");
            for b in t {
                render_stmt(b, ind + 1, out, fuel_guard);
            }
            if !e.is_empty() {
                out.push_str(&format!("{pad}else\n"));
                for b in e {
                    render_stmt(b, ind + 1, out, fuel_guard);
                }
            }
            out.push_str(&format!("{pad}endif\n"));
        }
        S::Print(e) => {
            out.push_str(&format!("{pad}print "));
            render_expr(e, out);
            out.push('\n');
        }
    }
}

fn render_program(stmts: &[S]) -> String {
    let mut body = String::new();
    let mut guard = 0;
    for s in stmts {
        render_stmt(s, 1, &mut body, &mut guard);
    }
    let mut decls = String::new();
    for g in 1..=guard {
        decls.push_str(&format!("  integer nw{g}\n"));
    }
    format!("program gen\n  integer n1, n2\n  real xs, arr(9), brr(9)\n{decls}{body}end\n")
}

/// print(parse(print(parse(src)))) == print(parse(src)) and the
/// statement shapes survive.
#[test]
fn print_parse_roundtrip() {
    let mut rng = SplitMix64::new(0x6001);
    for _ in 0..128 {
        let stmts = draw_stmts(&mut rng, 2, 1, 5);
        let src = render_program(&stmts);
        let p1 = parse_program(&src)
            .unwrap_or_else(|e| panic!("generated source must parse: {e}\n{src}"));
        let printed1 = print_program(&p1);
        let p2 = parse_program(&printed1)
            .unwrap_or_else(|e| panic!("printed source must reparse: {e}\n{printed1}"));
        let printed2 = print_program(&p2);
        assert_eq!(&printed1, &printed2, "printer not a fixpoint\nsrc:\n{src}");
        // Same number of statements of each kind.
        let count = |p: &irr_frontend::Program| {
            let mut c = [0usize; 6];
            for proc in &p.procedures {
                for s in p.stmts_in(&proc.body) {
                    let k = match p.stmt(s).kind {
                        StmtKind::Assign { .. } => 0,
                        StmtKind::Do { .. } => 1,
                        StmtKind::While { .. } => 2,
                        StmtKind::If { .. } => 3,
                        StmtKind::Print { .. } => 4,
                        _ => 5,
                    };
                    c[k] += 1;
                }
            }
            c
        };
        assert_eq!(count(&p1), count(&p2));
    }
}

/// Generated programs interpret identically before and after a
/// print/parse round trip (the printer preserves semantics, not just
/// shape).
#[test]
fn roundtrip_preserves_execution() {
    let mut rng = SplitMix64::new(0x6002);
    for _ in 0..128 {
        let stmts = draw_stmts(&mut rng, 2, 1, 4);
        let src = render_program(&stmts);
        let p1 = parse_program(&src).unwrap();
        let p2 = parse_program(&print_program(&p1)).unwrap();
        let run = |p: &irr_frontend::Program| {
            let mut it = irr_exec::Interp::new(p);
            it.fuel = 2_000_000;
            it.run().map(|o| o.output)
        };
        match (run(&p1), run(&p2)) {
            (Ok(a), Ok(b)) => assert_eq!(a, b, "outputs differ\n{src}"),
            (Err(_), Err(_)) => {} // same failure class is acceptable
            (a, b) => panic!("one run failed: {a:?} vs {b:?}\n{src}"),
        }
    }
}
