//! Property-based round-trip tests: parse → print → parse → print is a
//! fixpoint, and the reparsed program has the same shape.

use irr_frontend::{parse_program, print_program, StmtKind};
use proptest::prelude::*;

/// A random statement in a small safe fragment (literal loop bounds,
/// in-bounds subscripts).
#[derive(Clone, Debug)]
enum S {
    AssignScalar(u8, E),
    AssignElem(u8, E, E),
    Do(u8, i64, i64, Vec<S>),
    While(E, Vec<S>),
    If(E, Vec<S>, Vec<S>),
    Print(E),
}

#[derive(Clone, Debug)]
enum E {
    Int(i64),
    Real(i64),
    Scalar(u8),
    Elem(u8, Box<E>),
    Add(Box<E>, Box<E>),
    Sub(Box<E>, Box<E>),
    Mul(Box<E>, Box<E>),
    Mod(Box<E>, i64),
    Min(Box<E>, Box<E>),
    Neg(Box<E>),
}

fn expr() -> impl Strategy<Value = E> {
    let leaf = prop_oneof![
        (-9i64..10).prop_map(E::Int),
        (-9i64..10).prop_map(E::Real),
        (0u8..3).prop_map(E::Scalar),
    ];
    leaf.prop_recursive(3, 16, 2, |inner| {
        prop_oneof![
            (0u8..2, inner.clone()).prop_map(|(a, e)| E::Elem(a, Box::new(e))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Add(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Sub(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Mul(Box::new(a), Box::new(b))),
            (inner.clone(), 1i64..9).prop_map(|(a, c)| E::Mod(Box::new(a), c)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Min(Box::new(a), Box::new(b))),
            inner.prop_map(|a| E::Neg(Box::new(a))),
        ]
    })
}

fn stmt(depth: u32) -> BoxedStrategy<S> {
    let assign = prop_oneof![
        (0u8..3, expr()).prop_map(|(v, e)| S::AssignScalar(v, e)),
        (0u8..2, expr(), expr()).prop_map(|(a, i, e)| S::AssignElem(a, i, e)),
        expr().prop_map(S::Print),
    ];
    if depth == 0 {
        assign.boxed()
    } else {
        prop_oneof![
            assign,
            (
                0u8..3,
                1i64..4,
                1i64..8,
                proptest::collection::vec(stmt(depth - 1), 1..3)
            )
                .prop_map(|(v, lo, hi, b)| S::Do(v, lo, hi, b)),
            (expr(), proptest::collection::vec(stmt(depth - 1), 1..3))
                .prop_map(|(c, b)| S::While(c, b)),
            (
                expr(),
                proptest::collection::vec(stmt(depth - 1), 1..3),
                proptest::collection::vec(stmt(depth - 1), 0..2)
            )
                .prop_map(|(c, t, e)| S::If(c, t, e)),
        ]
        .boxed()
    }
}

fn scalar_name(v: u8) -> &'static str {
    ["n1", "n2", "xs"][v as usize % 3]
}

fn array_name(a: u8) -> &'static str {
    ["arr", "brr"][a as usize % 2]
}

fn render_expr(e: &E, out: &mut String) {
    match e {
        E::Int(v) => {
            if *v < 0 {
                out.push_str(&format!("(0 - {})", -v));
            } else {
                out.push_str(&v.to_string());
            }
        }
        E::Real(v) => out.push_str(&format!("({v}.0 + 0.5)")),
        E::Scalar(v) => out.push_str(scalar_name(*v)),
        E::Elem(a, i) => {
            out.push_str(array_name(*a));
            out.push_str("(mod(");
            render_expr(i, out);
            out.push_str(", 8) + 1)");
        }
        E::Add(a, b) => bin(out, a, "+", b),
        E::Sub(a, b) => bin(out, a, "-", b),
        E::Mul(a, b) => bin(out, a, "*", b),
        E::Mod(a, c) => {
            out.push_str("mod(");
            render_expr(a, out);
            out.push_str(&format!(", {c})"));
        }
        E::Min(a, b) => {
            out.push_str("min(");
            render_expr(a, out);
            out.push_str(", ");
            render_expr(b, out);
            out.push(')');
        }
        E::Neg(a) => {
            out.push_str("(-");
            render_expr(a, out);
            out.push(')');
        }
    }
}

fn bin(out: &mut String, a: &E, op: &str, b: &E) {
    out.push('(');
    render_expr(a, out);
    out.push_str(&format!(" {op} "));
    render_expr(b, out);
    out.push(')');
}

fn render_stmt(s: &S, ind: usize, out: &mut String, fuel_guard: &mut u32) {
    let pad = "  ".repeat(ind);
    match s {
        S::AssignScalar(v, e) => {
            out.push_str(&format!("{pad}{} = ", scalar_name(*v)));
            render_expr(e, out);
            out.push('\n');
        }
        S::AssignElem(a, i, e) => {
            out.push_str(&format!("{pad}{}(mod(", array_name(*a)));
            render_expr(i, out);
            out.push_str(", 8) + 1) = ");
            render_expr(e, out);
            out.push('\n');
        }
        S::Do(v, lo, hi, body) => {
            out.push_str(&format!("{pad}do {} = {lo}, {hi}\n", scalar_name(*v)));
            for b in body {
                render_stmt(b, ind + 1, out, fuel_guard);
            }
            out.push_str(&format!("{pad}enddo\n"));
        }
        S::While(c, body) => {
            // Bound the while with a dedicated counter so interpretation
            // terminates.
            *fuel_guard += 1;
            let g = format!("nw{fuel_guard}");
            out.push_str(&format!("{pad}{g} = 0\n"));
            out.push_str(&format!("{pad}while ({g} < 3 .and. ("));
            render_expr(c, out);
            out.push_str(") /= 0)\n");
            out.push_str(&format!("{pad}  {g} = {g} + 1\n"));
            for b in body {
                render_stmt(b, ind + 1, out, fuel_guard);
            }
            out.push_str(&format!("{pad}endwhile\n"));
        }
        S::If(c, t, e) => {
            out.push_str(&format!("{pad}if (("));
            render_expr(c, out);
            out.push_str(") > 0) then\n");
            for b in t {
                render_stmt(b, ind + 1, out, fuel_guard);
            }
            if !e.is_empty() {
                out.push_str(&format!("{pad}else\n"));
                for b in e {
                    render_stmt(b, ind + 1, out, fuel_guard);
                }
            }
            out.push_str(&format!("{pad}endif\n"));
        }
        S::Print(e) => {
            out.push_str(&format!("{pad}print "));
            render_expr(e, out);
            out.push('\n');
        }
    }
}

fn render_program(stmts: &[S]) -> String {
    let mut body = String::new();
    let mut guard = 0;
    for s in stmts {
        render_stmt(s, 1, &mut body, &mut guard);
    }
    let mut decls = String::new();
    for g in 1..=guard {
        decls.push_str(&format!("  integer nw{g}\n"));
    }
    format!(
        "program gen\n  integer n1, n2\n  real xs, arr(9), brr(9)\n{decls}{body}end\n"
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// print(parse(print(parse(src)))) == print(parse(src)) and the
    /// statement shapes survive.
    #[test]
    fn print_parse_roundtrip(stmts in proptest::collection::vec(stmt(2), 1..6)) {
        let src = render_program(&stmts);
        let p1 = parse_program(&src)
            .unwrap_or_else(|e| panic!("generated source must parse: {e}\n{src}"));
        let printed1 = print_program(&p1);
        let p2 = parse_program(&printed1)
            .unwrap_or_else(|e| panic!("printed source must reparse: {e}\n{printed1}"));
        let printed2 = print_program(&p2);
        prop_assert_eq!(&printed1, &printed2, "printer not a fixpoint\nsrc:\n{}", src);
        // Same number of statements of each kind.
        let count = |p: &irr_frontend::Program| {
            let mut c = [0usize; 6];
            for proc in &p.procedures {
                for s in p.stmts_in(&proc.body) {
                    let k = match p.stmt(s).kind {
                        StmtKind::Assign { .. } => 0,
                        StmtKind::Do { .. } => 1,
                        StmtKind::While { .. } => 2,
                        StmtKind::If { .. } => 3,
                        StmtKind::Print { .. } => 4,
                        _ => 5,
                    };
                    c[k] += 1;
                }
            }
            c
        };
        prop_assert_eq!(count(&p1), count(&p2));
    }

    /// Generated programs interpret identically before and after a
    /// print/parse round trip (the printer preserves semantics, not just
    /// shape).
    #[test]
    fn roundtrip_preserves_execution(stmts in proptest::collection::vec(stmt(2), 1..5)) {
        let src = render_program(&stmts);
        let p1 = parse_program(&src).unwrap();
        let p2 = parse_program(&print_program(&p1)).unwrap();
        let run = |p: &irr_frontend::Program| {
            let mut it = irr_exec::Interp::new(p);
            it.fuel = 2_000_000;
            it.run().map(|o| o.output)
        };
        match (run(&p1), run(&p2)) {
            (Ok(a), Ok(b)) => prop_assert_eq!(a, b, "outputs differ\n{}", src),
            (Err(_), Err(_)) => {} // same failure class is acceptable
            (a, b) => prop_assert!(false, "one run failed: {a:?} vs {b:?}\n{src}"),
        }
    }
}
