//! Parser robustness: malformed inputs must produce errors (with
//! positions), never panics; near-miss syntax is rejected.

use irr_frontend::parse_program;

fn rejects(src: &str) {
    match parse_program(src) {
        Ok(_) => panic!("should reject:\n{src}"),
        Err(e) => {
            // The error formats with a location.
            let msg = e.to_string();
            assert!(msg.contains("parse error"), "{msg}");
        }
    }
}

#[test]
fn unterminated_blocks() {
    rejects("program t\ndo i = 1, 3\nx = 1\nend\n");
    rejects("program t\nif (a > 0) then\nx = 1\nend\n");
    rejects("program t\nwhile (a > 0)\nx = 1\nend\n");
    rejects("program t\nx = 1\n"); // missing end
}

#[test]
fn mismatched_terminators() {
    rejects("program t\ndo i = 1, 3\nx = 1\nendif\nend\n");
    rejects("program t\nif (a > 0) then\nx = 1\nenddo\nend\n");
    // A labeled do closed with the wrong label.
    rejects("program t\ndo 10 i = 1, 3\nx = 1\n 20 continue\nend\n");
}

#[test]
fn malformed_expressions() {
    rejects("program t\nx = 1 +\nend\n");
    rejects("program t\nx = (1 + 2\nend\n");
    rejects("program t\nx = * 3\nend\n");
    rejects("program t\nx = min(1,\nend\n");
}

#[test]
fn malformed_statements() {
    rejects("program t\ndo i 1, 3\nx = 1\nenddo\nend\n");
    rejects("program t\ndo i = 1\nx = 1\nenddo\nend\n");
    rejects("program t\nif a > 0 then\nx = 1\nendif\nend\n");
    rejects("program t\ncall\nend\n");
    rejects("program t\n= 5\nend\n");
}

#[test]
fn duplicate_units() {
    rejects("program t\nx = 1\nend\nprogram t\ny = 2\nend\n");
    rejects("program t\nx = 1\nend\nsubroutine s\ny = 1\nend\nsubroutine s\nz = 1\nend\n");
}

#[test]
fn error_positions_point_at_the_problem() {
    let err = parse_program("program t\nx = 1\ny = @\nend\n").unwrap_err();
    assert_eq!(err.loc.line, 3, "{err}");
}

#[test]
fn deeply_nested_parse_is_fine() {
    // 40 nested ifs: recursion depth is healthy.
    let mut src = String::from("program t\ninteger a\n");
    for _ in 0..40 {
        src.push_str("if (a > 0) then\n");
    }
    src.push_str("a = 1\n");
    for _ in 0..40 {
        src.push_str("endif\n");
    }
    src.push_str("end\n");
    let p = parse_program(&src).unwrap();
    assert_eq!(p.stmts_in(&p.procedure(p.main()).body).len(), 41);
}

#[test]
fn crlf_and_semicolon_separators() {
    let p = parse_program("program t\r\nx = 1; y = 2\r\nend\r\n").unwrap();
    assert_eq!(p.stmts_in(&p.procedure(p.main()).body).len(), 2);
}

#[test]
fn keywords_are_case_insensitive() {
    let p = parse_program("PROGRAM T\nINTEGER I\nREAL X(5)\nDO I = 1, 5\nX(I) = I\nENDDO\nEND\n")
        .unwrap();
    assert_eq!(p.procedures[0].name, "t");
    assert!(p.symbols.lookup("x").is_some());
}

#[test]
fn no_panic_escapes_parse_on_the_malformed_corpus() {
    // Every corpus case — truncated loops, mismatched labels, giant
    // literals, hostile nesting, seeded mutations — must produce a
    // clean Ok or Err. A panic here is exactly the bug the service's
    // per-request isolation exists to contain; it must not exist.
    let mut escaped = Vec::new();
    for case in irr_frontend::malformed_corpus(200) {
        let src = case.source.clone();
        let r = std::panic::catch_unwind(move || {
            let _ = parse_program(&src);
        });
        if r.is_err() {
            escaped.push(case.name);
        }
    }
    assert!(escaped.is_empty(), "panics escaped parse: {escaped:?}");
}

#[test]
fn hostile_nesting_is_a_typed_error_not_a_crash() {
    for case in [
        "deep-paren-nest",
        "deep-unary-nest",
        "deep-loop-nest",
        "deep-if-nest",
    ] {
        let c = irr_frontend::malformed_corpus(0)
            .into_iter()
            .find(|c| c.name == case)
            .unwrap();
        let err = parse_program(&c.source).unwrap_err();
        assert!(
            err.to_string().contains("nesting deeper than"),
            "{case}: {err}"
        );
    }
}

#[test]
fn giant_literals_are_typed_errors() {
    rejects("program t\nx = 99999999999999999999999999999\nend\n");
    // Huge real exponents saturate to infinity in f64 and parse;
    // huge do-labels overflow u32's range check path.
    rejects("program t\ninteger i\nreal x(10)\ndo 4294967296 i = 1, 10\nx(i) = 1\nenddo\nend\n");
}

#[test]
fn nesting_just_below_the_limit_parses() {
    let depth = 150; // below MAX_NESTING_DEPTH = 200
    let mut src = String::from("program t\ninteger a\n");
    for _ in 0..depth {
        src.push_str("if (a > 0) then\n");
    }
    src.push_str("a = 1\n");
    for _ in 0..depth {
        src.push_str("endif\n");
    }
    src.push_str("end\n");
    parse_program(&src).unwrap();
}

#[test]
fn comments_everywhere() {
    let p = parse_program(
        "! leading comment
         program t ! trailing
         ! inside
         integer i
         do i = 1, 2 ! bound comment
           ! body comment
           x = i
         enddo
         end ! done",
    )
    .unwrap();
    assert_eq!(p.procedures.len(), 1);
}
