//! Programmatic construction of programs.
//!
//! The builder is used by tests (including the property-based program
//! generators) and by passes that synthesize code.

use crate::ast::{Expr, LValue, Procedure, Program, Stmt, StmtId, StmtKind};
use crate::diag::SourceLoc;
use crate::symbols::{ProcId, ScalarType, SymbolTable, VarId};

/// Builds a [`Program`] one procedure at a time.
///
/// # Example
///
/// ```
/// use irr_frontend::{ProgramBuilder, Expr, ScalarType};
///
/// let mut b = ProgramBuilder::new("demo");
/// let n = b.scalar("n");
/// let i = b.scalar("i");
/// let x = b.declare_array("x", ScalarType::Real, &[Expr::int(100)]);
/// b.assign_scalar(n, Expr::int(100));
/// b.do_loop(i, Expr::int(1), Expr::Var(n), |b| {
///     b.assign_element(x, vec![Expr::Var(i)], Expr::Var(i));
/// });
/// let program = b.finish();
/// assert_eq!(program.procedures.len(), 1);
/// ```
#[derive(Debug)]
pub struct ProgramBuilder {
    symbols: SymbolTable,
    stmts: Vec<Stmt>,
    procedures: Vec<Procedure>,
    /// Stack of open statement lists; the bottom entry is the body of the
    /// procedure currently being built.
    open: Vec<Vec<StmtId>>,
    current_name: String,
    current_is_main: bool,
}

impl ProgramBuilder {
    /// Starts a builder whose first (current) procedure is the `program`
    /// unit named `main_name`.
    pub fn new(main_name: &str) -> ProgramBuilder {
        ProgramBuilder {
            symbols: SymbolTable::new(),
            stmts: Vec::new(),
            procedures: Vec::new(),
            open: vec![Vec::new()],
            current_name: main_name.to_ascii_lowercase(),
            current_is_main: true,
        }
    }

    /// Access to the symbol table being built.
    pub fn symbols(&self) -> &SymbolTable {
        &self.symbols
    }

    /// Declares (or interns) a scalar with implicit typing.
    pub fn scalar(&mut self, name: &str) -> VarId {
        self.symbols.intern_scalar(name)
    }

    /// Declares a scalar with an explicit type.
    pub fn declare_scalar(&mut self, name: &str, ty: ScalarType) -> VarId {
        self.symbols
            .declare(name, ty, Vec::new())
            .expect("builder declarations must not conflict")
    }

    /// Declares an array.
    ///
    /// # Panics
    ///
    /// Panics on a conflicting redeclaration.
    pub fn declare_array(&mut self, name: &str, ty: ScalarType, dims: &[Expr]) -> VarId {
        self.symbols
            .declare(name, ty, dims.to_vec())
            .expect("builder declarations must not conflict")
    }

    fn push(&mut self, kind: StmtKind) -> StmtId {
        let id = StmtId(self.stmts.len() as u32);
        self.stmts.push(Stmt {
            id,
            kind,
            loc: SourceLoc::synthetic(),
        });
        self.open
            .last_mut()
            .expect("builder always has an open body")
            .push(id);
        id
    }

    /// Appends `lhs = rhs` for a scalar target.
    pub fn assign_scalar(&mut self, var: VarId, rhs: Expr) -> StmtId {
        self.push(StmtKind::Assign {
            lhs: LValue::Scalar(var),
            rhs,
        })
    }

    /// Appends `arr(subs...) = rhs`.
    pub fn assign_element(&mut self, arr: VarId, subs: Vec<Expr>, rhs: Expr) -> StmtId {
        self.push(StmtKind::Assign {
            lhs: LValue::Element(arr, subs),
            rhs,
        })
    }

    /// Appends a `do var = lo, hi` loop, building its body in `f`.
    pub fn do_loop(
        &mut self,
        var: VarId,
        lo: Expr,
        hi: Expr,
        f: impl FnOnce(&mut ProgramBuilder),
    ) -> StmtId {
        self.do_loop_labeled(var, lo, hi, None, f)
    }

    /// Appends a labeled `do` loop.
    pub fn do_loop_labeled(
        &mut self,
        var: VarId,
        lo: Expr,
        hi: Expr,
        label: Option<u32>,
        f: impl FnOnce(&mut ProgramBuilder),
    ) -> StmtId {
        self.open.push(Vec::new());
        f(self);
        let body = self.open.pop().expect("matching body");
        self.push(StmtKind::Do {
            var,
            lo,
            hi,
            step: None,
            body,
            label,
        })
    }

    /// Appends a `while (cond)` loop, building its body in `f`.
    pub fn while_loop(&mut self, cond: Expr, f: impl FnOnce(&mut ProgramBuilder)) -> StmtId {
        self.open.push(Vec::new());
        f(self);
        let body = self.open.pop().expect("matching body");
        self.push(StmtKind::While { cond, body })
    }

    /// Appends an `if (cond) then ... endif`, building the then-branch in
    /// `f`.
    pub fn if_then(&mut self, cond: Expr, f: impl FnOnce(&mut ProgramBuilder)) -> StmtId {
        self.open.push(Vec::new());
        f(self);
        let then_body = self.open.pop().expect("matching body");
        self.push(StmtKind::If {
            cond,
            then_body,
            else_body: Vec::new(),
        })
    }

    /// Appends an `if (cond) then ... else ... endif`.
    pub fn if_then_else(
        &mut self,
        cond: Expr,
        f: impl FnOnce(&mut ProgramBuilder),
        g: impl FnOnce(&mut ProgramBuilder),
    ) -> StmtId {
        self.open.push(Vec::new());
        f(self);
        let then_body = self.open.pop().expect("matching body");
        self.open.push(Vec::new());
        g(self);
        let else_body = self.open.pop().expect("matching body");
        self.push(StmtKind::If {
            cond,
            then_body,
            else_body,
        })
    }

    /// Appends a `print` statement.
    pub fn print(&mut self, args: Vec<Expr>) -> StmtId {
        self.push(StmtKind::Print { args })
    }

    /// Appends a `call` to a procedure that will be defined (or was
    /// defined) with `subroutine`. Panics at `finish` if never defined.
    pub fn call(&mut self, proc: ProcId) -> StmtId {
        self.push(StmtKind::Call { proc })
    }

    /// Finishes the current procedure and starts a new `subroutine`.
    /// Returns the [`ProcId`] the new subroutine will have.
    pub fn subroutine(&mut self, name: &str) -> ProcId {
        assert_eq!(self.open.len(), 1, "cannot switch units inside a block");
        let body = std::mem::take(&mut self.open[0]);
        self.procedures.push(Procedure {
            name: std::mem::replace(&mut self.current_name, name.to_ascii_lowercase()),
            is_main: std::mem::replace(&mut self.current_is_main, false),
            body,
        });
        ProcId(self.procedures.len() as u32)
    }

    /// The [`ProcId`] that the *next* call to [`ProgramBuilder::subroutine`]
    /// will produce; useful for building forward calls.
    pub fn next_proc_id(&self) -> ProcId {
        ProcId(self.procedures.len() as u32 + 1)
    }

    /// Finalizes the program.
    ///
    /// # Panics
    ///
    /// Panics if a block is still open or a `call` targets a procedure id
    /// that was never created.
    pub fn finish(mut self) -> Program {
        assert_eq!(self.open.len(), 1, "unclosed block at finish");
        let body = std::mem::take(&mut self.open[0]);
        self.procedures.push(Procedure {
            name: self.current_name.clone(),
            is_main: self.current_is_main,
            body,
        });
        let nprocs = self.procedures.len() as u32;
        for s in &self.stmts {
            if let StmtKind::Call { proc } = &s.kind {
                assert!(proc.0 < nprocs, "call to undefined procedure {proc:?}");
            }
        }
        Program {
            symbols: self.symbols,
            stmts: self.stmts,
            procedures: self.procedures,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::BinOp;

    #[test]
    fn builds_nested_structure() {
        let mut b = ProgramBuilder::new("Main");
        let i = b.scalar("i");
        let p = b.scalar("p");
        let x = b.declare_array("x", ScalarType::Real, &[Expr::int(100)]);
        b.assign_scalar(p, Expr::int(0));
        b.do_loop(i, Expr::int(1), Expr::int(10), |b| {
            b.if_then(Expr::bin(BinOp::Gt, Expr::Var(i), Expr::int(5)), |b| {
                b.assign_scalar(p, Expr::add(Expr::Var(p), Expr::int(1)));
                b.assign_element(x, vec![Expr::Var(p)], Expr::Var(i));
            });
        });
        let prog = b.finish();
        assert_eq!(prog.procedures.len(), 1);
        assert_eq!(prog.procedures[0].name, "main");
        assert!(prog.procedures[0].is_main);
        assert_eq!(prog.stmts_in(&prog.procedures[0].body).len(), 5);
    }

    #[test]
    fn multiple_units_and_calls() {
        let mut b = ProgramBuilder::new("main");
        let sub_id = b.next_proc_id();
        b.call(sub_id);
        b.subroutine("helper");
        let x = b.scalar("x");
        b.assign_scalar(x, Expr::int(1));
        let prog = b.finish();
        assert_eq!(prog.procedures.len(), 2);
        assert_eq!(prog.find_procedure("helper"), Some(sub_id));
    }

    #[test]
    #[should_panic(expected = "call to undefined procedure")]
    fn dangling_call_panics() {
        let mut b = ProgramBuilder::new("main");
        b.call(ProcId(99));
        b.finish();
    }
}
