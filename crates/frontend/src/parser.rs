//! Recursive-descent parser for the mini-Fortran language.

use crate::ast::{
    BinOp, Expr, Intrinsic, LValue, Procedure, Program, Stmt, StmtId, StmtKind, UnOp,
};
use crate::diag::{ParseError, SourceLoc};
use crate::lexer::{tokenize, Spanned, Token};
use crate::symbols::{ProcId, ScalarType, SymbolTable};

/// Parses a complete program (one `program` unit plus any number of
/// `subroutine` units, in any order).
///
/// # Errors
///
/// Returns a [`ParseError`] describing the first syntax or semantic
/// problem encountered (undeclared arrays, unknown call targets,
/// duplicate units, missing `program` unit, ...).
pub fn parse_program(src: &str) -> Result<Program, ParseError> {
    let tokens = tokenize(src)?;
    let parser = Parser {
        tokens,
        pos: 0,
        depth: 0,
        symbols: SymbolTable::new(),
        stmts: Vec::new(),
        procedures: Vec::new(),
        pending_calls: Vec::new(),
    };
    parser.parse()
}

/// Maximum combined statement/expression nesting depth. Real programs
/// nest a handful of levels; the limit exists because the parser is
/// recursive descent and a hostile `((((…` or thousand-deep loop nest
/// would otherwise overflow the stack — which aborts the process and
/// cannot be caught by a service's `catch_unwind`.
pub const MAX_NESTING_DEPTH: usize = 200;

struct Parser {
    tokens: Vec<Spanned>,
    pos: usize,
    /// Current recursion depth (statements + expressions combined).
    depth: usize,
    symbols: SymbolTable,
    stmts: Vec<Stmt>,
    procedures: Vec<Procedure>,
    /// `(stmt, callee-name, loc)` — resolved after all units are parsed so
    /// that forward calls work.
    pending_calls: Vec<(StmtId, String, SourceLoc)>,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos].token
    }

    fn peek2(&self) -> &Token {
        &self.tokens[(self.pos + 1).min(self.tokens.len() - 1)].token
    }

    fn loc(&self) -> SourceLoc {
        self.tokens[self.pos].loc
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos].token.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError::new(msg, self.loc())
    }

    fn expect(&mut self, t: &Token, what: &str) -> Result<(), ParseError> {
        if self.peek() == t {
            self.bump();
            Ok(())
        } else {
            Err(self.err(format!("expected {what}, found {:?}", self.peek())))
        }
    }

    fn expect_newline(&mut self) -> Result<(), ParseError> {
        match self.peek() {
            Token::Newline => {
                self.bump();
                Ok(())
            }
            Token::Eof => Ok(()),
            other => Err(self.err(format!("expected end of statement, found {other:?}"))),
        }
    }

    fn skip_newlines(&mut self) {
        while matches!(self.peek(), Token::Newline) {
            self.bump();
        }
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.peek().is_kw(kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_ident(&mut self, what: &str) -> Result<String, ParseError> {
        match self.bump() {
            Token::Ident(s) => Ok(s),
            other => Err(ParseError::new(
                format!("expected {what}, found {other:?}"),
                self.tokens[self.pos.saturating_sub(1)].loc,
            )),
        }
    }

    /// Runs `f` one recursion level deeper, failing with a typed error
    /// (instead of a stack overflow) past [`MAX_NESTING_DEPTH`].
    fn with_depth<T>(
        &mut self,
        f: impl FnOnce(&mut Self) -> Result<T, ParseError>,
    ) -> Result<T, ParseError> {
        if self.depth >= MAX_NESTING_DEPTH {
            return Err(self.err(format!("nesting deeper than {MAX_NESTING_DEPTH} levels")));
        }
        self.depth += 1;
        let r = f(self);
        self.depth -= 1;
        r
    }

    fn new_stmt(&mut self, kind: StmtKind, loc: SourceLoc) -> StmtId {
        let id = StmtId(self.stmts.len() as u32);
        self.stmts.push(Stmt { id, kind, loc });
        id
    }

    fn parse(mut self) -> Result<Program, ParseError> {
        self.skip_newlines();
        while !matches!(self.peek(), Token::Eof) {
            self.parse_unit()?;
            self.skip_newlines();
        }
        if !self.procedures.iter().any(|p| p.is_main) {
            return Err(ParseError::new(
                "missing `program` unit",
                SourceLoc::synthetic(),
            ));
        }
        // Resolve calls now that every unit is known.
        for (stmt, name, loc) in std::mem::take(&mut self.pending_calls) {
            let target = self
                .procedures
                .iter()
                .position(|p| p.name == name)
                .ok_or_else(|| {
                    ParseError::new(format!("call to unknown procedure `{name}`"), loc)
                })?;
            self.stmts[stmt.index()].kind = StmtKind::Call {
                proc: ProcId(target as u32),
            };
        }
        Ok(Program {
            symbols: self.symbols,
            stmts: self.stmts,
            procedures: self.procedures,
        })
    }

    fn parse_unit(&mut self) -> Result<(), ParseError> {
        let is_main = if self.eat_kw("program") {
            true
        } else if self.eat_kw("subroutine") {
            false
        } else {
            return Err(self.err("expected `program` or `subroutine`"));
        };
        let name = self.expect_ident("unit name")?;
        if self.procedures.iter().any(|p| p.name == name) {
            return Err(self.err(format!("duplicate unit `{name}`")));
        }
        self.expect_newline()?;
        let body = self.parse_stmts(&mut None)?;
        if !self.eat_kw("end") {
            return Err(self.err("expected `end`"));
        }
        self.expect_newline()?;
        self.procedures.push(Procedure {
            name,
            is_main,
            body,
        });
        Ok(())
    }

    /// Parses statements until a block terminator. When `close_label` is
    /// `Some(label)`, the sequence may be terminated by `label continue`.
    fn parse_stmts(&mut self, close_label: &mut Option<u32>) -> Result<Vec<StmtId>, ParseError> {
        let mut out = Vec::new();
        loop {
            self.skip_newlines();
            match self.peek() {
                Token::Eof => return Ok(out),
                Token::Ident(s)
                    if matches!(
                        s.as_str(),
                        "end" | "enddo" | "endif" | "endwhile" | "else" | "elseif"
                    ) =>
                {
                    return Ok(out)
                }
                Token::Int(v) => {
                    // `NNN continue` closes a labeled do loop.
                    let v = *v;
                    if close_label.is_some_and(|l| l as i64 == v) && self.peek2().is_kw("continue")
                    {
                        self.bump();
                        self.bump();
                        *close_label = None; // consumed
                        return Ok(out);
                    }
                    return Err(self.err("unexpected integer label"));
                }
                _ => {
                    if let Some(s) = self.parse_stmt()? {
                        out.push(s);
                    }
                }
            }
        }
    }

    /// Parses one statement (or a declaration, which produces no
    /// statement).
    fn parse_stmt(&mut self) -> Result<Option<StmtId>, ParseError> {
        self.with_depth(|p| p.parse_stmt_inner())
    }

    fn parse_stmt_inner(&mut self) -> Result<Option<StmtId>, ParseError> {
        let loc = self.loc();
        let head = match self.peek() {
            Token::Ident(s) => s.clone(),
            other => return Err(self.err(format!("expected statement, found {other:?}"))),
        };
        match head.as_str() {
            "integer" | "real" => {
                self.parse_decl()?;
                Ok(None)
            }
            "do" => {
                // `do while (...)` or counted do.
                if self.peek2().is_kw("while") {
                    self.bump();
                    self.parse_while(loc).map(Some)
                } else {
                    self.parse_do(loc).map(Some)
                }
            }
            "while" => self.parse_while(loc).map(Some),
            "if" => self.parse_if(loc).map(Some),
            "call" => {
                self.bump();
                let name = self.expect_ident("procedure name")?;
                self.expect_newline()?;
                // Placeholder target resolved at end of parse.
                let id = self.new_stmt(
                    StmtKind::Call {
                        proc: ProcId(u32::MAX),
                    },
                    loc,
                );
                self.pending_calls.push((id, name, loc));
                Ok(Some(id))
            }
            "print" => {
                self.bump();
                // Optional Fortran `print *,` prefix.
                if matches!(self.peek(), Token::Star) {
                    self.bump();
                    self.expect(&Token::Comma, "`,` after `print *`")?;
                }
                let mut args = vec![self.parse_expr()?];
                while matches!(self.peek(), Token::Comma) {
                    self.bump();
                    args.push(self.parse_expr()?);
                }
                self.expect_newline()?;
                Ok(Some(self.new_stmt(StmtKind::Print { args }, loc)))
            }
            "return" => {
                self.bump();
                self.expect_newline()?;
                Ok(Some(self.new_stmt(StmtKind::Return, loc)))
            }
            _ => self.parse_assign(loc).map(Some),
        }
    }

    fn parse_decl(&mut self) -> Result<(), ParseError> {
        let ty = if self.eat_kw("integer") {
            ScalarType::Int
        } else {
            self.bump(); // `real`
            ScalarType::Real
        };
        loop {
            let loc = self.loc();
            let name = self.expect_ident("variable name")?;
            let mut dims = Vec::new();
            if matches!(self.peek(), Token::LParen) {
                self.bump();
                dims.push(self.parse_expr()?);
                while matches!(self.peek(), Token::Comma) {
                    self.bump();
                    dims.push(self.parse_expr()?);
                }
                self.expect(&Token::RParen, "`)`")?;
            }
            self.symbols
                .declare(&name, ty, dims)
                .map_err(|m| ParseError::new(m, loc))?;
            if matches!(self.peek(), Token::Comma) {
                self.bump();
            } else {
                break;
            }
        }
        self.expect_newline()
    }

    fn parse_do(&mut self, loc: SourceLoc) -> Result<StmtId, ParseError> {
        self.bump(); // `do`
        let label = match self.peek() {
            Token::Int(v) if *v >= 0 => {
                let v = *v;
                // `v as u32` would silently truncate a hostile label
                // (e.g. 4294967296 → 0) and corrupt loop matching.
                let v = u32::try_from(v)
                    .map_err(|_| self.err(format!("statement label `{v}` out of range")))?;
                self.bump();
                Some(v)
            }
            _ => None,
        };
        let var_name = self.expect_ident("loop variable")?;
        let var = self.symbols.intern_scalar(&var_name);
        self.expect(&Token::Assign, "`=`")?;
        let lo = self.parse_expr()?;
        self.expect(&Token::Comma, "`,`")?;
        let hi = self.parse_expr()?;
        let step = if matches!(self.peek(), Token::Comma) {
            self.bump();
            Some(self.parse_expr()?)
        } else {
            None
        };
        self.expect_newline()?;
        let mut close = label;
        let body = self.parse_stmts(&mut close)?;
        if close.is_some() {
            // Not closed by `label continue`; expect enddo / end do.
            self.expect_enddo()?;
        } else if label.is_none() {
            self.expect_enddo()?;
        }
        self.expect_newline()?;
        Ok(self.new_stmt(
            StmtKind::Do {
                var,
                lo,
                hi,
                step,
                body,
                label,
            },
            loc,
        ))
    }

    fn expect_enddo(&mut self) -> Result<(), ParseError> {
        if self.eat_kw("enddo") {
            return Ok(());
        }
        if self.peek().is_kw("end") && self.peek2().is_kw("do") {
            self.bump();
            self.bump();
            return Ok(());
        }
        Err(self.err("expected `enddo`"))
    }

    fn parse_while(&mut self, loc: SourceLoc) -> Result<StmtId, ParseError> {
        self.bump(); // `while`
        self.expect(&Token::LParen, "`(`")?;
        let cond = self.parse_expr()?;
        self.expect(&Token::RParen, "`)`")?;
        self.expect_newline()?;
        let body = self.parse_stmts(&mut None)?;
        if self.eat_kw("endwhile") || self.eat_kw("enddo") {
            // ok
        } else if self.peek().is_kw("end")
            && (self.peek2().is_kw("while") || self.peek2().is_kw("do"))
        {
            self.bump();
            self.bump();
        } else {
            return Err(self.err("expected `endwhile` or `enddo`"));
        }
        self.expect_newline()?;
        Ok(self.new_stmt(StmtKind::While { cond, body }, loc))
    }

    fn parse_if(&mut self, loc: SourceLoc) -> Result<StmtId, ParseError> {
        self.bump(); // `if`
        self.expect(&Token::LParen, "`(`")?;
        let cond = self.parse_expr()?;
        self.expect(&Token::RParen, "`)`")?;
        if self.eat_kw("then") {
            self.expect_newline()?;
            let then_body = self.parse_stmts(&mut None)?;
            let else_body = if self.peek().is_kw("elseif")
                || (self.peek().is_kw("else") && self.peek2().is_kw("if"))
            {
                // `elseif (...) then` — parse the rest as a nested if.
                if self.eat_kw("elseif") {
                    // rewind trick: re-insert an `if` by parsing directly
                    let nested_loc = self.loc();
                    let nested = self.with_depth(|p| p.parse_if_after_keyword(nested_loc))?;
                    return Ok(self.finish_if(cond, then_body, vec![nested], loc));
                } else {
                    self.bump(); // else
                    let nested_loc = self.loc();
                    self.bump(); // if
                    let nested = self.with_depth(|p| p.parse_if_after_keyword(nested_loc))?;
                    return Ok(self.finish_if(cond, then_body, vec![nested], loc));
                }
            } else if self.eat_kw("else") {
                self.expect_newline()?;
                self.parse_stmts(&mut None)?
            } else {
                Vec::new()
            };
            self.expect_endif()?;
            self.expect_newline()?;
            Ok(self.finish_if(cond, then_body, else_body, loc))
        } else {
            // One-line if: `if (cond) stmt`.
            let inner = self
                .parse_stmt()?
                .ok_or_else(|| self.err("expected a statement after one-line `if`"))?;
            Ok(self.new_stmt(
                StmtKind::If {
                    cond,
                    then_body: vec![inner],
                    else_body: Vec::new(),
                },
                loc,
            ))
        }
    }

    /// Parses the `(cond) then ... endif` part of an `elseif` chain. The
    /// closing `endif` of the chain is shared, so this does not consume it.
    fn parse_if_after_keyword(&mut self, loc: SourceLoc) -> Result<StmtId, ParseError> {
        self.expect(&Token::LParen, "`(`")?;
        let cond = self.parse_expr()?;
        self.expect(&Token::RParen, "`)`")?;
        if !self.eat_kw("then") {
            return Err(self.err("expected `then` after `elseif (...)`"));
        }
        self.expect_newline()?;
        let then_body = self.parse_stmts(&mut None)?;
        let else_body = if self.peek().is_kw("elseif")
            || (self.peek().is_kw("else") && self.peek2().is_kw("if"))
        {
            if self.eat_kw("elseif") {
                let nested_loc = self.loc();
                let nested = self.with_depth(|p| p.parse_if_after_keyword(nested_loc))?;
                vec![nested]
            } else {
                self.bump();
                let nested_loc = self.loc();
                self.bump();
                let nested = self.with_depth(|p| p.parse_if_after_keyword(nested_loc))?;
                vec![nested]
            }
        } else if self.eat_kw("else") {
            self.expect_newline()?;
            self.parse_stmts(&mut None)?
        } else {
            Vec::new()
        };
        // Note: endif is consumed by the outermost caller for elseif
        // chains; since we recursed, consume it here and signal up by
        // producing the statement. The outer caller uses finish_if without
        // re-consuming.
        self.expect_endif()?;
        self.expect_newline()?;
        Ok(self.finish_if(cond, then_body, else_body, loc))
    }

    fn finish_if(
        &mut self,
        cond: Expr,
        then_body: Vec<StmtId>,
        else_body: Vec<StmtId>,
        loc: SourceLoc,
    ) -> StmtId {
        self.new_stmt(
            StmtKind::If {
                cond,
                then_body,
                else_body,
            },
            loc,
        )
    }

    fn expect_endif(&mut self) -> Result<(), ParseError> {
        if self.eat_kw("endif") {
            return Ok(());
        }
        if self.peek().is_kw("end") && self.peek2().is_kw("if") {
            self.bump();
            self.bump();
            return Ok(());
        }
        Err(self.err("expected `endif`"))
    }

    fn parse_assign(&mut self, loc: SourceLoc) -> Result<StmtId, ParseError> {
        let name = self.expect_ident("assignment target")?;
        let lhs = if matches!(self.peek(), Token::LParen) {
            let var = self
                .symbols
                .lookup(&name)
                .filter(|v| self.symbols.var(*v).is_array())
                .ok_or_else(|| self.err(format!("assignment to undeclared array `{name}`")))?;
            self.bump();
            let mut subs = vec![self.parse_expr()?];
            while matches!(self.peek(), Token::Comma) {
                self.bump();
                subs.push(self.parse_expr()?);
            }
            self.expect(&Token::RParen, "`)`")?;
            let rank = self.symbols.var(var).rank();
            if subs.len() != rank {
                return Err(self.err(format!(
                    "array `{name}` has rank {rank} but {} subscripts given",
                    subs.len()
                )));
            }
            LValue::Element(var, subs)
        } else {
            LValue::Scalar(self.symbols.intern_scalar(&name))
        };
        self.expect(&Token::Assign, "`=`")?;
        let rhs = self.parse_expr()?;
        self.expect_newline()?;
        Ok(self.new_stmt(StmtKind::Assign { lhs, rhs }, loc))
    }

    // ----- expressions ---------------------------------------------------

    fn parse_expr(&mut self) -> Result<Expr, ParseError> {
        self.with_depth(|p| p.parse_or())
    }

    fn parse_or(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_and()?;
        while matches!(self.peek(), Token::Or) {
            self.bump();
            let rhs = self.parse_and()?;
            lhs = Expr::bin(BinOp::Or, lhs, rhs);
        }
        Ok(lhs)
    }

    fn parse_and(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_not()?;
        while matches!(self.peek(), Token::And) {
            self.bump();
            let rhs = self.parse_not()?;
            lhs = Expr::bin(BinOp::And, lhs, rhs);
        }
        Ok(lhs)
    }

    fn parse_not(&mut self) -> Result<Expr, ParseError> {
        if matches!(self.peek(), Token::Not) {
            self.bump();
            let inner = self.with_depth(|p| p.parse_not())?;
            return Ok(Expr::Un(UnOp::Not, Box::new(inner)));
        }
        self.parse_cmp()
    }

    fn parse_cmp(&mut self) -> Result<Expr, ParseError> {
        let lhs = self.parse_addsub()?;
        let op = match self.peek() {
            Token::EqEq => BinOp::Eq,
            Token::NotEq => BinOp::Ne,
            Token::Lt => BinOp::Lt,
            Token::Le => BinOp::Le,
            Token::Gt => BinOp::Gt,
            Token::Ge => BinOp::Ge,
            _ => return Ok(lhs),
        };
        self.bump();
        let rhs = self.parse_addsub()?;
        Ok(Expr::bin(op, lhs, rhs))
    }

    fn parse_addsub(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_muldiv()?;
        loop {
            let op = match self.peek() {
                Token::Plus => BinOp::Add,
                Token::Minus => BinOp::Sub,
                _ => break,
            };
            self.bump();
            let rhs = self.parse_muldiv()?;
            lhs = Expr::bin(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn parse_muldiv(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_unary()?;
        loop {
            let op = match self.peek() {
                Token::Star => BinOp::Mul,
                Token::Slash => BinOp::Div,
                _ => break,
            };
            self.bump();
            let rhs = self.parse_unary()?;
            lhs = Expr::bin(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn parse_unary(&mut self) -> Result<Expr, ParseError> {
        match self.peek() {
            Token::Minus => {
                self.bump();
                let inner = self.with_depth(|p| p.parse_unary())?;
                Ok(Expr::Un(UnOp::Neg, Box::new(inner)))
            }
            Token::Plus => {
                self.bump();
                self.with_depth(|p| p.parse_unary())
            }
            _ => self.parse_primary(),
        }
    }

    fn parse_primary(&mut self) -> Result<Expr, ParseError> {
        let loc = self.loc();
        match self.bump() {
            Token::Int(v) => Ok(Expr::IntLit(v)),
            Token::Real(v) => Ok(Expr::RealLit(v)),
            Token::LParen => {
                let inner = self.parse_expr()?;
                self.expect(&Token::RParen, "`)`")?;
                Ok(inner)
            }
            Token::Ident(name) => {
                if matches!(self.peek(), Token::LParen) {
                    // Array reference or intrinsic call.
                    let declared_array = self
                        .symbols
                        .lookup(&name)
                        .filter(|v| self.symbols.var(*v).is_array());
                    self.bump();
                    let mut args = vec![self.parse_expr()?];
                    while matches!(self.peek(), Token::Comma) {
                        self.bump();
                        args.push(self.parse_expr()?);
                    }
                    self.expect(&Token::RParen, "`)`")?;
                    if let Some(var) = declared_array {
                        let rank = self.symbols.var(var).rank();
                        if args.len() != rank {
                            return Err(ParseError::new(
                                format!(
                                    "array `{name}` has rank {rank} but {} subscripts given",
                                    args.len()
                                ),
                                loc,
                            ));
                        }
                        return Ok(Expr::Element(var, args));
                    }
                    if let Some(intr) = Intrinsic::from_name(&name) {
                        return Ok(Expr::Call(intr, args));
                    }
                    Err(ParseError::new(
                        format!("`{name}` is not a declared array or intrinsic"),
                        loc,
                    ))
                } else {
                    Ok(Expr::Var(self.symbols.intern_scalar(&name)))
                }
            }
            other => Err(ParseError::new(
                format!("expected expression, found {other:?}"),
                loc,
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> Program {
        parse_program(src).unwrap_or_else(|e| panic!("{e}\nsource:\n{src}"))
    }

    #[test]
    fn minimal_program() {
        let p = parse("program t\nx = 1\nend\n");
        assert_eq!(p.procedures.len(), 1);
        assert!(p.procedures[0].is_main);
        assert_eq!(p.procedures[0].body.len(), 1);
    }

    #[test]
    fn missing_program_unit_is_error() {
        assert!(parse_program("subroutine s\nx = 1\nend\n").is_err());
    }

    #[test]
    fn do_loop_with_label_and_continue() {
        let p = parse(
            "program t
             integer i, n
             real x(10)
             do 140 i = 1, n
               x(i) = i
 140         continue
             end",
        );
        let main = p.main();
        let body = &p.procedure(main).body;
        match &p.stmt(body[0]).kind {
            StmtKind::Do { label, body, .. } => {
                assert_eq!(*label, Some(140));
                assert_eq!(body.len(), 1);
            }
            other => panic!("expected do, got {other:?}"),
        }
        assert_eq!(p.loop_label(main, body[0]), "T/do140");
    }

    #[test]
    fn nested_do_while_if() {
        let p = parse(
            "program t
             integer i, p, n
             real x(100), y(100)
             p = 0
             do i = 1, n
               while (p < 10)
                 p = p + 1
                 x(p) = y(i)
               endwhile
               if (p >= 1) then
                 y(i) = x(p)
                 p = p - 1
               else
                 y(i) = 0
               endif
             enddo
             end",
        );
        let main = p.main();
        let all = p.stmts_in(&p.procedure(main).body);
        assert!(all.len() >= 8);
    }

    #[test]
    fn one_line_if() {
        let p = parse("program t\ninteger q, i\nif (i > 0) q = q + 1\nend\n");
        let body = &p.procedure(p.main()).body;
        match &p.stmt(body[0]).kind {
            StmtKind::If {
                then_body,
                else_body,
                ..
            } => {
                assert_eq!(then_body.len(), 1);
                assert!(else_body.is_empty());
            }
            other => panic!("expected if, got {other:?}"),
        }
    }

    #[test]
    fn elseif_chain() {
        let p = parse(
            "program t
             integer a, b
             if (a > 0) then
               b = 1
             elseif (a < 0) then
               b = 2
             else
               b = 3
             endif
             end",
        );
        let body = &p.procedure(p.main()).body;
        match &p.stmt(body[0]).kind {
            StmtKind::If { else_body, .. } => {
                assert_eq!(else_body.len(), 1);
                assert!(matches!(p.stmt(else_body[0]).kind, StmtKind::If { .. }));
            }
            other => panic!("expected if, got {other:?}"),
        }
    }

    #[test]
    fn call_resolution_is_order_independent() {
        let p = parse(
            "program t
             call s
             end
             subroutine s
             x = 1
             end",
        );
        let body = &p.procedure(p.main()).body;
        match &p.stmt(body[0]).kind {
            StmtKind::Call { proc } => {
                assert_eq!(p.procedure(*proc).name, "s");
            }
            other => panic!("expected call, got {other:?}"),
        }
        // Forward reference also works: subroutine defined before program.
        let p2 = parse(
            "subroutine s
             x = 1
             end
             program t
             call s
             end",
        );
        assert!(p2.find_procedure("s").is_some());
    }

    #[test]
    fn unknown_call_is_error() {
        assert!(parse_program("program t\ncall nope\nend\n").is_err());
    }

    #[test]
    fn undeclared_array_is_error() {
        assert!(parse_program("program t\nq(1) = 2\nend\n").is_err());
    }

    #[test]
    fn rank_mismatch_is_error() {
        assert!(parse_program("program t\nreal a(5,5)\na(1) = 2\nend\n").is_err());
        assert!(parse_program("program t\nreal a(5)\nx = a(1,2)\nend\n").is_err());
    }

    #[test]
    fn intrinsics_parse() {
        let p = parse("program t\nx = min(1, 2) + sqrt(4.0) + mod(7, 3)\nend\n");
        let body = &p.procedure(p.main()).body;
        match &p.stmt(body[0]).kind {
            StmtKind::Assign { rhs, .. } => {
                let mut vars = Vec::new();
                rhs.collect_vars(&mut vars);
                assert!(vars.is_empty());
            }
            other => panic!("expected assign, got {other:?}"),
        }
    }

    #[test]
    fn nested_indirect_subscripts() {
        let p = parse(
            "program t
             integer pos(10), k
             real x(10), y(10)
             y(k) = x(pos(k))
             end",
        );
        let body = &p.procedure(p.main()).body;
        match &p.stmt(body[0]).kind {
            StmtKind::Assign { rhs, .. } => match rhs {
                Expr::Element(_, subs) => {
                    assert!(matches!(subs[0], Expr::Element(..)));
                }
                other => panic!("expected element, got {other:?}"),
            },
            other => panic!("expected assign, got {other:?}"),
        }
    }

    #[test]
    fn do_while_form() {
        let p = parse(
            "program t
             integer i
             do while (i < 10)
               i = i + 1
             enddo
             end",
        );
        let body = &p.procedure(p.main()).body;
        assert!(matches!(p.stmt(body[0]).kind, StmtKind::While { .. }));
    }

    #[test]
    fn print_statement() {
        let p = parse("program t\nprint *, 1, 2\nprint 3\nend\n");
        let body = &p.procedure(p.main()).body;
        match &p.stmt(body[0]).kind {
            StmtKind::Print { args } => assert_eq!(args.len(), 2),
            other => panic!("expected print, got {other:?}"),
        }
    }

    #[test]
    fn do_with_step() {
        let p = parse("program t\ninteger i\ndo i = 1, 10, 2\ni = i\nenddo\nend\n");
        let body = &p.procedure(p.main()).body;
        match &p.stmt(body[0]).kind {
            StmtKind::Do { step, .. } => assert!(step.is_some()),
            other => panic!("expected do, got {other:?}"),
        }
    }

    #[test]
    fn operator_precedence() {
        let p = parse("program t\nx = 1 + 2 * 3\nend\n");
        let body = &p.procedure(p.main()).body;
        match &p.stmt(body[0]).kind {
            StmtKind::Assign { rhs, .. } => match rhs {
                Expr::Bin(BinOp::Add, _, r) => {
                    assert!(matches!(**r, Expr::Bin(BinOp::Mul, _, _)));
                }
                other => panic!("expected add at top, got {other:?}"),
            },
            other => panic!("expected assign, got {other:?}"),
        }
    }
}
