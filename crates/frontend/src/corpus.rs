//! A deterministic corpus of malformed and hostile programs.
//!
//! Shared by three consumers with one invariant — **no panic escapes
//! `parse` + `analyze`**:
//!
//! - `tests/parser_robustness.rs` feeds every case to [`parse_program`]
//!   and asserts a clean `Ok`/`Err`;
//! - the driver's no-panic test compiles whatever parses;
//! - the `irr-service` load generator mixes these cases into its
//!   request stream so the pool's panic isolation is exercised by
//!   realistic garbage, not just synthetic faults.
//!
//! Every case is generated (no fixture files) and fully deterministic:
//! the mutation cases use a seeded [`SplitMix64`]-style generator, so a
//! failure reproduces from the case name alone.

use crate::parser::MAX_NESTING_DEPTH;

/// One corpus entry: a stable name (for attribution in test failures
/// and service telemetry) and the program text.
#[derive(Clone, Debug)]
pub struct CorpusCase {
    /// Stable identifier, e.g. `"truncated-do"` or `"mutated-17"`.
    pub name: &'static str,
    /// Program text; may or may not parse, must never panic the
    /// front end or the analyses.
    pub source: String,
}

/// A small deterministic generator (SplitMix64) for the mutation
/// cases — self-contained so the front end keeps zero dependencies.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }
}

/// A well-formed donor program the mutation cases corrupt.
const DONOR: &str = "program t
 integer i, j, n, idx(100), rowptr(9), rowlen(8)
 real x(100), y(100), front(16)
 n = 8
 do i = 1, n
   rowlen(i) = 0
 enddo
 rowptr(1) = 1
 do i = 1, n
   rowptr(i + 1) = rowptr(i) + rowlen(i)
 enddo
 do 400 i = 1, n
   do j = 1, rowlen(i)
     front(rowptr(i) + j - 1) = front(rowptr(i) + j - 1) * 0.98
   enddo
 400 continue
 if (n > 0) then
   y(1) = x(idx(1))
 endif
 print y(1)
 end";

/// Hand-written malformed shapes: each targets one front-end hazard.
fn handcrafted() -> Vec<CorpusCase> {
    let case = |name, source: String| CorpusCase { name, source };
    vec![
        case(
            "truncated-do",
            "program t\ninteger i\ndo i = 1, 10\nx = 1\n".into(),
        ),
        case(
            "truncated-mid-expr",
            "program t\ninteger i\nx = 1 + (2 *\n".into(),
        ),
        case(
            "mismatched-label",
            "program t\ninteger i\nreal x(10)\ndo 140 i = 1, 10\nx(i) = 1\n 150 continue\nend\n"
                .into(),
        ),
        case(
            "label-closes-wrong-loop",
            "program t\ninteger i, j\nreal x(10)\ndo 10 i = 1, 5\ndo 20 j = 1, 5\nx(j) = 1\n 10 continue\n 20 continue\nend\n"
                .into(),
        ),
        case(
            "giant-int-literal",
            "program t\nx = 99999999999999999999999999999\nend\n".into(),
        ),
        case(
            "giant-real-exponent",
            "program t\nx = 1.0e999999999\nend\n".into(),
        ),
        case(
            "huge-label",
            "program t\ninteger i\nreal x(10)\ndo 4294967296 i = 1, 10\nx(i) = 1\nenddo\nend\n"
                .into(),
        ),
        case("empty", String::new()),
        case("only-newlines", "\n\n\n\n".into()),
        case("missing-program-unit", "subroutine s\nx = 1\nend\n".into()),
        case(
            "duplicate-unit",
            "program t\nx = 1\nend\nsubroutine t\ny = 2\nend\n".into(),
        ),
        case("unknown-call", "program t\ncall ghost\nend\n".into()),
        case("undeclared-array", "program t\nq(1) = 2\nend\n".into()),
        case(
            "rank-mismatch",
            "program t\nreal a(5, 5)\na(1) = 2\nend\n".into(),
        ),
        case(
            "subscript-arity-flood",
            format!("program t\nreal a(5)\na({}) = 1\nend\n", vec!["1"; 64].join(", ")),
        ),
        case("stray-operator", "program t\nx = * 3\nend\n".into()),
        case("assign-to-literal", "program t\n3 = x\nend\n".into()),
        case(
            "unterminated-if",
            "program t\nif (x > 0) then\ny = 1\nend\n".into(),
        ),
        case(
            "else-without-if",
            "program t\nelse\ny = 1\nendif\nend\n".into(),
        ),
        case(
            "deep-paren-nest",
            format!(
                "program t\nx = {}1{}\nend\n",
                "(".repeat(MAX_NESTING_DEPTH + 50),
                ")".repeat(MAX_NESTING_DEPTH + 50)
            ),
        ),
        case(
            "deep-unary-nest",
            format!("program t\nx = {}1\nend\n", "-".repeat(MAX_NESTING_DEPTH + 50)),
        ),
        case("deep-loop-nest", {
            let depth = MAX_NESTING_DEPTH + 50;
            let mut s = String::from("program t\ninteger i\n");
            for _ in 0..depth {
                s.push_str("do i = 1, 2\n");
            }
            s.push_str("x = 1\n");
            for _ in 0..depth {
                s.push_str("enddo\n");
            }
            s.push_str("end\n");
            s
        }),
        case("deep-if-nest", {
            let depth = MAX_NESTING_DEPTH + 50;
            let mut s = String::from("program t\n");
            for _ in 0..depth {
                s.push_str("if (x > 0) then\n");
            }
            s.push_str("y = 1\n");
            for _ in 0..depth {
                s.push_str("endif\n");
            }
            s.push_str("end\n");
            s
        }),
        case(
            "long-ident",
            format!("program t\n{} = 1\nend\n", "a".repeat(64 * 1024)),
        ),
        case(
            "many-args-print",
            format!("program t\nprint {}\nend\n", vec!["1"; 2048].join(", ")),
        ),
        case("non-ascii-soup", "program t\nx = 1 \u{2603}\u{fe0f} + 2\nend\n".into()),
        case("nul-bytes", "program t\nx\u{0} = 1\nend\n".into()),
    ]
}

/// The full corpus: the handcrafted shapes plus `mutations` seeded
/// corruptions of a well-formed donor program (span deletions,
/// duplications, and character splices — the classic fuzz trio).
pub fn malformed_corpus(mutations: usize) -> Vec<CorpusCase> {
    let mut out = handcrafted();
    let mut rng = Rng(0x1337_c0de);
    // Leak the names: corpus construction happens O(1) times per
    // process (tests, load-gen startup), and `&'static str` keeps the
    // case struct trivially copyable into service telemetry.
    for i in 0..mutations {
        let name: &'static str = Box::leak(format!("mutated-{i}").into_boxed_str());
        out.push(CorpusCase {
            name,
            source: mutate(DONOR, &mut rng),
        });
    }
    out
}

fn mutate(src: &str, rng: &mut Rng) -> String {
    let mut text = src.to_string();
    let edits = 1 + rng.below(4);
    for _ in 0..edits {
        // Byte-oriented edits can split UTF-8; the donor is pure ASCII
        // and splices insert ASCII, so slicing stays valid.
        let len = text.len();
        if len < 8 {
            break;
        }
        let at = rng.below(len - 4);
        match rng.below(3) {
            0 => {
                // Delete a short span.
                let span = 1 + rng.below(16).min(len - at - 1);
                text.replace_range(at..at + span, "");
            }
            1 => {
                // Duplicate a short span.
                let span = 1 + rng.below(16).min(len - at - 1);
                let dup = text[at..at + span].to_string();
                text.insert_str(at, &dup);
            }
            _ => {
                // Splice a random hostile character.
                const SPLICE: &[char] = &['(', ')', ',', '=', '*', '0', '9', '\n', ' '];
                let c = SPLICE[rng.below(SPLICE.len())];
                text.insert(at, c);
            }
        }
    }
    text
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_is_deterministic() {
        let a = malformed_corpus(20);
        let b = malformed_corpus(20);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.source, y.source);
        }
    }

    #[test]
    fn corpus_has_the_issue_mandated_shapes() {
        let names: Vec<&str> = malformed_corpus(0).iter().map(|c| c.name).collect();
        for required in [
            "truncated-do",
            "mismatched-label",
            "giant-int-literal",
            "deep-loop-nest",
        ] {
            assert!(names.contains(&required), "missing {required}");
        }
    }
}
