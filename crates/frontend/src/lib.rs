//! Mini-Fortran frontend for the irregular-memory-access analysis suite.
//!
//! This crate implements the language substrate that the analyses from
//! Lin & Padua, *Compiler Analysis of Irregular Memory Accesses*
//! (PLDI 2000) operate on: a small Fortran-like language with `do` loops,
//! `while` loops, `if` statements, procedure calls, and multi-dimensional
//! arrays.
//!
//! Following the paper's stated interprocedural model (§3.2.1), there is
//! **no parameter passing**: all variables live in a single global scope and
//! procedures communicate through globals. Undeclared scalars follow
//! Fortran implicit typing (`i`–`n` are integers, the rest are reals).
//!
//! # Example
//!
//! ```
//! use irr_frontend::parse_program;
//!
//! let src = "
//! program demo
//!   integer i, n
//!   real x(100)
//!   n = 100
//!   do i = 1, n
//!     x(i) = i * 2
//!   enddo
//! end
//! ";
//! let program = parse_program(src).expect("parse");
//! assert_eq!(program.procedures.len(), 1);
//! ```

pub mod ast;
pub mod builder;
pub mod corpus;
pub mod diag;
pub mod lexer;
pub mod parser;
pub mod printer;
pub mod symbols;
pub mod visit;

pub use ast::{BinOp, Expr, Intrinsic, LValue, Procedure, Program, Stmt, StmtId, StmtKind, UnOp};
pub use builder::ProgramBuilder;
pub use corpus::{malformed_corpus, CorpusCase};
pub use diag::{ParseError, SourceLoc};
pub use parser::parse_program;
pub use printer::print_program;
pub use symbols::{ProcId, ScalarType, SymbolTable, VarId, VarInfo};
