//! Lexer for the mini-Fortran language.
//!
//! Free-form source: statements are terminated by newlines (or `;`),
//! comments start with `!` and run to end of line, keywords are
//! case-insensitive. Logical operators may be written either in Fortran
//! style (`.and.`, `.le.`, ...) or in symbolic style (`<=`, `==`, ...).

use crate::diag::{ParseError, SourceLoc};

/// A lexical token.
#[derive(Clone, PartialEq, Debug)]
pub enum Token {
    /// Identifier or keyword, lower-cased.
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Real literal.
    Real(f64),
    /// End of statement (newline or `;`).
    Newline,
    LParen,
    RParen,
    Comma,
    Assign,
    Plus,
    Minus,
    Star,
    Slash,
    EqEq,
    NotEq,
    Lt,
    Le,
    Gt,
    Ge,
    And,
    Or,
    Not,
    /// End of input.
    Eof,
}

impl Token {
    /// Whether this token is the identifier/keyword `kw` (already
    /// lower-case).
    pub fn is_kw(&self, kw: &str) -> bool {
        matches!(self, Token::Ident(s) if s == kw)
    }
}

/// A token plus its source location.
#[derive(Clone, Debug)]
pub struct Spanned {
    pub token: Token,
    pub loc: SourceLoc,
}

/// Tokenizes `src` into a vector of [`Spanned`] tokens ending with
/// [`Token::Eof`].
///
/// # Errors
///
/// Returns a [`ParseError`] on malformed numeric literals or unknown
/// characters.
pub fn tokenize(src: &str) -> Result<Vec<Spanned>, ParseError> {
    let mut out: Vec<Spanned> = Vec::new();
    let bytes = src.as_bytes();
    let mut i = 0usize;
    let mut line: u32 = 1;
    let mut line_start = 0usize;
    let loc = |i: usize, line: u32, line_start: usize| SourceLoc {
        line,
        col: (i - line_start + 1) as u32,
    };
    macro_rules! push {
        ($tok:expr, $at:expr) => {
            out.push(Spanned {
                token: $tok,
                loc: loc($at, line, line_start),
            })
        };
    }
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\r' => i += 1,
            '!' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '\n' => {
                // Collapse repeated newlines.
                if !matches!(out.last().map(|s| &s.token), Some(Token::Newline) | None) {
                    push!(Token::Newline, i);
                }
                i += 1;
                line += 1;
                line_start = i;
            }
            ';' => {
                if !matches!(out.last().map(|s| &s.token), Some(Token::Newline) | None) {
                    push!(Token::Newline, i);
                }
                i += 1;
            }
            '(' => {
                push!(Token::LParen, i);
                i += 1;
            }
            ')' => {
                push!(Token::RParen, i);
                i += 1;
            }
            ',' => {
                push!(Token::Comma, i);
                i += 1;
            }
            '+' => {
                push!(Token::Plus, i);
                i += 1;
            }
            '-' => {
                push!(Token::Minus, i);
                i += 1;
            }
            '*' => {
                push!(Token::Star, i);
                i += 1;
            }
            '/' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    push!(Token::NotEq, i);
                    i += 2;
                } else {
                    push!(Token::Slash, i);
                    i += 1;
                }
            }
            '=' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    push!(Token::EqEq, i);
                    i += 2;
                } else {
                    push!(Token::Assign, i);
                    i += 1;
                }
            }
            '<' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    push!(Token::Le, i);
                    i += 2;
                } else {
                    push!(Token::Lt, i);
                    i += 1;
                }
            }
            '>' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    push!(Token::Ge, i);
                    i += 2;
                } else {
                    push!(Token::Gt, i);
                    i += 1;
                }
            }
            '&' if i + 1 < bytes.len() && bytes[i + 1] == b'&' => {
                push!(Token::And, i);
                i += 2;
            }
            '|' if i + 1 < bytes.len() && bytes[i + 1] == b'|' => {
                push!(Token::Or, i);
                i += 2;
            }
            '.' => {
                // Either a Fortran dotted operator (.and., .le., ...) or a
                // real literal starting with '.'.
                if i + 1 < bytes.len() && bytes[i + 1].is_ascii_alphabetic() {
                    let start = i + 1;
                    let mut j = start;
                    while j < bytes.len() && bytes[j].is_ascii_alphabetic() {
                        j += 1;
                    }
                    if j < bytes.len() && bytes[j] == b'.' {
                        let word = src[start..j].to_ascii_lowercase();
                        let tok = match word.as_str() {
                            "and" => Token::And,
                            "or" => Token::Or,
                            "not" => Token::Not,
                            "eq" => Token::EqEq,
                            "ne" => Token::NotEq,
                            "lt" => Token::Lt,
                            "le" => Token::Le,
                            "gt" => Token::Gt,
                            "ge" => Token::Ge,
                            "true" | "false" => {
                                return Err(ParseError::new(
                                    "logical literals are not supported; use comparisons",
                                    loc(i, line, line_start),
                                ))
                            }
                            other => {
                                return Err(ParseError::new(
                                    format!("unknown dotted operator `.{other}.`"),
                                    loc(i, line, line_start),
                                ))
                            }
                        };
                        push!(tok, i);
                        i = j + 1;
                        continue;
                    }
                }
                // Real literal like `.5`.
                let (tok, len) = lex_number(&src[i..], loc(i, line, line_start))?;
                push!(tok, i);
                i += len;
            }
            '0'..='9' => {
                let (tok, len) = lex_number(&src[i..], loc(i, line, line_start))?;
                push!(tok, i);
                i += len;
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                push!(Token::Ident(src[start..i].to_ascii_lowercase()), start);
            }
            other => {
                return Err(ParseError::new(
                    format!("unexpected character `{other}`"),
                    loc(i, line, line_start),
                ))
            }
        }
    }
    if !matches!(out.last().map(|s| &s.token), Some(Token::Newline) | None) {
        out.push(Spanned {
            token: Token::Newline,
            loc: loc(i, line, line_start),
        });
    }
    out.push(Spanned {
        token: Token::Eof,
        loc: loc(i.min(bytes.len()), line, line_start),
    });
    Ok(out)
}

/// Lexes a number at the start of `s`; returns the token and byte length.
fn lex_number(s: &str, at: SourceLoc) -> Result<(Token, usize), ParseError> {
    let bytes = s.as_bytes();
    let mut i = 0;
    let mut is_real = false;
    while i < bytes.len() && bytes[i].is_ascii_digit() {
        i += 1;
    }
    if i < bytes.len() && bytes[i] == b'.' {
        // Don't treat `1.and.` as a real: only consume the dot when what
        // follows is a digit, an exponent, or a non-letter.
        let next_alpha = bytes.get(i + 1).is_some_and(|b| b.is_ascii_alphabetic());
        let next_digit = bytes.get(i + 1).is_some_and(|b| b.is_ascii_digit());
        if !next_alpha || next_digit {
            is_real = true;
            i += 1;
            while i < bytes.len() && bytes[i].is_ascii_digit() {
                i += 1;
            }
        }
    }
    if i < bytes.len()
        && (bytes[i] == b'e' || bytes[i] == b'E' || bytes[i] == b'd' || bytes[i] == b'D')
    {
        let mut j = i + 1;
        if j < bytes.len() && (bytes[j] == b'+' || bytes[j] == b'-') {
            j += 1;
        }
        if j < bytes.len() && bytes[j].is_ascii_digit() {
            is_real = true;
            i = j;
            while i < bytes.len() && bytes[i].is_ascii_digit() {
                i += 1;
            }
        }
    }
    let text = &s[..i];
    if is_real {
        let normalized = text.replace(['d', 'D'], "e");
        normalized
            .parse::<f64>()
            .map(|v| (Token::Real(v), i))
            .map_err(|_| ParseError::new(format!("bad real literal `{text}`"), at))
    } else {
        text.parse::<i64>()
            .map(|v| (Token::Int(v), i))
            .map_err(|_| ParseError::new(format!("bad integer literal `{text}`"), at))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Token> {
        tokenize(src)
            .unwrap()
            .into_iter()
            .map(|s| s.token)
            .collect()
    }

    #[test]
    fn simple_assignment() {
        assert_eq!(
            toks("x = 1 + 2\n"),
            vec![
                Token::Ident("x".into()),
                Token::Assign,
                Token::Int(1),
                Token::Plus,
                Token::Int(2),
                Token::Newline,
                Token::Eof
            ]
        );
    }

    #[test]
    fn dotted_operators() {
        assert_eq!(
            toks("a .and. b .le. c"),
            vec![
                Token::Ident("a".into()),
                Token::And,
                Token::Ident("b".into()),
                Token::Le,
                Token::Ident("c".into()),
                Token::Newline,
                Token::Eof
            ]
        );
    }

    #[test]
    fn symbolic_operators() {
        assert_eq!(
            toks("a /= b == c <= d >= e < f > g"),
            vec![
                Token::Ident("a".into()),
                Token::NotEq,
                Token::Ident("b".into()),
                Token::EqEq,
                Token::Ident("c".into()),
                Token::Le,
                Token::Ident("d".into()),
                Token::Ge,
                Token::Ident("e".into()),
                Token::Lt,
                Token::Ident("f".into()),
                Token::Gt,
                Token::Ident("g".into()),
                Token::Newline,
                Token::Eof
            ]
        );
    }

    #[test]
    fn real_literals() {
        assert_eq!(toks("1.5")[0], Token::Real(1.5));
        assert_eq!(toks(".25")[0], Token::Real(0.25));
        assert_eq!(toks("1e3")[0], Token::Real(1000.0));
        assert_eq!(toks("2.5d-1")[0], Token::Real(0.25));
        assert_eq!(toks("42")[0], Token::Int(42));
    }

    #[test]
    fn integer_followed_by_dotted_op() {
        assert_eq!(
            toks("1 .le. n")[..3],
            [Token::Int(1), Token::Le, Token::Ident("n".into())]
        );
        // Even without the space Fortran treats `1.le.` as `1 .le.`.
        assert_eq!(
            toks("1.le.n")[..3],
            [Token::Int(1), Token::Le, Token::Ident("n".into())]
        );
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            toks("x = 1 ! set x\ny = 2"),
            vec![
                Token::Ident("x".into()),
                Token::Assign,
                Token::Int(1),
                Token::Newline,
                Token::Ident("y".into()),
                Token::Assign,
                Token::Int(2),
                Token::Newline,
                Token::Eof
            ]
        );
    }

    #[test]
    fn newlines_collapse() {
        assert_eq!(
            toks("\n\n\nx = 1\n\n\n"),
            vec![
                Token::Ident("x".into()),
                Token::Assign,
                Token::Int(1),
                Token::Newline,
                Token::Eof
            ]
        );
    }

    #[test]
    fn locations_track_lines() {
        let spanned = tokenize("a = 1\nbb = 2").unwrap();
        let bb = spanned
            .iter()
            .find(|s| s.token.is_kw("bb"))
            .expect("bb token");
        assert_eq!(bb.loc.line, 2);
        assert_eq!(bb.loc.col, 1);
    }

    #[test]
    fn unknown_character_is_an_error() {
        assert!(tokenize("x = #").is_err());
        assert!(tokenize("a .foo. b").is_err());
    }
}
