//! Symbol tables: variables and procedures.
//!
//! All variables are global, per the paper's interprocedural model
//! ("we assume no parameter passing, values are passed by global
//! variables only", §3.2.1).

use crate::ast::Expr;
use std::fmt;

/// Identifier of a variable in the global [`SymbolTable`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct VarId(pub u32);

/// Identifier of a procedure in a [`crate::ast::Program`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ProcId(pub u32);

impl VarId {
    /// Index into the symbol table's variable list.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Reconstructs a `VarId` from its symbol-table index (the inverse
    /// of [`VarId::index`], for executors that key per-variable state
    /// by dense index).
    pub fn from_index(i: usize) -> VarId {
        VarId(i as u32)
    }
}

impl ProcId {
    /// Index into a program's procedure list.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Display for ProcId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// The scalar element type of a variable.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ScalarType {
    /// 64-bit signed integer (`integer`).
    Int,
    /// 64-bit float (`real`).
    Real,
}

impl ScalarType {
    /// Fortran implicit typing: identifiers starting with `i`..`n` are
    /// integers, everything else is real.
    pub fn implicit_for(name: &str) -> ScalarType {
        match name.chars().next() {
            Some(c) if ('i'..='n').contains(&c.to_ascii_lowercase()) => ScalarType::Int,
            _ => ScalarType::Real,
        }
    }
}

impl fmt::Display for ScalarType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScalarType::Int => write!(f, "integer"),
            ScalarType::Real => write!(f, "real"),
        }
    }
}

/// Declaration record for one (global) variable.
#[derive(Clone, Debug)]
pub struct VarInfo {
    /// Source-level name, lower-cased.
    pub name: String,
    /// Element type.
    pub ty: ScalarType,
    /// Dimension extents; empty for scalars. Each dimension ranges
    /// `1..=extent` (Fortran convention).
    pub dims: Vec<Expr>,
}

impl VarInfo {
    /// Whether this variable is an array.
    pub fn is_array(&self) -> bool {
        !self.dims.is_empty()
    }

    /// Number of dimensions (0 for scalars).
    pub fn rank(&self) -> usize {
        self.dims.len()
    }
}

/// The single global symbol table of a program.
#[derive(Clone, Debug, Default)]
pub struct SymbolTable {
    vars: Vec<VarInfo>,
}

impl SymbolTable {
    /// Creates an empty symbol table.
    pub fn new() -> Self {
        SymbolTable::default()
    }

    /// Looks a variable up by (case-insensitive) name.
    pub fn lookup(&self, name: &str) -> Option<VarId> {
        let lower = name.to_ascii_lowercase();
        self.vars
            .iter()
            .position(|v| v.name == lower)
            .map(|i| VarId(i as u32))
    }

    /// Declares a new variable; returns an error message if the name is
    /// already declared with a conflicting shape or type.
    pub fn declare(
        &mut self,
        name: &str,
        ty: ScalarType,
        dims: Vec<Expr>,
    ) -> Result<VarId, String> {
        let lower = name.to_ascii_lowercase();
        if let Some(id) = self.lookup(&lower) {
            let existing = &self.vars[id.index()];
            if existing.ty != ty || existing.dims.len() != dims.len() {
                return Err(format!("conflicting redeclaration of `{lower}`"));
            }
            return Ok(id);
        }
        let id = VarId(self.vars.len() as u32);
        self.vars.push(VarInfo {
            name: lower,
            ty,
            dims,
        });
        Ok(id)
    }

    /// Returns an existing variable or declares a scalar with implicit
    /// typing.
    pub fn intern_scalar(&mut self, name: &str) -> VarId {
        if let Some(id) = self.lookup(name) {
            return id;
        }
        let ty = ScalarType::implicit_for(name);
        self.declare(name, ty, Vec::new())
            .expect("fresh scalar declaration cannot conflict")
    }

    /// Variable record for `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not from this table.
    pub fn var(&self, id: VarId) -> &VarInfo {
        &self.vars[id.index()]
    }

    /// Variable name for `id`.
    pub fn name(&self, id: VarId) -> &str {
        &self.vars[id.index()].name
    }

    /// Number of declared variables.
    pub fn len(&self) -> usize {
        self.vars.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.vars.is_empty()
    }

    /// Iterates over `(VarId, &VarInfo)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (VarId, &VarInfo)> {
        self.vars
            .iter()
            .enumerate()
            .map(|(i, v)| (VarId(i as u32), v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn implicit_typing_follows_fortran() {
        assert_eq!(ScalarType::implicit_for("i"), ScalarType::Int);
        assert_eq!(ScalarType::implicit_for("n"), ScalarType::Int);
        assert_eq!(ScalarType::implicit_for("kount"), ScalarType::Int);
        assert_eq!(ScalarType::implicit_for("x"), ScalarType::Real);
        assert_eq!(ScalarType::implicit_for("alpha"), ScalarType::Real);
        assert_eq!(ScalarType::implicit_for("I"), ScalarType::Int);
    }

    #[test]
    fn declare_and_lookup_are_case_insensitive() {
        let mut t = SymbolTable::new();
        let a = t.declare("Foo", ScalarType::Real, Vec::new()).unwrap();
        assert_eq!(t.lookup("foo"), Some(a));
        assert_eq!(t.lookup("FOO"), Some(a));
        assert_eq!(t.name(a), "foo");
    }

    #[test]
    fn redeclaration_with_same_shape_is_idempotent() {
        let mut t = SymbolTable::new();
        let a = t.declare("x", ScalarType::Real, Vec::new()).unwrap();
        let b = t.declare("x", ScalarType::Real, Vec::new()).unwrap();
        assert_eq!(a, b);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn conflicting_redeclaration_is_rejected() {
        let mut t = SymbolTable::new();
        t.declare("x", ScalarType::Real, Vec::new()).unwrap();
        assert!(t.declare("x", ScalarType::Int, Vec::new()).is_err());
    }

    #[test]
    fn intern_scalar_uses_implicit_type() {
        let mut t = SymbolTable::new();
        let i = t.intern_scalar("idx");
        assert_eq!(t.var(i).ty, ScalarType::Int);
        let x = t.intern_scalar("xval");
        assert_eq!(t.var(x).ty, ScalarType::Real);
    }
}
