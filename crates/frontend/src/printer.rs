//! Pretty-printer that regenerates parsable source from an AST.
//!
//! `parse(print(p))` is structurally identical to `p` (used by the
//! round-trip property tests).

use crate::ast::{BinOp, Expr, LValue, Program, StmtId, StmtKind, UnOp};
use crate::symbols::{ScalarType, SymbolTable};
use std::fmt::Write as _;

/// Renders a whole program as mini-Fortran source.
pub fn print_program(p: &Program) -> String {
    let mut out = String::new();
    // Declarations first (all variables are global; declare them in the
    // main unit so a reparse reconstructs the same table).
    for (i, proc) in p.procedures.iter().enumerate() {
        if proc.is_main {
            let _ = writeln!(out, "program {}", proc.name);
            print_decls(&p.symbols, &mut out);
        } else {
            let _ = writeln!(out, "subroutine {}", proc.name);
        }
        print_body(p, &proc.body, 1, &mut out);
        let _ = writeln!(out, "end");
        if i + 1 < p.procedures.len() {
            out.push('\n');
        }
    }
    out
}

fn print_decls(symbols: &SymbolTable, out: &mut String) {
    for (_, v) in symbols.iter() {
        let kw = match v.ty {
            ScalarType::Int => "integer",
            ScalarType::Real => "real",
        };
        if v.dims.is_empty() {
            // Scalars with implicit-compatible types need no declaration,
            // but printing them keeps explicitly-typed scalars correct.
            if ScalarType::implicit_for(&v.name) != v.ty {
                let _ = writeln!(out, "  {kw} {}", v.name);
            }
        } else {
            let dims: Vec<String> = v.dims.iter().map(print_expr).collect();
            let _ = writeln!(out, "  {kw} {}({})", v.name, dims.join(", "));
        }
    }
}

fn indent(depth: usize, out: &mut String) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn print_body(p: &Program, body: &[StmtId], depth: usize, out: &mut String) {
    for &s in body {
        print_stmt(p, s, depth, out);
    }
}

fn print_stmt(p: &Program, id: StmtId, depth: usize, out: &mut String) {
    let stmt = p.stmt(id);
    indent(depth, out);
    match &stmt.kind {
        StmtKind::Assign { lhs, rhs } => {
            let target = match lhs {
                LValue::Scalar(v) => p.symbols.name(*v).to_string(),
                LValue::Element(v, subs) => {
                    let subs: Vec<String> = subs.iter().map(print_expr_in(p)).collect();
                    format!("{}({})", p.symbols.name(*v), subs.join(", "))
                }
            };
            let _ = writeln!(out, "{target} = {}", print_expr_full(p, rhs));
        }
        StmtKind::Do {
            var,
            lo,
            hi,
            step,
            body,
            label,
        } => {
            let lbl = label.map(|l| format!("{l} ")).unwrap_or_default();
            let step_str = step
                .as_ref()
                .map(|s| format!(", {}", print_expr_full(p, s)))
                .unwrap_or_default();
            let _ = writeln!(
                out,
                "do {lbl}{} = {}, {}{step_str}",
                p.symbols.name(*var),
                print_expr_full(p, lo),
                print_expr_full(p, hi)
            );
            print_body(p, body, depth + 1, out);
            indent(depth, out);
            if let Some(l) = label {
                let _ = writeln!(out, "{l} continue");
            } else {
                let _ = writeln!(out, "enddo");
            }
        }
        StmtKind::While { cond, body } => {
            let _ = writeln!(out, "while ({})", print_expr_full(p, cond));
            print_body(p, body, depth + 1, out);
            indent(depth, out);
            let _ = writeln!(out, "endwhile");
        }
        StmtKind::If {
            cond,
            then_body,
            else_body,
        } => {
            let _ = writeln!(out, "if ({}) then", print_expr_full(p, cond));
            print_body(p, then_body, depth + 1, out);
            if !else_body.is_empty() {
                indent(depth, out);
                let _ = writeln!(out, "else");
                print_body(p, else_body, depth + 1, out);
            }
            indent(depth, out);
            let _ = writeln!(out, "endif");
        }
        StmtKind::Call { proc } => {
            let _ = writeln!(out, "call {}", p.procedure(*proc).name);
        }
        StmtKind::Print { args } => {
            let args: Vec<String> = args.iter().map(print_expr_in(p)).collect();
            let _ = writeln!(out, "print {}", args.join(", "));
        }
        StmtKind::Return => {
            let _ = writeln!(out, "return");
        }
    }
}

fn print_expr_in(p: &Program) -> impl Fn(&Expr) -> String + '_ {
    move |e| print_expr_full(p, e)
}

/// Renders an expression with variable names.
pub fn print_expr_full(p: &Program, e: &Expr) -> String {
    render(e, Some(&p.symbols))
}

/// Renders an expression with `vN` placeholders for variables (used by
/// declaration printing where the program is unavailable).
fn print_expr(e: &Expr) -> String {
    render(e, None)
}

fn var_name(symbols: Option<&SymbolTable>, v: crate::symbols::VarId) -> String {
    match symbols {
        Some(t) => t.name(v).to_string(),
        None => format!("{v}"),
    }
}

fn render(e: &Expr, symbols: Option<&SymbolTable>) -> String {
    match e {
        Expr::IntLit(v) => {
            if *v < 0 {
                format!("({v})")
            } else {
                v.to_string()
            }
        }
        Expr::RealLit(v) => {
            let s = format!("{v:?}");
            if *v < 0.0 {
                format!("({s})")
            } else {
                s
            }
        }
        Expr::Var(v) => var_name(symbols, *v),
        Expr::Element(v, subs) => {
            let subs: Vec<String> = subs.iter().map(|s| render(s, symbols)).collect();
            format!("{}({})", var_name(symbols, *v), subs.join(", "))
        }
        Expr::Bin(op, a, b) => {
            let op_str = match op {
                BinOp::Add => "+",
                BinOp::Sub => "-",
                BinOp::Mul => "*",
                BinOp::Div => "/",
                BinOp::Mod => {
                    return format!("mod({}, {})", render(a, symbols), render(b, symbols))
                }
                BinOp::Eq => "==",
                BinOp::Ne => "/=",
                BinOp::Lt => "<",
                BinOp::Le => "<=",
                BinOp::Gt => ">",
                BinOp::Ge => ">=",
                BinOp::And => ".and.",
                BinOp::Or => ".or.",
            };
            format!("({} {op_str} {})", render(a, symbols), render(b, symbols))
        }
        Expr::Un(UnOp::Neg, a) => format!("(-{})", render(a, symbols)),
        Expr::Un(UnOp::Not, a) => format!("(.not. {})", render(a, symbols)),
        Expr::Call(intr, args) => {
            let args: Vec<String> = args.iter().map(|s| render(s, symbols)).collect();
            format!("{}({})", intr.name(), args.join(", "))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    fn roundtrip(src: &str) {
        let p1 = parse_program(src).expect("first parse");
        let printed = print_program(&p1);
        let p2 = parse_program(&printed)
            .unwrap_or_else(|e| panic!("reparse failed: {e}\nprinted:\n{printed}"));
        let printed2 = print_program(&p2);
        assert_eq!(printed, printed2, "printer not idempotent");
    }

    #[test]
    fn roundtrip_simple() {
        roundtrip("program t\ninteger i, n\nreal x(10)\ndo i = 1, n\nx(i) = i * 2\nenddo\nend\n");
    }

    #[test]
    fn roundtrip_control_flow() {
        roundtrip(
            "program t
             integer i, p, n
             real x(100), t2(50)
             p = 0
             do 20 i = 1, n
               while (p < 5)
                 p = p + 1
                 t2(p) = x(i)
               endwhile
               if (p >= 1) then
                 x(i) = t2(p)
                 p = p - 1
               else
                 x(i) = 0.5
               endif
 20          continue
             end",
        );
    }

    #[test]
    fn roundtrip_subroutines() {
        roundtrip(
            "program t
             integer k
             call init
             k = k + 1
             end
             subroutine init
             k = 0
             end",
        );
    }

    #[test]
    fn roundtrip_explicit_scalar_types() {
        // `count` would implicitly be real; explicit integer must survive.
        roundtrip("program t\ninteger count\ncount = 1\nend\n");
        let p = parse_program("program t\ninteger count\ncount = 1\nend\n").unwrap();
        let printed = print_program(&p);
        assert!(printed.contains("integer count"));
    }

    #[test]
    fn negative_literals_are_parenthesized() {
        let p = parse_program("program t\nx = 0 - 1\nend\n").unwrap();
        let printed = print_program(&p);
        assert!(parse_program(&printed).is_ok());
    }
}
