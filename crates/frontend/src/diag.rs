//! Diagnostics: source locations and parse errors.

use std::error::Error;
use std::fmt;

/// A position in the original source text.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub struct SourceLoc {
    /// 1-based line; 0 for synthesized statements.
    pub line: u32,
    /// 1-based column; 0 for synthesized statements.
    pub col: u32,
}

impl SourceLoc {
    /// A location for compiler-synthesized statements.
    pub fn synthetic() -> SourceLoc {
        SourceLoc { line: 0, col: 0 }
    }
}

impl fmt::Display for SourceLoc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "<synthetic>")
        } else {
            write!(f, "{}:{}", self.line, self.col)
        }
    }
}

/// Error produced by the lexer or parser.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
    /// Where it went wrong.
    pub loc: SourceLoc,
}

impl ParseError {
    /// Creates a new parse error.
    pub fn new(message: impl Into<String>, loc: SourceLoc) -> ParseError {
        ParseError {
            message: message.into(),
            loc,
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at {}: {}", self.loc, self.message)
    }
}

impl Error for ParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_location() {
        let e = ParseError::new("unexpected token", SourceLoc { line: 3, col: 7 });
        assert_eq!(e.to_string(), "parse error at 3:7: unexpected token");
    }

    #[test]
    fn synthetic_location_displays_marker() {
        assert_eq!(SourceLoc::synthetic().to_string(), "<synthetic>");
    }
}
