//! Abstract syntax tree for the mini-Fortran language.
//!
//! Statements live in a per-program arena ([`Program::stmts`]) and are
//! referenced by [`StmtId`]; this gives the analyses stable handles for
//! CFG nodes, query points, and reporting.

use crate::diag::SourceLoc;
use crate::symbols::{ProcId, SymbolTable, VarId};
use std::fmt;

/// Identifier of a statement in [`Program::stmts`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct StmtId(pub u32);

impl StmtId {
    /// Index into the statement arena.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for StmtId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// Binary operators.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    /// Fortran `mod(a, b)` exposed as an operator internally.
    Mod,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    And,
    Or,
}

impl BinOp {
    /// Whether this operator yields a logical value.
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
        )
    }

    /// Whether this operator takes logical operands.
    pub fn is_logical(self) -> bool {
        matches!(self, BinOp::And | BinOp::Or)
    }
}

/// Unary operators.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum UnOp {
    Neg,
    Not,
}

/// Intrinsic functions available in expressions.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Intrinsic {
    Min,
    Max,
    Abs,
    Mod,
    Sqrt,
    Sin,
    Cos,
    Exp,
    Log,
    /// Truncation to integer.
    Int,
    /// Conversion to real.
    Real,
}

impl Intrinsic {
    /// Parses an intrinsic by (lower-case) name.
    pub fn from_name(name: &str) -> Option<Intrinsic> {
        Some(match name {
            "min" | "min0" | "amin1" => Intrinsic::Min,
            "max" | "max0" | "amax1" => Intrinsic::Max,
            "abs" | "iabs" => Intrinsic::Abs,
            "mod" => Intrinsic::Mod,
            "sqrt" => Intrinsic::Sqrt,
            "sin" => Intrinsic::Sin,
            "cos" => Intrinsic::Cos,
            "exp" => Intrinsic::Exp,
            "log" => Intrinsic::Log,
            "int" => Intrinsic::Int,
            "real" | "float" => Intrinsic::Real,
            _ => return None,
        })
    }

    /// Canonical source name.
    pub fn name(self) -> &'static str {
        match self {
            Intrinsic::Min => "min",
            Intrinsic::Max => "max",
            Intrinsic::Abs => "abs",
            Intrinsic::Mod => "mod",
            Intrinsic::Sqrt => "sqrt",
            Intrinsic::Sin => "sin",
            Intrinsic::Cos => "cos",
            Intrinsic::Exp => "exp",
            Intrinsic::Log => "log",
            Intrinsic::Int => "int",
            Intrinsic::Real => "real",
        }
    }
}

/// Expressions.
#[derive(Clone, PartialEq, Debug)]
pub enum Expr {
    /// Integer literal.
    IntLit(i64),
    /// Real literal.
    RealLit(f64),
    /// Scalar variable reference.
    Var(VarId),
    /// Array element reference `a(e1, e2, ...)`.
    Element(VarId, Vec<Expr>),
    /// Binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// Unary operation.
    Un(UnOp, Box<Expr>),
    /// Intrinsic call.
    Call(Intrinsic, Vec<Expr>),
}

impl Expr {
    /// Integer literal helper.
    pub fn int(v: i64) -> Expr {
        Expr::IntLit(v)
    }

    /// Binary helper.
    pub fn bin(op: BinOp, lhs: Expr, rhs: Expr) -> Expr {
        Expr::Bin(op, Box::new(lhs), Box::new(rhs))
    }

    /// `lhs + rhs`.
    #[allow(clippy::should_implement_trait)] // constructor, not an operator on &Expr
    pub fn add(lhs: Expr, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Add, lhs, rhs)
    }

    /// `lhs - rhs`.
    #[allow(clippy::should_implement_trait)]
    pub fn sub(lhs: Expr, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Sub, lhs, rhs)
    }

    /// `lhs * rhs`.
    #[allow(clippy::should_implement_trait)]
    pub fn mul(lhs: Expr, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Mul, lhs, rhs)
    }

    /// Whether the expression is a bare reference to scalar `v`.
    pub fn is_var(&self, v: VarId) -> bool {
        matches!(self, Expr::Var(w) if *w == v)
    }

    /// If the expression is an integer literal, its value.
    pub fn as_int_lit(&self) -> Option<i64> {
        match self {
            Expr::IntLit(v) => Some(*v),
            _ => None,
        }
    }

    /// Collects every variable mentioned (scalar uses and array bases and
    /// subscripts) into `out`.
    pub fn collect_vars(&self, out: &mut Vec<VarId>) {
        match self {
            Expr::IntLit(_) | Expr::RealLit(_) => {}
            Expr::Var(v) => out.push(*v),
            Expr::Element(v, subs) => {
                out.push(*v);
                for s in subs {
                    s.collect_vars(out);
                }
            }
            Expr::Bin(_, a, b) => {
                a.collect_vars(out);
                b.collect_vars(out);
            }
            Expr::Un(_, a) => a.collect_vars(out),
            Expr::Call(_, args) => {
                for a in args {
                    a.collect_vars(out);
                }
            }
        }
    }

    /// Whether variable `v` occurs anywhere in the expression.
    pub fn mentions(&self, v: VarId) -> bool {
        let mut vars = Vec::new();
        self.collect_vars(&mut vars);
        vars.contains(&v)
    }
}

/// Left-hand side of an assignment.
#[derive(Clone, PartialEq, Debug)]
pub enum LValue {
    /// Scalar assignment target.
    Scalar(VarId),
    /// Array element assignment target.
    Element(VarId, Vec<Expr>),
}

impl LValue {
    /// The variable being (partially) assigned.
    pub fn var(&self) -> VarId {
        match self {
            LValue::Scalar(v) | LValue::Element(v, _) => *v,
        }
    }

    /// Subscript expressions, empty for scalars.
    pub fn subscripts(&self) -> &[Expr] {
        match self {
            LValue::Scalar(_) => &[],
            LValue::Element(_, subs) => subs,
        }
    }
}

/// A statement: a kind plus stable identity and source location.
#[derive(Clone, Debug)]
pub struct Stmt {
    /// The statement's arena id (equal to its index in [`Program::stmts`]).
    pub id: StmtId,
    /// What the statement does.
    pub kind: StmtKind,
    /// Where it came from.
    pub loc: SourceLoc,
}

/// Statement kinds.
#[derive(Clone, Debug)]
pub enum StmtKind {
    /// `lhs = rhs`.
    Assign { lhs: LValue, rhs: Expr },
    /// `do var = lo, hi[, step] ... enddo`, optionally labeled
    /// (`do 140 i = ...`).
    Do {
        var: VarId,
        lo: Expr,
        hi: Expr,
        step: Option<Expr>,
        body: Vec<StmtId>,
        label: Option<u32>,
    },
    /// `while (cond) ... endwhile` (also printed as Fortran `do while`).
    While { cond: Expr, body: Vec<StmtId> },
    /// `if (cond) then ... [else ...] endif`.
    If {
        cond: Expr,
        then_body: Vec<StmtId>,
        else_body: Vec<StmtId>,
    },
    /// `call name`.
    Call { proc: ProcId },
    /// `print e1, e2, ...`.
    Print { args: Vec<Expr> },
    /// `return` — only allowed as the final statement of a procedure body.
    Return,
}

impl StmtKind {
    /// Immediate child statement lists (loop/branch bodies).
    pub fn bodies(&self) -> Vec<&[StmtId]> {
        match self {
            StmtKind::Do { body, .. } | StmtKind::While { body, .. } => vec![body],
            StmtKind::If {
                then_body,
                else_body,
                ..
            } => vec![then_body, else_body],
            _ => Vec::new(),
        }
    }

    /// Whether this is a loop statement.
    pub fn is_loop(&self) -> bool {
        matches!(self, StmtKind::Do { .. } | StmtKind::While { .. })
    }
}

/// One procedure (the `program` unit or a `subroutine`).
#[derive(Clone, Debug)]
pub struct Procedure {
    /// Lower-cased name.
    pub name: String,
    /// Whether this is the `program` unit.
    pub is_main: bool,
    /// Top-level statements.
    pub body: Vec<StmtId>,
}

/// A whole program: a global symbol table, a statement arena, and a list
/// of procedures.
#[derive(Clone, Debug)]
pub struct Program {
    /// Global variables.
    pub symbols: SymbolTable,
    /// Statement arena; `stmts[i].id == StmtId(i)`.
    pub stmts: Vec<Stmt>,
    /// Procedures; exactly one has `is_main == true`.
    pub procedures: Vec<Procedure>,
}

impl Program {
    /// The statement for `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not from this program.
    pub fn stmt(&self, id: StmtId) -> &Stmt {
        &self.stmts[id.index()]
    }

    /// Mutable access to the statement for `id`.
    pub fn stmt_mut(&mut self, id: StmtId) -> &mut Stmt {
        &mut self.stmts[id.index()]
    }

    /// The procedure for `id`.
    pub fn procedure(&self, id: ProcId) -> &Procedure {
        &self.procedures[id.index()]
    }

    /// Finds a procedure by (case-insensitive) name.
    pub fn find_procedure(&self, name: &str) -> Option<ProcId> {
        let lower = name.to_ascii_lowercase();
        self.procedures
            .iter()
            .position(|p| p.name == lower)
            .map(|i| ProcId(i as u32))
    }

    /// The `program` unit.
    ///
    /// # Panics
    ///
    /// Panics if the program has no main unit (cannot happen for parsed or
    /// builder-produced programs).
    pub fn main(&self) -> ProcId {
        ProcId(
            self.procedures
                .iter()
                .position(|p| p.is_main)
                .expect("program has a main unit") as u32,
        )
    }

    /// Human-readable label for a loop statement: `PROC/do140` or
    /// `PROC/do@line`.
    pub fn loop_label(&self, proc: ProcId, loop_stmt: StmtId) -> String {
        let pname = self.procedures[proc.index()].name.to_ascii_uppercase();
        match &self.stmt(loop_stmt).kind {
            StmtKind::Do { label: Some(l), .. } => format!("{pname}/do{l}"),
            StmtKind::Do { .. } => format!("{pname}/do@{}", self.stmt(loop_stmt).loc.line),
            StmtKind::While { .. } => format!("{pname}/while@{}", self.stmt(loop_stmt).loc.line),
            _ => format!("{pname}/{loop_stmt}"),
        }
    }

    /// All statements (transitively) inside `body`, in pre-order.
    pub fn stmts_in(&self, body: &[StmtId]) -> Vec<StmtId> {
        let mut out = Vec::new();
        let mut stack: Vec<StmtId> = body.iter().rev().copied().collect();
        while let Some(id) = stack.pop() {
            out.push(id);
            for b in self.stmt(id).kind.bodies().into_iter().rev() {
                for s in b.iter().rev() {
                    stack.push(*s);
                }
            }
        }
        out
    }

    /// The procedure that contains `stmt`, if any.
    pub fn containing_procedure(&self, stmt: StmtId) -> Option<ProcId> {
        for (i, p) in self.procedures.iter().enumerate() {
            if self.stmts_in(&p.body).contains(&stmt) {
                return Some(ProcId(i as u32));
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;

    #[test]
    fn expr_helpers_build_expected_shapes() {
        let e = Expr::add(Expr::int(1), Expr::int(2));
        assert_eq!(
            e,
            Expr::Bin(
                BinOp::Add,
                Box::new(Expr::IntLit(1)),
                Box::new(Expr::IntLit(2))
            )
        );
        assert_eq!(Expr::int(7).as_int_lit(), Some(7));
        assert_eq!(e.as_int_lit(), None);
    }

    #[test]
    fn collect_vars_sees_subscripts() {
        let mut b = ProgramBuilder::new("t");
        let a = b.declare_array("a", crate::ScalarType::Real, &[Expr::int(10)]);
        let i = b.scalar("i");
        let e = Expr::Element(a, vec![Expr::Var(i)]);
        let mut vars = Vec::new();
        e.collect_vars(&mut vars);
        assert!(vars.contains(&a) && vars.contains(&i));
        assert!(e.mentions(i));
    }

    #[test]
    fn stmts_in_is_preorder() {
        let mut b = ProgramBuilder::new("t");
        let i = b.scalar("i");
        let x = b.scalar("x");
        b.do_loop(i, Expr::int(1), Expr::int(10), |b| {
            b.assign_scalar(x, Expr::int(1));
            b.assign_scalar(x, Expr::int(2));
        });
        let p = b.finish();
        let main = p.main();
        let all = p.stmts_in(&p.procedure(main).body);
        assert_eq!(all.len(), 3); // do + two assigns
                                  // The loop comes first (pre-order).
        assert!(matches!(p.stmt(all[0]).kind, StmtKind::Do { .. }));
    }
}
