//! Read-only traversal helpers over programs and statements.

use crate::ast::{Expr, LValue, Program, StmtId, StmtKind};
use crate::symbols::VarId;

/// Calls `f` on every expression appearing in statement `id` (not
/// recursing into nested statements): assignment right-hand sides and
/// subscripts, loop bounds, conditions, print arguments.
pub fn for_each_expr_in_stmt(p: &Program, id: StmtId, mut f: impl FnMut(&Expr)) {
    match &p.stmt(id).kind {
        StmtKind::Assign { lhs, rhs } => {
            for s in lhs.subscripts() {
                f(s);
            }
            f(rhs);
        }
        StmtKind::Do { lo, hi, step, .. } => {
            f(lo);
            f(hi);
            if let Some(s) = step {
                f(s);
            }
        }
        StmtKind::While { cond, .. } => f(cond),
        StmtKind::If { cond, .. } => f(cond),
        StmtKind::Print { args } => {
            for a in args {
                f(a);
            }
        }
        StmtKind::Call { .. } | StmtKind::Return => {}
    }
}

/// Calls `f` on every sub-expression of `e`, in pre-order (including `e`
/// itself).
pub fn for_each_subexpr(e: &Expr, f: &mut impl FnMut(&Expr)) {
    f(e);
    match e {
        Expr::IntLit(_) | Expr::RealLit(_) | Expr::Var(_) => {}
        Expr::Element(_, subs) => {
            for s in subs {
                for_each_subexpr(s, f);
            }
        }
        Expr::Bin(_, a, b) => {
            for_each_subexpr(a, f);
            for_each_subexpr(b, f);
        }
        Expr::Un(_, a) => for_each_subexpr(a, f),
        Expr::Call(_, args) => {
            for a in args {
                for_each_subexpr(a, f);
            }
        }
    }
}

/// One syntactic access to an array: the base variable, the subscripts,
/// whether it is a write, and the statement it appears in.
#[derive(Clone, Debug)]
pub struct ArrayAccess {
    /// Array variable.
    pub array: VarId,
    /// Subscript expressions.
    pub subscripts: Vec<Expr>,
    /// Whether this access stores to the array.
    pub is_write: bool,
    /// The statement containing the access.
    pub stmt: StmtId,
}

/// Collects every array access in the statements of `body`
/// (transitively), in program pre-order.
pub fn collect_array_accesses(p: &Program, body: &[StmtId]) -> Vec<ArrayAccess> {
    let mut out = Vec::new();
    for id in p.stmts_in(body) {
        if let StmtKind::Assign {
            lhs: LValue::Element(v, subs),
            ..
        } = &p.stmt(id).kind
        {
            out.push(ArrayAccess {
                array: *v,
                subscripts: subs.clone(),
                is_write: true,
                stmt: id,
            });
        }
        for_each_expr_in_stmt(p, id, |e| {
            for_each_subexpr(e, &mut |sub| {
                if let Expr::Element(v, subs) = sub {
                    out.push(ArrayAccess {
                        array: *v,
                        subscripts: subs.clone(),
                        is_write: false,
                        stmt: id,
                    });
                }
            });
        });
    }
    out
}

/// Returns the set of scalar variables assigned anywhere in `body`
/// (transitively), including loop induction variables.
pub fn scalars_assigned_in(p: &Program, body: &[StmtId]) -> Vec<VarId> {
    let mut out = Vec::new();
    for id in p.stmts_in(body) {
        match &p.stmt(id).kind {
            StmtKind::Assign {
                lhs: LValue::Scalar(v),
                ..
            } if !out.contains(v) => {
                out.push(*v);
            }
            StmtKind::Do { var, .. } if !out.contains(var) => {
                out.push(*var);
            }
            _ => {}
        }
    }
    out
}

/// Returns the arrays written anywhere in `body` (transitively).
pub fn arrays_written_in(p: &Program, body: &[StmtId]) -> Vec<VarId> {
    let mut out = Vec::new();
    for acc in collect_array_accesses(p, body) {
        if acc.is_write && !out.contains(&acc.array) {
            out.push(acc.array);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    #[test]
    fn collects_reads_and_writes() {
        let p = parse_program(
            "program t
             integer i, n, pos(10)
             real x(10), y(10)
             do i = 1, n
               x(pos(i)) = y(i) + x(i)
             enddo
             end",
        )
        .unwrap();
        let body = &p.procedure(p.main()).body;
        let accesses = collect_array_accesses(&p, body);
        let x = p.symbols.lookup("x").unwrap();
        let y = p.symbols.lookup("y").unwrap();
        let pos = p.symbols.lookup("pos").unwrap();
        let writes: Vec<_> = accesses.iter().filter(|a| a.is_write).collect();
        assert_eq!(writes.len(), 1);
        assert_eq!(writes[0].array, x);
        let reads: Vec<_> = accesses.iter().filter(|a| !a.is_write).collect();
        // pos(i) (in the write subscript), y(i), x(i).
        assert_eq!(reads.len(), 3);
        assert!(reads.iter().any(|a| a.array == pos));
        assert!(reads.iter().any(|a| a.array == y));
        assert!(reads.iter().any(|a| a.array == x));
    }

    #[test]
    fn scalar_assignment_collection_includes_loop_vars() {
        let p = parse_program(
            "program t
             integer i, q
             do i = 1, 5
               q = q + 1
             enddo
             end",
        )
        .unwrap();
        let body = &p.procedure(p.main()).body;
        let assigned = scalars_assigned_in(&p, body);
        assert_eq!(assigned.len(), 2);
    }

    #[test]
    fn arrays_written_in_skips_read_only() {
        let p = parse_program(
            "program t
             integer i
             real a(5), b(5)
             do i = 1, 5
               a(i) = b(i)
             enddo
             end",
        )
        .unwrap();
        let body = &p.procedure(p.main()).body;
        let written = arrays_written_in(&p, body);
        assert_eq!(written.len(), 1);
        assert_eq!(p.symbols.name(written[0]), "a");
    }
}
