//! `irr-lint`: a static verdict-lint layer over compilation reports.
//!
//! The driver's verdicts come out of a long chain of cooperating
//! analyses — dependence tests, the array property solver, value
//! evolution, interprocedural summaries. This crate cross-checks every
//! [`LoopVerdict`] with machinery deliberately *not* shared with that
//! chain and emits stable, machine-readable diagnostics:
//!
//! - **`IRR-S001` (soundness)** — a loop claimed parallel is
//!   contradicted by an independent abstract-interpretation dependence
//!   pass: constants are propagated to the loop bounds, every array
//!   access whose subscript is affine in the loop variable is
//!   enumerated as a concrete value set, and an overlap between
//!   iterations is a dependence the verdict missed. The pass answers
//!   *Unknown* (and stays silent) the moment a subscript, bound, or
//!   statement falls outside that fragment, so a diagnostic is always a
//!   concrete counterexample — never a precision complaint.
//! - **`IRR-P001` (precision)** — a runtime-guarded loop whose every
//!   guard group is statically dischargeable by the interprocedural
//!   evolution facts: the inspection is provably redundant and the loop
//!   should have been promoted.
//! - **`IRR-E001` (explain)** — a sequential loop's blockers, rendered
//!   as one stable "why not parallel" line per loop.
//!
//! Diagnostics sort by (code, loop, message) and render byte-stably, so
//! lint output can be diffed across runs and gated in CI (`lint
//! --check` fails only on the soundness class). Soundness findings are
//! falsifiable claims: replaying the program under the sanitizer's
//! shadow tracer must exhibit the predicted dependence (the lint tests
//! do exactly that).

use irr_core::{AnalysisCtx, EvolutionAnalysis, SummaryAnalysis};
use irr_driver::{
    derive_compiled_plan, CompilationReport, DispatchTier, GuardPlan, LoopVerdict, ResidualCheck,
};
use irr_frontend::{
    BinOp, Expr, Intrinsic, LValue, ProcId, Program, StmtId, StmtKind, UnOp, VarId,
};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::fmt;

/// Severity class of a diagnostic.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum DiagClass {
    /// A verdict the independent dependence pass contradicts.
    Soundness,
    /// A runtime guard the static facts already discharge.
    Precision,
    /// An explanation of a sequential verdict.
    Explain,
}

impl fmt::Display for DiagClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            DiagClass::Soundness => "soundness",
            DiagClass::Precision => "precision",
            DiagClass::Explain => "explain",
        })
    }
}

/// One lint finding, keyed to a loop verdict.
#[derive(Clone, Debug)]
pub struct Diagnostic {
    /// Stable code (`IRR-S001`, `IRR-P001`, `IRR-E001`).
    pub code: &'static str,
    /// Severity class.
    pub class: DiagClass,
    /// The loop's `PROC/do140`-style label.
    pub loop_label: String,
    /// Human-readable detail (deterministic for a given program).
    pub message: String,
}

impl Diagnostic {
    /// The diagnostic as one stable text line.
    pub fn line(&self) -> String {
        format!(
            "{} {} {}: {}",
            self.code, self.class, self.loop_label, self.message
        )
    }
}

/// Lints every `do`-loop verdict of a report. Diagnostics come back
/// sorted by (code, loop label, message) — byte-stable across runs.
pub fn lint_report(report: &CompilationReport) -> Vec<Diagnostic> {
    let program = &report.program;
    let ctx = AnalysisCtx::new(program);
    let summaries = SummaryAnalysis::new(&ctx);
    let evo = EvolutionAnalysis::with_summaries(&ctx, &summaries);
    let mut diags = Vec::new();
    for v in &report.verdicts {
        if !matches!(program.stmt(v.loop_stmt).kind, StmtKind::Do { .. }) {
            continue;
        }
        // The compiled-tier plan is a fingerprint: re-deriving it with
        // the driver's own pure function must reproduce it exactly. A
        // verdict carrying a plan the eligibility walk rejects (or one
        // with tampered pattern counts) was forged. A *missing* plan is
        // never flagged — the conservative direction (tree-walk) is
        // always safe.
        if v.compiled.is_some() && v.compiled != derive_compiled_plan(program, v.loop_stmt) {
            diags.push(Diagnostic {
                code: "IRR-S001",
                class: DiagClass::Soundness,
                loop_label: v.label.clone(),
                message: "carries a compiled-tier plan the eligibility walk does not re-derive"
                    .to_string(),
            });
        }
        if v.parallel {
            if let Some(msg) = soundness_witness(program, &summaries, v) {
                diags.push(Diagnostic {
                    code: "IRR-S001",
                    class: DiagClass::Soundness,
                    loop_label: v.label.clone(),
                    message: msg,
                });
            }
        } else if let DispatchTier::RuntimeGuarded(guard) = &v.tier {
            if let Some(msg) = precision_gap(&ctx, &evo, v, guard) {
                diags.push(Diagnostic {
                    code: "IRR-P001",
                    class: DiagClass::Precision,
                    loop_label: v.label.clone(),
                    message: msg,
                });
            }
        } else {
            let mut blockers = v.blockers.clone();
            blockers.sort();
            blockers.dedup();
            let message = if blockers.is_empty() {
                "sequential with no recorded blocker".to_string()
            } else {
                format!("sequential because {}", blockers.join("; "))
            };
            diags.push(Diagnostic {
                code: "IRR-E001",
                class: DiagClass::Explain,
                loop_label: v.label.clone(),
                message,
            });
        }
    }
    diags.sort_by(|a, b| {
        (a.code, &a.loop_label, &a.message).cmp(&(b.code, &b.loop_label, &b.message))
    });
    diags
}

/// Renders diagnostics as one line each (already sorted by
/// [`lint_report`]), with a trailing newline when non-empty.
pub fn render(diags: &[Diagnostic]) -> String {
    let mut out = String::new();
    for d in diags {
        out.push_str(&d.line());
        out.push('\n');
    }
    out
}

/// Number of soundness-class diagnostics — the `--check` gate.
pub fn soundness_count(diags: &[Diagnostic]) -> usize {
    diags
        .iter()
        .filter(|d| d.class == DiagClass::Soundness)
        .count()
}

// ---------------------------------------------------------------------
// IRR-S001: the independent value-set dependence pass
// ---------------------------------------------------------------------

/// Iteration cap of the value-set enumeration: beyond this the pass
/// checks a prefix of the iteration space (it may miss dependences —
/// silent — but can never invent one).
const ITER_CAP: usize = 4096;

/// Per-array affine accesses of one loop, as `(coeff, offset)` pairs
/// over the loop variable.
#[derive(Default)]
struct ArrAccesses {
    writes: Vec<(i64, i64)>,
    reads: Vec<(i64, i64)>,
    /// Some access to this array fell outside the affine fragment.
    unknown: bool,
}

/// Tries to contradict a parallel claim with a concrete dependence
/// witness. `None` means "no affine-fragment dependence found" — which
/// covers both genuinely independent loops and loops the pass cannot
/// model (Unknown never becomes a diagnostic).
fn soundness_witness(
    program: &Program,
    summaries: &SummaryAnalysis,
    v: &LoopVerdict,
) -> Option<String> {
    let StmtKind::Do {
        var,
        lo,
        hi,
        step,
        body,
        ..
    } = &program.stmt(v.loop_stmt).kind
    else {
        return None;
    };
    let mut env = const_env_before(program, summaries, v.proc, v.loop_stmt);
    // Scalars the loop body itself assigns (including nested loop
    // variables) have no single constant value across iterations.
    match assigned_scalars(program, summaries, body) {
        Some(killed) => {
            for s in killed {
                env.remove(&s);
            }
        }
        None => env.clear(),
    }
    env.remove(var);
    let lo_c = eval_const(lo, &env)?;
    let hi_c = eval_const(hi, &env)?;
    let step_c = match step {
        Some(e) => eval_const(e, &env)?,
        None => 1,
    };
    if step_c == 0 {
        return None;
    }
    let mut iters = Vec::new();
    let mut i = lo_c;
    while (step_c > 0 && i <= hi_c) || (step_c < 0 && i >= hi_c) {
        iters.push(i);
        if iters.len() == ITER_CAP {
            break;
        }
        i += step_c;
    }
    if iters.len() < 2 {
        return None;
    }
    let mut acc: BTreeMap<VarId, ArrAccesses> = BTreeMap::new();
    if !collect_accesses(program, body, *var, &env, &mut acc) {
        return None;
    }
    let privatized: HashSet<VarId> = v.privatized_arrays.iter().map(|(a, _)| *a).collect();
    // Deterministic order: arrays by name.
    let mut arrays: Vec<(&str, &ArrAccesses)> = acc
        .iter()
        .filter(|(a, acc)| !acc.unknown && !acc.writes.is_empty() && !privatized.contains(a))
        .map(|(a, acc)| (program.symbols.name(*a), acc))
        .collect();
    arrays.sort_by_key(|(name, _)| *name);
    for (name, a) in arrays {
        // Output dependence: one element written by two iterations.
        // `written` maps element -> (one writer, had another writer).
        let mut written: HashMap<i64, (i64, bool)> = HashMap::new();
        for &i in &iters {
            for (c, o) in &a.writes {
                let pos = c.checked_mul(i).and_then(|p| p.checked_add(*o))?;
                match written.entry(pos) {
                    std::collections::hash_map::Entry::Occupied(mut e) => {
                        let (first, _) = *e.get();
                        if first != i {
                            e.insert((first, true));
                            return Some(format!(
                                "claims parallel, but iterations {first} and {i} both write \
                                 `{name}({pos})`"
                            ));
                        }
                    }
                    std::collections::hash_map::Entry::Vacant(e) => {
                        e.insert((i, false));
                    }
                }
            }
        }
        // Flow/anti dependence: an element written by one iteration and
        // read by another.
        for &i in &iters {
            for (c, o) in &a.reads {
                let pos = c.checked_mul(i).and_then(|p| p.checked_add(*o))?;
                if let Some(&(writer, _)) = written.get(&pos) {
                    if writer != i {
                        return Some(format!(
                            "claims parallel, but iteration {writer} writes `{name}({pos})` and \
                             iteration {i} reads it"
                        ));
                    }
                }
            }
        }
    }
    None
}

/// Scalar constants live on entry to `target`, walking the containing
/// procedure's body in order. Calls invalidate exactly the callee's
/// summarized MOD-scalars (everything, for opaque callees); loops and
/// untaken branches invalidate what they assign.
fn const_env_before(
    program: &Program,
    summaries: &SummaryAnalysis,
    proc: ProcId,
    target: StmtId,
) -> HashMap<VarId, i64> {
    let mut env = HashMap::new();
    walk_to(
        program,
        summaries,
        &program.procedure(proc).body,
        target,
        &mut env,
    );
    env
}

/// Walks `body` updating `env`; returns true once `target` is reached.
fn walk_to(
    program: &Program,
    summaries: &SummaryAnalysis,
    body: &[StmtId],
    target: StmtId,
    env: &mut HashMap<VarId, i64>,
) -> bool {
    for &s in body {
        if s == target {
            return true;
        }
        let stmt = &program.stmt(s).kind;
        match stmt {
            StmtKind::Assign {
                lhs: LValue::Scalar(v),
                rhs,
            } => match eval_const(rhs, env) {
                Some(c) => {
                    env.insert(*v, c);
                }
                None => {
                    env.remove(v);
                }
            },
            StmtKind::Assign { .. } | StmtKind::Print { .. } | StmtKind::Return => {}
            StmtKind::Do {
                var, body: inner, ..
            } => {
                kill_assigned(program, summaries, inner, env);
                env.remove(var);
                if subtree_contains(program, inner, target)
                    && walk_to(program, summaries, inner, target, env)
                {
                    return true;
                }
            }
            StmtKind::While { body: inner, .. } => {
                kill_assigned(program, summaries, inner, env);
                if subtree_contains(program, inner, target)
                    && walk_to(program, summaries, inner, target, env)
                {
                    return true;
                }
            }
            StmtKind::If {
                then_body,
                else_body,
                ..
            } => {
                if subtree_contains(program, then_body, target) {
                    if walk_to(program, summaries, then_body, target, env) {
                        return true;
                    }
                } else if subtree_contains(program, else_body, target) {
                    if walk_to(program, summaries, else_body, target, env) {
                        return true;
                    }
                } else {
                    kill_assigned(program, summaries, then_body, env);
                    kill_assigned(program, summaries, else_body, env);
                }
            }
            StmtKind::Call { proc } => {
                let sum = summaries.summary(*proc);
                if sum.opaque {
                    env.clear();
                } else {
                    for m in &sum.mod_scalars {
                        env.remove(m);
                    }
                }
            }
        }
    }
    false
}

/// Removes from `env` every scalar the subtree may assign.
fn kill_assigned(
    program: &Program,
    summaries: &SummaryAnalysis,
    body: &[StmtId],
    env: &mut HashMap<VarId, i64>,
) {
    match assigned_scalars(program, summaries, body) {
        Some(killed) => {
            for s in killed {
                env.remove(&s);
            }
        }
        None => env.clear(),
    }
}

/// The scalars a statement list may assign (directly or through calls).
/// `None` means "unknown" — the subtree calls an opaque procedure.
fn assigned_scalars(
    program: &Program,
    summaries: &SummaryAnalysis,
    body: &[StmtId],
) -> Option<HashSet<VarId>> {
    let mut out = HashSet::new();
    let mut stack: Vec<StmtId> = body.to_vec();
    while let Some(s) = stack.pop() {
        let stmt = &program.stmt(s).kind;
        match stmt {
            StmtKind::Assign {
                lhs: LValue::Scalar(v),
                ..
            } => {
                out.insert(*v);
            }
            StmtKind::Do { var, .. } => {
                out.insert(*var);
            }
            StmtKind::Call { proc } => {
                let sum = summaries.summary(*proc);
                if sum.opaque {
                    return None;
                }
                out.extend(sum.mod_scalars.iter().copied());
            }
            _ => {}
        }
        for b in stmt.bodies() {
            stack.extend(b.iter().copied());
        }
    }
    Some(out)
}

/// Whether `target` is (transitively) inside the statement list.
fn subtree_contains(program: &Program, body: &[StmtId], target: StmtId) -> bool {
    let mut stack: Vec<StmtId> = body.to_vec();
    while let Some(s) = stack.pop() {
        if s == target {
            return true;
        }
        for b in program.stmt(s).kind.bodies() {
            stack.extend(b.iter().copied());
        }
    }
    false
}

/// Evaluates an integer-constant expression under `env`.
fn eval_const(e: &Expr, env: &HashMap<VarId, i64>) -> Option<i64> {
    match e {
        Expr::IntLit(v) => Some(*v),
        Expr::Var(v) => env.get(v).copied(),
        Expr::Un(UnOp::Neg, inner) => eval_const(inner, env)?.checked_neg(),
        Expr::Bin(op, l, r) => {
            let (a, b) = (eval_const(l, env)?, eval_const(r, env)?);
            match op {
                BinOp::Add => a.checked_add(b),
                BinOp::Sub => a.checked_sub(b),
                BinOp::Mul => a.checked_mul(b),
                BinOp::Div => a.checked_div(b),
                BinOp::Mod => a.checked_rem(b),
                _ => None,
            }
        }
        Expr::Call(Intrinsic::Min, args) => fold_const(args, env, i64::min),
        Expr::Call(Intrinsic::Max, args) => fold_const(args, env, i64::max),
        Expr::Call(Intrinsic::Abs, args) if args.len() == 1 => {
            eval_const(&args[0], env)?.checked_abs()
        }
        Expr::Call(Intrinsic::Mod, args) if args.len() == 2 => {
            eval_const(&args[0], env)?.checked_rem(eval_const(&args[1], env)?)
        }
        _ => None,
    }
}

fn fold_const(args: &[Expr], env: &HashMap<VarId, i64>, f: fn(i64, i64) -> i64) -> Option<i64> {
    let mut vals = args.iter().map(|a| eval_const(a, env));
    let first = vals.next()??;
    vals.try_fold(first, |acc, v| Some(f(acc, v?)))
}

/// `e` as `coeff * var + offset` under `env`, or `None` outside the
/// affine fragment.
fn affine(e: &Expr, var: VarId, env: &HashMap<VarId, i64>) -> Option<(i64, i64)> {
    match e {
        Expr::Var(v) if *v == var => Some((1, 0)),
        Expr::Bin(BinOp::Add, l, r) => {
            let ((lc, lo), (rc, ro)) = (affine(l, var, env)?, affine(r, var, env)?);
            Some((lc.checked_add(rc)?, lo.checked_add(ro)?))
        }
        Expr::Bin(BinOp::Sub, l, r) => {
            let ((lc, lo), (rc, ro)) = (affine(l, var, env)?, affine(r, var, env)?);
            Some((lc.checked_sub(rc)?, lo.checked_sub(ro)?))
        }
        Expr::Bin(BinOp::Mul, l, r) => {
            let ((lc, lo), (rc, ro)) = (affine(l, var, env)?, affine(r, var, env)?);
            // One side must be constant.
            if lc == 0 {
                Some((lo.checked_mul(rc)?, lo.checked_mul(ro)?))
            } else if rc == 0 {
                Some((lc.checked_mul(ro)?, lo.checked_mul(ro)?))
            } else {
                None
            }
        }
        Expr::Un(UnOp::Neg, inner) => {
            let (c, o) = affine(inner, var, env)?;
            Some((c.checked_neg()?, o.checked_neg()?))
        }
        _ => eval_const(e, env).map(|c| (0, c)),
    }
}

/// Walks a loop body collecting per-array affine accesses. Returns
/// false (bail out of the whole loop) on statements the pass cannot
/// model: calls, while loops, returns.
fn collect_accesses(
    program: &Program,
    body: &[StmtId],
    var: VarId,
    env: &HashMap<VarId, i64>,
    acc: &mut BTreeMap<VarId, ArrAccesses>,
) -> bool {
    for &s in body {
        let stmt = &program.stmt(s).kind;
        match stmt {
            StmtKind::Assign { lhs, rhs } => {
                if let LValue::Element(a, subs) = lhs {
                    record_access(a, subs, var, env, acc, true);
                    for sub in subs {
                        record_reads(sub, var, env, acc);
                    }
                }
                record_reads(rhs, var, env, acc);
            }
            StmtKind::Do {
                lo,
                hi,
                step,
                body: inner,
                ..
            } => {
                record_reads(lo, var, env, acc);
                record_reads(hi, var, env, acc);
                if let Some(e) = step {
                    record_reads(e, var, env, acc);
                }
                if !collect_accesses(program, inner, var, env, acc) {
                    return false;
                }
            }
            StmtKind::If {
                cond,
                then_body,
                else_body,
            } => {
                record_reads(cond, var, env, acc);
                if !collect_accesses(program, then_body, var, env, acc)
                    || !collect_accesses(program, else_body, var, env, acc)
                {
                    return false;
                }
            }
            StmtKind::Print { args } => {
                for e in args {
                    record_reads(e, var, env, acc);
                }
            }
            StmtKind::While { .. } | StmtKind::Call { .. } | StmtKind::Return => return false,
        }
    }
    true
}

/// Records one array access (and marks the array unknown when the
/// subscript is not 1-D affine in `var`).
fn record_access(
    array: &VarId,
    subs: &[Expr],
    var: VarId,
    env: &HashMap<VarId, i64>,
    acc: &mut BTreeMap<VarId, ArrAccesses>,
    is_write: bool,
) {
    let entry = acc.entry(*array).or_default();
    let affine1 = (subs.len() == 1)
        .then(|| affine(&subs[0], var, env))
        .flatten();
    match affine1 {
        Some(co) if is_write => entry.writes.push(co),
        Some(co) => entry.reads.push(co),
        None => entry.unknown = true,
    }
}

/// Records every array *read* inside an expression tree.
fn record_reads(
    e: &Expr,
    var: VarId,
    env: &HashMap<VarId, i64>,
    acc: &mut BTreeMap<VarId, ArrAccesses>,
) {
    match e {
        Expr::Element(a, subs) => {
            record_access(a, subs, var, env, acc, false);
            for sub in subs {
                record_reads(sub, var, env, acc);
            }
        }
        Expr::Bin(_, l, r) => {
            record_reads(l, var, env, acc);
            record_reads(r, var, env, acc);
        }
        Expr::Un(_, inner) => record_reads(inner, var, env, acc),
        Expr::Call(_, args) => {
            for a in args {
                record_reads(a, var, env, acc);
            }
        }
        Expr::IntLit(_) | Expr::RealLit(_) | Expr::Var(_) => {}
    }
}

// ---------------------------------------------------------------------
// IRR-P001: statically dischargeable runtime guards
// ---------------------------------------------------------------------

/// Whether every guard group of a runtime-guarded loop contains a check
/// the (interprocedural) evolution facts already discharge — i.e. the
/// inspection is statically redundant.
fn precision_gap(
    ctx: &AnalysisCtx<'_>,
    evo: &EvolutionAnalysis,
    v: &LoopVerdict,
    guard: &GuardPlan,
) -> Option<String> {
    let (_, lo, hi) = ctx.do_bounds_sym(v.loop_stmt)?;
    let env = ctx.range_env_at(v.loop_stmt);
    if guard.groups.is_empty() {
        return None;
    }
    let discharged: Vec<String> = guard
        .groups
        .iter()
        .map(|group| {
            group.iter().find_map(|rc| {
                let holds = match rc {
                    ResidualCheck::Injective { array } => {
                        evo.proves_injective(v.loop_stmt, *array, &lo, &hi, &env)
                    }
                    ResidualCheck::OffsetLength { ptr, len } => {
                        evo.proves_offset_length(v.loop_stmt, *ptr, *len, &lo, &hi, &env)
                    }
                };
                holds.then(|| render_check(ctx.program, rc))
            })
        })
        .collect::<Option<Vec<String>>>()?;
    let mut names = discharged;
    names.sort();
    names.dedup();
    Some(format!(
        "every runtime inspection is statically dischargeable ({}); the guard is redundant",
        names.join(", ")
    ))
}

fn render_check(program: &Program, c: &ResidualCheck) -> String {
    match c {
        ResidualCheck::Injective { array } => {
            format!("injective({})", program.symbols.name(*array))
        }
        ResidualCheck::OffsetLength { ptr, len } => format!(
            "offlen({}, {})",
            program.symbols.name(*ptr),
            program.symbols.name(*len)
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use irr_driver::{compile_source, DriverOptions};
    use irr_programs::sparse::{lufront_callchain, SparseScale};
    use irr_sparse::Structure;

    /// Two dependent loops (a shifted read and a constant-element
    /// accumulation) plus one genuinely parallel loop.
    const DEP_SRC: &str = "program t
         integer i, n
         real x(100), y(100), acc(8)
         n = 100
         do 10 i = 1, n
           y(i) = x(i) * 2
 10      continue
         do 30 i = 1, n - 1
           x(i) = x(i + 1)
 30      continue
         do 40 i = 1, n
           acc(3) = acc(3) + y(i)
 40      continue
         print acc(3)
         end";

    fn forge(report: &mut irr_driver::CompilationReport, label: &str) {
        let v = report
            .verdicts
            .iter_mut()
            .find(|v| v.label.ends_with(label))
            .expect("forged loop exists");
        v.parallel = true;
        v.tier = DispatchTier::CompileTimeParallel;
        v.blockers.clear();
    }

    #[test]
    fn honest_report_is_clean_and_explains_sequential_loops() {
        let rep = compile_source(DEP_SRC, DriverOptions::with_iaa()).unwrap();
        let diags = lint_report(&rep);
        assert_eq!(soundness_count(&diags), 0, "{}", render(&diags));
        // Both sequential loops get an explain line naming a blocker.
        let explains: Vec<&Diagnostic> = diags
            .iter()
            .filter(|d| d.class == DiagClass::Explain)
            .collect();
        assert!(
            explains.iter().any(|d| d.loop_label.ends_with("do30")),
            "{}",
            render(&diags)
        );
    }

    #[test]
    fn forged_flow_dependence_is_caught_statically() {
        let mut rep = compile_source(DEP_SRC, DriverOptions::with_iaa()).unwrap();
        forge(&mut rep, "do30");
        let diags = lint_report(&rep);
        let s001: Vec<&Diagnostic> = diags.iter().filter(|d| d.code == "IRR-S001").collect();
        assert_eq!(s001.len(), 1, "{}", render(&diags));
        assert!(s001[0].loop_label.ends_with("do30"));
        assert!(
            s001[0].message.contains("writes `x(") && s001[0].message.contains("reads it"),
            "{}",
            s001[0].message
        );
    }

    #[test]
    fn forged_output_dependence_is_caught_statically() {
        let mut rep = compile_source(DEP_SRC, DriverOptions::with_iaa()).unwrap();
        forge(&mut rep, "do40");
        let diags = lint_report(&rep);
        let s001: Vec<&Diagnostic> = diags.iter().filter(|d| d.code == "IRR-S001").collect();
        assert_eq!(s001.len(), 1, "{}", render(&diags));
        assert!(
            s001[0].message.contains("both write `acc(3)`"),
            "{}",
            s001[0].message
        );
    }

    #[test]
    fn forged_compiled_plan_is_caught_statically() {
        // do10 is parallel and lowerable; inflating its plan's pattern
        // counts must trip the fingerprint re-derivation. Forging a
        // plan onto a print-bearing (unlowerable) loop must trip too.
        let mut rep = compile_source(DEP_SRC, DriverOptions::with_iaa()).unwrap();
        let v = rep
            .verdicts
            .iter_mut()
            .find(|v| v.label.ends_with("do10"))
            .unwrap();
        let mut plan = v.compiled.expect("do10 is lowerable");
        plan.affine_accesses += 7;
        v.compiled = Some(plan);
        let diags = lint_report(&rep);
        assert!(
            diags.iter().any(|d| d.code == "IRR-S001"
                && d.loop_label.ends_with("do10")
                && d.message.contains("compiled-tier plan")),
            "{}",
            render(&diags)
        );
        // Dropping the plan entirely is conservative, never a finding.
        let mut rep = compile_source(DEP_SRC, DriverOptions::with_iaa()).unwrap();
        for v in &mut rep.verdicts {
            v.compiled = None;
        }
        assert_eq!(soundness_count(&lint_report(&rep)), 0);
    }

    #[test]
    fn forged_verdict_is_falsified_dynamically_too() {
        // A lint soundness finding is a falsifiable claim: replaying the
        // forged report under the sanitizer's shadow tracer exhibits the
        // predicted dependence as a concrete violation.
        let mut rep = compile_source(DEP_SRC, DriverOptions::with_iaa()).unwrap();
        forge(&mut rep, "do30");
        assert_eq!(soundness_count(&lint_report(&rep)), 1);
        let audit = irr_sanitizer::audit_report(&rep, &irr_sanitizer::AuditConfig::default());
        assert!(
            audit.violations() >= 1,
            "dynamic replay must confirm the static finding"
        );
    }

    #[test]
    fn dischargeable_guard_is_flagged_as_precision_gap() {
        let k = lufront_callchain(&SparseScale::test(Structure::Uniform, 7));
        // Without summaries the consumer stays runtime-guarded; lint's
        // own interprocedural evolution run proves the guard redundant.
        let rep = compile_source(&k.source, DriverOptions::without_summaries()).unwrap();
        let diags = lint_report(&rep);
        assert!(
            diags
                .iter()
                .any(|d| d.code == "IRR-P001" && d.loop_label == k.label),
            "{}",
            render(&diags)
        );
        // With summaries the loop is promoted and the gap disappears.
        let rep = compile_source(&k.source, DriverOptions::with_iaa()).unwrap();
        let diags = lint_report(&rep);
        assert_eq!(
            diags.iter().filter(|d| d.code == "IRR-P001").count(),
            0,
            "{}",
            render(&diags)
        );
    }

    #[test]
    fn rendered_output_is_byte_stable() {
        let rep = compile_source(DEP_SRC, DriverOptions::with_iaa()).unwrap();
        let a = render(&lint_report(&rep));
        let b = render(&lint_report(&rep));
        assert_eq!(a, b);
        let mut sorted: Vec<String> = a.lines().map(str::to_string).collect();
        sorted.sort();
        assert_eq!(
            a.lines().map(str::to_string).collect::<Vec<_>>(),
            sorted,
            "lines come out sorted"
        );
    }
}
