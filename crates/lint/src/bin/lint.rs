//! `lint`: static verdict-lint sweep over the whole corpus — the five
//! benchmark programs, the paper's worked figures, and the generated
//! sparse kernels (including the producer-loop and call-structured
//! variants) across the three matrix structures.
//!
//! ```text
//! lint [--check] [--scale test|paper] [--only SUBSTR]
//! ```
//!
//! Prints every diagnostic (byte-stable order) plus a per-program and
//! final summary. With `--check`, exits nonzero iff any soundness-class
//! diagnostic was emitted — precision gaps and explain lines are
//! informational — so the command doubles as a CI gate.

use irr_driver::{compile_source, DriverOptions};
use irr_frontend::StmtKind;
use irr_lint::{lint_report, DiagClass};
use irr_programs::sparse::{interproc_kernels, kernels, producer_kernels, SparseScale};
use irr_programs::{all, Scale};
use irr_sanitizer::figures;
use irr_sparse::Structure;

fn main() {
    let mut check = false;
    let mut scale = Scale::Test;
    let mut only: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--check" => check = true,
            "--scale" => {
                scale = match args.next().as_deref() {
                    Some("test") => Scale::Test,
                    Some("paper") => Scale::Paper,
                    other => die(&format!("unknown scale `{other:?}`")),
                }
            }
            "--only" => only = Some(args.next().unwrap_or_else(|| die("--only needs a value"))),
            "--help" | "-h" => {
                println!("lint [--check] [--scale test|paper] [--only SUBSTR]");
                return;
            }
            other => die(&format!("unknown argument `{other}`")),
        }
    }

    const STRUCTURES: [Structure; 3] = [
        Structure::Banded { bandwidth: 8 },
        Structure::Uniform,
        Structure::PowerLaw,
    ];
    let mut targets: Vec<(String, String)> = all(scale)
        .into_iter()
        .map(|b| (b.name.to_string(), b.source))
        .collect();
    targets.extend(
        figures()
            .into_iter()
            .map(|f| (f.name.to_string(), f.source.to_string())),
    );
    for (i, structure) in STRUCTURES.iter().enumerate() {
        let s = SparseScale::test(*structure, 0x11A7 + i as u64);
        for k in kernels(&s)
            .into_iter()
            .chain(producer_kernels(&s))
            .chain(interproc_kernels(&s))
        {
            targets.push((format!("sparse:{}:{}", k.name, structure.tag()), k.source));
        }
    }
    if let Some(filter) = &only {
        targets.retain(|(name, _)| name.contains(filter.as_str()));
    }

    let (mut programs, mut loops) = (0usize, 0usize);
    let (mut soundness, mut precision, mut explain) = (0usize, 0usize, 0usize);
    for (name, src) in &targets {
        let rep = match compile_source(src, DriverOptions::with_iaa()) {
            Ok(r) => r,
            Err(e) => die(&format!("{name}: parse error: {e}")),
        };
        let n_loops = rep
            .verdicts
            .iter()
            .filter(|v| matches!(rep.program.stmt(v.loop_stmt).kind, StmtKind::Do { .. }))
            .count();
        let diags = lint_report(&rep);
        let count = |class: DiagClass| diags.iter().filter(|d| d.class == class).count();
        let (s, p, e) = (
            count(DiagClass::Soundness),
            count(DiagClass::Precision),
            count(DiagClass::Explain),
        );
        println!("{name}: {n_loops} loop(s), {s} soundness, {p} precision, {e} explain");
        for d in &diags {
            println!("  {}", d.line());
        }
        programs += 1;
        loops += n_loops;
        soundness += s;
        precision += p;
        explain += e;
    }
    println!(
        "lint: {programs} program(s), {loops} loop(s): {soundness} soundness, {precision} \
         precision, {explain} explain"
    );
    if check && soundness > 0 {
        eprintln!("lint --check: {soundness} soundness diagnostic(s)");
        std::process::exit(1);
    }
}

fn die(msg: &str) -> ! {
    eprintln!("lint: {msg}");
    std::process::exit(2);
}
