//! No panic escapes `parse` + `analyze` for any corpus program, at any
//! rung of the degradation ladder, with or without a starved budget.
//! This is the compile-side half of the service's robustness story: the
//! worker pool's `catch_unwind` is a last line of defense, not an
//! excuse for reachable panics.

use irr_core::AnalysisBudget;
use irr_driver::{compile_budgeted, ladder::DegradeLevel, DriverOptions};
use irr_frontend::{malformed_corpus, parse_program};

#[test]
fn corpus_never_panics_through_parse_and_analyze() {
    let mut escaped = Vec::new();
    for case in malformed_corpus(100) {
        let Ok(program) = parse_program(&case.source) else {
            continue; // parse errors are the expected outcome
        };
        let r = std::panic::catch_unwind(move || {
            let _ = compile_budgeted(program, DriverOptions::with_iaa(), None);
        });
        if r.is_err() {
            escaped.push(case.name);
        }
    }
    assert!(escaped.is_empty(), "panics escaped analyze: {escaped:?}");
}

#[test]
fn corpus_never_panics_on_any_ladder_rung_with_starved_budgets() {
    let mut escaped = Vec::new();
    for case in malformed_corpus(40) {
        let Ok(program) = parse_program(&case.source) else {
            continue;
        };
        for rung in DegradeLevel::ALL {
            for fuel in [Some(0), Some(7), None] {
                let program = program.clone();
                let r = std::panic::catch_unwind(move || {
                    let budget = AnalysisBudget::limited(fuel, None);
                    let _ = rung.compile_at(program, DriverOptions::with_iaa(), Some(&budget));
                });
                if r.is_err() {
                    escaped.push((case.name, rung.name(), fuel));
                }
            }
        }
    }
    assert!(escaped.is_empty(), "panics escaped: {escaped:?}");
}
