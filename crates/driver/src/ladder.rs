//! The degradation ladder: four analysis configurations ordered from
//! strongest to cheapest, each provably no less conservative than the
//! one above it.
//!
//! | rung | configuration | what a loop can lose |
//! |------|---------------|----------------------|
//! | `Full` | summaries + evolution + solver | nothing (baseline) |
//! | `SummariesOff` | evolution + solver, calls opaque | interprocedural promotions |
//! | `EvolutionOff` | solver only | all `EVO` promotions (loops fall back to guards) |
//! | `ParseOnly` | no analysis | everything: every loop is `Sequential` |
//!
//! The monotonicity argument is structural, not empirical: every rung
//! removes an analysis whose only power is to *verify* facts, and every
//! verified fact only ever moves a verdict toward parallel (a retired
//! check, a stepped-over call, a discharged query). Removing the
//! analysis removes proofs, never adds them — so descending the ladder
//! can only move verdicts along `CompileTimeParallel → RuntimeGuarded
//! → Sequential`, which is exactly the direction the dispatch tiers
//! degrade safely (the runtime treats `Sequential` as "just run it").
//! The property test in `irr-service` checks this on every kernel.

use crate::{compile_budgeted, parse_only_report, CompilationReport, DispatchTier, DriverOptions};
use irr_core::AnalysisBudget;
use irr_frontend::Program;

/// A rung of the ladder, strongest first.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum DegradeLevel {
    /// Everything on: summaries, evolution, full solver.
    Full,
    /// Interprocedural summaries off: calls are opaque again.
    SummariesOff,
    /// Value-evolution off too: no residual checks are retired.
    EvolutionOff,
    /// No analysis at all: parse, enumerate loops, answer `Sequential`.
    ParseOnly,
}

impl DegradeLevel {
    /// All rungs, strongest first.
    pub const ALL: [DegradeLevel; 4] = [
        DegradeLevel::Full,
        DegradeLevel::SummariesOff,
        DegradeLevel::EvolutionOff,
        DegradeLevel::ParseOnly,
    ];

    /// Short stable name for telemetry and reason codes.
    pub fn name(&self) -> &'static str {
        match self {
            DegradeLevel::Full => "full",
            DegradeLevel::SummariesOff => "summaries-off",
            DegradeLevel::EvolutionOff => "evolution-off",
            DegradeLevel::ParseOnly => "parse-only",
        }
    }

    /// The next (weaker) rung, or `None` from the terminal rung.
    pub fn next(&self) -> Option<DegradeLevel> {
        match self {
            DegradeLevel::Full => Some(DegradeLevel::SummariesOff),
            DegradeLevel::SummariesOff => Some(DegradeLevel::EvolutionOff),
            DegradeLevel::EvolutionOff => Some(DegradeLevel::ParseOnly),
            DegradeLevel::ParseOnly => None,
        }
    }

    /// Applies this rung's restrictions to a base configuration. The
    /// result only ever clears capability bits, so a caller's own
    /// restrictions (e.g. `baseline_apo`) survive the descent.
    pub fn options(&self, base: DriverOptions) -> DriverOptions {
        match self {
            DegradeLevel::Full => base,
            DegradeLevel::SummariesOff => DriverOptions {
                enable_summaries: false,
                ..base
            },
            DegradeLevel::EvolutionOff => DriverOptions {
                enable_summaries: false,
                enable_evolution: false,
                ..base
            },
            // ParseOnly never reaches `compile`; keep the weakest
            // configuration anyway so misuse stays conservative.
            DegradeLevel::ParseOnly => DriverOptions {
                enable_iaa: false,
                enable_summaries: false,
                enable_evolution: false,
                ..base
            },
        }
    }

    /// Compiles `program` at this rung. `ParseOnly` ignores the budget
    /// (it cannot exhaust); the other rungs thread it through every
    /// analysis pass.
    pub fn compile_at(
        &self,
        program: Program,
        base: DriverOptions,
        budget: Option<&AnalysisBudget>,
    ) -> CompilationReport {
        match self {
            DegradeLevel::ParseOnly => parse_only_report(program),
            _ => compile_budgeted(program, self.options(base), budget),
        }
    }
}

/// Orders dispatch tiers by optimism: degraded verdicts must never
/// *increase* this rank relative to the `Full` compile of the same
/// loop.
pub fn tier_rank(tier: &DispatchTier) -> u8 {
    match tier {
        DispatchTier::Sequential => 0,
        DispatchTier::RuntimeGuarded(_) => 1,
        DispatchTier::CompileTimeParallel => 2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile_source;
    use irr_frontend::parse_program;

    #[test]
    fn rung_names_and_order_are_stable() {
        let names: Vec<&str> = DegradeLevel::ALL.iter().map(|l| l.name()).collect();
        assert_eq!(
            names,
            ["full", "summaries-off", "evolution-off", "parse-only"]
        );
        let mut l = DegradeLevel::Full;
        let mut walked = vec![l];
        while let Some(n) = l.next() {
            walked.push(n);
            l = n;
        }
        assert_eq!(walked, DegradeLevel::ALL);
    }

    #[test]
    fn options_only_clear_capabilities() {
        let base = DriverOptions::apo();
        for l in DegradeLevel::ALL {
            let o = l.options(base);
            assert!(o.baseline_apo, "caller restrictions survive {l:?}");
            assert!(!o.enable_iaa || base.enable_iaa);
        }
    }

    #[test]
    fn ladder_descends_on_the_call_structured_kernel() {
        // The call-structured CRS kernel needs every analysis for its
        // promotion, so it exercises all four rungs distinctly.
        let src = crate::tests::CALL_STRUCTURED_CRS;
        let full = compile_source(src, DriverOptions::with_iaa()).unwrap();
        let full_rank = tier_rank(&full.verdict("T/do400").unwrap().tier);
        assert_eq!(full_rank, 2);
        let mut prev_rank = full_rank;
        for l in [
            DegradeLevel::SummariesOff,
            DegradeLevel::EvolutionOff,
            DegradeLevel::ParseOnly,
        ] {
            let rep = l.compile_at(parse_program(src).unwrap(), DriverOptions::with_iaa(), None);
            let rank = tier_rank(&rep.verdict("T/do400").unwrap().tier);
            assert!(rank <= prev_rank, "{l:?} got more optimistic: {rank}");
            prev_rank = rank;
        }
        assert_eq!(prev_rank, 0, "parse-only is Sequential");
    }

    #[test]
    fn parse_only_keeps_loop_labels() {
        let src = "program t
             integer i
             real x(10)
             do 140 i = 1, 10
               x(i) = 1
 140         continue
             end";
        let rep = parse_only_report(parse_program(src).unwrap());
        assert_eq!(rep.verdicts.len(), 1);
        assert_eq!(rep.verdicts[0].label, "T/do140");
        assert!(matches!(rep.verdicts[0].tier, DispatchTier::Sequential));
        assert!(rep.verdicts[0].blockers[0].contains("parse-only"));
    }

    #[test]
    fn starved_budget_still_yields_verdicts() {
        let src = crate::tests::CALL_STRUCTURED_CRS;
        let budget = AnalysisBudget::limited(Some(3), None);
        let rep = DegradeLevel::Full.compile_at(
            parse_program(src).unwrap(),
            DriverOptions::with_iaa(),
            Some(&budget),
        );
        let full = compile_source(src, DriverOptions::with_iaa()).unwrap();
        assert_eq!(rep.verdicts.len(), full.verdicts.len());
        for (starved, f) in rep.verdicts.iter().zip(&full.verdicts) {
            assert!(
                tier_rank(&starved.tier) <= tier_rank(&f.tier),
                "starved verdict for {} more optimistic than full",
                f.label
            );
        }
    }
}
