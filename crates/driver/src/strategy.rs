//! Strategy facts: proven properties that let the runtime execute a
//! parallel loop without the write-log transaction.
//!
//! The write-log executor (`irr-exec`) is a safety net: workers run on
//! copy-on-write store clones and a validating merge replays their
//! logs. When the compiler has already *proven* where a loop writes,
//! that machinery is pure overhead. This module derives two such
//! proofs from the loop body:
//!
//! - [`StrategyFacts::DisjointAffine`] — every non-privatized written
//!   array is written only at `loop_var + c` and never read, so chunks
//!   of the iteration space touch disjoint windows of each array.
//!   Workers may write the master store in place.
//! - [`StrategyFacts::ConsecutiveAppend`] — the written arrays are
//!   consecutively-written sections (§2.2 of the paper) through a
//!   single pointer scalar, so per-worker private buffers concatenate
//!   positionally.
//!
//! `derive_in_place_facts` and `derive_concat_shape` deliberately use
//! only `irr_frontend` types: the executor re-derives them per
//! dispatch and trusts *only* its own derivation, so a forged verdict
//! can never reach the in-place write path.

use irr_core::{consecutively_written, AnalysisCtx};
use irr_frontend::ast::{BinOp, Expr, LValue, StmtKind};
use irr_frontend::symbols::VarId;
use irr_frontend::visit::{collect_array_accesses, scalars_assigned_in};
use irr_frontend::{Program, StmtId};

/// Proven facts the runtime can turn into a zero-merge execution
/// strategy. Derived per loop after the dispatch tier is known; `None`
/// means parallel dispatches use the transactional write-log.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub enum StrategyFacts {
    /// No strategy-grade proof: parallel dispatches use the write-log.
    #[default]
    None,
    /// Every non-privatized written array is written only at
    /// `loop_var + offset` and never read: iteration chunks write
    /// disjoint windows and workers may write the master store in
    /// place.
    DisjointAffine {
        /// `(array, offset)` for each proven target.
        arrays: Vec<(VarId, i64)>,
    },
    /// The arrays are consecutively-written sections through `ptr`
    /// (§2.2): per-worker private buffers concatenate positionally.
    ConsecutiveAppend {
        /// The pointer scalar (`p` in `p = p + 1; a(p) = ...`).
        ptr: VarId,
        /// The consecutively-written arrays.
        arrays: Vec<VarId>,
    },
}

impl StrategyFacts {
    /// Short stable name for telemetry and witnesses.
    pub fn name(&self) -> &'static str {
        match self {
            StrategyFacts::None => "none",
            StrategyFacts::DisjointAffine { .. } => "disjoint-affine",
            StrategyFacts::ConsecutiveAppend { .. } => "consecutive-append",
        }
    }
}

/// `loop_var + c` (including bare `loop_var`, `c + loop_var`, and
/// `loop_var - c`) — the subscript shapes whose per-iteration write
/// sets are trivially disjoint.
fn affine_offset(e: &Expr, loop_var: VarId) -> Option<i64> {
    match e {
        Expr::Var(v) if *v == loop_var => Some(0),
        Expr::Bin(BinOp::Add, a, b) => match (&**a, &**b) {
            (Expr::Var(v), Expr::IntLit(c)) if *v == loop_var => Some(*c),
            (Expr::IntLit(c), Expr::Var(v)) if *v == loop_var => Some(*c),
            _ => None,
        },
        Expr::Bin(BinOp::Sub, a, b) => match (&**a, &**b) {
            // Checked: constant folding can leave `i - i64::MIN`, whose
            // negation has no i64 representation.
            (Expr::Var(v), Expr::IntLit(c)) if *v == loop_var => c.checked_neg(),
            _ => None,
        },
        _ => None,
    }
}

/// The statement kinds a strategy-eligible body may contain. Nested
/// loops and calls are rejected: they make the per-iteration write set
/// non-obvious and bring in side effects the derivation cannot see.
fn body_is_straightline(program: &Program, body: &[StmtId]) -> bool {
    program.stmts_in(body).into_iter().all(|s| {
        matches!(
            program.stmt(s).kind,
            StmtKind::Assign { .. }
                | StmtKind::If { .. }
                | StmtKind::Print { .. }
                | StmtKind::Return
        )
    })
}

/// Proves that every non-privatized array written by `loop_stmt` is
/// written only at `loop_var + c` (one consistent offset per array)
/// and never read anywhere in the body, so iteration chunks write
/// disjoint windows and workers may write the master store in place.
///
/// Returns `(array, offset)` per target, or `None` if any of the
/// conditions fail. The executor calls this itself on every
/// `InPlaceDisjoint` dispatch — the plan's strategy is advisory, this
/// derivation is the safety gate — so it must stay a pure function of
/// the program text plus the privatized/reduction sets.
///
/// Conditions, each load-bearing for in-place soundness:
/// - body is straight-line (`Assign`/`If`/`Print`/`Return` only) and
///   does not assign the loop variable;
/// - every assigned scalar is privatized or a reduction (workers keep
///   them in their private snapshots);
/// - each target is written only at subscript `loop_var + c` with one
///   consistent `c` (distinct offsets would overlap across chunks);
/// - targets are never read (workers share the master allocation, so a
///   read racing another chunk's raw write would be undefined);
/// - targets are 1-D and their declared extent mentions no assigned
///   scalar and not the loop variable (bounds checks are race-free);
/// - each target has at least one unconditional top-level write, so a
///   non-zero-trip loop materializes it exactly as sequential
///   execution would (pre-materializing a conditionally-written array
///   could diverge from the sequential run's materialization set).
pub fn derive_in_place_facts(
    program: &Program,
    loop_stmt: StmtId,
    privatized: &[VarId],
    reductions: &[VarId],
) -> Option<Vec<(VarId, i64)>> {
    let StmtKind::Do {
        var: loop_var,
        body,
        ..
    } = &program.stmt(loop_stmt).kind
    else {
        return None;
    };
    let loop_var = *loop_var;
    if !body_is_straightline(program, body) {
        return None;
    }
    let assigned = scalars_assigned_in(program, body);
    if assigned.contains(&loop_var) {
        return None;
    }
    if !assigned
        .iter()
        .all(|s| privatized.contains(s) || reductions.contains(s))
    {
        return None;
    }
    let accesses = collect_array_accesses(program, body);
    let mut targets: Vec<(VarId, i64)> = Vec::new();
    for acc in &accesses {
        if !acc.is_write || privatized.contains(&acc.array) {
            continue;
        }
        let off = match acc.subscripts.as_slice() {
            [sub] => affine_offset(sub, loop_var)?,
            _ => return None,
        };
        match targets.iter().find(|(a, _)| *a == acc.array) {
            None => targets.push((acc.array, off)),
            Some((_, prev)) if *prev == off => {}
            Some(_) => return None,
        }
    }
    if targets.is_empty() {
        return None;
    }
    // Targets must never be read — not in rhs, conditions, print
    // arguments, or any subscript (collect_array_accesses sees all of
    // those as reads).
    if accesses
        .iter()
        .any(|acc| !acc.is_write && targets.iter().any(|(a, _)| *a == acc.array))
    {
        return None;
    }
    for &(a, _) in &targets {
        let info = program.symbols.var(a);
        if info.dims.len() != 1 {
            return None;
        }
        if info.dims[0].mentions(loop_var) || assigned.iter().any(|s| info.dims[0].mentions(*s)) {
            return None;
        }
        let unconditional = body.iter().any(|&s| {
            matches!(&program.stmt(s).kind,
                     StmtKind::Assign { lhs: LValue::Element(v, _), .. } if *v == a)
        });
        if !unconditional {
            return None;
        }
    }
    Some(targets)
}

/// Syntactic half of the consecutive-append proof: finds the unique
/// pointer scalar and the arrays written only at `[ptr]`, and checks
/// the pointer discipline (`ptr = ptr + 1` is its only definition,
/// nothing else in the body mentions `ptr`). The semantic half — that
/// the appended region has no holes — is `consecutively_written` in
/// `irr-core`; the executor cannot run that (no analysis context), so
/// it re-derives this shape and validates hole-freedom dynamically at
/// commit (append positions must be contiguous and the pointer delta
/// must equal each buffer length).
pub fn derive_concat_shape(
    program: &Program,
    loop_stmt: StmtId,
    privatized: &[VarId],
    reductions: &[VarId],
) -> Option<(VarId, Vec<VarId>)> {
    let StmtKind::Do {
        var: loop_var,
        body,
        ..
    } = &program.stmt(loop_stmt).kind
    else {
        return None;
    };
    let loop_var = *loop_var;
    if !body_is_straightline(program, body) {
        return None;
    }
    let assigned = scalars_assigned_in(program, body);
    if assigned.contains(&loop_var) {
        return None;
    }
    // The pointer: the unique non-privatized, non-reduction scalar
    // used as the whole subscript of a write.
    let accesses = collect_array_accesses(program, body);
    let mut ptr: Option<VarId> = None;
    for acc in &accesses {
        if !acc.is_write || privatized.contains(&acc.array) {
            continue;
        }
        if let [Expr::Var(p)] = acc.subscripts.as_slice() {
            if *p != loop_var
                && !program.symbols.var(*p).is_array()
                && !privatized.contains(p)
                && !reductions.contains(p)
            {
                match ptr {
                    None => ptr = Some(*p),
                    Some(q) if q == *p => {}
                    Some(_) => return None,
                }
            }
        }
    }
    let ptr = ptr?;
    let mut targets: Vec<VarId> = Vec::new();
    for acc in &accesses {
        if acc.is_write
            && !privatized.contains(&acc.array)
            && matches!(acc.subscripts.as_slice(), [Expr::Var(p)] if *p == ptr)
            && !targets.contains(&acc.array)
        {
            targets.push(acc.array);
        }
    }
    // Every access to a target must be exactly such a write: a read
    // would observe the worker's stale private copy instead of the
    // appended values, and any other write shape breaks contiguity.
    for acc in &accesses {
        if targets.contains(&acc.array)
            && !(acc.is_write && matches!(acc.subscripts.as_slice(), [Expr::Var(p)] if *p == ptr))
        {
            return None;
        }
    }
    // Pointer discipline: assigned only as `ptr = ptr + 1`, mentioned
    // nowhere else. Workers start from the shared entry value, so any
    // other use of `ptr` would observe a position shifted by the other
    // chunks' appends.
    let is_increment = |rhs: &Expr| match rhs {
        Expr::Bin(BinOp::Add, a, b) => matches!(
            (&**a, &**b),
            (Expr::Var(v), Expr::IntLit(1)) | (Expr::IntLit(1), Expr::Var(v)) if *v == ptr
        ),
        _ => false,
    };
    let mut increments = 0usize;
    for s in program.stmts_in(body) {
        match &program.stmt(s).kind {
            StmtKind::Assign {
                lhs: LValue::Scalar(v),
                rhs,
            } if *v == ptr => {
                if !is_increment(rhs) {
                    return None;
                }
                increments += 1;
            }
            StmtKind::Assign { lhs, rhs } => {
                let target_write = matches!(lhs, LValue::Element(a, _) if targets.contains(a));
                // Target subscripts are `[ptr]` by construction; every
                // other position must not mention the pointer.
                if !target_write && lhs.subscripts().iter().any(|e| e.mentions(ptr)) {
                    return None;
                }
                if rhs.mentions(ptr) {
                    return None;
                }
            }
            StmtKind::If { cond, .. } => {
                if cond.mentions(ptr) {
                    return None;
                }
            }
            StmtKind::Print { args } => {
                if args.iter().any(|e| e.mentions(ptr)) {
                    return None;
                }
            }
            StmtKind::Return => {}
            _ => return None,
        }
    }
    if increments == 0 {
        return None;
    }
    if !assigned
        .iter()
        .all(|s| *s == ptr || privatized.contains(s) || reductions.contains(s))
    {
        return None;
    }
    for &a in &targets {
        let info = program.symbols.var(a);
        if info.dims.len() != 1 {
            return None;
        }
        if info.dims[0].mentions(loop_var)
            || info.dims[0].mentions(ptr)
            || assigned.iter().any(|s| info.dims[0].mentions(*s))
        {
            return None;
        }
    }
    if targets.is_empty() {
        None
    } else {
        Some((ptr, targets))
    }
}

/// Full consecutive-append derivation for the driver: the syntactic
/// shape plus the paper's hole-freedom proof per target, plus the
/// requirement that every *other* written array is privatized or
/// proven independent (their writes still go through the write-log
/// merge, which catches overlaps but not stale cross-chunk reads — so
/// promotion demands the compile-time proof).
pub(crate) fn derive_concat_facts(
    ctx: &AnalysisCtx<'_>,
    loop_stmt: StmtId,
    privatized: &[VarId],
    reductions: &[VarId],
    independent: &[VarId],
) -> StrategyFacts {
    let program = ctx.program;
    let Some((ptr, targets)) = derive_concat_shape(program, loop_stmt, privatized, reductions)
    else {
        return StrategyFacts::None;
    };
    let StmtKind::Do { body, .. } = &program.stmt(loop_stmt).kind else {
        return StrategyFacts::None;
    };
    for acc in collect_array_accesses(program, body) {
        if acc.is_write
            && !targets.contains(&acc.array)
            && !privatized.contains(&acc.array)
            && !independent.contains(&acc.array)
        {
            return StrategyFacts::None;
        }
    }
    for &a in &targets {
        match consecutively_written(ctx, loop_stmt, a, ptr) {
            Some(cw) if !cw.increments.is_empty() => {}
            _ => return StrategyFacts::None,
        }
    }
    StrategyFacts::ConsecutiveAppend {
        ptr,
        arrays: targets,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use irr_frontend::parse_program;

    fn first_do(p: &Program) -> StmtId {
        p.stmts_in(&p.procedure(p.main()).body)
            .into_iter()
            .find(|s| matches!(p.stmt(*s).kind, StmtKind::Do { .. }))
            .expect("program has a do loop")
    }

    fn var(p: &Program, name: &str) -> VarId {
        p.symbols.lookup(name).expect("variable exists")
    }

    #[test]
    fn affine_offset_survives_extreme_constants() {
        use irr_frontend::{BinOp, Expr};
        let p = parse_program(
            "program t
             integer i
             real x(10)
             do i = 1, 10
               x(i) = 1
             enddo
             end",
        )
        .unwrap();
        let i = var(&p, "i");
        // `i - i64::MIN` (only reachable through constant folding):
        // negation has no i64 representation, so no offset — and no
        // debug-build overflow panic.
        let e = Expr::Bin(
            BinOp::Sub,
            Box::new(Expr::Var(i)),
            Box::new(Expr::IntLit(i64::MIN)),
        );
        assert_eq!(affine_offset(&e, i), None);
        // i64::MAX-adjacent offsets keep their exact value in both
        // operand orders.
        let e = Expr::Bin(
            BinOp::Add,
            Box::new(Expr::Var(i)),
            Box::new(Expr::IntLit(i64::MAX - 1)),
        );
        assert_eq!(affine_offset(&e, i), Some(i64::MAX - 1));
        let e = Expr::Bin(
            BinOp::Sub,
            Box::new(Expr::Var(i)),
            Box::new(Expr::IntLit(i64::MIN + 1)),
        );
        assert_eq!(affine_offset(&e, i), Some(i64::MAX));
    }

    #[test]
    fn in_place_facts_carry_extreme_offsets_unclamped() {
        // The derivation is a pure fact about the program text; range
        // validation happens at dispatch. The fact must carry the
        // extreme offset without overflow.
        let p = parse_program(
            "program t
             integer i
             real x(10)
             do i = 1, 10
               x(i + 9223372036854775800) = 1
             enddo
             end",
        )
        .unwrap();
        let facts = derive_in_place_facts(&p, first_do(&p), &[], &[]).expect("facts derive");
        assert_eq!(facts, vec![(var(&p, "x"), 9223372036854775800)]);
    }

    #[test]
    fn read_and_written_target_rejects() {
        // y is read on the first rhs and written by the second
        // statement: a chunk's read could race another chunk's
        // in-place write, so the derivation rejects the loop.
        let p = parse_program(
            "program t
             integer i, n
             real x(100), y(100)
             do i = 1, n
               x(i) = y(i) * 2.0
               y(i) = 0.0
             enddo
             end",
        )
        .unwrap();
        assert_eq!(derive_in_place_facts(&p, first_do(&p), &[], &[]), None);
    }

    #[test]
    fn write_only_affine_targets_qualify_with_offsets() {
        let p = parse_program(
            "program t
             integer i, n
             real x(100), y(101), z(100)
             do i = 1, n
               x(i) = z(i) * 2.0
               y(i + 1) = z(i)
             enddo
             end",
        )
        .unwrap();
        let facts = derive_in_place_facts(&p, first_do(&p), &[], &[]).expect("facts");
        assert_eq!(facts, vec![(var(&p, "x"), 0), (var(&p, "y"), 1)]);
    }

    #[test]
    fn conflicting_offsets_reject() {
        let p = parse_program(
            "program t
             integer i, n
             real x(101)
             do i = 1, n
               x(i) = 1.0
               x(i + 1) = 2.0
             enddo
             end",
        )
        .unwrap();
        assert_eq!(derive_in_place_facts(&p, first_do(&p), &[], &[]), None);
    }

    #[test]
    fn conditional_only_writes_reject() {
        // A target written only under a condition may never
        // materialize sequentially; pre-materializing it in place
        // would diverge.
        let p = parse_program(
            "program t
             integer i, n
             real x(100), z(100)
             do i = 1, n
               if (z(i) > 0.0) then
                 x(i) = 1.0
               endif
             enddo
             end",
        )
        .unwrap();
        assert_eq!(derive_in_place_facts(&p, first_do(&p), &[], &[]), None);
    }

    #[test]
    fn irregular_subscript_rejects() {
        let p = parse_program(
            "program t
             integer i, n, p(100)
             real x(100)
             do i = 1, n
               x(p(i)) = 1.0
             enddo
             end",
        )
        .unwrap();
        assert_eq!(derive_in_place_facts(&p, first_do(&p), &[], &[]), None);
    }

    #[test]
    fn unlisted_assigned_scalar_rejects_but_reduction_passes() {
        let p = parse_program(
            "program t
             integer i, n
             real s, x(100), z(100)
             do i = 1, n
               s = s + z(i)
               x(i) = z(i)
             enddo
             end",
        )
        .unwrap();
        let s = var(&p, "s");
        assert_eq!(derive_in_place_facts(&p, first_do(&p), &[], &[]), None);
        let facts = derive_in_place_facts(&p, first_do(&p), &[], &[s]).expect("facts");
        assert_eq!(facts, vec![(var(&p, "x"), 0)]);
    }

    #[test]
    fn nested_loop_rejects() {
        let p = parse_program(
            "program t
             integer i, j, n
             real x(100)
             do i = 1, n
               do j = 1, 2
                 x(i) = x(i)
               enddo
             enddo
             end",
        )
        .unwrap();
        assert_eq!(derive_in_place_facts(&p, first_do(&p), &[], &[]), None);
    }

    #[test]
    fn concat_shape_recognizes_gather() {
        let p = parse_program(
            "program t
             integer i, n, q, ind(100)
             real z(100)
             do i = 1, n
               if (z(i) > 0.0) then
                 q = q + 1
                 ind(q) = i
               endif
             enddo
             end",
        )
        .unwrap();
        let (ptr, targets) = derive_concat_shape(&p, first_do(&p), &[], &[]).expect("shape");
        assert_eq!(ptr, var(&p, "q"));
        assert_eq!(targets, vec![var(&p, "ind")]);
    }

    #[test]
    fn concat_shape_rejects_pointer_leak() {
        // `s = s + q` observes the pointer's numeric value, which is
        // chunk-local under concatenation.
        let p = parse_program(
            "program t
             integer i, n, q, s, ind(100)
             do i = 1, n
               q = q + 1
               ind(q) = i
               s = s + q
             enddo
             end",
        )
        .unwrap();
        assert_eq!(derive_concat_shape(&p, first_do(&p), &[], &[]), None);
    }

    #[test]
    fn concat_shape_rejects_target_read() {
        let p = parse_program(
            "program t
             integer i, n, q, s, ind(100)
             do i = 1, n
               q = q + 1
               ind(q) = i
               s = s + ind(i)
             enddo
             end",
        )
        .unwrap();
        let s = var(&p, "s");
        assert_eq!(derive_concat_shape(&p, first_do(&p), &[], &[s]), None);
    }

    #[test]
    fn concat_shape_rejects_non_unit_increment() {
        let p = parse_program(
            "program t
             integer i, n, q, ind(100)
             do i = 1, n
               q = q + 2
               ind(q) = i
             enddo
             end",
        )
        .unwrap();
        assert_eq!(derive_concat_shape(&p, first_do(&p), &[], &[]), None);
    }

    #[test]
    fn concat_facts_require_hole_freedom() {
        use irr_core::AnalysisCtx;
        // Increment not always followed by a write: holes possible.
        let holey = parse_program(
            "program t
             integer i, n, q, ind(100)
             real z(100)
             do i = 1, n
               q = q + 1
               if (z(i) > 0.0) then
                 ind(q) = i
               endif
             enddo
             end",
        )
        .unwrap();
        let ctx = AnalysisCtx::new(&holey);
        assert_eq!(
            derive_concat_facts(&ctx, first_do(&holey), &[], &[], &[]),
            StrategyFacts::None
        );
        let dense = parse_program(
            "program t
             integer i, n, q, ind(100)
             real z(100)
             do i = 1, n
               if (z(i) > 0.0) then
                 q = q + 1
                 ind(q) = i
               endif
             enddo
             end",
        )
        .unwrap();
        let ctx = AnalysisCtx::new(&dense);
        let facts = derive_concat_facts(&ctx, first_do(&dense), &[], &[], &[]);
        assert_eq!(
            facts,
            StrategyFacts::ConsecutiveAppend {
                ptr: var(&dense, "q"),
                arrays: vec![var(&dense, "ind")],
            }
        );
    }
}
