//! Annotated-source emission: the output artifact Polaris actually
//! produced — the program with parallel directives on the loops the
//! analysis cleared, including privatization and reduction clauses.

use crate::{CompilationReport, DispatchTier, LoopVerdict, ResidualCheck};
use irr_frontend::{print_program, StmtKind};

/// Renders the transformed program with OpenMP-style directive comments
/// (`!$omp parallel do private(...) reduction(+:...)`) above every loop
/// the driver found parallel.
///
/// Runtime-guarded loops (unknown at compile time, but clearable by an
/// inspector) get a distinct `!$irr guarded do inspect(...)` comment
/// instead, naming the properties the hybrid runtime must check — so the
/// artifact records all three dispatch tiers without claiming static
/// parallelism the analysis never proved.
///
/// Sequential-tier loops get `!$irr serial reason(...)` naming the
/// verdict's blockers, so the artifact also records *why* a loop was
/// rejected — the input the sanitizer's precision audit starts from.
///
/// The directives are comments in the mini-Fortran language, so the
/// annotated source still parses and executes identically.
pub fn emit_annotated(report: &CompilationReport) -> String {
    let printed = print_program(&report.program);
    // Map each parallel verdict to its loop's source rendering: we match
    // the printed `do` line by label when present, else by position
    // among unlabeled loops of the same procedure. Simpler and robust:
    // re-print with an injection pass over lines, tracking the loop
    // order in the printed output (the printer emits loops in program
    // order, which matches the verdict order within each procedure).
    let mut verdicts_in_order: Vec<&LoopVerdict> = report
        .verdicts
        .iter()
        .filter(|v| matches!(report.program.stmt(v.loop_stmt).kind, StmtKind::Do { .. }))
        .collect();
    // The printer walks procedures in order and loops in pre-order —
    // exactly the order `compile` produced the verdicts in.
    verdicts_in_order.reverse(); // pop from the front cheaply
    let mut out = String::with_capacity(printed.len() * 2);
    for line in printed.lines() {
        let trimmed = line.trim_start();
        if trimmed.starts_with("do ") && !trimmed.starts_with("do while") {
            if let Some(v) = verdicts_in_order.pop() {
                if v.parallel {
                    let indent = &line[..line.len() - trimmed.len()];
                    out.push_str(indent);
                    out.push_str(&directive_for(report, v));
                    out.push('\n');
                    if !v.retired_checks.is_empty() {
                        // The loop was promoted past runtime guarding:
                        // record which inspections the evolution facts
                        // retired (and whether that crossed a call).
                        out.push_str(indent);
                        out.push_str(&retired_directive_for(report, v));
                        out.push('\n');
                    }
                } else if let DispatchTier::RuntimeGuarded(guard) = &v.tier {
                    let indent = &line[..line.len() - trimmed.len()];
                    out.push_str(indent);
                    out.push_str(&guarded_directive_for(report, guard));
                    out.push('\n');
                } else {
                    let indent = &line[..line.len() - trimmed.len()];
                    out.push_str(indent);
                    out.push_str(&serial_directive_for(v));
                    out.push('\n');
                }
            }
        }
        out.push_str(line);
        out.push('\n');
    }
    out
}

fn directive_for(report: &CompilationReport, v: &LoopVerdict) -> String {
    let symbols = &report.program.symbols;
    let mut clauses = String::new();
    let mut privatized: Vec<&str> = v
        .privatized_scalars
        .iter()
        .map(|s| symbols.name(*s))
        .chain(v.privatized_arrays.iter().map(|(a, _)| symbols.name(*a)))
        .collect();
    privatized.sort_unstable();
    privatized.dedup();
    if !privatized.is_empty() {
        clauses.push_str(&format!(" private({})", privatized.join(", ")));
    }
    if !v.reductions.is_empty() {
        use irr_passes::ReductionOp;
        for (tag, op) in [
            ("+", ReductionOp::Sum),
            ("*", ReductionOp::Product),
            ("min", ReductionOp::Min),
            ("max", ReductionOp::Max),
        ] {
            let names: Vec<&str> = v
                .reductions
                .iter()
                .filter(|(_, o)| *o == op)
                .map(|(s, _)| symbols.name(*s))
                .collect();
            if !names.is_empty() {
                clauses.push_str(&format!(" reduction({tag}: {})", names.join(", ")));
            }
        }
    }
    format!("!$omp parallel do{clauses}")
}

fn render_check(report: &CompilationReport, c: &ResidualCheck) -> String {
    let symbols = &report.program.symbols;
    match c {
        ResidualCheck::Injective { array } => {
            format!("injective({})", symbols.name(*array))
        }
        ResidualCheck::OffsetLength { ptr, len } => {
            format!("offlen({}, {})", symbols.name(*ptr), symbols.name(*len))
        }
    }
}

/// `!$irr parallel retired(...)`: the statically discharged
/// inspections of a promoted loop, sorted for byte-stable output, with
/// an `interproc` tag when the discharge crossed a call.
fn retired_directive_for(report: &CompilationReport, v: &LoopVerdict) -> String {
    let mut checks: Vec<String> = v
        .retired_checks
        .iter()
        .map(|c| render_check(report, c))
        .collect();
    checks.sort_unstable();
    checks.dedup();
    let tag = if v.promoted_interproc {
        " interproc"
    } else {
        ""
    };
    format!("!$irr parallel retired({}){tag}", checks.join(", "))
}

fn guarded_directive_for(report: &CompilationReport, guard: &crate::GuardPlan) -> String {
    let render = |c: &ResidualCheck| render_check(report, c);
    // Within a group any one check clears the array (rendered with `|`);
    // every group must be cleared (rendered with `, `).
    let groups: Vec<String> = guard
        .groups
        .iter()
        .map(|g| g.iter().map(render).collect::<Vec<_>>().join(" | "))
        .collect();
    format!("!$irr guarded do inspect({})", groups.join(", "))
}

fn serial_directive_for(v: &LoopVerdict) -> String {
    let reason = if v.blockers.is_empty() {
        // Parallel verdict forced sequential at run time (e.g. a
        // product reduction the chunked executor cannot merge).
        "not executable in parallel".to_string()
    } else {
        v.blockers.join("; ")
    };
    format!("!$irr serial reason({reason})")
}

#[cfg(test)]
mod tests {
    use crate::{compile_source, DriverOptions};
    use irr_frontend::parse_program;

    #[test]
    fn annotated_source_has_directives_and_reparses() {
        let src = "program t
             integer i, n
             real s, x(100), y(100)
             n = 100
             s = 0
             do 10 i = 1, n
               x(i) = y(i) * 2
 10          continue
             do 20 i = 1, n
               s = s + x(i)
 20          continue
             do 30 i = 1, n
               x(i) = x(i + 1)
 30          continue
             print s
             end";
        let rep = compile_source(src, DriverOptions::with_iaa()).unwrap();
        let annotated = super::emit_annotated(&rep);
        // do10 parallel (plain), do20 parallel with a reduction clause,
        // do30 serial (no directive).
        let lines: Vec<&str> = annotated.lines().map(str::trim).collect();
        let d10 = lines.iter().position(|l| l.starts_with("do 10")).unwrap();
        assert!(
            lines[d10 - 1].starts_with("!$omp parallel do"),
            "{annotated}"
        );
        let d20 = lines.iter().position(|l| l.starts_with("do 20")).unwrap();
        assert!(lines[d20 - 1].contains("reduction(+: s)"), "{annotated}");
        let d30 = lines.iter().position(|l| l.starts_with("do 30")).unwrap();
        assert!(
            !lines[d30 - 1].starts_with("!$omp"),
            "serial loop must not claim parallelism:\n{annotated}"
        );
        // The serial loop carries its not-parallel reason instead.
        assert!(
            lines[d30 - 1].starts_with("!$irr serial reason("),
            "{annotated}"
        );
        assert!(
            lines[d30 - 1].contains("array `x`"),
            "reason names the blocking array:\n{annotated}"
        );
        // The directives are comments: the annotated source reparses and
        // is the same program.
        let reparsed = parse_program(&annotated).expect("annotated source parses");
        assert_eq!(reparsed.procedures.len(), rep.program.procedures.len());
    }

    #[test]
    fn promoted_loops_print_retired_inspections_and_round_trip() {
        // An affine-fill producer retires the injectivity inspection of
        // the consumer: the annotation must say so and still reparse.
        let src = "program t
             integer k, nnz, perm(16)
             real aval(16), pval(16)
             nnz = 16
             do k = 1, nnz
               perm(k) = nnz + 1 - k
             enddo
             do 800 k = 1, nnz
               pval(perm(k)) = aval(k) * 2.0
 800         continue
             print pval(1)
             end";
        let rep = compile_source(src, DriverOptions::with_iaa()).unwrap();
        let annotated = super::emit_annotated(&rep);
        let lines: Vec<&str> = annotated.lines().map(str::trim).collect();
        let d800 = lines.iter().position(|l| l.starts_with("do 800")).unwrap();
        assert!(
            lines[d800 - 1].starts_with("!$irr parallel retired(injective(perm))"),
            "{annotated}"
        );
        assert!(
            lines[d800 - 2].starts_with("!$omp parallel do"),
            "{annotated}"
        );
        // Intraprocedural promotion: no interproc tag.
        assert!(!lines[d800 - 1].contains("interproc"), "{annotated}");
        // The directive is a comment: the annotated source reparses.
        let reparsed = parse_program(&annotated).expect("annotated source parses");
        assert_eq!(reparsed.procedures.len(), rep.program.procedures.len());
        // Re-compiling the annotated source reproduces the annotation
        // byte-for-byte (the full round trip).
        let rep2 = compile_source(&annotated, DriverOptions::with_iaa()).unwrap();
        assert_eq!(super::emit_annotated(&rep2), annotated);
    }

    #[test]
    fn interprocedural_promotions_are_tagged_in_the_annotation() {
        let rep =
            compile_source(crate::tests::CALL_STRUCTURED_CRS, DriverOptions::with_iaa()).unwrap();
        let annotated = super::emit_annotated(&rep);
        let lines: Vec<&str> = annotated.lines().map(str::trim).collect();
        let d400 = lines.iter().position(|l| l.starts_with("do 400")).unwrap();
        assert!(
            lines[d400 - 1].contains("retired(offlen(rowptr, rowlen)) interproc"),
            "{annotated}"
        );
    }

    #[test]
    fn privatization_clause_lists_arrays() {
        let src = "program t
             integer i, j, n, m
             real tmp(8), z(100)
             n = 100
             m = 8
             do 10 i = 1, n
               do j = 1, m
                 tmp(j) = i + j
               enddo
               z(i) = tmp(1) + tmp(8)
 10          continue
             end";
        let rep = compile_source(src, DriverOptions::with_iaa()).unwrap();
        let annotated = super::emit_annotated(&rep);
        let lines: Vec<&str> = annotated.lines().map(str::trim).collect();
        let d10 = lines.iter().position(|l| l.starts_with("do 10")).unwrap();
        let directive = lines[d10 - 1];
        assert!(directive.contains("private("), "{annotated}");
        assert!(directive.contains("tmp"), "{annotated}");
        assert!(directive.contains("j"), "{annotated}");
    }
}
