//! The parallelizing-compiler driver: Fig. 15's phase pipeline plus
//! per-loop parallelization verdicts.
//!
//! Three configurations reproduce the paper's comparisons (Fig. 16):
//!
//! - **Polaris + IAA** — the full pipeline with the irregular array
//!   access analyses enabled (the paper's contribution);
//! - **Polaris** — the same pipeline with IAA disabled (traditional
//!   privatization and dependence tests only);
//! - **APO** — an SGI-`-apo`-like baseline: no inlining, no
//!   interprocedural analysis, affine tests only.
//!
//! The phase *organization* is also selectable (Fig. 15(a) vs (b)): the
//! "original" per-unit organization restricts the array property
//! analysis to intraprocedural queries, which is exactly why the paper
//! reorganizes the pipeline.

pub mod compiled;
pub mod emit;
pub mod ladder;
pub mod strategy;

pub use compiled::{derive_compiled_plan, CompiledPlan};
pub use emit::emit_annotated;
pub use irr_deptest::ResidualCheck;
pub use irr_passes::ReductionOp;
pub use ladder::DegradeLevel;
pub use strategy::{derive_concat_shape, derive_in_place_facts, StrategyFacts};

use irr_core::property::{ArrayPropertyAnalysis, SolverOptions};
use irr_core::{AnalysisBudget, AnalysisCtx, EvolutionAnalysis};
use irr_deptest::DependenceTester;
use irr_frontend::{parse_program, LValue, ParseError, ProcId, Program, StmtId, StmtKind, VarId};
use irr_passes::{
    eliminate_dead_code, forward_substitute, inline_small_procedures, normalize_loops,
    propagate_constants, recognize_reductions, substitute_induction_variables,
};
use irr_privatize::Privatizer;
use std::time::{Duration, Instant};

/// Phase organization (Fig. 15).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PhaseOrder {
    /// Fig. 15(a): per-unit transformation and analysis — the array
    /// property analysis cannot cross procedure boundaries.
    Original,
    /// Fig. 15(b): all units are normalized before any analysis runs —
    /// interprocedural queries work.
    Reorganized,
}

/// Driver configuration.
#[derive(Clone, Copy, Debug)]
pub struct DriverOptions {
    /// Enable the irregular array access analyses (§2–§4).
    pub enable_iaa: bool,
    /// APO-like baseline: no inlining, intraprocedural only, no IAA.
    pub baseline_apo: bool,
    /// Phase organization.
    pub phase_order: PhaseOrder,
    /// Inlining threshold in statements (Polaris default: 50 lines).
    pub inline_limit: usize,
    /// Compute per-routine property summaries and use them to carry
    /// evolution facts and property queries across non-inlined calls.
    /// Has no effect under `baseline_apo` or with IAA disabled.
    pub enable_summaries: bool,
    /// Run the value-evolution walk over producer loops and use its
    /// facts to retire residual checks. Disabling it (the ladder's
    /// evolution-off rung) keeps every verdict sound: loops that would
    /// have been promoted stay runtime-guarded instead.
    pub enable_evolution: bool,
}

impl Default for DriverOptions {
    fn default() -> Self {
        DriverOptions {
            enable_iaa: true,
            baseline_apo: false,
            phase_order: PhaseOrder::Reorganized,
            inline_limit: 50,
            enable_summaries: true,
            enable_evolution: true,
        }
    }
}

impl DriverOptions {
    /// The full configuration (Polaris + IAA).
    pub fn with_iaa() -> Self {
        DriverOptions::default()
    }

    /// Polaris without the irregular analyses.
    pub fn without_iaa() -> Self {
        DriverOptions {
            enable_iaa: false,
            ..DriverOptions::default()
        }
    }

    /// The APO-like baseline.
    pub fn apo() -> Self {
        DriverOptions {
            enable_iaa: false,
            baseline_apo: true,
            ..DriverOptions::default()
        }
    }

    /// Full IAA but no interprocedural summaries — the ablation that
    /// shows what the summary pass buys on call-structured kernels.
    pub fn without_summaries() -> Self {
        DriverOptions {
            enable_summaries: false,
            ..DriverOptions::default()
        }
    }

    /// Full IAA but no value-evolution walk (implies no summaries,
    /// since their payload is evolution facts crossing calls).
    pub fn without_evolution() -> Self {
        DriverOptions {
            enable_summaries: false,
            enable_evolution: false,
            ..DriverOptions::default()
        }
    }
}

/// The inspections a hybrid runtime must pass — against the live store,
/// with the loop's evaluated bounds — before this loop may legally run
/// in parallel. Every check corresponds to one property the compile-time
/// solver left unknown.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct GuardPlan {
    /// One group per blocked array. The dependence tester emits every
    /// residual check that would *alone* establish that array's
    /// independence, so the groups compose as a conjunction of
    /// disjunctions: the loop may run parallel when, for every group,
    /// at least one of its checks passes. (Flattening the groups into
    /// a single all-must-pass list would be wrong: the tester's
    /// symmetric offset–length candidates include swapped `(len, ptr)`
    /// checks that legitimately fail while the `(ptr, len)` check
    /// passes.)
    pub groups: Vec<Vec<ResidualCheck>>,
}

impl GuardPlan {
    /// Every check across all groups, flattened — for display and for
    /// version-keying the arrays the inspectors read.
    pub fn all_checks(&self) -> impl Iterator<Item = &ResidualCheck> {
        self.groups.iter().flatten()
    }
}

/// How the executor should dispatch a loop — the three-tier outcome of
/// the hybrid compile-time/run-time strategy.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum DispatchTier {
    /// Proven parallel at compile time: no run-time checks needed.
    CompileTimeParallel,
    /// Unknown at compile time, but every blocker reduces to a
    /// run-time-checkable property: inspect, then dispatch per result.
    RuntimeGuarded(GuardPlan),
    /// Proven or presumed sequential; no inspection can clear it.
    Sequential,
}

impl DispatchTier {
    /// The guard plan, when this tier is runtime-guarded.
    pub fn guard(&self) -> Option<&GuardPlan> {
        match self {
            DispatchTier::RuntimeGuarded(g) => Some(g),
            _ => None,
        }
    }
}

/// Why a loop was rejected or how each written array was cleared.
#[derive(Clone, Debug)]
pub struct LoopVerdict {
    /// The loop statement (in the *transformed* program).
    pub loop_stmt: StmtId,
    /// `PROC/do140`-style label.
    pub label: String,
    /// The procedure containing the loop.
    pub proc: ProcId,
    /// Whether the loop can be executed in parallel.
    pub parallel: bool,
    /// Arrays proven dependence-free, with the test used.
    pub independent_arrays: Vec<(VarId, &'static str)>,
    /// Arrays privatized, with the evidence tag.
    pub privatized_arrays: Vec<(VarId, &'static str)>,
    /// Scalars privatized.
    pub privatized_scalars: Vec<VarId>,
    /// Reduction scalars with their operators.
    pub reductions: Vec<(VarId, irr_passes::ReductionOp)>,
    /// `(index array name, property tag)` pairs verified on the way.
    pub properties_used: Vec<(String, &'static str)>,
    /// Human-readable blockers when not parallel.
    pub blockers: Vec<String>,
    /// Residual checks the value-evolution analysis discharged
    /// statically: the runtime inspections this loop no longer needs.
    /// Non-empty on loops promoted past (or partially relieved of)
    /// runtime guarding by producer-loop facts.
    pub retired_checks: Vec<ResidualCheck>,
    /// Some retired check was discharged by a fact that crossed a
    /// `call` via the interprocedural summaries: the promotion needed
    /// interprocedural reasoning.
    pub promoted_interproc: bool,
    /// How a hybrid runtime should dispatch this loop.
    pub tier: DispatchTier,
    /// Proven facts a runtime can turn into a zero-merge execution
    /// strategy (in-place disjoint writes, positional concatenation).
    pub strategy_facts: StrategyFacts,
    /// Advisory plan for the compiled (bytecode) execution tier, when
    /// the loop nest is within the lowering's eligibility fragment.
    /// The executor re-derives this at dispatch and never trusts it;
    /// the lint layer re-derives it to catch tampering.
    pub compiled: Option<CompiledPlan>,
}

/// Timings and counters for Table 2.
#[derive(Clone, Copy, Debug, Default)]
pub struct CompileStats {
    /// Whole compilation time.
    pub total_time: Duration,
    /// Time spent in the scalar pass pipeline.
    pub pass_time: Duration,
    /// Time spent inside array property analysis queries.
    pub property_time: Duration,
    /// Number of property queries issued.
    pub property_queries: u64,
    /// Nodes visited by the query solver.
    pub solver_nodes: u64,
}

/// The result of compiling a program.
#[derive(Clone, Debug)]
pub struct CompilationReport {
    /// The transformed program (after the pass pipeline).
    pub program: Program,
    /// One verdict per `do` loop, program pre-order.
    pub verdicts: Vec<LoopVerdict>,
    /// Timings.
    pub stats: CompileStats,
}

impl CompilationReport {
    /// The verdict for the loop labeled `label` (e.g. `"INTGRL/do140"`).
    pub fn verdict(&self, label: &str) -> Option<&LoopVerdict> {
        self.verdicts.iter().find(|v| v.label == label)
    }

    /// Labels of all loops found parallel.
    pub fn parallel_labels(&self) -> Vec<&str> {
        self.verdicts
            .iter()
            .filter(|v| v.parallel)
            .map(|v| v.label.as_str())
            .collect()
    }
}

/// Parses and compiles a source program.
///
/// # Errors
///
/// Returns the parse error if `src` is not a valid program.
pub fn compile_source(src: &str, opts: DriverOptions) -> Result<CompilationReport, ParseError> {
    Ok(compile(parse_program(src)?, opts))
}

/// Runs the pass pipeline and the parallelization analysis.
pub fn compile(program: Program, opts: DriverOptions) -> CompilationReport {
    compile_budgeted(program, opts, None)
}

/// [`compile`] under an optional [`AnalysisBudget`]: the summary
/// fixpoint, the evolution walk, and every property query cooperate
/// with the meter. When it runs dry, in-flight analyses bail
/// conservatively and the remaining loops get weaker (but sound)
/// verdicts — typically `RuntimeGuarded` or `Sequential` where an
/// unmetered compile would have proven `CompileTimeParallel`.
pub fn compile_budgeted(
    mut program: Program,
    opts: DriverOptions,
    budget: Option<&AnalysisBudget>,
) -> CompilationReport {
    let t0 = Instant::now();
    // ---- Fig. 15 pass pipeline -----------------------------------------
    let tp = Instant::now();
    if !opts.baseline_apo {
        inline_small_procedures(&mut program, opts.inline_limit);
    }
    propagate_constants(&mut program);
    normalize_loops(&mut program);
    substitute_induction_variables(&mut program);
    propagate_constants(&mut program);
    forward_substitute(&mut program);
    eliminate_dead_code(&mut program);
    let pass_time = tp.elapsed();

    // ---- analyses --------------------------------------------------------
    let mut verdicts = Vec::new();
    let property_time;
    let property_queries;
    let solver_nodes;
    {
        let ctx = AnalysisCtx::new(&program);
        let solver_opts = SolverOptions {
            interprocedural: opts.phase_order == PhaseOrder::Reorganized && !opts.baseline_apo,
            ..SolverOptions::default()
        };
        // Interprocedural property summaries: bottom-up over the call
        // graph, then threaded into both the query solver (stepping
        // over calls the summary proves harmless) and the evolution
        // walk (composing producer facts across calls).
        let summaries = (opts.enable_summaries && opts.enable_iaa && !opts.baseline_apo)
            .then(|| irr_core::SummaryAnalysis::new_budgeted(&ctx, budget));
        let mut apa = ArrayPropertyAnalysis::with_options(&ctx, solver_opts);
        if let Some(b) = budget {
            apa.set_budget(b);
        }
        // Producer-loop value evolution: one walk per procedure, the
        // per-loop snapshots discharge residual checks in judge_loop.
        let evo = if opts.enable_iaa && opts.enable_evolution {
            match &summaries {
                Some(sa) => {
                    apa.set_summaries(sa);
                    EvolutionAnalysis::budgeted(&ctx, Some(sa), budget)
                }
                None => EvolutionAnalysis::budgeted(&ctx, None, budget),
            }
        } else {
            if let Some(sa) = &summaries {
                apa.set_summaries(sa);
            }
            EvolutionAnalysis::disabled()
        };
        for (pi, proc) in program.procedures.iter().enumerate() {
            let proc_id = ProcId(pi as u32);
            for s in program.stmts_in(&proc.body) {
                if matches!(program.stmt(s).kind, StmtKind::Do { .. }) {
                    verdicts.push(judge_loop(&ctx, &mut apa, &evo, &opts, proc_id, s));
                }
            }
        }
        property_time = apa.stats.total_time;
        property_queries = apa.stats.queries;
        solver_nodes = apa.stats.nodes_visited;
    }
    CompilationReport {
        program,
        verdicts,
        stats: CompileStats {
            total_time: t0.elapsed(),
            pass_time,
            property_time,
            property_queries,
            solver_nodes,
        },
    }
}

/// The terminal rung of the degradation ladder: no pass pipeline, no
/// analysis — every `do` loop gets a `Sequential` verdict with a
/// reason-coded blocker. Running everything sequentially is trivially
/// sound, and building this report costs only the loop enumeration, so
/// it can never itself exhaust a budget.
pub fn parse_only_report(program: Program) -> CompilationReport {
    let t0 = Instant::now();
    let mut verdicts = Vec::new();
    for (pi, proc) in program.procedures.iter().enumerate() {
        let proc_id = ProcId(pi as u32);
        for s in program.stmts_in(&proc.body) {
            if matches!(program.stmt(s).kind, StmtKind::Do { .. }) {
                verdicts.push(LoopVerdict {
                    loop_stmt: s,
                    label: program.loop_label(proc_id, s),
                    proc: proc_id,
                    parallel: false,
                    independent_arrays: Vec::new(),
                    privatized_arrays: Vec::new(),
                    privatized_scalars: Vec::new(),
                    reductions: Vec::new(),
                    properties_used: Vec::new(),
                    blockers: vec!["analysis skipped (parse-only degradation)".into()],
                    retired_checks: Vec::new(),
                    promoted_interproc: false,
                    tier: DispatchTier::Sequential,
                    strategy_facts: StrategyFacts::None,
                    // Parse-only degradation never claims a plan; the
                    // conservative direction (tree-walk) is always safe.
                    compiled: None,
                });
            }
        }
    }
    CompilationReport {
        program,
        verdicts,
        stats: CompileStats {
            total_time: t0.elapsed(),
            ..CompileStats::default()
        },
    }
}

/// Decides whether one `do` loop is parallel.
fn judge_loop<'c, 'p>(
    ctx: &'c AnalysisCtx<'p>,
    apa: &mut ArrayPropertyAnalysis<'c, 'p>,
    evo: &EvolutionAnalysis,
    opts: &DriverOptions,
    proc: ProcId,
    loop_stmt: StmtId,
) -> LoopVerdict {
    let program = ctx.program;
    let mut v = LoopVerdict {
        loop_stmt,
        label: program.loop_label(proc, loop_stmt),
        proc,
        parallel: false,
        independent_arrays: Vec::new(),
        privatized_arrays: Vec::new(),
        privatized_scalars: Vec::new(),
        reductions: Vec::new(),
        properties_used: Vec::new(),
        blockers: Vec::new(),
        retired_checks: Vec::new(),
        promoted_interproc: false,
        tier: DispatchTier::Sequential,
        strategy_facts: StrategyFacts::None,
        compiled: derive_compiled_plan(ctx.program, loop_stmt),
    };
    let StmtKind::Do { var, body, .. } = &program.stmt(loop_stmt).kind else {
        v.blockers.push("not a do loop".into());
        return v;
    };
    let loop_var = *var;
    let body = body.clone();

    // Calls inside the loop: only tolerated when the callee is pure
    // w.r.t. nothing — conservatively reject (the inliner flattened the
    // eligible ones already).
    if program
        .stmts_in(&body)
        .iter()
        .any(|s| matches!(program.stmt(*s).kind, StmtKind::Call { .. }))
    {
        v.blockers.push("call inside loop".into());
        return v;
    }
    // Print statements force sequential execution.
    if program
        .stmts_in(&body)
        .iter()
        .any(|s| matches!(program.stmt(*s).kind, StmtKind::Print { .. }))
    {
        v.blockers.push("i/o inside loop".into());
        return v;
    }

    // Whether every blocker so far can be discharged by a run-time
    // inspection; scalar dependences and unanalyzable arrays cannot.
    let mut guardable = true;
    let mut guard_groups: Vec<Vec<ResidualCheck>> = Vec::new();

    // ---- scalars ----------------------------------------------------------
    let reductions = recognize_reductions(program, loop_stmt);
    for r in &reductions {
        v.reductions.push((r.var, r.op));
    }
    let reduction_vars: Vec<VarId> = reductions.iter().map(|r| r.var).collect();
    for scalar in irr_frontend::visit::scalars_assigned_in(program, &body) {
        if scalar == loop_var || reduction_vars.contains(&scalar) {
            continue;
        }
        if scalar_privatizable(ctx, loop_stmt, scalar) {
            v.privatized_scalars.push(scalar);
        } else {
            guardable = false;
            v.blockers.push(format!(
                "scalar `{}` carries a dependence",
                program.symbols.name(scalar)
            ));
        }
    }

    // ---- arrays -----------------------------------------------------------
    let written = irr_frontend::visit::arrays_written_in(program, &body);
    for array in written {
        // Dependence test first.
        let mut dt = DependenceTester::new(ctx, apa);
        dt.enable_property_queries = opts.enable_iaa;
        let dep = dt.analyze_array(loop_stmt, array);
        if dep.independent {
            let tag = dep.test.map(|t| t.tag()).unwrap_or("NONE");
            v.independent_arrays.push((array, tag));
            for (a, t) in dep.properties_used {
                v.properties_used
                    .push((program.symbols.name(a).to_string(), t));
            }
            continue;
        }
        // Then privatization — accepted only for scratch arrays (never
        // read outside this loop), so no copy-out semantics are needed.
        let mut pv = Privatizer::new(ctx, apa);
        pv.enable_iaa = opts.enable_iaa;
        let priv_res = pv.analyze_array(loop_stmt, array);
        if priv_res.privatizable && array_is_scratch(program, &body, array) {
            let tag = priv_res.evidence.map(|e| e.tag()).unwrap_or("REG");
            v.privatized_arrays.push((array, tag));
            for (a, t) in priv_res.properties_used {
                v.properties_used
                    .push((program.symbols.name(a).to_string(), t));
            }
            continue;
        }
        if dep.residual.is_empty() {
            guardable = false;
            v.blockers.push(format!(
                "array `{}` may carry a dependence",
                program.symbols.name(array)
            ));
        } else if let Some(rc) = (opts.enable_iaa && opts.enable_evolution)
            .then(|| evolution_discharge(ctx, evo, loop_stmt, &dep.residual))
            .flatten()
        {
            // The value-evolution facts of the producer loops imply
            // one of the residual checks outright: the array is
            // independent with no runtime inspection needed, and the
            // check is recorded as retired so the runtime can count
            // the inspections it no longer runs.
            v.independent_arrays.push((array, "EVO"));
            match &rc {
                ResidualCheck::Injective { array: p } => v
                    .properties_used
                    .push((program.symbols.name(*p).to_string(), "EVO-INJ")),
                ResidualCheck::OffsetLength { ptr, .. } => v
                    .properties_used
                    .push((program.symbols.name(*ptr).to_string(), "EVO-OFFLEN")),
            }
            v.promoted_interproc |= match &rc {
                ResidualCheck::Injective { array } => evo.fact_interproc(loop_stmt, *array),
                ResidualCheck::OffsetLength { ptr, len } => {
                    evo.fact_interproc(loop_stmt, *ptr) || evo.fact_interproc(loop_stmt, *len)
                }
            };
            v.retired_checks.push(rc);
        } else {
            // The dependence is Unknown, not disproven — but the tester
            // identified the exact missing facts. Surface them both as a
            // readable blocker and as a machine-usable guard plan.
            let needed: Vec<String> = dep
                .residual
                .iter()
                .map(|rc| match rc {
                    ResidualCheck::Injective { array } => {
                        format!("injectivity of `{}`", program.symbols.name(*array))
                    }
                    ResidualCheck::OffsetLength { ptr, len } => format!(
                        "offset-length of `{}`/`{}`",
                        program.symbols.name(*ptr),
                        program.symbols.name(*len)
                    ),
                })
                .collect();
            v.blockers.push(format!(
                "array `{}` unknown at compile time (runtime-checkable, any of: {})",
                program.symbols.name(array),
                needed.join(", ")
            ));
            // One disjunction group per blocked array: each residual the
            // tester emitted would alone clear the array, so the runtime
            // needs any one of them to pass.
            let mut group: Vec<ResidualCheck> = Vec::new();
            for rc in dep.residual {
                if !group.contains(&rc) {
                    group.push(rc);
                }
            }
            if !guard_groups.contains(&group) {
                guard_groups.push(group);
            }
        }
    }
    v.parallel = v.blockers.is_empty();
    // Product reductions are not mergeable by the chunked executor, so
    // such loops stay sequential at run time regardless of the verdict.
    let mergeable_reductions = !v
        .reductions
        .iter()
        .any(|(_, op)| matches!(op, irr_passes::ReductionOp::Product));
    v.tier = if v.parallel && mergeable_reductions {
        DispatchTier::CompileTimeParallel
    } else if !v.parallel && guardable && !guard_groups.is_empty() && mergeable_reductions {
        DispatchTier::RuntimeGuarded(GuardPlan {
            groups: guard_groups,
        })
    } else {
        DispatchTier::Sequential
    };
    // Strategy facts: with the tier fixed, look for a proof that lets
    // the runtime skip the write-log transaction entirely.
    let privatized: Vec<VarId> = v
        .privatized_scalars
        .iter()
        .copied()
        .chain(v.privatized_arrays.iter().map(|(a, _)| *a))
        .collect();
    let mergeable_vars: Vec<VarId> = v
        .reductions
        .iter()
        .filter(|(_, op)| !matches!(op, irr_passes::ReductionOp::Product))
        .map(|(r, _)| *r)
        .collect();
    v.strategy_facts = match v.tier {
        DispatchTier::CompileTimeParallel => {
            match derive_in_place_facts(program, loop_stmt, &privatized, &mergeable_vars) {
                Some(arrays) => StrategyFacts::DisjointAffine { arrays },
                None => StrategyFacts::None,
            }
        }
        DispatchTier::Sequential if opts.enable_iaa => {
            let independent: Vec<VarId> = v.independent_arrays.iter().map(|(a, _)| *a).collect();
            strategy::derive_concat_facts(
                ctx,
                loop_stmt,
                &privatized,
                &mergeable_vars,
                &independent,
            )
        }
        _ => StrategyFacts::None,
    };
    v
}

/// Finds a residual check that the value-evolution facts at the loop
/// imply over the loop's own (symbolic) inspection range — the same
/// bounds the runtime would evaluate and hand to the inspector.
fn evolution_discharge(
    ctx: &AnalysisCtx<'_>,
    evo: &EvolutionAnalysis,
    loop_stmt: StmtId,
    residual: &[ResidualCheck],
) -> Option<ResidualCheck> {
    let (_, lo, hi) = ctx.do_bounds_sym(loop_stmt)?;
    let env = ctx.range_env_at(loop_stmt);
    residual
        .iter()
        .find(|rc| match rc {
            ResidualCheck::Injective { array } => {
                evo.proves_injective(loop_stmt, *array, &lo, &hi, &env)
            }
            ResidualCheck::OffsetLength { ptr, len } => {
                evo.proves_offset_length(loop_stmt, *ptr, *len, &lo, &hi, &env)
            }
        })
        .cloned()
}

/// Whether every *read* of `array` in the whole program happens inside
/// the loop body — i.e. the array is scratch storage whose values never
/// escape the loop, so privatizing it requires no copy-out.
fn array_is_scratch(program: &Program, body: &[StmtId], array: VarId) -> bool {
    let inside: std::collections::HashSet<StmtId> = program.stmts_in(body).into_iter().collect();
    for proc in &program.procedures {
        for s in program.stmts_in(&proc.body) {
            if inside.contains(&s) {
                continue;
            }
            let mut reads = false;
            irr_frontend::visit::for_each_expr_in_stmt(program, s, |e| {
                irr_frontend::visit::for_each_subexpr(e, &mut |sub| {
                    if matches!(sub, irr_frontend::Expr::Element(a, _) if *a == array) {
                        reads = true;
                    }
                });
            });
            if reads {
                return false;
            }
        }
    }
    true
}

/// A scalar is privatizable for the loop when, in each iteration, every
/// read sees a value written earlier in the *same* iteration. On the
/// loop's flat CFG this is exactly: no path from the loop header reaches
/// a node that reads the scalar without first passing a node that writes
/// it — a bounded DFS with `fbound` = writes, `ffailed` = reads
/// (statements like `v = v + 1` read before writing and correctly fail).
/// Reductions are handled separately.
fn scalar_privatizable(ctx: &AnalysisCtx<'_>, loop_stmt: StmtId, scalar: VarId) -> bool {
    use irr_graph::bdfs::{bounded_dfs, BdfsOutcome};
    use irr_graph::{CfgNodeId, CfgNodeKind};
    let cfg = ctx.loop_cfg(loop_stmt);
    let program = ctx.program;
    let reads_scalar =
        |n: CfgNodeId| -> bool { ctx.node_exprs(&cfg, n).iter().any(|e| e.mentions(scalar)) };
    let writes_scalar = |n: CfgNodeId| -> bool {
        match cfg.kind(n) {
            CfgNodeKind::Stmt(s) => matches!(
                &program.stmt(s).kind,
                StmtKind::Assign { lhs: LValue::Scalar(w), .. } if *w == scalar
            ),
            CfgNodeKind::LoopHead(s) => {
                // An inner do header assigns its induction variable
                // (after evaluating the bounds, which `reads_scalar`
                // checks first through the failed-set ordering).
                matches!(&program.stmt(s).kind,
                    StmtKind::Do { var, .. } if *var == scalar && s != loop_stmt)
            }
            _ => false,
        }
    };
    let head = cfg
        .nodes_where(|k| matches!(k, CfgNodeKind::LoopHead(s) if s == loop_stmt))
        .into_iter()
        .next();
    let Some(head) = head else { return false };
    bounded_dfs(
        &cfg,
        head,
        |n| writes_scalar(n) && !reads_scalar(n),
        reads_scalar,
    ) == BdfsOutcome::Succeeded
}

#[cfg(test)]
mod tests {
    use super::*;

    const FIG1A: &str = "program t
         integer i, j, k, n, p, link(100, 10)
         real x(100), y(100), z(10, 100)
         n = 10
         do k = 1, n
           p = 0
           i = link(1, k)
           while (i /= 0)
             p = p + 1
             x(p) = y(i)
             i = link(i, k)
           endwhile
           do j = 1, p
             z(k, j) = x(j)
           enddo
         enddo
         end";

    #[test]
    fn fig1a_parallel_with_iaa_only() {
        let with = compile_source(FIG1A, DriverOptions::with_iaa()).unwrap();
        let k_loop = &with.verdicts[0];
        assert!(k_loop.label.contains("do@"));
        assert!(k_loop.parallel, "{k_loop:?}");
        assert!(k_loop.privatized_arrays.iter().any(|(_, tag)| *tag == "CW"));
        let without = compile_source(FIG1A, DriverOptions::without_iaa()).unwrap();
        assert!(!without.verdicts[0].parallel);
    }

    #[test]
    fn scalar_dependence_blocks() {
        let src = "program t
             integer i, n
             real s, x(100)
             s = 0
             do i = 1, n
               x(i) = s
               s = s * 2 + 1
             enddo
             end";
        let rep = compile_source(src, DriverOptions::with_iaa()).unwrap();
        assert!(!rep.verdicts[0].parallel);
        assert!(rep.verdicts[0]
            .blockers
            .iter()
            .any(|b| b.contains("scalar `s`")));
    }

    #[test]
    fn reductions_are_recognized() {
        let src = "program t
             integer i, n
             real s, x(100)
             s = 0
             do i = 1, n
               s = s + x(i)
             enddo
             print s
             end";
        let rep = compile_source(src, DriverOptions::with_iaa()).unwrap();
        assert!(rep.verdicts[0].parallel, "{:?}", rep.verdicts[0]);
        assert_eq!(rep.verdicts[0].reductions.len(), 1);
    }

    #[test]
    fn regular_parallel_loop() {
        let src = "program t
             integer i, n
             real x(100), y(100)
             n = 100
             do i = 1, n
               x(i) = y(i) * 2
             enddo
             end";
        let rep = compile_source(src, DriverOptions::apo()).unwrap();
        assert!(rep.verdicts[0].parallel);
    }

    #[test]
    fn phase_order_matters_for_interprocedural_queries() {
        // The index array is defined in a big (non-inlinable) subroutine
        // and used in the main loop; only the reorganized order verifies
        // the property. Make the subroutine big enough to survive
        // inlining.
        let mut filler = String::new();
        for k in 0..60 {
            filler.push_str(&format!("dummy({}) = {k}\n", k + 1));
        }
        let src = format!(
            "program t
             integer k2, q, ind(100), dummy(100)
             real z(100), x(100)
             call setup
             do k2 = 1, q
               z(ind(k2)) = x(k2)
             enddo
             print z(1)
             end
             subroutine setup
             integer i
             {filler}
             q = 0
             do i = 1, 100
               if (x(i) > 0) then
                 q = q + 1
                 ind(q) = i
               endif
             enddo
             end"
        );
        let reorganized = compile_source(&src, DriverOptions::with_iaa()).unwrap();
        let main_loop = reorganized
            .verdicts
            .iter()
            .find(|v| v.label.starts_with("T/"))
            .unwrap();
        assert!(main_loop.parallel, "{main_loop:?}");
        let original = compile_source(
            &src,
            DriverOptions {
                phase_order: PhaseOrder::Original,
                ..DriverOptions::with_iaa()
            },
        )
        .unwrap();
        let main_loop_orig = original
            .verdicts
            .iter()
            .find(|v| v.label.starts_with("T/"))
            .unwrap();
        assert!(!main_loop_orig.parallel, "{main_loop_orig:?}");
    }

    #[test]
    fn stats_are_populated() {
        let rep = compile_source(FIG1A, DriverOptions::with_iaa()).unwrap();
        assert!(rep.stats.total_time >= rep.stats.pass_time);
    }

    #[test]
    fn labeled_loops_get_paper_style_names() {
        let src = "program trfd
             integer i
             real x(10)
             do 140 i = 1, 10
               x(i) = 1
 140         continue
             end";
        let rep = compile_source(src, DriverOptions::with_iaa()).unwrap();
        assert_eq!(rep.verdicts[0].label, "TRFD/do140");
        assert!(rep.verdict("TRFD/do140").is_some());
        assert_eq!(rep.parallel_labels(), vec!["TRFD/do140"]);
    }

    /// A CRS-style program that builds its own `rowptr` by histogram +
    /// prefix sum before the offset–length consumer loop.
    const CRS_PRODUCER: &str = "program t
         integer i, j, k, n, nnz, rowof(16), rowlen(8), rowptr(9)
         real aval(16), front(16)
         n = 8
         nnz = 16
         do i = 1, n
           rowlen(i) = 0
         enddo
         do k = 1, nnz
           rowlen(rowof(k)) = rowlen(rowof(k)) + 1
         enddo
         rowptr(1) = 1
         do i = 1, n
           rowptr(i + 1) = rowptr(i) + rowlen(i)
         enddo
         do 400 i = 1, n
           do j = 1, rowlen(i)
             front(rowptr(i) + j - 1) = front(rowptr(i) + j - 1) * 0.98
           enddo
 400     continue
         print front(1)
         end";

    #[test]
    fn producer_loops_promote_offset_length_consumer() {
        let rep = compile_source(CRS_PRODUCER, DriverOptions::with_iaa()).unwrap();
        let v = rep.verdict("T/do400").unwrap();
        assert!(matches!(v.tier, DispatchTier::CompileTimeParallel), "{v:?}");
        assert_eq!(v.retired_checks.len(), 1, "{v:?}");
        assert!(matches!(
            v.retired_checks[0],
            ResidualCheck::OffsetLength { .. }
        ));
        assert!(v.independent_arrays.iter().any(|(_, tag)| *tag == "EVO"));
        assert!(v
            .properties_used
            .iter()
            .any(|(a, t)| a == "rowptr" && *t == "EVO-OFFLEN"));
    }

    // The CRS producer chain hidden in a subroutine the inliner skips
    // (labeled loops make it ineligible): only the interprocedural
    // summaries can carry the producer facts to the consumer.
    pub(crate) const CALL_STRUCTURED_CRS: &str = "program t
         integer i, j, n, rowof(16), rowlen(8), rowptr(9)
         real front(16)
         n = 8
         call crsbld
         do 400 i = 1, n
           do j = 1, rowlen(i)
             front(rowptr(i) + j - 1) = front(rowptr(i) + j - 1) * 0.98
           enddo
 400     continue
         print front(1)
         end
         subroutine crsbld
         integer i, k, rowof(16), rowlen(8), rowptr(9)
         do 310 i = 1, 8
           rowlen(i) = 0
 310     continue
         do 320 k = 1, 16
           rowlen(rowof(k)) = rowlen(rowof(k)) + 1
 320     continue
         rowptr(1) = 1
         do 330 i = 1, 8
           rowptr(i + 1) = rowptr(i) + rowlen(i)
 330     continue
         end";

    #[test]
    fn call_structured_producer_promotes_only_with_summaries() {
        let rep = compile_source(CALL_STRUCTURED_CRS, DriverOptions::with_iaa()).unwrap();
        let v = rep.verdict("T/do400").unwrap();
        assert!(matches!(v.tier, DispatchTier::CompileTimeParallel), "{v:?}");
        assert!(v.promoted_interproc, "{v:?}");
        assert!(matches!(
            v.retired_checks[..],
            [ResidualCheck::OffsetLength { .. }]
        ));

        let cold = compile_source(CALL_STRUCTURED_CRS, DriverOptions::without_summaries()).unwrap();
        let cv = cold.verdict("T/do400").unwrap();
        assert!(matches!(cv.tier, DispatchTier::RuntimeGuarded(_)), "{cv:?}");
        assert!(!cv.promoted_interproc);
        assert!(cv.retired_checks.is_empty());
    }

    #[test]
    fn verdicts_carry_advisory_compiled_plans() {
        let rep = compile_source(CRS_PRODUCER, DriverOptions::with_iaa()).unwrap();
        let v = rep.verdict("T/do400").unwrap();
        let plan = v.compiled.expect("straightline nest is lowerable");
        assert_eq!(Some(plan), derive_compiled_plan(&rep.program, v.loop_stmt));
        assert_eq!(plan.inner_loops, 1, "{plan:?}");
        // A loop with i/o in the body gets no plan.
        let src = "program t
             integer i
             real x(8)
             do i = 1, 8
               x(i) = 1.0
               print x(i)
             enddo
             end";
        let rep = compile_source(src, DriverOptions::with_iaa()).unwrap();
        assert!(rep.verdicts[0].compiled.is_none());
    }

    #[test]
    fn intraprocedural_promotions_are_not_flagged_interproc() {
        let rep = compile_source(CRS_PRODUCER, DriverOptions::with_iaa()).unwrap();
        let v = rep.verdict("T/do400").unwrap();
        assert!(matches!(v.tier, DispatchTier::CompileTimeParallel));
        assert!(!v.promoted_interproc, "{v:?}");
    }

    #[test]
    fn affine_fill_promotes_injective_consumer() {
        let src = "program t
             integer k, nnz, perm(16)
             real aval(16), pval(16)
             nnz = 16
             do k = 1, nnz
               perm(k) = nnz + 1 - k
             enddo
             do 800 k = 1, nnz
               pval(perm(k)) = aval(k) * 2.0
 800         continue
             print pval(1)
             end";
        let rep = compile_source(src, DriverOptions::with_iaa()).unwrap();
        let v = rep.verdict("T/do800").unwrap();
        assert!(matches!(v.tier, DispatchTier::CompileTimeParallel), "{v:?}");
        assert!(matches!(
            v.retired_checks[..],
            [ResidualCheck::Injective { .. }]
        ));
    }

    #[test]
    fn preset_only_index_arrays_stay_runtime_guarded() {
        // Without the producer loops the same consumer keeps its guard
        // plan: evolution facts must never materialize from thin air.
        let src = "program t
             integer i, j, n, rowlen(8), rowptr(9)
             real front(16)
             n = 8
             do 400 i = 1, n
               do j = 1, rowlen(i)
                 front(rowptr(i) + j - 1) = front(rowptr(i) + j - 1) * 0.98
               enddo
 400         continue
             print front(1)
             end";
        let rep = compile_source(src, DriverOptions::with_iaa()).unwrap();
        let v = rep.verdict("T/do400").unwrap();
        assert!(matches!(v.tier, DispatchTier::RuntimeGuarded(_)), "{v:?}");
        assert!(v.retired_checks.is_empty());
    }

    #[test]
    fn intervening_write_blocks_promotion() {
        // Rewriting one rowlen element between producer and consumer
        // invalidates the chain: the loop must stay runtime-guarded.
        let src = "program t
             integer i, j, n, rowlen(8), rowptr(9)
             real front(16)
             n = 8
             do i = 1, n
               rowlen(i) = 2
             enddo
             rowptr(1) = 1
             do i = 1, n
               rowptr(i + 1) = rowptr(i) + rowlen(i)
             enddo
             rowlen(3) = 5
             do 400 i = 1, n
               do j = 1, rowlen(i)
                 front(rowptr(i) + j - 1) = front(rowptr(i) + j - 1) * 0.98
               enddo
 400         continue
             print front(1)
             end";
        let rep = compile_source(src, DriverOptions::with_iaa()).unwrap();
        let v = rep.verdict("T/do400").unwrap();
        assert!(matches!(v.tier, DispatchTier::RuntimeGuarded(_)), "{v:?}");
        assert!(v.retired_checks.is_empty());
    }
}
