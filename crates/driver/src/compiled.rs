//! Advisory compiled-tier plans: a pure-syntactic restatement of the
//! executor's bytecode-lowering eligibility rules.
//!
//! The executor owns the authoritative lowering (`irr-exec`'s
//! `bytecode` module) and *never* trusts the driver: at dispatch it
//! re-lowers the loop nest from the AST, so a forged or stale
//! [`CompiledPlan`] can change performance but never semantics. This
//! module exists so that (a) the driver can annotate each verdict with
//! the plan a runtime should expect, next to the strategy facts, and
//! (b) the lint layer can re-derive the plan with the same function and
//! flag verdicts whose plan was tampered with.
//!
//! The rules here mirror the lowering one-for-one — same statement
//! whitelist, same expression rejections, same register accounting —
//! and must be kept in sync with it. Divergence is tolerated in exactly
//! one direction at run time: when the plan says "compiled" but the
//! executor rejects, the loop falls back to the tree-walk with a
//! reason-coded telemetry counter.

use irr_frontend::{
    BinOp, Expr, Intrinsic, LValue, Program, ScalarType, StmtId, StmtKind, UnOp, VarId,
};

/// What the compiled tier will do with a loop nest, derived without
/// executing anything. Also a fingerprint: the lint layer re-derives
/// the plan and compares for equality, so every field must be a pure
/// function of the program.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct CompiledPlan {
    /// Registers the bytecode body allocates (the executor's `u16`
    /// register file uses the same accounting).
    pub registers: u32,
    /// Inner loops (`do` and `while`) in the nest, root excluded.
    pub inner_loops: u32,
    /// Fused affine element accesses `a(v + c)`, loads and stores.
    pub affine_accesses: u32,
    /// Fused gather/scatter accesses `a(idx(e))`, loads and stores.
    pub indirect_accesses: u32,
    /// Append-through-pointer fusions `a(p) = e` + `p = p + 1`.
    pub appends: u32,
    /// Scalar reduction accumulates `s = s op e` / `s = e op s`.
    pub accumulates: u32,
}

/// Derives the advisory compiled-tier plan for the `do` loop at
/// `loop_stmt`, or `None` when the nest contains a construct the
/// bytecode executor refuses to lower: procedure calls, `print`,
/// `return`, logical/comparison operators in numeric position,
/// intrinsics with too few arguments, subscripted scalars or
/// over-subscripted arrays, or a register file past `u16`.
pub fn derive_compiled_plan(program: &Program, loop_stmt: StmtId) -> Option<CompiledPlan> {
    let StmtKind::Do { body, .. } = &program.stmt(loop_stmt).kind else {
        return None;
    };
    let mut w = Walk {
        program,
        plan: CompiledPlan::default(),
        temps: 0,
    };
    w.walk_stmts(body).ok()?;
    if w.temps > u16::MAX as u32 {
        return None;
    }
    w.plan.registers = w.temps;
    Some(w.plan)
}

/// Eligibility failure. Carries no payload: the executor's lowering
/// owns the reason tokens; this walk only answers yes/no.
struct Reject;

type Elig<T> = Result<T, Reject>;

struct Walk<'p> {
    program: &'p Program,
    plan: CompiledPlan,
    /// Temp-register count, mirroring the lowering's allocator.
    temps: u32,
}

impl<'p> Walk<'p> {
    fn temp(&mut self) {
        self.temps = self.temps.saturating_add(1);
    }

    fn ty(&self, v: VarId) -> ScalarType {
        self.program.symbols.var(v).ty
    }

    fn walk_stmts(&mut self, body: &[StmtId]) -> Elig<()> {
        let mut k = 0;
        while k < body.len() {
            if k + 1 < body.len() && self.try_append(body[k], body[k + 1])? {
                k += 2;
                continue;
            }
            self.walk_stmt(body[k])?;
            k += 1;
        }
        Ok(())
    }

    /// The append-through-pointer peephole window, with the lowering's
    /// exact match conditions.
    fn try_append(&mut self, s1: StmtId, s2: StmtId) -> Elig<bool> {
        let StmtKind::Assign {
            lhs: LValue::Element(arr, subs),
            rhs,
        } = &self.program.stmt(s1).kind
        else {
            return Ok(false);
        };
        let [Expr::Var(p)] = subs.as_slice() else {
            return Ok(false);
        };
        let StmtKind::Assign {
            lhs: LValue::Scalar(p2),
            rhs: inc,
        } = &self.program.stmt(s2).kind
        else {
            return Ok(false);
        };
        let bumps = matches!(
            inc,
            Expr::Bin(BinOp::Add, x, y)
                if (x.is_var(*p) && y.as_int_lit() == Some(1))
                    || (y.is_var(*p) && x.as_int_lit() == Some(1))
        );
        if p2 != p
            || !bumps
            || self.ty(*p) != ScalarType::Int
            || self.program.symbols.var(*arr).rank() != 1
        {
            return Ok(false);
        }
        self.walk_expr(rhs)?;
        self.plan.appends += 1;
        Ok(true)
    }

    fn walk_stmt(&mut self, s: StmtId) -> Elig<()> {
        match &self.program.stmt(s).kind {
            StmtKind::Assign { lhs, rhs } => {
                match lhs {
                    LValue::Scalar(v) => {
                        if let Expr::Bin(op @ (BinOp::Add | BinOp::Sub | BinOp::Mul), x, y) = rhs {
                            if x.is_var(*v) {
                                self.walk_expr(y)?;
                                self.plan.accumulates += 1;
                                return Ok(());
                            }
                            if matches!(op, BinOp::Add | BinOp::Mul) && y.is_var(*v) {
                                self.walk_expr(x)?;
                                self.plan.accumulates += 1;
                                return Ok(());
                            }
                        }
                        self.walk_expr(rhs)?;
                    }
                    LValue::Element(a, subs) => {
                        self.walk_expr(rhs)?;
                        self.walk_element(*a, subs, false)?;
                    }
                }
                Ok(())
            }
            StmtKind::If {
                cond,
                then_body,
                else_body,
            } => {
                self.temp();
                self.walk_cond(cond)?;
                self.walk_stmts(then_body)?;
                self.walk_stmts(else_body)
            }
            StmtKind::Do {
                lo, hi, step, body, ..
            } => {
                self.walk_expr(lo)?;
                self.walk_expr(hi)?;
                if let Some(e) = step {
                    self.walk_expr(e)?;
                }
                self.plan.inner_loops += 1;
                self.walk_stmts(body)
            }
            StmtKind::While { cond, body } => {
                self.temp();
                self.walk_cond(cond)?;
                self.plan.inner_loops += 1;
                self.walk_stmts(body)
            }
            StmtKind::Call { .. } | StmtKind::Print { .. } | StmtKind::Return => Err(Reject),
        }
    }

    fn walk_expr(&mut self, e: &Expr) -> Elig<()> {
        match e {
            Expr::IntLit(_) | Expr::RealLit(_) | Expr::Var(_) => Ok(()),
            Expr::Element(a, subs) => self.walk_element(*a, subs, true),
            Expr::Bin(op, x, y) => {
                if op.is_comparison() || op.is_logical() {
                    return Err(Reject);
                }
                self.walk_expr(x)?;
                self.walk_expr(y)?;
                self.temp();
                Ok(())
            }
            Expr::Un(UnOp::Neg, x) => {
                self.walk_expr(x)?;
                self.temp();
                Ok(())
            }
            Expr::Un(UnOp::Not, _) => Err(Reject),
            Expr::Call(f, args) => {
                let needed = match f {
                    Intrinsic::Min | Intrinsic::Max | Intrinsic::Mod => 2,
                    _ => 1,
                };
                if args.len() < needed {
                    return Err(Reject);
                }
                for a in args {
                    self.walk_expr(a)?;
                }
                self.temp();
                Ok(())
            }
        }
    }

    fn walk_cond(&mut self, e: &Expr) -> Elig<()> {
        match e {
            Expr::Bin(op, x, y) if op.is_comparison() => {
                self.walk_expr(x)?;
                self.walk_expr(y)
            }
            Expr::Bin(BinOp::And | BinOp::Or, x, y) => {
                self.walk_cond(x)?;
                self.walk_cond(y)
            }
            Expr::Un(UnOp::Not, x) => self.walk_cond(x),
            other => self.walk_expr(other),
        }
    }

    /// An element access (load when `is_load`), with the lowering's
    /// rank checks, fusion patterns, and temp accounting.
    fn walk_element(&mut self, a: VarId, subs: &[Expr], is_load: bool) -> Elig<()> {
        let rank = self.program.symbols.var(a).rank();
        if rank == 0 || subs.is_empty() || subs.len() > rank {
            return Err(Reject);
        }
        if subs.len() == 1 {
            if is_load {
                self.temp();
            }
            match self.fused_sub(&subs[0]) {
                Some(FusedSub::Direct) => {}
                Some(FusedSub::Affine) => self.plan.affine_accesses += 1,
                Some(FusedSub::Gather) => self.plan.indirect_accesses += 1,
                None => self.walk_expr(&subs[0])?,
            }
            return Ok(());
        }
        for s in subs {
            self.walk_expr(s)?;
        }
        // One mov per subscript, the flat index, and (for loads) the
        // destination.
        for _ in subs {
            self.temp();
        }
        self.temp();
        if is_load {
            self.temp();
        }
        Ok(())
    }

    fn fused_sub(&self, sub: &Expr) -> Option<FusedSub> {
        let int_scalar = |e: &Expr| matches!(e, Expr::Var(v) if self.ty(*v) == ScalarType::Int);
        let simple = |e: &Expr| matches!(e, Expr::Var(_) | Expr::IntLit(_));
        match sub {
            Expr::Var(_) | Expr::IntLit(_) => Some(FusedSub::Direct),
            Expr::Bin(BinOp::Add, x, y) => {
                if (int_scalar(x) && y.as_int_lit().is_some())
                    || (x.as_int_lit().is_some() && int_scalar(y))
                {
                    Some(FusedSub::Affine)
                } else {
                    None
                }
            }
            Expr::Bin(BinOp::Sub, x, y) => {
                match (int_scalar(x), y.as_int_lit().and_then(i64::checked_neg)) {
                    (true, Some(_)) => Some(FusedSub::Affine),
                    _ => None,
                }
            }
            Expr::Element(idx_arr, inner) => {
                let [inner] = inner.as_slice() else {
                    return None;
                };
                if self.program.symbols.var(*idx_arr).rank() < 1 {
                    return None;
                }
                simple(inner).then_some(FusedSub::Gather)
            }
            _ => None,
        }
    }
}

enum FusedSub {
    Direct,
    Affine,
    Gather,
}

#[cfg(test)]
mod tests {
    use super::*;
    use irr_frontend::parse_program;

    fn first_do(program: &Program) -> StmtId {
        let main = program.main();
        program
            .stmts_in(&program.procedure(main).body)
            .into_iter()
            .find(|s| matches!(program.stmt(*s).kind, StmtKind::Do { .. }))
            .unwrap()
    }

    #[test]
    fn spmv_style_nest_gets_a_plan_with_patterns() {
        let p = parse_program(
            "program t
             integer i, j, n, rowptr(9), colind(16)
             real y(8), aval(16), x(8), s
             n = 8
             do i = 1, n
               s = 0.0
               do j = rowptr(i), rowptr(i + 1) - 1
                 s = s + aval(j) * x(colind(j))
               enddo
               y(i) = s
             enddo
             end",
        )
        .unwrap();
        let plan = derive_compiled_plan(&p, first_do(&p)).unwrap();
        assert_eq!(plan.inner_loops, 1);
        assert!(plan.indirect_accesses >= 1, "{plan:?}");
        assert!(plan.accumulates >= 1, "{plan:?}");
        assert!(plan.registers > 0);
    }

    #[test]
    fn print_in_nest_rejects() {
        let p = parse_program(
            "program t
             integer i
             real x(8)
             do i = 1, 8
               x(i) = 1.0
               print x(i)
             enddo
             end",
        )
        .unwrap();
        assert!(derive_compiled_plan(&p, first_do(&p)).is_none());
    }

    #[test]
    fn append_and_affine_patterns_are_counted() {
        let p = parse_program(
            "program t
             integer i, n, p
             real out(100), x(100), y(100)
             n = 50
             p = 1
             do i = 1, n
               y(i + 1) = x(i)
               out(p) = x(i)
               p = p + 1
             enddo
             end",
        )
        .unwrap();
        let plan = derive_compiled_plan(&p, first_do(&p)).unwrap();
        assert_eq!(plan.appends, 1, "{plan:?}");
        assert!(plan.affine_accesses >= 1, "{plan:?}");
    }

    #[test]
    fn derivation_is_deterministic() {
        let p = parse_program(
            "program t
             integer i, j, n, rowlen(8), rowptr(9)
             real front(16)
             n = 8
             do i = 1, n
               do j = 1, rowlen(i)
                 front(rowptr(i) + j - 1) = front(rowptr(i) + j - 1) * 0.98
               enddo
             enddo
             end",
        )
        .unwrap();
        let s = first_do(&p);
        assert_eq!(derive_compiled_plan(&p, s), derive_compiled_plan(&p, s));
    }
}
