//! Data dependence tests for loops with irregular subscripts.
//!
//! The central client of the array property analysis (§3.2.7): given a
//! loop and an array, decide whether the loop carries a dependence on
//! that array. Four layers are tried, cheapest first:
//!
//! 1. **Identity dimension** — some dimension's subscript is exactly the
//!    loop index in every access: iterations touch disjoint planes.
//! 2. **Affine / GCD-style disjointness** — the per-iteration access
//!    hull is affine in the loop index and provably shifts past itself
//!    each iteration.
//! 3. **Range test** (Blume & Eigenmann, extended per §5.1.5) — the
//!    per-iteration hull `[H_lo(i), H_hi(i)]` is computed by monotone
//!    substitution over the inner loops, and the loop is independent if
//!    `H_hi(i) < H_lo(i+1)` (or the decreasing mirror) is provable.
//! 4. **Offset–length test** (§3.2.7) — when step 3 fails, *demand
//!    generation* kicks in: index arrays in the hull bounds trigger
//!    closed-form-distance and non-negativity queries to the property
//!    analysis; verified facts enter the proof environment and step 3 is
//!    retried. The **injective test** handles `a(p(i))` subscripts via
//!    an injectivity query.

use irr_core::property::ArrayPropertyAnalysis;
use irr_core::{AnalysisCtx, DistanceSpec, Property, PropertyQuery, INDEX_VAR};
use irr_frontend::visit::{collect_array_accesses, ArrayAccess};
use irr_frontend::{Expr, StmtId, StmtKind, VarId};
use irr_symbolic::{
    expr_to_sym, extremes_over, prove_ge0, prove_gt0, Atom, Bound, RangeEnv, Section, SymExpr,
    SymRange,
};

/// Which test disproved the dependence (Table 3's "Test" column).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TestKind {
    /// A dimension is subscripted by the loop index itself.
    IdentityDim,
    /// The classical GCD test on affine subscript pairs.
    Gcd,
    /// Affine disjointness (no symbolic atoms needed).
    Affine,
    /// The symbolic range test.
    Range,
    /// The offset-length test (range test + closed-form distance
    /// properties).
    OffsetLength,
    /// The injective test for `a(p(i))`.
    Injective,
}

impl TestKind {
    /// Short tag for reports.
    pub fn tag(self) -> &'static str {
        match self {
            TestKind::IdentityDim => "IDDIM",
            TestKind::Gcd => "GCD",
            TestKind::Affine => "AFFINE",
            TestKind::Range => "RANGE",
            TestKind::OffsetLength => "OFFLEN",
            TestKind::Injective => "INJ",
        }
    }
}

/// A property the compile-time solver needed but could not prove: the
/// access pattern matched a known-parallelizable shape, and this is the
/// *one missing fact*. A run-time inspector can check it against the
/// live store and recover the parallel schedule (the hybrid strategy
/// §1 contrasts with pure compile-time analysis).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ResidualCheck {
    /// All accesses are `a(p(i))`; parallel iff `p` is injective on the
    /// loop's index range.
    Injective {
        /// The index array whose injectivity is unknown.
        array: VarId,
    },
    /// The hull matched the offset–length shape `x(ptr(i) + j)`;
    /// parallel iff `ptr(i+1) - ptr(i) >= len(i) >= 0` at run time.
    OffsetLength {
        /// The offset (pointer) array.
        ptr: VarId,
        /// The length array.
        len: VarId,
    },
}

/// Outcome of testing one array in one loop.
#[derive(Clone, Debug)]
pub struct ArrayDepResult {
    /// The array tested.
    pub array: VarId,
    /// Whether the loop provably carries **no** dependence on it.
    pub independent: bool,
    /// The test that succeeded.
    pub test: Option<TestKind>,
    /// `(index array, property tag)` pairs verified by the property
    /// analysis on the way.
    pub properties_used: Vec<(VarId, &'static str)>,
    /// When `independent` is false but an access pattern matched, the
    /// run-time checks that would each (alone) establish independence.
    /// Empty when no pattern matched (hard dependence or unanalyzable).
    pub residual: Vec<ResidualCheck>,
}

/// The dependence tester; borrows the shared property analysis engine as
/// its demand generator/checker.
pub struct DependenceTester<'a, 'c, 'p> {
    ctx: &'c AnalysisCtx<'p>,
    apa: &'a mut ArrayPropertyAnalysis<'c, 'p>,
    /// When false, no property queries are issued (the "without IAA"
    /// configuration of Fig. 16).
    pub enable_property_queries: bool,
}

impl<'a, 'c, 'p> DependenceTester<'a, 'c, 'p> {
    /// Creates a tester.
    pub fn new(
        ctx: &'c AnalysisCtx<'p>,
        apa: &'a mut ArrayPropertyAnalysis<'c, 'p>,
    ) -> DependenceTester<'a, 'c, 'p> {
        DependenceTester {
            ctx,
            apa,
            enable_property_queries: true,
        }
    }

    /// Tests every array *written* in `loop_stmt` for loop-carried
    /// dependence.
    pub fn analyze_loop(&mut self, loop_stmt: StmtId) -> Vec<ArrayDepResult> {
        let body: Vec<StmtId> = match &self.ctx.program.stmt(loop_stmt).kind {
            StmtKind::Do { body, .. } | StmtKind::While { body, .. } => body.clone(),
            _ => return Vec::new(),
        };
        irr_frontend::visit::arrays_written_in(self.ctx.program, &body)
            .into_iter()
            .map(|a| self.analyze_array(loop_stmt, a))
            .collect()
    }

    /// Tests one array.
    pub fn analyze_array(&mut self, loop_stmt: StmtId, array: VarId) -> ArrayDepResult {
        let mut result = ArrayDepResult {
            array,
            independent: false,
            test: None,
            properties_used: Vec::new(),
            residual: Vec::new(),
        };
        let Some((var, lo, hi)) = self.ctx.do_bounds_sym(loop_stmt) else {
            return result; // while loops carry unknown dependences
        };
        let body: Vec<StmtId> = match &self.ctx.program.stmt(loop_stmt).kind {
            StmtKind::Do { body, .. } => body.clone(),
            _ => return result,
        };
        let accesses: Vec<ArrayAccess> = collect_array_accesses(self.ctx.program, &body)
            .into_iter()
            .filter(|a| a.array == array)
            .collect();
        if accesses.is_empty() || accesses.iter().all(|a| !a.is_write) {
            result.independent = true;
            return result;
        }
        let rank = accesses[0].subscripts.len();
        if accesses.iter().any(|a| a.subscripts.len() != rank) {
            return result;
        }

        // Layer 1: a dimension subscripted by the loop index everywhere.
        for d in 0..rank {
            if accesses
                .iter()
                .all(|a| matches!(&a.subscripts[d], Expr::Var(v) if *v == var))
            {
                result.independent = true;
                result.test = Some(TestKind::IdentityDim);
                return result;
            }
        }

        // Layer 2: the classical GCD test per dimension (cheap, and it
        // disproves interleaved strides the hull-based range test
        // cannot, e.g. writes to `x(2i)` vs reads of `x(2i+5)`).
        for d in 0..rank {
            if gcd_test_dim(&accesses, d, var) {
                result.independent = true;
                result.test = Some(TestKind::Gcd);
                return result;
            }
        }

        // Layer 3 (which subsumes 2): range test per dimension.
        for d in 0..rank {
            match self.range_test_dim(loop_stmt, &accesses, d, var, &lo, &hi, &mut result) {
                Some(kind) => {
                    result.independent = true;
                    result.test = Some(kind);
                    result.residual.clear();
                    return result;
                }
                None => continue,
            }
        }

        // Layer 4b: the injective test for 1-D `a(p(i))` subscripts.
        if rank == 1 && self.enable_property_queries {
            if let Some(kind) =
                self.injective_test(loop_stmt, &accesses, var, &lo, &hi, &mut result)
            {
                result.independent = true;
                result.test = Some(kind);
                result.residual.clear();
                return result;
            }
        }
        result
    }

    /// Computes the per-iteration hull of dimension `d`'s subscripts and
    /// proves it disjoint across iterations, with property-query
    /// assistance.
    #[allow(clippy::too_many_arguments)]
    fn range_test_dim(
        &mut self,
        loop_stmt: StmtId,
        accesses: &[ArrayAccess],
        d: usize,
        var: VarId,
        lo: &SymExpr,
        hi: &SymExpr,
        result: &mut ArrayDepResult,
    ) -> Option<TestKind> {
        // The hull of all accesses' dimension-d subscripts at a fixed
        // iteration of `var`.
        let mut hull: Option<SymRange> = None;
        let mut any_atoms = false;
        let base_env = {
            let mut e = self.ctx.range_env_at(loop_stmt);
            e.set_var_range(var, lo.clone(), hi.clone());
            e
        };
        for acc in accesses {
            let sub = expr_to_sym(&acc.subscripts[d])?;
            if sub.atoms().iter().any(|a| !matches!(a, Atom::Var(_))) {
                any_atoms = true;
            }
            // Eliminate inner loop variables by monotone substitution.
            let (mut smin, mut smax) = (sub.clone(), sub);
            for &inner in self.ctx.enclosing_loops(acc.stmt) {
                if inner == loop_stmt {
                    break;
                }
                let (ivar, ilo, ihi) = self.ctx.do_bounds_sym(inner)?;
                let ienv = {
                    let mut e = base_env.clone();
                    e.set_var_range(ivar, ilo.clone(), ihi.clone());
                    e
                };
                let (a, _) = extremes_over(&smin, ivar, &ilo, &ihi, &ienv)?;
                let (_, b) = extremes_over(&smax, ivar, &ilo, &ihi, &ienv)?;
                smin = a;
                smax = b;
            }
            if smin.mentions_var(var) || smax.mentions_var(var) {
                // fine: varies with the tested loop — that's the point.
            }
            // Anything else still symbolic (scalars, arrays) stays.
            let r = SymRange::new(smin, smax);
            hull = Some(match hull {
                None => r,
                Some(h) => SymRange {
                    lo: pick_lower(&h.lo, &r.lo, &base_env)?,
                    hi: pick_upper(&h.hi, &r.hi, &base_env)?,
                },
            });
        }
        let hull = hull?;
        let (Bound::Finite(h_lo), Bound::Finite(h_hi)) = (&hull.lo, &hull.hi) else {
            return None;
        };
        // Scalars assigned inside the loop (other than the index) make
        // the hull meaningless across iterations.
        let body: Vec<StmtId> = match &self.ctx.program.stmt(loop_stmt).kind {
            StmtKind::Do { body, .. } => body.clone(),
            _ => return None,
        };
        for v in irr_frontend::visit::scalars_assigned_in(self.ctx.program, &body) {
            if v != var && (h_lo.mentions_var(v) || h_hi.mentions_var(v)) {
                return None;
            }
        }
        // Index arrays written inside the loop disqualify property use
        // (and make even the plain hull dubious if they feed subscripts).
        let written = irr_frontend::visit::arrays_written_in(self.ctx.program, &body);
        for a in h_lo.atoms().iter().chain(h_hi.atoms().iter()) {
            if let Atom::Elem(arr, _) = a {
                if written.contains(arr) {
                    return None;
                }
            }
        }
        // Disjointness without properties first.
        let mut step_env = base_env.clone();
        step_env.set_var_range(var, lo.clone(), hi.sub(&SymExpr::int(1)));
        let next = SymExpr::var(var).add(&SymExpr::int(1));
        let increasing = prove_gt0(&h_lo.subst(var, &next).sub(h_hi), &step_env);
        let decreasing = increasing || prove_gt0(&h_lo.sub(&h_hi.subst(var, &next)), &step_env);
        if increasing || decreasing {
            return Some(if any_atoms {
                TestKind::Range
            } else {
                TestKind::Affine
            });
        }
        if !self.enable_property_queries {
            return None;
        }
        // Demand generation: closed-form distances for index arrays in
        // the hull.
        let mut env = step_env.clone();
        let mut used_any = false;
        let candidates = self.distance_candidates(h_lo, h_hi, var);
        for (x, dist) in candidates {
            // Verify the distance and its non-negativity.
            let pairs = Section::range1(lo.clone(), hi.sub(&SymExpr::int(1)));
            let q = PropertyQuery {
                array: x,
                property: Property::ClosedFormDistance {
                    distance: dist.clone(),
                },
                section: pairs,
                at_stmt: loop_stmt,
            };
            if !self.apa.check(&q) {
                // The shape fit but the fact didn't prove: leave it for
                // a run-time inspector.
                if let DistanceSpec::Array(y) = &dist {
                    let rc = ResidualCheck::OffsetLength { ptr: x, len: *y };
                    if !result.residual.contains(&rc) {
                        result.residual.push(rc);
                    }
                }
                continue;
            }
            // Non-negativity of the distance on the traversed range.
            let nonneg_ok = match &dist {
                DistanceSpec::Expr(e) => {
                    let inst = e.subst(INDEX_VAR, &SymExpr::var(var));
                    prove_ge0(&inst, &env)
                }
                DistanceSpec::Array(y) => {
                    let qb = PropertyQuery {
                        array: *y,
                        property: Property::ClosedFormBound {
                            lo: Some(SymExpr::int(0)),
                            hi: None,
                        },
                        section: Section::range1(lo.clone(), hi.clone()),
                        at_stmt: loop_stmt,
                    };
                    if self.apa.check(&qb) {
                        env.set_elem_range(
                            *y,
                            SymRange {
                                lo: Bound::Finite(SymExpr::int(0)),
                                hi: Bound::PosInf,
                            },
                        );
                        result.properties_used.push((*y, "CFB"));
                        true
                    } else {
                        let rc = ResidualCheck::OffsetLength { ptr: x, len: *y };
                        if !result.residual.contains(&rc) {
                            result.residual.push(rc);
                        }
                        false
                    }
                }
            };
            if !nonneg_ok {
                continue;
            }
            let placeholder = VarId(u32::MAX - 3);
            let dist_expr = match &dist {
                DistanceSpec::Array(y) => SymExpr::elem(*y, vec![SymExpr::var(placeholder)]),
                DistanceSpec::Expr(e) => e.subst(INDEX_VAR, &SymExpr::var(placeholder)),
            };
            env.set_distance(x, placeholder, dist_expr);
            let tag = match &dist {
                DistanceSpec::Array(_) => "CFD",
                DistanceSpec::Expr(_) => "CFV",
            };
            result.properties_used.push((x, tag));
            used_any = true;
        }
        if !used_any {
            return None;
        }
        let increasing = prove_gt0(&h_lo.subst(var, &next).sub(h_hi), &env);
        let decreasing = increasing || prove_gt0(&h_lo.sub(&h_hi.subst(var, &next)), &env);
        if increasing || decreasing {
            Some(TestKind::OffsetLength)
        } else {
            None
        }
    }

    /// Enumerates plausible `(index array, distance)` pairs from the
    /// hull bounds: for every 1-D `x(i)` atom, every other array `y(i)`
    /// in the bounds (offset/length pattern) and the generic polynomial
    /// distance suggested by the residual (the `CFV` route).
    fn distance_candidates(
        &self,
        h_lo: &SymExpr,
        h_hi: &SymExpr,
        var: VarId,
    ) -> Vec<(VarId, DistanceSpec)> {
        let mut bases: Vec<VarId> = Vec::new();
        let mut others: Vec<VarId> = Vec::new();
        for e in [h_lo, h_hi] {
            for a in e.atoms() {
                if let Atom::Elem(arr, subs) = a {
                    if subs.len() == 1 && subs[0] == SymExpr::var(var) {
                        let (c, _) = e.coeff_of_atom(a);
                        if c == 1 && !bases.contains(arr) {
                            bases.push(*arr);
                        }
                        if !others.contains(arr) {
                            others.push(*arr);
                        }
                    }
                }
            }
        }
        let mut out = Vec::new();
        for &x in &bases {
            for &y in &others {
                if y != x {
                    out.push((x, DistanceSpec::Array(y)));
                }
            }
            // Polynomial-distance candidates: the residual widths of the
            // hull relative to x(i). For the triangular pattern the
            // width h_hi - x(i) is `i`-like; offer it and its +1
            // neighbors as candidate distances.
            let xi = SymExpr::elem(x, vec![SymExpr::var(var)]);
            for base_expr in [h_hi, h_lo] {
                let width = base_expr.sub(&xi);
                if width.atoms().is_empty() || width.mentions_array(x) {
                    // constant or self-referential: still usable
                }
                // Only offer widths that are pure in `var`.
                let pure = width
                    .atoms()
                    .iter()
                    .all(|a| matches!(a, Atom::Var(v) if *v == var));
                if pure && width.mentions_var(var) {
                    for delta in [0i64, 1] {
                        let cand = width
                            .add(&SymExpr::int(delta))
                            .subst(var, &SymExpr::var(INDEX_VAR));
                        out.push((x, DistanceSpec::Expr(cand)));
                    }
                }
            }
        }
        out
    }

    /// The injective test: all subscripts are exactly `p(i)` for the
    /// same index array `p` and the loop index `i`.
    fn injective_test(
        &mut self,
        loop_stmt: StmtId,
        accesses: &[ArrayAccess],
        var: VarId,
        lo: &SymExpr,
        hi: &SymExpr,
        result: &mut ArrayDepResult,
    ) -> Option<TestKind> {
        let mut p_arr: Option<VarId> = None;
        for acc in accesses {
            match &acc.subscripts[0] {
                Expr::Element(p, subs)
                    if subs.len() == 1 && matches!(&subs[0], Expr::Var(v) if *v == var) =>
                {
                    match p_arr {
                        None => p_arr = Some(*p),
                        Some(q) if q == *p => {}
                        _ => return None,
                    }
                }
                _ => return None,
            }
        }
        let p = p_arr?;
        // p must not be written inside the loop.
        let body: Vec<StmtId> = match &self.ctx.program.stmt(loop_stmt).kind {
            StmtKind::Do { body, .. } => body.clone(),
            _ => return None,
        };
        if irr_frontend::visit::arrays_written_in(self.ctx.program, &body).contains(&p) {
            return None;
        }
        let q = PropertyQuery {
            array: p,
            property: Property::Injective,
            section: Section::range1(lo.clone(), hi.clone()),
            at_stmt: loop_stmt,
        };
        if self.apa.check(&q) {
            result.properties_used.push((p, "INJ"));
            Some(TestKind::Injective)
        } else {
            // The `a(p(i))` shape matched and `p` is loop-invariant: an
            // injectivity inspection of `p` at run time would clear it.
            let rc = ResidualCheck::Injective { array: p };
            if !result.residual.contains(&rc) {
                result.residual.push(rc);
            }
            None
        }
    }
}

/// The classical GCD test on one dimension: every subscript must be
/// affine purely in the tested loop's index (`a*i + c`); the loop
/// carries no dependence when, for every pair with a write, the linear
/// Diophantine equation `a*i1 + c1 = b*i2 + c2` has no solution
/// (`gcd(a,b)` does not divide `c2 - c1`), or — for equal subscripts —
/// only the loop-independent solution `i1 = i2`.
fn gcd_test_dim(accesses: &[ArrayAccess], d: usize, var: VarId) -> bool {
    // Extract (a, c) per access; bail out if any subscript is not
    // affine purely in `var`.
    let mut coeffs: Vec<(i64, i64, bool)> = Vec::with_capacity(accesses.len());
    for acc in accesses {
        let Some(sub) = expr_to_sym(&acc.subscripts[d]) else {
            return false;
        };
        if !sub.is_affine() {
            return false;
        }
        // Only the loop variable may appear.
        if !sub
            .atoms()
            .iter()
            .all(|at| matches!(at, Atom::Var(v) if *v == var))
        {
            return false;
        }
        let (a, da) = sub.coeff_of_atom(&Atom::Var(var));
        let (c, dc) = sub.constant_part();
        if da != 1 || dc != 1 {
            return false;
        }
        coeffs.push((a, c, acc.is_write));
    }
    fn gcd(a: i64, b: i64) -> i64 {
        let (mut a, mut b) = (a.abs(), b.abs());
        while b != 0 {
            let t = a % b;
            a = b;
            b = t;
        }
        a
    }
    for (k, &(a, c1, w1)) in coeffs.iter().enumerate() {
        for &(b, c2, w2) in &coeffs[k..] {
            if !w1 && !w2 {
                continue;
            }
            let diff = c2 - c1;
            if a == b {
                // a*(i1 - i2) = diff: carried solutions need diff != 0
                // and a | diff (a == 0 with diff == 0 is the everywhere-
                // equal constant subscript: carried!).
                if a == 0 {
                    if diff == 0 {
                        return false; // same constant cell every iteration
                    }
                    continue; // never equal
                }
                if diff != 0 && diff % a == 0 {
                    return false; // a carried solution exists
                }
                // diff == 0: only i1 == i2 (loop-independent); diff not
                // divisible: no solution. Either way no carried dep.
                continue;
            }
            let g = gcd(a, b);
            if g == 0 {
                // both zero: constant cells c1 and c2.
                if diff == 0 {
                    return false;
                }
                continue;
            }
            if diff % g == 0 {
                return false; // solutions exist (bounds ignored: MAY dep)
            }
        }
    }
    true
}

/// The stand-alone **simple offset–length test** of §5.1.5: a cheap
/// pattern-matcher for subscripts of exactly the form
/// `ptr(i) + j - c` where `i` is the tested loop's index and `j` is an
/// immediately inner loop ranging over `[1, len(i)]` (or a sub-range of
/// it). It issues the same two demands as the extended test —
/// closed-form distance of `ptr` and non-negativity of `len` — but skips
/// the general hull construction, which is why the paper offered it
/// "when the user wanted to avoid the overhead of the extended range
/// test, though it was less general".
pub struct SimpleOffsetLengthTest<'a, 'c, 'p> {
    ctx: &'c AnalysisCtx<'p>,
    apa: &'a mut ArrayPropertyAnalysis<'c, 'p>,
}

impl<'a, 'c, 'p> SimpleOffsetLengthTest<'a, 'c, 'p> {
    /// Creates the test.
    pub fn new(
        ctx: &'c AnalysisCtx<'p>,
        apa: &'a mut ArrayPropertyAnalysis<'c, 'p>,
    ) -> SimpleOffsetLengthTest<'a, 'c, 'p> {
        SimpleOffsetLengthTest { ctx, apa }
    }

    /// Tests whether `loop_stmt` carries a dependence on `array`, with
    /// every access matching the `a(ptr(i)+j-c)` pattern.
    pub fn independent(&mut self, loop_stmt: StmtId, array: VarId) -> bool {
        let Some((var, lo, hi)) = self.ctx.do_bounds_sym(loop_stmt) else {
            return false;
        };
        let body: Vec<StmtId> = match &self.ctx.program.stmt(loop_stmt).kind {
            StmtKind::Do { body, .. } => body.clone(),
            _ => return false,
        };
        let accesses: Vec<ArrayAccess> = collect_array_accesses(self.ctx.program, &body)
            .into_iter()
            .filter(|a| a.array == array)
            .collect();
        if accesses.is_empty() {
            return false;
        }
        // All accesses must share one (ptr, len) pair.
        let mut pair: Option<(VarId, VarId)> = None;
        for acc in &accesses {
            if acc.subscripts.len() != 1 {
                return false;
            }
            let Some(sub) = expr_to_sym(&acc.subscripts[0]) else {
                return false;
            };
            // Find the ptr(i) atom with coefficient one.
            let mut ptr = None;
            for a in sub.atoms() {
                if let Atom::Elem(arr, subs) = a {
                    if subs.len() == 1 && subs[0] == SymExpr::var(var) {
                        let (c, d) = sub.coeff_of_atom(a);
                        if c == 1 && d == 1 {
                            ptr = Some(*arr);
                        }
                    }
                }
            }
            let Some(ptr) = ptr else { return false };
            // The rest must be `j + const` with `j` an inner loop var
            // whose bounds are [1, len(i) (+ const)].
            let rest = sub.sub(&SymExpr::elem(ptr, vec![SymExpr::var(var)]));
            let Some(j) = rest.atoms().iter().find_map(|a| match a {
                Atom::Var(v) if *v != var => Some(*v),
                _ => None,
            }) else {
                return false;
            };
            if rest.coeff_of_atom(&Atom::Var(j)) != (1, 1) {
                return false;
            }
            // j's loop must be an enclosing loop of this access, inside
            // the tested loop, with bounds [1, len(i) + const].
            let mut len = None;
            for &inner in self.ctx.enclosing_loops(acc.stmt) {
                if inner == loop_stmt {
                    break;
                }
                if let Some((jv, jlo, jhi)) = self.ctx.do_bounds_sym(inner) {
                    if jv != j {
                        continue;
                    }
                    if jlo.as_int() != Some(1) {
                        return false;
                    }
                    for a in jhi.atoms() {
                        if let Atom::Elem(arr, subs) = a {
                            if subs.len() == 1
                                && subs[0] == SymExpr::var(var)
                                && jhi.coeff_of_atom(a) == (1, 1)
                            {
                                len = Some(*arr);
                            }
                        }
                    }
                }
            }
            let Some(len) = len else { return false };
            match &pair {
                None => pair = Some((ptr, len)),
                Some((p0, l0)) if *p0 == ptr && *l0 == len => {}
                _ => return false,
            }
        }
        let (ptr, len) = pair.expect("accesses nonempty");
        // ptr/len must be loop-invariant.
        let written = irr_frontend::visit::arrays_written_in(self.ctx.program, &body);
        if written.contains(&ptr) || written.contains(&len) {
            return false;
        }
        // The two demands.
        let q_cfd = PropertyQuery {
            array: ptr,
            property: Property::ClosedFormDistance {
                distance: DistanceSpec::Array(len),
            },
            section: Section::range1(lo.clone(), hi.sub(&SymExpr::int(1))),
            at_stmt: loop_stmt,
        };
        if !self.apa.check(&q_cfd) {
            return false;
        }
        let q_cfb = PropertyQuery {
            array: len,
            property: Property::ClosedFormBound {
                lo: Some(SymExpr::int(0)),
                hi: None,
            },
            section: Section::range1(lo, hi),
            at_stmt: loop_stmt,
        };
        self.apa.check(&q_cfb)
    }
}

/// A bound provably below both (for hulls): prefer the provably smaller.
fn pick_lower(a: &Bound, b: &Bound, env: &RangeEnv) -> Option<Bound> {
    match (a, b) {
        (Bound::Finite(x), Bound::Finite(y)) => {
            if irr_symbolic::prove_le(x, y, env) {
                Some(a.clone())
            } else if irr_symbolic::prove_le(y, x, env) {
                Some(b.clone())
            } else {
                None
            }
        }
        _ => None,
    }
}

fn pick_upper(a: &Bound, b: &Bound, env: &RangeEnv) -> Option<Bound> {
    match (a, b) {
        (Bound::Finite(x), Bound::Finite(y)) => {
            if irr_symbolic::prove_le(x, y, env) {
                Some(b.clone())
            } else if irr_symbolic::prove_le(y, x, env) {
                Some(a.clone())
            } else {
                None
            }
        }
        _ => None,
    }
}

// Whole-program tests live in `tests/deptest.rs`.
