//! Additional dependence-test scenarios: multi-dimensional arrays,
//! whole-loop analysis, while loops, and approximation boundaries.

use irr_core::property::ArrayPropertyAnalysis;
use irr_core::AnalysisCtx;
use irr_deptest::{DependenceTester, TestKind};
use irr_frontend::{parse_program, Program, StmtId};

fn loops_of(p: &Program) -> Vec<StmtId> {
    let mut out = Vec::new();
    for proc in &p.procedures {
        out.extend(
            p.stmts_in(&proc.body)
                .into_iter()
                .filter(|s| p.stmt(*s).kind.is_loop()),
        );
    }
    out
}

#[test]
fn analyze_loop_covers_every_written_array() {
    let src = "program t
         integer i, n
         real a(100), b(100), c(100)
         do i = 1, 100
           a(i) = b(i)
           c(1) = c(1) + a(i)
         enddo
         end";
    let p = parse_program(src).unwrap();
    let ctx = AnalysisCtx::new(&p);
    let mut apa = ArrayPropertyAnalysis::new(&ctx);
    let mut dt = DependenceTester::new(&ctx, &mut apa);
    let results = dt.analyze_loop(loops_of(&p)[0]);
    assert_eq!(results.len(), 2); // a and c are written
    let a = p.symbols.lookup("a").unwrap();
    let c = p.symbols.lookup("c").unwrap();
    assert!(results.iter().find(|r| r.array == a).unwrap().independent);
    assert!(!results.iter().find(|r| r.array == c).unwrap().independent);
}

#[test]
fn second_dimension_identity_is_enough() {
    // z(ind(i), i): the second dimension is the loop index.
    let src = "program t
         integer i, n, ind(50)
         real z(50, 50)
         do i = 1, 50
           z(ind(i), i) = 1
         enddo
         end";
    let p = parse_program(src).unwrap();
    let ctx = AnalysisCtx::new(&p);
    let mut apa = ArrayPropertyAnalysis::new(&ctx);
    let mut dt = DependenceTester::new(&ctx, &mut apa);
    let z = p.symbols.lookup("z").unwrap();
    let r = dt.analyze_array(loops_of(&p)[0], z);
    assert!(r.independent);
    assert_eq!(r.test, Some(TestKind::IdentityDim));
}

#[test]
fn mixed_rank_accesses_are_conservative() {
    // Same array accessed with different ranks cannot happen in this
    // language (the parser enforces ranks), so instead: a 2-D array
    // where neither dimension separates.
    let src = "program t
         integer i, n, ind(50), jnd(50)
         real z(50, 50)
         do i = 1, 50
           z(ind(i), jnd(i)) = 1
         enddo
         end";
    let p = parse_program(src).unwrap();
    let ctx = AnalysisCtx::new(&p);
    let mut apa = ArrayPropertyAnalysis::new(&ctx);
    let mut dt = DependenceTester::new(&ctx, &mut apa);
    let z = p.symbols.lookup("z").unwrap();
    assert!(!dt.analyze_array(loops_of(&p)[0], z).independent);
}

#[test]
fn while_loops_are_never_independent() {
    let src = "program t
         integer k, n
         real x(100)
         k = 0
         while (k < n)
           k = k + 1
           x(k) = k
         endwhile
         end";
    let p = parse_program(src).unwrap();
    let ctx = AnalysisCtx::new(&p);
    let mut apa = ArrayPropertyAnalysis::new(&ctx);
    let mut dt = DependenceTester::new(&ctx, &mut apa);
    let x = p.symbols.lookup("x").unwrap();
    let wl = loops_of(&p)[0];
    assert!(!dt.analyze_array(wl, x).independent);
}

#[test]
fn triangular_read_write_pair() {
    // TRFD-like, but with a *read* of the previous segment: the ranges
    // genuinely overlap across iterations — must stay dependent.
    let src = "program t
         integer i, j, ia(100)
         real x(6000)
         call setia
         do 140 i = 2, 100
           do j = 1, i
             x(ia(i) + j) = x(ia(i - 1) + j) * 0.5
           enddo
 140     continue
         end
         subroutine setia
         integer k
         do k = 1, 100
           ia(k) = k*(k-1)/2
         enddo
         end";
    let p = parse_program(src).unwrap();
    let ctx = AnalysisCtx::new(&p);
    let mut apa = ArrayPropertyAnalysis::new(&ctx);
    let mut dt = DependenceTester::new(&ctx, &mut apa);
    let x = p.symbols.lookup("x").unwrap();
    let outer = loops_of(&p)
        .into_iter()
        .find(|s| {
            matches!(
                p.stmt(*s).kind,
                irr_frontend::StmtKind::Do {
                    label: Some(140),
                    ..
                }
            )
        })
        .unwrap();
    let r = dt.analyze_array(outer, x);
    assert!(
        !r.independent,
        "reading the previous segment is a real flow dependence: {r:?}"
    );
}

#[test]
fn hull_with_unordered_bounds_degrades_gracefully() {
    // Two accesses whose hull bounds cannot be ordered symbolically:
    // x(a1(i)) and x(a2(i)) with unrelated index arrays — the tester
    // must simply report "dependent", not panic.
    let src = "program t
         integer i, a1(50), a2(50)
         real x(100)
         do i = 1, 50
           x(a1(i)) = x(a2(i))
         enddo
         end";
    let p = parse_program(src).unwrap();
    let ctx = AnalysisCtx::new(&p);
    let mut apa = ArrayPropertyAnalysis::new(&ctx);
    let mut dt = DependenceTester::new(&ctx, &mut apa);
    let x = p.symbols.lookup("x").unwrap();
    assert!(!dt.analyze_array(loops_of(&p)[0], x).independent);
}

#[test]
fn properties_survive_across_multiple_segment_loops() {
    // Several loops over the same CCS structure: the summary cache lets
    // every loop verify against the same facts; all must come back
    // independent.
    let src = "program t
         integer i, j, pptr(65), iblen(64)
         real a(600), b(600), c(600)
         call setup
         do 1 i = 1, 64
           do j = 1, iblen(i)
             a(pptr(i) + j - 1) = 1
           enddo
 1       continue
         do 2 i = 1, 64
           do j = 1, iblen(i)
             b(pptr(i) + j - 1) = a(pptr(i) + j - 1)
           enddo
 2       continue
         do 3 i = 1, 64
           do j = 1, iblen(i)
             c(pptr(i) + j - 1) = a(pptr(i) + j - 1) + b(pptr(i) + j - 1)
           enddo
 3       continue
         end
         subroutine setup
         integer k
         do k = 1, 64
           iblen(k) = mod(k, 4) + 1
         enddo
         pptr(1) = 1
         do k = 1, 64
           pptr(k + 1) = pptr(k) + iblen(k)
         enddo
         end";
    let p = parse_program(src).unwrap();
    let ctx = AnalysisCtx::new(&p);
    let mut apa = ArrayPropertyAnalysis::new(&ctx);
    for (label, arr) in [(1u32, "a"), (2, "b"), (3, "c")] {
        let l = loops_of(&p)
            .into_iter()
            .find(|s| {
                matches!(
                    p.stmt(*s).kind,
                    irr_frontend::StmtKind::Do { label: Some(l2), .. } if l2 == label
                )
            })
            .unwrap();
        let v = p.symbols.lookup(arr).unwrap();
        let mut dt = DependenceTester::new(&ctx, &mut apa);
        let r = dt.analyze_array(l, v);
        assert!(r.independent, "do{label} on {arr}: {r:?}");
        assert_eq!(r.test, Some(TestKind::OffsetLength));
    }
}
