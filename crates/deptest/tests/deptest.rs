//! Dependence-test scenarios: the DYFESM Fig. 13 loop, the TRFD
//! triangular loop, CCS traversal (Fig. 3), the injective test, and
//! negative cases.

use irr_core::property::ArrayPropertyAnalysis;
use irr_core::AnalysisCtx;
use irr_deptest::{DependenceTester, TestKind};
use irr_frontend::{parse_program, Program, StmtId};

fn loops_of(p: &Program) -> Vec<StmtId> {
    let mut out = Vec::new();
    for proc in &p.procedures {
        out.extend(
            p.stmts_in(&proc.body)
                .into_iter()
                .filter(|s| p.stmt(*s).kind.is_loop()),
        );
    }
    out
}

fn analyze(src: &str, loop_idx: usize, array: &str) -> irr_deptest::ArrayDepResult {
    let p = parse_program(src).unwrap();
    let ctx = AnalysisCtx::new(&p);
    let mut apa = ArrayPropertyAnalysis::new(&ctx);
    let mut dt = DependenceTester::new(&ctx, &mut apa);
    let l = loops_of(&p)[loop_idx];
    let a = p.symbols.lookup(array).unwrap();
    dt.analyze_array(l, a)
}

#[test]
fn identity_dimension_is_trivially_independent() {
    let r = analyze(
        "program t
         integer i, n, ind(100)
         real z(100, 100), x(100)
         do i = 1, n
           z(i, ind(i)) = x(i)
         enddo
         end",
        0,
        "z",
    );
    assert!(r.independent);
    assert_eq!(r.test, Some(TestKind::IdentityDim));
}

#[test]
fn affine_disjointness() {
    // x(2i) and x(2i+1): hull [2i, 2i+1]; next iteration starts at
    // 2i+2 > 2i+1.
    let r = analyze(
        "program t
         integer i, n
         real x(300)
         do i = 1, n
           x(2*i) = 1
           x(2*i + 1) = 2
         enddo
         end",
        0,
        "x",
    );
    assert!(r.independent);
    // The cheap GCD test fires first (parity disjointness).
    assert_eq!(r.test, Some(TestKind::Gcd));
}

#[test]
fn overlapping_affine_is_dependent() {
    let r = analyze(
        "program t
         integer i, n
         real x(300)
         do i = 1, n
           x(i) = x(i + 1)
         enddo
         end",
        0,
        "x",
    );
    assert!(!r.independent);
}

#[test]
fn dyfesm_fig13_offset_length() {
    // The SOLXDD loop of Fig. 13, with pptr/iblen defined CCS-style in a
    // setup subroutine. iblen(i) >= 0 by construction (mod + 1).
    let src = "program t
         integer i, j, k, pptr(101), iblen(100)
         real x(10000)
         call setup
         ! (the driver's constant propagation handles symbolic bounds;
         ! here the tester is exercised directly with literal bounds)
         do 10 i = 1, 100
           do j = 2, iblen(i)
             do k = 1, j - 1
               x(pptr(i) + k - 1) = 1
             enddo
           enddo
           do j = 1, iblen(i) - 1
             do k = 1, j
               x(1) = x(iblen(i) + pptr(i) + k - j - 1)
             enddo
           enddo
 10      continue
         end
         subroutine setup
         integer i2
         do i2 = 1, 100
           iblen(i2) = mod(i2, 7) + 1
         enddo
         pptr(1) = 1
         do i2 = 1, 100
           pptr(i2 + 1) = pptr(i2) + iblen(i2)
         enddo
         end";
    // Note: x(1) = ... read makes x written AND read; the write
    // x(pptr(i)+k-1) vs read x(iblen+pptr+k-j-1) ranges must be proven
    // disjoint across iterations of the outer i loop... but the x(1)
    // write is loop-variant-free and conflicts across iterations! Use a
    // separate target array for the read to keep the scenario faithful.
    let src = src.replace("x(1) = x(", "y(k) = x(");
    let src = src.replace("real x(10000)", "real x(10000), y(10000)");
    let p = parse_program(&src).unwrap();
    let ctx = AnalysisCtx::new(&p);
    let mut apa = ArrayPropertyAnalysis::new(&ctx);
    let mut dt = DependenceTester::new(&ctx, &mut apa);
    let outer = loops_of(&p)
        .into_iter()
        .find(|s| {
            matches!(
                p.stmt(*s).kind,
                irr_frontend::StmtKind::Do {
                    label: Some(10),
                    ..
                }
            )
        })
        .unwrap();
    let x = p.symbols.lookup("x").unwrap();
    let r = dt.analyze_array(outer, x);
    assert!(
        r.independent,
        "offset-length disproves the dependence: {r:?}"
    );
    assert_eq!(r.test, Some(TestKind::OffsetLength));
    let pptr = p.symbols.lookup("pptr").unwrap();
    let iblen = p.symbols.lookup("iblen").unwrap();
    assert!(r
        .properties_used
        .iter()
        .any(|(a, t)| *a == pptr && *t == "CFD"));
    assert!(r
        .properties_used
        .iter()
        .any(|(a, t)| *a == iblen && *t == "CFB"));
}

#[test]
fn dyfesm_without_property_queries_fails() {
    let src = "program t
         integer i, j, pptr(101), iblen(100)
         real x(10000)
         call setup
         ! (the driver's constant propagation handles symbolic bounds;
         ! here the tester is exercised directly with literal bounds)
         do 10 i = 1, 100
           do j = 1, iblen(i)
             x(pptr(i) + j - 1) = 1
           enddo
 10      continue
         end
         subroutine setup
         integer i2
         do i2 = 1, 100
           iblen(i2) = mod(i2, 7) + 1
         enddo
         pptr(1) = 1
         do i2 = 1, 100
           pptr(i2 + 1) = pptr(i2) + iblen(i2)
         enddo
         end";
    let p = parse_program(src).unwrap();
    let ctx = AnalysisCtx::new(&p);
    let outer = loops_of(&p)
        .into_iter()
        .find(|s| {
            matches!(
                p.stmt(*s).kind,
                irr_frontend::StmtKind::Do {
                    label: Some(10),
                    ..
                }
            )
        })
        .unwrap();
    let x = p.symbols.lookup("x").unwrap();
    // With IAA: independent.
    let mut apa = ArrayPropertyAnalysis::new(&ctx);
    let mut dt = DependenceTester::new(&ctx, &mut apa);
    let r = dt.analyze_array(outer, x);
    assert!(r.independent);
    assert_eq!(r.test, Some(TestKind::OffsetLength));
    // Without IAA: unknown.
    let mut apa2 = ArrayPropertyAnalysis::new(&ctx);
    let mut dt2 = DependenceTester::new(&ctx, &mut apa2);
    dt2.enable_property_queries = false;
    let r2 = dt2.analyze_array(outer, x);
    assert!(!r2.independent);
}

#[test]
fn trfd_triangular_index() {
    // INTGRL/do140-style: ia(i) = i*(i-1)/2 defined in a setup loop;
    // the compute loop writes x(ia(i)+j), j in [1, i].
    let src = "program t
         integer i, j, ia(200)
         real x(20200)
         call setia
         do 140 i = 1, 200
           do j = 1, i
             x(ia(i) + j) = 1
           enddo
 140     continue
         end
         subroutine setia
         integer k
         do k = 1, 200
           ia(k) = k*(k-1)/2
         enddo
         end";
    let p = parse_program(src).unwrap();
    let ctx = AnalysisCtx::new(&p);
    let mut apa = ArrayPropertyAnalysis::new(&ctx);
    let mut dt = DependenceTester::new(&ctx, &mut apa);
    let outer = loops_of(&p)
        .into_iter()
        .find(|s| {
            matches!(
                p.stmt(*s).kind,
                irr_frontend::StmtKind::Do {
                    label: Some(140),
                    ..
                }
            )
        })
        .unwrap();
    let x = p.symbols.lookup("x").unwrap();
    let r = dt.analyze_array(outer, x);
    assert!(r.independent, "triangular subscripts are disjoint: {r:?}");
    assert_eq!(r.test, Some(TestKind::OffsetLength));
    let ia = p.symbols.lookup("ia").unwrap();
    assert!(r
        .properties_used
        .iter()
        .any(|(a, t)| *a == ia && *t == "CFV"));
}

#[test]
fn injective_test_on_gathered_indices() {
    let src = "program t
         integer i, q, k, p, ind(100)
         real x(100), z(100)
         q = 0
         do i = 1, p
           if (x(i) > 0) then
             q = q + 1
             ind(q) = i
           endif
         enddo
         do k = 1, q
           z(ind(k)) = x(ind(k)) * 2
         enddo
         end";
    let p = parse_program(src).unwrap();
    let ctx = AnalysisCtx::new(&p);
    let mut apa = ArrayPropertyAnalysis::new(&ctx);
    let mut dt = DependenceTester::new(&ctx, &mut apa);
    let use_loop = loops_of(&p)[1];
    let z = p.symbols.lookup("z").unwrap();
    let r = dt.analyze_array(use_loop, z);
    assert!(r.independent, "{r:?}");
    assert_eq!(r.test, Some(TestKind::Injective));
}

#[test]
fn non_injective_indices_stay_dependent() {
    let src = "program t
         integer i, k, q, ind(100)
         real z(100), x(100)
         do i = 1, 100
           ind(i) = 1
         enddo
         q = 100
         do k = 1, q
           z(ind(k)) = x(k)
         enddo
         end";
    let p = parse_program(src).unwrap();
    let ctx = AnalysisCtx::new(&p);
    let mut apa = ArrayPropertyAnalysis::new(&ctx);
    let mut dt = DependenceTester::new(&ctx, &mut apa);
    let use_loop = loops_of(&p)[1];
    let z = p.symbols.lookup("z").unwrap();
    let r = dt.analyze_array(use_loop, z);
    assert!(!r.independent);
}

#[test]
fn read_only_arrays_are_independent() {
    let r = analyze(
        "program t
         integer i, n
         real x(100), y(100)
         do i = 1, n
           y(i) = x(i) + x(n - i + 1)
         enddo
         end",
        0,
        "x",
    );
    assert!(r.independent, "never written in the loop");
}

#[test]
fn index_array_written_in_loop_blocks_properties() {
    let src = "program t
         integer i, j, pptr(101), iblen(100)
         real x(10000)
         pptr(1) = 1
         do i = 1, 100
           pptr(i + 1) = pptr(i) + iblen(i)
           do j = 1, iblen(i)
             x(pptr(i) + j - 1) = 1
           enddo
         enddo
         end";
    let p = parse_program(src).unwrap();
    let ctx = AnalysisCtx::new(&p);
    let mut apa = ArrayPropertyAnalysis::new(&ctx);
    let mut dt = DependenceTester::new(&ctx, &mut apa);
    let outer = loops_of(&p)[0];
    let x = p.symbols.lookup("x").unwrap();
    let r = dt.analyze_array(outer, x);
    // pptr is written inside the tested loop: the hull's index arrays
    // are not loop-invariant, so the test must refuse.
    assert!(!r.independent);
}

#[test]
fn simple_offset_length_test_matches_the_pattern() {
    use irr_deptest::SimpleOffsetLengthTest;
    let src = "program t
         integer i, j, pptr(101), iblen(100)
         real x(10000)
         call setup
         do 10 i = 1, 100
           do j = 1, iblen(i)
             x(pptr(i) + j - 1) = 1
           enddo
 10      continue
         end
         subroutine setup
         integer i2
         do i2 = 1, 100
           iblen(i2) = mod(i2, 7) + 1
         enddo
         pptr(1) = 1
         do i2 = 1, 100
           pptr(i2 + 1) = pptr(i2) + iblen(i2)
         enddo
         end";
    let p = parse_program(src).unwrap();
    let ctx = AnalysisCtx::new(&p);
    let mut apa = ArrayPropertyAnalysis::new(&ctx);
    let mut t = SimpleOffsetLengthTest::new(&ctx, &mut apa);
    let outer = loops_of(&p)
        .into_iter()
        .find(|s| {
            matches!(
                p.stmt(*s).kind,
                irr_frontend::StmtKind::Do {
                    label: Some(10),
                    ..
                }
            )
        })
        .unwrap();
    let x = p.symbols.lookup("x").unwrap();
    assert!(t.independent(outer, x));
    // It is *less general*: a reversed within-segment subscript
    // (Fig. 13's second loop nest walks segments backwards relative to
    // j) does not match the simple `ptr(i)+j` pattern...
    let src2 = src.replace("x(pptr(i) + j - 1) = 1", "x(iblen(i) + pptr(i) - j) = 1");
    let p2 = parse_program(&src2).unwrap();
    let ctx2 = AnalysisCtx::new(&p2);
    let mut apa2 = ArrayPropertyAnalysis::new(&ctx2);
    let mut t2 = SimpleOffsetLengthTest::new(&ctx2, &mut apa2);
    let outer2 = {
        let mut out = Vec::new();
        for proc in &p2.procedures {
            out.extend(p2.stmts_in(&proc.body));
        }
        out.into_iter()
            .find(|s| {
                matches!(
                    p2.stmt(*s).kind,
                    irr_frontend::StmtKind::Do {
                        label: Some(10),
                        ..
                    }
                )
            })
            .unwrap()
    };
    let x2 = p2.symbols.lookup("x").unwrap();
    assert!(!t2.independent(outer2, x2), "simple test must refuse");
    // ... while the extended test still proves it.
    let mut apa3 = ArrayPropertyAnalysis::new(&ctx2);
    let mut dt = DependenceTester::new(&ctx2, &mut apa3);
    assert!(dt.analyze_array(outer2, x2).independent);
}

#[test]
fn gcd_test_disproves_interleaved_strides() {
    // Writes x(2i), reads x(2i+5): the hulls overlap across iterations
    // but parity makes them never collide.
    let r = analyze(
        "program t
         integer i
         real x(300), y(300)
         do i = 1, 100
           x(2*i) = x(2*i + 5) + 1
         enddo
         end",
        0,
        "x",
    );
    assert!(r.independent, "{r:?}");
    assert_eq!(r.test, Some(TestKind::Gcd));
}

#[test]
fn gcd_test_keeps_real_collisions() {
    // Writes x(2i), reads x(2i+4): collision at i2 = i1 - 2.
    let r = analyze(
        "program t
         integer i
         real x(300)
         do i = 1, 100
           x(2*i) = x(2*i + 4) + 1
         enddo
         end",
        0,
        "x",
    );
    assert!(!r.independent);
}

#[test]
fn gcd_constant_cell_is_dependent() {
    let r = analyze(
        "program t
         integer i
         real x(10)
         do i = 1, 100
           x(3) = x(3) + 1
         enddo
         end",
        0,
        "x",
    );
    assert!(!r.independent);
}
