//! Structural edge cases for the CFG and HCG.

use irr_frontend::{parse_program, Program};
use irr_graph::{bounded_dfs, BdfsOutcome, Cfg, CfgNodeKind, Hcg, HcgNodeKind};

fn program(src: &str) -> Program {
    parse_program(src).unwrap()
}

#[test]
fn empty_procedure_body() {
    let p = program("program t\nend\n");
    let cfg = Cfg::build(&p, &p.procedure(p.main()).body);
    assert_eq!(cfg.succs(Cfg::ENTRY), &[Cfg::EXIT]);
    let h = Hcg::build(&p);
    let sec = h.proc_section(p.main());
    assert_eq!(h.section(sec).topo_order.len(), 2); // entry, exit
    assert!(!h.is_empty());
}

#[test]
fn deeply_nested_structures() {
    let p = program(
        "program t
         integer a, b, c, i, j
         do i = 1, 3
           if (a > 0) then
             do j = 1, 2
               while (b < 5)
                 b = b + 1
                 if (c > 0) then
                   c = c - 1
                 else
                   c = c + 1
                 endif
               endwhile
             enddo
           endif
         enddo
         end",
    );
    let cfg = Cfg::build(&p, &p.procedure(p.main()).body);
    // Every node reachable from entry, exit reachable from every node
    // that is not the exit.
    let mut seen = vec![false; cfg.len()];
    let mut stack = vec![Cfg::ENTRY];
    seen[Cfg::ENTRY.index()] = true;
    while let Some(n) = stack.pop() {
        for &s in cfg.succs(n) {
            if !seen[s.index()] {
                seen[s.index()] = true;
                stack.push(s);
            }
        }
    }
    assert!(seen.iter().all(|&b| b), "unreachable CFG nodes");
    // The HCG has one section per loop body plus the procedure.
    let h = Hcg::build(&p);
    let loops = p
        .stmts_in(&p.procedure(p.main()).body)
        .into_iter()
        .filter(|s| p.stmt(*s).kind.is_loop())
        .count();
    let mut sections = 0;
    for n in 0..h.len() as u32 {
        if matches!(h.kind(irr_graph::HcgNodeId(n)), HcgNodeKind::Entry(_)) {
            sections += 1;
        }
    }
    assert_eq!(sections, loops + 1);
}

#[test]
fn dominance_is_section_local() {
    let p = program(
        "program t
         integer i
         a = 1
         do i = 1, 3
           b = 2
         enddo
         end",
    );
    let h = Hcg::build(&p);
    let main_sec = h.proc_section(p.main());
    let a_node = h
        .section(main_sec)
        .topo_order
        .iter()
        .copied()
        .find(|n| matches!(h.kind(*n), HcgNodeKind::Simple(_)))
        .unwrap();
    // The b=2 node lives in the loop body section: cross-section
    // dominance queries answer false rather than panicking.
    let loop_body = p
        .stmts_in(&p.procedure(p.main()).body)
        .into_iter()
        .find(|s| p.stmt(*s).kind.is_loop())
        .and_then(|l| h.loop_section(l))
        .unwrap();
    let b_node = h
        .section(loop_body)
        .topo_order
        .iter()
        .copied()
        .find(|n| matches!(h.kind(*n), HcgNodeKind::Simple(_)))
        .unwrap();
    assert!(!h.dominates(a_node, b_node));
    assert!(!h.dominates(b_node, a_node));
    assert!(h.dominates(a_node, a_node));
}

#[test]
fn bdfs_bounded_start_explores_nothing() {
    let p = program("program t\na = 1\nb = 2\nend\n");
    let cfg = Cfg::build(&p, &p.procedure(p.main()).body);
    let first = cfg.succs(Cfg::ENTRY)[0];
    let second = cfg.succs(first)[0];
    // fbound on the start itself: the search never leaves it, so the
    // ffailed successor is never seen.
    let out = bounded_dfs(&cfg, first, |n| n == first, |n| n == second);
    assert_eq!(out, BdfsOutcome::Succeeded);
}

#[test]
fn call_sites_enumerate_every_caller() {
    let p = program(
        "program t
         call s
         call s
         end
         subroutine r
         call s
         end
         subroutine s
         x = 1
         end",
    );
    let h = Hcg::build(&p);
    let s = p.find_procedure("s").unwrap();
    // Two calls in main + one in r (r itself is never called, but its
    // call site exists).
    assert_eq!(h.call_sites(s).len(), 3);
    let r = p.find_procedure("r").unwrap();
    assert!(h.call_sites(r).is_empty());
}

#[test]
fn cfg_region_of_inner_loop_only() {
    // Building the CFG of just an inner loop statement scopes the search
    // region (used by the per-loop single-indexed analyses).
    let p = program(
        "program t
         integer i, j
         real x(10)
         do i = 1, 3
           do j = 1, 4
             x(j) = i
           enddo
         enddo
         end",
    );
    let inner = p
        .stmts_in(&p.procedure(p.main()).body)
        .into_iter()
        .filter(|s| p.stmt(*s).kind.is_loop())
        .nth(1)
        .unwrap();
    let cfg = Cfg::build(&p, std::slice::from_ref(&inner));
    let heads = cfg.nodes_where(|k| matches!(k, CfgNodeKind::LoopHead(_)));
    assert_eq!(heads.len(), 1, "only the inner loop's head is present");
}
