//! The hierarchical control graph (HCG) of §3.2.1.
//!
//! Each statement, loop, and procedure is represented by a node; each
//! loop body and procedure body gets a *section* with a single entry and
//! a single exit node. Back edges are deliberately deleted (a loop is a
//! single node in its parent section, and its body section is acyclic),
//! so every section graph is a DAG — the property that makes the
//! reverse-topological priority worklist of `QuerySolver` (Fig. 5) and
//! the backward summarization of Fig. 9 well-defined.

use irr_frontend::{ProcId, Program, StmtId, StmtKind};
use std::collections::HashMap;
use std::fmt;

/// Identifier of an HCG node.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct HcgNodeId(pub u32);

impl HcgNodeId {
    /// Index into the node arena.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for HcgNodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "h{}", self.0)
    }
}

/// Identifier of a section (a loop body or procedure body).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct SectionId(pub u32);

impl SectionId {
    /// Index into the section arena.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// What an HCG node represents (the five node classes of Fig. 7).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum HcgNodeKind {
    /// Section entry.
    Entry(SectionId),
    /// Section exit.
    Exit(SectionId),
    /// A simple statement — "otherwise" (case 5).
    Simple(StmtId),
    /// An `if` condition with the two arms re-joining at `Join`.
    Branch(StmtId),
    /// The join after an `if`.
    Join(StmtId),
    /// A whole loop (cases 1 and 2); the body is `body`.
    Loop { stmt: StmtId, body: SectionId },
    /// A `call` statement (case 3).
    Call { stmt: StmtId, callee: ProcId },
}

impl HcgNodeKind {
    /// The statement this node was derived from, if any.
    pub fn stmt(&self) -> Option<StmtId> {
        match self {
            HcgNodeKind::Entry(_) | HcgNodeKind::Exit(_) => None,
            HcgNodeKind::Simple(s)
            | HcgNodeKind::Branch(s)
            | HcgNodeKind::Join(s)
            | HcgNodeKind::Loop { stmt: s, .. }
            | HcgNodeKind::Call { stmt: s, .. } => Some(*s),
        }
    }
}

/// Why a section exists.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SectionKind {
    /// The body of a procedure.
    ProcBody(ProcId),
    /// The body of a loop statement.
    LoopBody(StmtId),
}

/// One section: an acyclic single-entry/single-exit graph.
#[derive(Clone, Debug)]
pub struct SectionInfo {
    /// What the section represents.
    pub kind: SectionKind,
    /// The entry node.
    pub entry: HcgNodeId,
    /// The exit node.
    pub exit: HcgNodeId,
    /// All nodes of the section in topological order (entry first).
    pub topo_order: Vec<HcgNodeId>,
}

/// The hierarchical control graph of a whole program.
#[derive(Clone, Debug)]
pub struct Hcg {
    kinds: Vec<HcgNodeKind>,
    section_of: Vec<SectionId>,
    succs: Vec<Vec<HcgNodeId>>,
    preds: Vec<Vec<HcgNodeId>>,
    sections: Vec<SectionInfo>,
    proc_sections: Vec<SectionId>,
    loop_sections: HashMap<StmtId, SectionId>,
    stmt_nodes: HashMap<StmtId, HcgNodeId>,
    call_sites: HashMap<ProcId, Vec<HcgNodeId>>,
    /// Deduplicated direct callees of each procedure, in call order —
    /// the call-graph edges the bottom-up summary fixpoint walks.
    calls_from: Vec<Vec<ProcId>>,
    /// Topological index of each node within its section.
    topo_index: Vec<u32>,
}

impl Hcg {
    /// Builds the HCG for every procedure of `program`.
    pub fn build(program: &Program) -> Hcg {
        let mut hcg = Hcg {
            kinds: Vec::new(),
            section_of: Vec::new(),
            succs: Vec::new(),
            preds: Vec::new(),
            sections: Vec::new(),
            proc_sections: Vec::new(),
            loop_sections: HashMap::new(),
            stmt_nodes: HashMap::new(),
            call_sites: HashMap::new(),
            calls_from: vec![Vec::new(); program.procedures.len()],
            topo_index: Vec::new(),
        };
        for (i, proc) in program.procedures.iter().enumerate() {
            let pid = ProcId(i as u32);
            let sec = hcg.build_section(program, pid, SectionKind::ProcBody(pid), &proc.body);
            hcg.proc_sections.push(sec);
        }
        hcg.compute_topo();
        hcg
    }

    fn add_node(&mut self, kind: HcgNodeKind, sec: SectionId) -> HcgNodeId {
        let id = HcgNodeId(self.kinds.len() as u32);
        self.kinds.push(kind);
        self.section_of.push(sec);
        self.succs.push(Vec::new());
        self.preds.push(Vec::new());
        self.topo_index.push(0);
        id
    }

    fn add_edge(&mut self, from: HcgNodeId, to: HcgNodeId) {
        if !self.succs[from.index()].contains(&to) {
            self.succs[from.index()].push(to);
            self.preds[to.index()].push(from);
        }
    }

    fn build_section(
        &mut self,
        program: &Program,
        pid: ProcId,
        kind: SectionKind,
        body: &[StmtId],
    ) -> SectionId {
        let sec = SectionId(self.sections.len() as u32);
        // Reserve the slot so nested sections get later ids.
        self.sections.push(SectionInfo {
            kind,
            entry: HcgNodeId(0),
            exit: HcgNodeId(0),
            topo_order: Vec::new(),
        });
        let entry = self.add_node(HcgNodeKind::Entry(sec), sec);
        let exit = self.add_node(HcgNodeKind::Exit(sec), sec);
        let mut cur = entry;
        for &s in body {
            cur = self.build_stmt(program, pid, sec, cur, s);
        }
        self.add_edge(cur, exit);
        self.sections[sec.index()].entry = entry;
        self.sections[sec.index()].exit = exit;
        if let SectionKind::LoopBody(stmt) = kind {
            self.loop_sections.insert(stmt, sec);
        }
        sec
    }

    /// Adds nodes for `s` after `prev`; returns the node control flows
    /// out of.
    fn build_stmt(
        &mut self,
        program: &Program,
        pid: ProcId,
        sec: SectionId,
        prev: HcgNodeId,
        s: StmtId,
    ) -> HcgNodeId {
        match &program.stmt(s).kind {
            StmtKind::Assign { .. } | StmtKind::Print { .. } | StmtKind::Return => {
                let n = self.add_node(HcgNodeKind::Simple(s), sec);
                self.stmt_nodes.insert(s, n);
                self.add_edge(prev, n);
                n
            }
            StmtKind::Call { proc } => {
                let n = self.add_node(
                    HcgNodeKind::Call {
                        stmt: s,
                        callee: *proc,
                    },
                    sec,
                );
                self.stmt_nodes.insert(s, n);
                self.call_sites.entry(*proc).or_default().push(n);
                if !self.calls_from[pid.index()].contains(proc) {
                    self.calls_from[pid.index()].push(*proc);
                }
                self.add_edge(prev, n);
                n
            }
            StmtKind::Do { body, .. } | StmtKind::While { body, .. } => {
                let body = body.clone();
                let body_sec = self.build_section(program, pid, SectionKind::LoopBody(s), &body);
                let n = self.add_node(
                    HcgNodeKind::Loop {
                        stmt: s,
                        body: body_sec,
                    },
                    sec,
                );
                self.stmt_nodes.insert(s, n);
                self.add_edge(prev, n);
                n
            }
            StmtKind::If {
                then_body,
                else_body,
                ..
            } => {
                let branch = self.add_node(HcgNodeKind::Branch(s), sec);
                self.stmt_nodes.insert(s, branch);
                self.add_edge(prev, branch);
                let join = self.add_node(HcgNodeKind::Join(s), sec);
                let (then_body, else_body) = (then_body.clone(), else_body.clone());
                let mut cur = branch;
                for &t in &then_body {
                    cur = self.build_stmt(program, pid, sec, cur, t);
                }
                self.add_edge(cur, join);
                let mut cur = branch;
                for &t in &else_body {
                    cur = self.build_stmt(program, pid, sec, cur, t);
                }
                self.add_edge(cur, join);
                join
            }
        }
    }

    fn compute_topo(&mut self) {
        for si in 0..self.sections.len() {
            let sec = SectionId(si as u32);
            let entry = self.sections[si].entry;
            // Kahn's algorithm restricted to this section's nodes.
            let nodes: Vec<HcgNodeId> = (0..self.kinds.len() as u32)
                .map(HcgNodeId)
                .filter(|n| self.section_of[n.index()] == sec)
                .collect();
            let mut indeg: HashMap<HcgNodeId, usize> = nodes
                .iter()
                .map(|n| (*n, self.preds[n.index()].len()))
                .collect();
            let mut order = Vec::with_capacity(nodes.len());
            let mut ready = vec![entry];
            while let Some(n) = ready.pop() {
                order.push(n);
                for &s in &self.succs[n.index()] {
                    let d = indeg.get_mut(&s).expect("successor within section");
                    *d -= 1;
                    if *d == 0 {
                        ready.push(s);
                    }
                }
            }
            debug_assert_eq!(order.len(), nodes.len(), "section graph must be a DAG");
            for (i, n) in order.iter().enumerate() {
                self.topo_index[n.index()] = i as u32;
            }
            self.sections[si].topo_order = order;
        }
    }

    // ----- accessors -------------------------------------------------------

    /// Node kind.
    pub fn kind(&self, n: HcgNodeId) -> HcgNodeKind {
        self.kinds[n.index()]
    }

    /// The section a node belongs to.
    pub fn section_of(&self, n: HcgNodeId) -> SectionId {
        self.section_of[n.index()]
    }

    /// Section info.
    pub fn section(&self, s: SectionId) -> &SectionInfo {
        &self.sections[s.index()]
    }

    /// The section for a procedure body.
    pub fn proc_section(&self, p: ProcId) -> SectionId {
        self.proc_sections[p.index()]
    }

    /// The section for a loop body, if `stmt` is a loop.
    pub fn loop_section(&self, stmt: StmtId) -> Option<SectionId> {
        self.loop_sections.get(&stmt).copied()
    }

    /// The HCG node representing a statement (for loops, the `Loop` node;
    /// for ifs, the `Branch` node).
    pub fn node_of_stmt(&self, stmt: StmtId) -> Option<HcgNodeId> {
        self.stmt_nodes.get(&stmt).copied()
    }

    /// Successors within the section.
    pub fn succs(&self, n: HcgNodeId) -> &[HcgNodeId] {
        &self.succs[n.index()]
    }

    /// Predecessors within the section.
    pub fn preds(&self, n: HcgNodeId) -> &[HcgNodeId] {
        &self.preds[n.index()]
    }

    /// Every `call` node that targets `p`.
    pub fn call_sites(&self, p: ProcId) -> &[HcgNodeId] {
        self.call_sites.get(&p).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The deduplicated direct callees of `p`, in first-call order.
    pub fn callees(&self, p: ProcId) -> &[ProcId] {
        self.calls_from
            .get(p.index())
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Procedures that participate in a call-graph cycle (including
    /// direct self-recursion): any procedure reachable from one of its
    /// own callees. Interprocedural summaries for these must be
    /// conservative — there is no bottom-up order to compose them in.
    pub fn recursive_procs(&self) -> Vec<ProcId> {
        let n = self.calls_from.len();
        let mut out = Vec::new();
        for p in 0..n {
            let start = ProcId(p as u32);
            let mut seen: Vec<ProcId> = Vec::new();
            let mut work: Vec<ProcId> = self.callees(start).to_vec();
            let mut cyclic = false;
            while let Some(q) = work.pop() {
                if q == start {
                    cyclic = true;
                    break;
                }
                if seen.contains(&q) {
                    continue;
                }
                seen.push(q);
                work.extend_from_slice(self.callees(q));
            }
            if cyclic {
                out.push(start);
            }
        }
        out
    }

    /// A callees-first (bottom-up) traversal order of the call graph:
    /// every procedure appears after all procedures it calls, except
    /// across cycle back edges (cycle members are conservative anyway —
    /// see [`Hcg::recursive_procs`]). Every procedure appears exactly
    /// once, reachable from a call site or not.
    pub fn bottom_up_procs(&self) -> Vec<ProcId> {
        let n = self.calls_from.len();
        let mut order = Vec::with_capacity(n);
        let mut state = vec![0u8; n]; // 0 = unvisited, 1 = on stack, 2 = done
        for root in 0..n {
            if state[root] != 0 {
                continue;
            }
            // Iterative post-order DFS.
            let mut stack: Vec<(ProcId, usize)> = vec![(ProcId(root as u32), 0)];
            state[root] = 1;
            while let Some((p, child)) = stack.pop() {
                let callees = self.callees(p);
                if child < callees.len() {
                    stack.push((p, child + 1));
                    let q = callees[child];
                    if state[q.index()] == 0 {
                        state[q.index()] = 1;
                        stack.push((q, 0));
                    }
                } else {
                    state[p.index()] = 2;
                    order.push(p);
                }
            }
        }
        order
    }

    /// Topological index of `n` within its section (entry is 0). The
    /// *reverse* topological priority of `QuerySolver`'s worklist is
    /// "larger index first".
    pub fn topo_index(&self, n: HcgNodeId) -> u32 {
        self.topo_index[n.index()]
    }

    /// Number of nodes in the whole HCG.
    pub fn len(&self) -> usize {
        self.kinds.len()
    }

    /// Whether the HCG is empty.
    pub fn is_empty(&self) -> bool {
        self.kinds.is_empty()
    }

    /// Whether `a` dominates `b` within their (shared) section: every
    /// path from the section entry to `b` passes through `a`.
    pub fn dominates(&self, a: HcgNodeId, b: HcgNodeId) -> bool {
        let sec = self.section_of(a);
        if sec != self.section_of(b) {
            return false;
        }
        if a == b {
            return true;
        }
        let entry = self.sections[sec.index()].entry;
        if b == entry {
            return false;
        }
        // b reachable from entry avoiding a?
        let mut visited = vec![false; self.kinds.len()];
        let mut stack = vec![entry];
        if entry == a {
            return true;
        }
        visited[entry.index()] = true;
        while let Some(n) = stack.pop() {
            for &s in &self.succs[n.index()] {
                if s == a || visited[s.index()] {
                    continue;
                }
                if s == b {
                    return false;
                }
                visited[s.index()] = true;
                stack.push(s);
            }
        }
        true
    }

    /// Whether `n` dominates its section's exit (Fig. 9 line 20).
    pub fn dominates_exit(&self, n: HcgNodeId) -> bool {
        let sec = self.section_of(n);
        self.dominates(n, self.sections[sec.index()].exit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use irr_frontend::parse_program;

    fn build(src: &str) -> (Program, Hcg) {
        let p = parse_program(src).unwrap();
        let h = Hcg::build(&p);
        (p, h)
    }
    use irr_frontend::Program;

    #[test]
    fn sections_per_procedure_and_loop() {
        let (p, h) = build(
            "program t
             integer i
             do i = 1, 3
               x = 1
             enddo
             call s
             end
             subroutine s
             y = 2
             end",
        );
        // main body + loop body + subroutine body.
        assert_eq!(h.sections.len(), 3);
        let main_sec = h.proc_section(p.main());
        assert!(matches!(h.section(main_sec).kind, SectionKind::ProcBody(_)));
        let sub = p.find_procedure("s").unwrap();
        assert_eq!(h.call_sites(sub).len(), 1);
    }

    #[test]
    fn loop_is_single_node_in_parent() {
        let (p, h) = build(
            "program t
             integer i
             a = 1
             do i = 1, 3
               x = 1
               y = 2
             enddo
             b = 2
             end",
        );
        let main_sec = h.proc_section(p.main());
        let order = &h.section(main_sec).topo_order;
        // entry, a=1, loop, b=2, exit.
        assert_eq!(order.len(), 5);
        let loop_nodes: Vec<_> = order
            .iter()
            .filter(|n| matches!(h.kind(**n), HcgNodeKind::Loop { .. }))
            .collect();
        assert_eq!(loop_nodes.len(), 1);
    }

    #[test]
    fn topo_order_respects_edges() {
        let (p, h) = build(
            "program t
             integer q
             a = 1
             if (q > 0) then
               b = 2
             else
               c = 3
             endif
             d = 4
             end",
        );
        let main_sec = h.proc_section(p.main());
        for n in &h.section(main_sec).topo_order {
            for s in h.succs(*n) {
                assert!(
                    h.topo_index(*n) < h.topo_index(*s),
                    "edge {n} -> {s} violates topo order"
                );
            }
        }
    }

    #[test]
    fn branch_and_join_wrap_arms() {
        let (p, h) = build(
            "program t
             integer q
             if (q > 0) then
               b = 2
             endif
             end",
        );
        let main_sec = h.proc_section(p.main());
        let branch = h
            .section(main_sec)
            .topo_order
            .iter()
            .copied()
            .find(|n| matches!(h.kind(*n), HcgNodeKind::Branch(_)))
            .unwrap();
        // Branch has two successors (then-arm and the join directly).
        assert_eq!(h.succs(branch).len(), 2);
    }

    #[test]
    fn dominators() {
        let (p, h) = build(
            "program t
             integer q
             a = 1
             if (q > 0) then
               b = 2
             endif
             c = 3
             end",
        );
        let main_sec = h.proc_section(p.main());
        let order = &h.section(main_sec).topo_order;
        let simple: Vec<_> = order
            .iter()
            .copied()
            .filter(|n| matches!(h.kind(*n), HcgNodeKind::Simple(_)))
            .collect();
        let (a, b, c) = (simple[0], simple[1], simple[2]);
        assert!(h.dominates(a, c));
        assert!(h.dominates(a, b));
        assert!(!h.dominates(b, c), "b is conditional");
        assert!(h.dominates_exit(a));
        assert!(!h.dominates_exit(b));
        assert!(h.dominates_exit(c));
        // Entry dominates everything.
        let entry = h.section(main_sec).entry;
        assert!(h.dominates(entry, c));
    }

    #[test]
    fn nested_loops_nest_sections() {
        let (p, h) = build(
            "program t
             integer i, j
             do i = 1, 3
               do j = 1, 2
                 x = 1
               enddo
             enddo
             end",
        );
        let main_sec = h.proc_section(p.main());
        let outer = h
            .section(main_sec)
            .topo_order
            .iter()
            .copied()
            .find_map(|n| match h.kind(n) {
                HcgNodeKind::Loop { body, .. } => Some(body),
                _ => None,
            })
            .unwrap();
        let inner = h
            .section(outer)
            .topo_order
            .iter()
            .copied()
            .find_map(|n| match h.kind(n) {
                HcgNodeKind::Loop { body, .. } => Some(body),
                _ => None,
            });
        assert!(inner.is_some());
        let _ = p;
    }

    #[test]
    fn node_of_stmt_maps_back() {
        let (p, h) = build("program t\na = 1\nend\n");
        let body = &p.procedure(p.main()).body;
        let n = h.node_of_stmt(body[0]).unwrap();
        assert_eq!(h.kind(n).stmt(), Some(body[0]));
    }

    #[test]
    fn call_graph_edges_and_bottom_up_order() {
        let (p, h) = build(
            "program t
             call a
             call b
             end
             subroutine a
             call c
             end
             subroutine b
             call c
             end
             subroutine c
             x = 1
             end",
        );
        let (a, b, c) = (
            p.find_procedure("a").unwrap(),
            p.find_procedure("b").unwrap(),
            p.find_procedure("c").unwrap(),
        );
        assert_eq!(h.callees(p.main()), &[a, b]);
        assert_eq!(h.callees(a), &[c]);
        assert!(h.recursive_procs().is_empty());
        let order = h.bottom_up_procs();
        assert_eq!(order.len(), p.procedures.len());
        let pos = |q: ProcId| order.iter().position(|x| *x == q).unwrap();
        assert!(pos(c) < pos(a));
        assert!(pos(c) < pos(b));
        assert!(pos(a) < pos(p.main()));
    }

    #[test]
    fn mutual_recursion_is_detected() {
        let (p, h) = build(
            "program t
             call a
             end
             subroutine a
             call b
             end
             subroutine b
             call a
             end
             subroutine leaf
             y = 1
             end",
        );
        let rec = h.recursive_procs();
        assert!(rec.contains(&p.find_procedure("a").unwrap()));
        assert!(rec.contains(&p.find_procedure("b").unwrap()));
        assert!(!rec.contains(&p.main()), "main calls a cycle, is not in it");
        assert!(!rec.contains(&p.find_procedure("leaf").unwrap()));
        // Unreachable procedures still appear in the bottom-up order.
        assert_eq!(h.bottom_up_procs().len(), p.procedures.len());
    }
}
