//! Control-flow graphs for the irregular-access analyses.
//!
//! Two graph views are provided, matching the two analyses of the paper:
//!
//! - [`Cfg`] — a flat, *cyclic* control-flow graph of a region (loops keep
//!   their back edges). This is what the bounded depth-first search
//!   ([`bdfs`], Fig. 2 of the paper) runs on for single-indexed access
//!   analysis: "is there a path from one `p = p + 1` to another that does
//!   not write `x(p)`?" is a question about *paths including the loop
//!   back edge*.
//! - [`Hcg`] — the hierarchical control graph of §3.2.1: each loop body
//!   and procedure body is a *section* with a single entry and exit; back
//!   edges are deleted, so every section is a DAG. Reverse query
//!   propagation, reverse-topological worklists, and dominator
//!   computations all operate on sections.

pub mod bdfs;
pub mod cfg;
pub mod hcg;

pub use bdfs::{bounded_dfs, BdfsOutcome};
pub use cfg::{Cfg, CfgNodeId, CfgNodeKind};
pub use hcg::{Hcg, HcgNodeId, HcgNodeKind, SectionId, SectionInfo, SectionKind};
