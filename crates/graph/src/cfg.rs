//! Flat (cyclic) control-flow graph of a statement region.

use irr_frontend::{Program, StmtId, StmtKind};
use std::collections::HashSet;
use std::fmt;

/// Identifier of a node in a [`Cfg`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct CfgNodeId(pub u32);

impl CfgNodeId {
    /// Index into the node arena.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for CfgNodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// What a CFG node represents.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CfgNodeKind {
    /// Unique region entry.
    Entry,
    /// Unique region exit.
    Exit,
    /// A simple statement (assignment, call, print, return).
    Stmt(StmtId),
    /// The header of a `do` or `while`: evaluates bounds/condition; one
    /// successor enters the body, the other leaves the loop.
    LoopHead(StmtId),
    /// The latch of a loop: jumps back to the header (the back edge).
    Latch(StmtId),
    /// The condition of an `if`.
    Branch(StmtId),
    /// The join point after an `if`.
    Join(StmtId),
}

impl CfgNodeKind {
    /// The statement this node was derived from, if any.
    pub fn stmt(&self) -> Option<StmtId> {
        match self {
            CfgNodeKind::Entry | CfgNodeKind::Exit => None,
            CfgNodeKind::Stmt(s)
            | CfgNodeKind::LoopHead(s)
            | CfgNodeKind::Latch(s)
            | CfgNodeKind::Branch(s)
            | CfgNodeKind::Join(s) => Some(*s),
        }
    }
}

/// A flat control-flow graph over a region of statements. Back edges are
/// present (and identifiable via [`Cfg::is_back_edge`]).
#[derive(Clone, Debug)]
pub struct Cfg {
    kinds: Vec<CfgNodeKind>,
    succs: Vec<Vec<CfgNodeId>>,
    preds: Vec<Vec<CfgNodeId>>,
    back_edges: HashSet<(CfgNodeId, CfgNodeId)>,
}

impl Cfg {
    /// Builds the CFG of a statement region (e.g. a procedure body or a
    /// single loop statement). Node 0 is the entry, node 1 the exit.
    pub fn build(program: &Program, body: &[StmtId]) -> Cfg {
        let mut b = Builder {
            program,
            cfg: Cfg {
                kinds: vec![CfgNodeKind::Entry, CfgNodeKind::Exit],
                succs: vec![Vec::new(), Vec::new()],
                preds: vec![Vec::new(), Vec::new()],
                back_edges: HashSet::new(),
            },
        };
        let first = b.build_seq(body, Cfg::EXIT);
        b.cfg.add_edge(Cfg::ENTRY, first);
        b.cfg
    }

    /// The entry node.
    pub const ENTRY: CfgNodeId = CfgNodeId(0);
    /// The exit node.
    pub const EXIT: CfgNodeId = CfgNodeId(1);

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.kinds.len()
    }

    /// Whether the graph has only entry and exit.
    pub fn is_empty(&self) -> bool {
        self.kinds.len() <= 2
    }

    /// The kind of node `n`.
    pub fn kind(&self, n: CfgNodeId) -> CfgNodeKind {
        self.kinds[n.index()]
    }

    /// Successors of `n` (including back edges).
    pub fn succs(&self, n: CfgNodeId) -> &[CfgNodeId] {
        &self.succs[n.index()]
    }

    /// Predecessors of `n` (including back edges).
    pub fn preds(&self, n: CfgNodeId) -> &[CfgNodeId] {
        &self.preds[n.index()]
    }

    /// Whether `(from, to)` is a loop back edge.
    pub fn is_back_edge(&self, from: CfgNodeId, to: CfgNodeId) -> bool {
        self.back_edges.contains(&(from, to))
    }

    /// All node ids.
    pub fn nodes(&self) -> impl Iterator<Item = CfgNodeId> {
        (0..self.kinds.len() as u32).map(CfgNodeId)
    }

    /// Nodes whose kind satisfies `pred`.
    pub fn nodes_where(&self, mut pred: impl FnMut(CfgNodeKind) -> bool) -> Vec<CfgNodeId> {
        self.nodes().filter(|n| pred(self.kind(*n))).collect()
    }

    fn add_node(&mut self, kind: CfgNodeKind) -> CfgNodeId {
        let id = CfgNodeId(self.kinds.len() as u32);
        self.kinds.push(kind);
        self.succs.push(Vec::new());
        self.preds.push(Vec::new());
        id
    }

    fn add_edge(&mut self, from: CfgNodeId, to: CfgNodeId) {
        if !self.succs[from.index()].contains(&to) {
            self.succs[from.index()].push(to);
            self.preds[to.index()].push(from);
        }
    }

    fn add_back_edge(&mut self, from: CfgNodeId, to: CfgNodeId) {
        self.add_edge(from, to);
        self.back_edges.insert((from, to));
    }
}

struct Builder<'a> {
    program: &'a Program,
    cfg: Cfg,
}

impl Builder<'_> {
    /// Builds nodes for `body`, wiring the last statement to `after`.
    /// Returns the first node of the sequence (or `after` if empty).
    fn build_seq(&mut self, body: &[StmtId], after: CfgNodeId) -> CfgNodeId {
        let mut next = after;
        for &s in body.iter().rev() {
            next = self.build_stmt(s, next);
        }
        next
    }

    /// Builds nodes for one statement; control continues at `after`.
    /// Returns the statement's first node.
    fn build_stmt(&mut self, s: StmtId, after: CfgNodeId) -> CfgNodeId {
        match &self.program.stmt(s).kind {
            StmtKind::Assign { .. }
            | StmtKind::Call { .. }
            | StmtKind::Print { .. }
            | StmtKind::Return => {
                let n = self.cfg.add_node(CfgNodeKind::Stmt(s));
                self.cfg.add_edge(n, after);
                n
            }
            StmtKind::Do { body, .. } | StmtKind::While { body, .. } => {
                let head = self.cfg.add_node(CfgNodeKind::LoopHead(s));
                let latch = self.cfg.add_node(CfgNodeKind::Latch(s));
                let body = body.clone();
                let first = self.build_seq(&body, latch);
                self.cfg.add_edge(head, first);
                self.cfg.add_edge(head, after);
                self.cfg.add_back_edge(latch, head);
                head
            }
            StmtKind::If {
                then_body,
                else_body,
                ..
            } => {
                let branch = self.cfg.add_node(CfgNodeKind::Branch(s));
                let join = self.cfg.add_node(CfgNodeKind::Join(s));
                self.cfg.add_edge(join, after);
                let (then_body, else_body) = (then_body.clone(), else_body.clone());
                let t = self.build_seq(&then_body, join);
                self.cfg.add_edge(branch, t);
                let e = self.build_seq(&else_body, join);
                self.cfg.add_edge(branch, e);
                branch
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use irr_frontend::parse_program;

    fn cfg_of(src: &str) -> (Program, Cfg) {
        let p = parse_program(src).unwrap();
        let body = p.procedure(p.main()).body.clone();
        let cfg = Cfg::build(&p, &body);
        (p, cfg)
    }

    #[test]
    fn straight_line() {
        let (_, cfg) = cfg_of("program t\nx = 1\ny = 2\nend\n");
        // entry, exit, two stmts.
        assert_eq!(cfg.len(), 4);
        let first = cfg.succs(Cfg::ENTRY)[0];
        let second = cfg.succs(first)[0];
        assert_eq!(cfg.succs(second), &[Cfg::EXIT]);
        assert!(cfg.back_edges.is_empty());
    }

    #[test]
    fn loop_has_back_edge() {
        let (_, cfg) = cfg_of("program t\ninteger i\ndo i = 1, 3\nx = 1\nenddo\nend\n");
        let heads = cfg.nodes_where(|k| matches!(k, CfgNodeKind::LoopHead(_)));
        let latches = cfg.nodes_where(|k| matches!(k, CfgNodeKind::Latch(_)));
        assert_eq!(heads.len(), 1);
        assert_eq!(latches.len(), 1);
        assert!(cfg.is_back_edge(latches[0], heads[0]));
        // Loop head exits to EXIT and enters the body.
        assert_eq!(cfg.succs(heads[0]).len(), 2);
    }

    #[test]
    fn if_has_diamond() {
        let (_, cfg) =
            cfg_of("program t\ninteger a\nif (a > 0) then\nx = 1\nelse\nx = 2\nendif\nend\n");
        let branches = cfg.nodes_where(|k| matches!(k, CfgNodeKind::Branch(_)));
        let joins = cfg.nodes_where(|k| matches!(k, CfgNodeKind::Join(_)));
        assert_eq!(branches.len(), 1);
        assert_eq!(joins.len(), 1);
        assert_eq!(cfg.succs(branches[0]).len(), 2);
        assert_eq!(cfg.preds(joins[0]).len(), 2);
    }

    #[test]
    fn empty_else_branch_goes_to_join() {
        let (_, cfg) = cfg_of("program t\ninteger a\nif (a > 0) then\nx = 1\nendif\nend\n");
        let branches = cfg.nodes_where(|k| matches!(k, CfgNodeKind::Branch(_)));
        let joins = cfg.nodes_where(|k| matches!(k, CfgNodeKind::Join(_)));
        assert!(cfg.succs(branches[0]).contains(&joins[0]));
    }

    #[test]
    fn while_loop_wraps_around() {
        let (p, cfg) = cfg_of("program t\ninteger p\nwhile (p < 5)\np = p + 1\nendwhile\nend\n");
        let heads = cfg.nodes_where(|k| matches!(k, CfgNodeKind::LoopHead(_)));
        // The increment should be reachable from itself via the back edge.
        let stmts = cfg.nodes_where(|k| matches!(k, CfgNodeKind::Stmt(_)));
        assert_eq!(stmts.len(), 1);
        let inc = stmts[0];
        // inc -> latch -> head -> inc.
        let mut reach = vec![false; cfg.len()];
        let mut stack = vec![inc];
        let mut looped = false;
        while let Some(n) = stack.pop() {
            for &s in cfg.succs(n) {
                if s == inc {
                    looped = true;
                }
                if !reach[s.index()] {
                    reach[s.index()] = true;
                    stack.push(s);
                }
            }
        }
        assert!(looped, "increment must reach itself through the back edge");
        assert_eq!(heads.len(), 1);
        let _ = p;
    }

    #[test]
    fn single_loop_region() {
        // Cfg::build over just the loop statement gives a region whose
        // entry goes straight to the loop head.
        let p = parse_program("program t\ninteger i\ndo i = 1, 3\nx = 2\nenddo\nend\n").unwrap();
        let body = p.procedure(p.main()).body.clone();
        let cfg = Cfg::build(&p, &body[..1]);
        let first = cfg.succs(Cfg::ENTRY)[0];
        assert!(matches!(cfg.kind(first), CfgNodeKind::LoopHead(_)));
    }

    #[test]
    fn nested_loops() {
        let (_, cfg) = cfg_of(
            "program t
             integer i, j
             do i = 1, 3
               do j = 1, 3
                 x = 1
               enddo
             enddo
             end",
        );
        let heads = cfg.nodes_where(|k| matches!(k, CfgNodeKind::LoopHead(_)));
        assert_eq!(heads.len(), 2);
        assert_eq!(cfg.back_edges.len(), 2);
    }
}
