//! Bounded depth-first search (Fig. 2 of the paper).
//!
//! `bDFS` explores a control-flow graph from a start node. Two predicates
//! steer it:
//!
//! - `fbound(n)` — when true for the *current* node, its successors are
//!   not explored (the node is a search boundary);
//! - `ffailed(n)` — when true for an *adjacent* node, the whole search
//!   terminates immediately with [`BdfsOutcome::Failed`].
//!
//! The single-indexed access analyses of §2 are built entirely from runs
//! of this search with different predicate pairs (e.g. "from every
//! `p = p + 1`, a write of `x(p)` must be reached before another
//! `p = p + 1`").

use crate::cfg::{Cfg, CfgNodeId};

/// Result of a bounded DFS.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BdfsOutcome {
    /// No failing node was adjacent to any explored path.
    Succeeded,
    /// Some path reached a node with `ffailed(n) == true` before a
    /// boundary.
    Failed,
}

/// Runs the bounded DFS of Fig. 2 starting at `start`.
///
/// Exactly as in the paper, the predicates are *not* evaluated on
/// `start` itself: `ffailed` is checked on nodes adjacent to the current
/// one, and `fbound` is checked when a node is expanded. A path that
/// cycles back to `start` therefore *does* check `ffailed(start)`.
pub fn bounded_dfs(
    cfg: &Cfg,
    start: CfgNodeId,
    fbound: impl Fn(CfgNodeId) -> bool,
    ffailed: impl Fn(CfgNodeId) -> bool,
) -> BdfsOutcome {
    let mut visited = vec![false; cfg.len()];
    visited[start.index()] = true;
    // Iterative version of the recursive bDFS(u) in Fig. 2.
    let mut stack = vec![start];
    // The start node's expansion is unconditional only if it is not a
    // boundary itself.
    while let Some(u) = stack.pop() {
        // Fig. 2 checks fbound on every visited node, including the
        // start; a bounded node's successors are not explored.
        if fbound(u) {
            continue;
        }
        for &v in cfg.succs(u) {
            if ffailed(v) {
                return BdfsOutcome::Failed;
            }
            if !visited[v.index()] {
                visited[v.index()] = true;
                stack.push(v);
            }
        }
    }
    BdfsOutcome::Succeeded
}

/// Runs [`bounded_dfs`] from every node in `starts`, failing if any run
/// fails.
pub fn bounded_dfs_all(
    cfg: &Cfg,
    starts: &[CfgNodeId],
    fbound: impl Fn(CfgNodeId) -> bool,
    ffailed: impl Fn(CfgNodeId) -> bool,
) -> BdfsOutcome {
    for &s in starts {
        if bounded_dfs(cfg, s, &fbound, &ffailed) == BdfsOutcome::Failed {
            return BdfsOutcome::Failed;
        }
    }
    BdfsOutcome::Succeeded
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::CfgNodeKind;
    use irr_frontend::{parse_program, Program, StmtKind};

    fn setup(src: &str) -> (Program, Cfg) {
        let p = parse_program(src).unwrap();
        let body = p.procedure(p.main()).body.clone();
        let cfg = Cfg::build(&p, &body);
        (p, cfg)
    }

    /// Finds the CFG node for the k-th assignment statement.
    fn nth_assign(p: &Program, cfg: &Cfg, k: usize) -> CfgNodeId {
        let mut assigns: Vec<CfgNodeId> = cfg
            .nodes_where(|kind| matches!(kind, CfgNodeKind::Stmt(_)))
            .into_iter()
            .filter(|n| {
                cfg.kind(*n)
                    .stmt()
                    .is_some_and(|s| matches!(p.stmt(s).kind, StmtKind::Assign { .. }))
            })
            .collect();
        assigns.sort_by_key(|n| cfg.kind(*n).stmt().unwrap());
        assigns[k]
    }

    #[test]
    fn straight_line_succeeds_without_failing_nodes() {
        let (p, cfg) = setup("program t\na = 1\nb = 2\nc = 3\nend\n");
        let start = nth_assign(&p, &cfg, 0);
        let out = bounded_dfs(&cfg, start, |_| false, |_| false);
        assert_eq!(out, BdfsOutcome::Succeeded);
    }

    #[test]
    fn fails_when_reaching_failed_node() {
        let (p, cfg) = setup("program t\na = 1\nb = 2\nc = 3\nend\n");
        let start = nth_assign(&p, &cfg, 0);
        let target = nth_assign(&p, &cfg, 2);
        let out = bounded_dfs(&cfg, start, |_| false, |n| n == target);
        assert_eq!(out, BdfsOutcome::Failed);
    }

    #[test]
    fn boundary_blocks_failure() {
        // a=1 ; b=2 ; c=3 — bounding at b prevents reaching c.
        let (p, cfg) = setup("program t\na = 1\nb = 2\nc = 3\nend\n");
        let start = nth_assign(&p, &cfg, 0);
        let bound = nth_assign(&p, &cfg, 1);
        let target = nth_assign(&p, &cfg, 2);
        let out = bounded_dfs(&cfg, start, |n| n == bound, |n| n == target);
        assert_eq!(out, BdfsOutcome::Succeeded);
    }

    #[test]
    fn failure_on_alternate_branch_is_found() {
        // if-diamond: bounding the then-arm does not protect the else-arm.
        let (p, cfg) = setup(
            "program t
             integer q
             a = 1
             if (q > 0) then
               b = 2
             else
               c = 3
             endif
             end",
        );
        let start = nth_assign(&p, &cfg, 0);
        let bound = nth_assign(&p, &cfg, 1); // b = 2
        let target = nth_assign(&p, &cfg, 2); // c = 3
        let out = bounded_dfs(&cfg, start, |n| n == bound, |n| n == target);
        assert_eq!(out, BdfsOutcome::Failed);
    }

    #[test]
    fn cycle_reaches_start_again() {
        // Inside a loop, an unprotected path wraps around and reaches the
        // start node itself.
        let (p, cfg) = setup(
            "program t
             integer i, p
             do i = 1, 9
               p = p + 1
             enddo
             end",
        );
        let start = nth_assign(&p, &cfg, 0);
        // ffailed on the start: reachable through the back edge.
        let out = bounded_dfs(&cfg, start, |_| false, |n| n == start);
        assert_eq!(out, BdfsOutcome::Failed);
    }

    #[test]
    fn bound_between_start_and_cycle_protects() {
        let (p, cfg) = setup(
            "program t
             integer i, p
             real x(100)
             do i = 1, 9
               p = p + 1
               x(p) = 1
             enddo
             end",
        );
        let inc = nth_assign(&p, &cfg, 0);
        let write = nth_assign(&p, &cfg, 1);
        // From p=p+1, every path to another p=p+1 passes the write first.
        let out = bounded_dfs(&cfg, inc, |n| n == write, |n| n == inc);
        assert_eq!(out, BdfsOutcome::Succeeded);
    }

    #[test]
    fn bounded_dfs_all_aggregates() {
        let (p, cfg) = setup("program t\na = 1\nb = 2\nend\n");
        let s0 = nth_assign(&p, &cfg, 0);
        let s1 = nth_assign(&p, &cfg, 1);
        assert_eq!(
            bounded_dfs_all(&cfg, &[s0, s1], |_| false, |_| false),
            BdfsOutcome::Succeeded
        );
        assert_eq!(
            bounded_dfs_all(&cfg, &[s0, s1], |_| false, |n| n == s1),
            BdfsOutcome::Failed
        );
    }
}
