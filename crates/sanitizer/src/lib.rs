//! Dependence sanitizer: shadow-memory audit of every parallel verdict.
//!
//! The compiler's analyses (§2 bounded DFS, §3 array property solver)
//! decide, statically, which loops are safe to run in parallel. This
//! crate is their adversarial referee: it executes compiled programs
//! under a shadow-memory tracer that records the last writer and reader
//! iteration of every array element and scalar a loop touches, derives
//! the concrete loop-carried flow/anti/output dependences each run
//! exhibits (plus observed index-array facts: injectivity, monotonicity,
//! accessed-section bounds), and cross-checks every
//! [`irr_driver::LoopVerdict`]:
//!
//! - a parallel claim contradicted by an observed unexplained dependence
//!   is a **soundness violation**, reported with a minimized concrete
//!   witness (loop label, array, element, writer/reader iterations);
//! - a sequential verdict that never exhibits a dependence across
//!   pristine and randomized inputs is a **precision gap**.
//!
//! See [`shadow`] for the tracer and [`audit`] for the replay/cross-check
//! logic. The `sanitizer-audit` binary runs the audit over the benchmark
//! suite and the paper figures (the CI soundness gate).

pub mod audit;
pub mod shadow;

pub use audit::{
    audit_report, audit_report_seeded, audit_source, figures, AuditConfig, AuditMode, AuditReport,
    Figure, Finding, FindingKind,
};
pub use shadow::{
    guard_passes, AccessFacts, DepKind, DepWitness, DependenceTracer, LoopExecTrace, TraceHandle,
    TraceLog,
};
