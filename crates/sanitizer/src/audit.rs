//! The verdict auditor: replays programs under shadow-memory tracing
//! and cross-checks every [`LoopVerdict`] against the dependences the
//! runs actually exhibited.
//!
//! One audit performs `1 + inputs` interpreter runs of the compiled
//! program: run 0 on pristine (zero-initialized) data, runs `1..=inputs`
//! with every lazily materialized array filled from a per-run SplitMix64
//! stream (see `Interp::set_random_fill`), perturbing data-dependent
//! access streams without changing extents or scalar state. Every `do`
//! loop with a verdict is traced; the [`DependenceTracer`] replays
//! runtime guards at each dynamic entry.
//!
//! Cross-checking applies the paper's own standard:
//!
//! - a [`CompileTimeParallel`](DispatchTier) loop — or a
//!   [`RuntimeGuarded`](DispatchTier) loop on an execution whose guard
//!   *passed* — must not exhibit any loop-carried dependence except on
//!   variables its verdict already exonerates (the induction variable,
//!   privatized scalars/arrays, and recognized reductions). Anything
//!   else is a **soundness violation**, reported with the minimized
//!   witness the tracer kept.
//! - a [`Sequential`](DispatchTier) loop that never exhibits an
//!   unexplained dependence across all sampled inputs (and iterated at
//!   least twice, so a dependence had a chance to manifest) is a
//!   **precision gap**: the verdict may be over-conservative. Loops
//!   blocked by I/O are skipped — no analysis can parallelize a `print`.
//!
//! Soundness mode reports only violations (the CI invariant); full mode
//! adds the precision gaps.

use crate::shadow::{DepWitness, DependenceTracer, TraceLog};
use irr_driver::{
    compile_source, CompilationReport, DispatchTier, DriverOptions, LoopVerdict, StrategyFacts,
};
use irr_exec::{Interp, TraceConfig};
use irr_frontend::{ParseError, StmtId, StmtKind, VarId};
use irr_runtime::Telemetry;
use std::collections::HashSet;

/// What the auditor reports.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AuditMode {
    /// Only soundness violations (parallel verdicts contradicted by an
    /// observed dependence) — the CI-enforced invariant.
    Soundness,
    /// Violations plus precision gaps (sequential verdicts that never
    /// exhibited a dependence).
    Full,
}

/// Audit configuration.
#[derive(Clone, Copy, Debug)]
pub struct AuditConfig {
    /// Seed of the randomized-input stream (run `r` uses `seed + r`).
    pub seed: u64,
    /// Randomized runs in addition to the pristine run 0.
    pub inputs: u32,
    /// What to report.
    pub mode: AuditMode,
}

impl Default for AuditConfig {
    fn default() -> Self {
        AuditConfig {
            seed: 0x1AA,
            inputs: 8,
            mode: AuditMode::Full,
        }
    }
}

/// The kind of an audit finding.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FindingKind {
    /// A parallel verdict contradicted by an observed loop-carried
    /// dependence — executing this loop in parallel can produce wrong
    /// answers.
    SoundnessViolation,
    /// A sequential verdict that never exhibited a dependence on any
    /// sampled input — possibly analyzable, not an error.
    PrecisionGap,
}

/// One audit finding.
#[derive(Clone, Debug)]
pub struct Finding {
    /// Violation or precision gap.
    pub kind: FindingKind,
    /// `PROC/do140`-style loop label from the verdict.
    pub label: String,
    /// The loop statement.
    pub loop_stmt: StmtId,
    /// For violations: the minimized dependence witness (smallest
    /// iteration distance, then smallest element, then earliest source
    /// iteration) among every contradicting dependence observed.
    pub witness: Option<DepWitness>,
    /// The run that exhibited the witness (0 = pristine data).
    pub run: u32,
    /// Human-readable description, rendered with variable names.
    pub detail: String,
}

/// The result of auditing one compiled program.
#[derive(Clone, Debug, Default)]
pub struct AuditReport {
    /// All findings, violations first.
    pub findings: Vec<Finding>,
    /// Loop verdicts cross-checked.
    pub loops_audited: u64,
    /// Dynamic traced loop executions observed across all runs.
    pub executions_traced: u64,
    /// Runs that completed normally.
    pub runs_completed: u32,
    /// Runs aborted by an interpreter error under randomized data
    /// (their traces are discarded).
    pub runs_failed: u32,
    /// Audit counters in the shared runtime telemetry shape.
    pub telemetry: Telemetry,
}

impl AuditReport {
    /// Number of soundness violations.
    pub fn violations(&self) -> usize {
        self.findings
            .iter()
            .filter(|f| f.kind == FindingKind::SoundnessViolation)
            .count()
    }

    /// Number of precision gaps.
    pub fn precision_gaps(&self) -> usize {
        self.findings
            .iter()
            .filter(|f| f.kind == FindingKind::PrecisionGap)
            .count()
    }

    /// Whether every parallel verdict survived the audit.
    pub fn is_sound(&self) -> bool {
        self.violations() == 0
    }
}

/// Audits a compiled program: replays it under tracing on pristine and
/// randomized inputs and cross-checks every loop verdict.
pub fn audit_report(report: &CompilationReport, config: &AuditConfig) -> AuditReport {
    audit_report_seeded(report, config, &[])
}

/// [`audit_report`] with preset arrays installed before every replay —
/// the entry point for generated sparse workloads. Presets are pinned:
/// they materialize before the run, so the randomized fill of runs
/// `1..=inputs` never touches them and every replay sees the same
/// generated index arrays (the data the guards inspect), while arrays
/// the program reads before writing still vary per run.
pub fn audit_report_seeded(
    report: &CompilationReport,
    config: &AuditConfig,
    presets: &[(VarId, irr_exec::ArrayData)],
) -> AuditReport {
    let program = &report.program;
    let audited: Vec<&LoopVerdict> = report
        .verdicts
        .iter()
        .filter(|v| matches!(program.stmt(v.loop_stmt).kind, StmtKind::Do { .. }))
        .collect();
    let traced_loops: HashSet<StmtId> = audited.iter().map(|v| v.loop_stmt).collect();

    let mut out = AuditReport {
        loops_audited: audited.len() as u64,
        ..AuditReport::default()
    };

    // ---- replay: 1 pristine + `inputs` randomized runs ------------------
    let mut logs: Vec<(u32, TraceLog)> = Vec::new();
    for run in 0..=config.inputs {
        let (tracer, handle) = DependenceTracer::from_report(report);
        let mut it = Interp::new(program);
        for (var, data) in presets {
            it.preset_array(*var, data.clone());
        }
        if run > 0 {
            it.set_random_fill(config.seed.wrapping_add(u64::from(run)));
        }
        it.attach_tracer(
            TraceConfig::only(traced_loops.iter().copied()),
            Box::new(tracer),
        );
        match it.run() {
            Ok(_) => {
                out.runs_completed += 1;
                logs.push((run, handle.borrow().clone()));
            }
            Err(_) => out.runs_failed += 1,
        }
    }
    out.executions_traced = logs.iter().map(|(_, l)| l.executions.len() as u64).sum();

    // ---- cross-check every verdict --------------------------------------
    for v in &audited {
        let exonerated = exonerated_vars(program, v);
        // Best contradicting witness per (kind, var) across all runs.
        let mut worst: Option<(DepWitness, u32)> = None;
        let mut unexplained = false;
        let mut max_iterations = 0u64;
        let mut evolution_contradicted: Option<u32> = None;
        for (run, log) in &logs {
            for exec in log.executions_of(v.loop_stmt) {
                max_iterations = max_iterations.max(exec.iterations);
                let held_parallel = match &v.tier {
                    DispatchTier::CompileTimeParallel => true,
                    DispatchTier::RuntimeGuarded(_) => exec.guard_passed == Some(true),
                    DispatchTier::Sequential => false,
                };
                // An evolution-promoted loop replays its retired checks
                // as a synthetic guard: the compile-time proof claims
                // they hold on every reachable input, so one observed
                // failure is a soundness bug even if no dependence
                // happened to manifest this run.
                if matches!(v.tier, DispatchTier::CompileTimeParallel)
                    && !v.retired_checks.is_empty()
                    && exec.guard_passed == Some(false)
                    && evolution_contradicted.is_none()
                {
                    evolution_contradicted = Some(*run);
                }
                for w in &exec.deps {
                    if exonerated.contains(&w.var) {
                        continue;
                    }
                    unexplained = true;
                    if held_parallel && worst.as_ref().is_none_or(|(best, _)| rank(w) < rank(best))
                    {
                        worst = Some((*w, *run));
                    }
                }
            }
        }
        if let Some((w, run)) = worst {
            out.telemetry.audit_violations += 1;
            out.findings.push(Finding {
                kind: FindingKind::SoundnessViolation,
                label: v.label.clone(),
                loop_stmt: v.loop_stmt,
                witness: Some(w),
                run,
                detail: format!(
                    "{}: verdict {}{} contradicted on run {run}: {}",
                    v.label,
                    tier_name(&v.tier),
                    strategy_suffix(&v.strategy_facts),
                    w.describe(program)
                ),
            });
            continue;
        }
        if let Some(run) = evolution_contradicted {
            out.telemetry.audit_violations += 1;
            out.findings.push(Finding {
                kind: FindingKind::SoundnessViolation,
                label: v.label.clone(),
                loop_stmt: v.loop_stmt,
                witness: None,
                run,
                detail: format!(
                    "{}: evolution-retired check failed on live data in run {run}: the \
                     compile-time promotion to {} is unsound for this input",
                    v.label,
                    tier_name(&v.tier),
                ),
            });
            continue;
        }
        // Precision gap: a sequential verdict that never once showed an
        // unexplained dependence, on a loop that iterated enough for one
        // to manifest. I/O-blocked loops can never be parallel.
        let io_blocked = v.blockers.iter().any(|b| b.contains("i/o"));
        if config.mode == AuditMode::Full
            && !v.parallel
            && matches!(v.tier, DispatchTier::Sequential)
            && !io_blocked
            && max_iterations >= 2
            && !unexplained
        {
            out.telemetry.audit_precision_gaps += 1;
            out.findings.push(Finding {
                kind: FindingKind::PrecisionGap,
                label: v.label.clone(),
                loop_stmt: v.loop_stmt,
                witness: None,
                run: 0,
                detail: format!(
                    "{}: sequential verdict, but no dependence observed on {} run(s); \
                     blockers: {}",
                    v.label,
                    out.runs_completed,
                    if v.blockers.is_empty() {
                        "(none recorded)".to_string()
                    } else {
                        v.blockers.join("; ")
                    }
                ),
            });
        }
    }
    out.telemetry.traced_executions = out.executions_traced;
    out.telemetry.verdicts_audited = out.loops_audited;
    out.findings
        .sort_by_key(|f| (f.kind == FindingKind::PrecisionGap, f.label.clone()));
    out
}

/// Compiles `src` and audits the result.
///
/// # Errors
///
/// Returns the parse error if `src` is not a valid program.
pub fn audit_source(
    src: &str,
    opts: DriverOptions,
    config: &AuditConfig,
) -> Result<AuditReport, ParseError> {
    Ok(audit_report(&compile_source(src, opts)?, config))
}

/// The variables whose loop-carried dependences `v` already explains:
/// the induction variable, privatized scalars and arrays, and recognized
/// reductions.
fn exonerated_vars(program: &irr_frontend::Program, v: &LoopVerdict) -> HashSet<VarId> {
    let mut set: HashSet<VarId> = v
        .privatized_scalars
        .iter()
        .copied()
        .chain(v.privatized_arrays.iter().map(|(a, _)| *a))
        .chain(v.reductions.iter().map(|(r, _)| *r))
        .collect();
    if let StmtKind::Do { var, .. } = &program.stmt(v.loop_stmt).kind {
        set.insert(*var);
    }
    set
}

fn rank(w: &DepWitness) -> (u64, usize, i64) {
    (w.distance(), w.element.unwrap_or(usize::MAX), w.src_iter)
}

fn tier_name(tier: &DispatchTier) -> &'static str {
    match tier {
        DispatchTier::CompileTimeParallel => "CompileTimeParallel",
        DispatchTier::RuntimeGuarded(_) => "RuntimeGuarded (guard passed)",
        DispatchTier::Sequential => "Sequential",
    }
}

/// The execution strategy a falsified verdict would have selected, so a
/// violation witness attributes not just the wrong tier but the exact
/// commit path (in-place writes, positional concat) the lie would have
/// driven. Names match [`irr_exec::ExecutionStrategy::name`].
fn strategy_suffix(facts: &StrategyFacts) -> String {
    match facts {
        StrategyFacts::None => String::new(),
        StrategyFacts::DisjointAffine { .. } => " (strategy in-place-disjoint)".to_string(),
        StrategyFacts::ConsecutiveAppend { .. } => " (strategy privatize-concat)".to_string(),
    }
}

/// A named auditable source: the paper's worked figures, embedded so
/// the audit binary and CI can replay them without the test tree.
#[derive(Clone, Copy, Debug)]
pub struct Figure {
    /// Short name (FIG1A, FIG1B, ...).
    pub name: &'static str,
    /// Mini-Fortran source.
    pub source: &'static str,
}

/// The paper's worked examples: Fig. 1(a) linked-list gather, Fig. 1(b)
/// array stack, Fig. 1(c) bounded indirect read, and the mod-permutation
/// kernel exercising the runtime-guarded tier.
pub fn figures() -> Vec<Figure> {
    vec![
        Figure {
            name: "FIG1A",
            source: "program fig1a
         integer i, j, k, n, p, link(100, 10)
         real x(100), y(100), z(10, 100)
         n = 10
         call init
         do k = 1, n
           p = 0
           i = link(1, k)
           while (i /= 0)
             p = p + 1
             x(p) = y(i)
             i = link(i, k)
           endwhile
           do j = 1, p
             z(k, j) = x(j)
           enddo
         enddo
         print z(1, 1)
         end
         subroutine init
         integer w, c
         do w = 1, 100
           y(w) = w * 0.5
         enddo
         do c = 1, 10
           do w = 1, 99
             link(w, c) = w + 1
           enddo
           link(100, c) = 0
           link(mod(c * 7, 20) + 40, c) = 0
         enddo
         end",
        },
        Figure {
            name: "FIG1B",
            source: "program fig1b
      integer i, j, n, m, p, cond(64)
      real t(64), work(64), out(64)
      n = 32
      m = 24
      call init
      do 100 i = 1, n
        p = 0
        do j = 1, m
          p = p + 1
          t(p) = work(j) + i
          if (cond(j) > 0) then
            while (p >= 1)
              out(i) = out(i) + t(p)
              p = p - 1
            endwhile
          endif
        enddo
 100  continue
      print out(1), out(32)
    end
    subroutine init
      integer w
      do w = 1, 64
        work(w) = w * 0.25
        cond(w) = mod(w, 3)
      enddo
    end",
        },
        Figure {
            name: "FIG1C",
            source: "program fig1c
      integer i, j, k, n, m, q, pos(64)
      real x(64), y(64), z(64, 64)
      n = 16
      m = 32
      call gather
      do 100 i = 1, n
        do j = 1, m
          x(j) = y(i) + j * 0.5
        enddo
        do k = 1, q
          z(i, k) = x(pos(k))
        enddo
 100  continue
      print z(1, 1)
    end
    subroutine gather
      integer w
      do w = 1, 64
        y(w) = mod(w * 3, 7) * 0.4
      enddo
      q = 0
      do w = 1, m
        if (y(w) > 1.0) then
          q = q + 1
          pos(q) = w
        endif
      enddo
    end",
        },
        Figure {
            name: "MODPERM",
            source: "program modperm
         integer i, n, p(8)
         real z(8), x(8)
         n = 8
         do i = 1, n
           p(i) = mod(i * 3, n) + 1
           x(i) = i * 1.0
         enddo
         do 20 i = 1, n
           z(p(i)) = x(i) * 2.0
 20      continue
         print z(1), z(8)
         end",
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use irr_driver::{compile_source, DriverOptions};

    fn cfg(mode: AuditMode) -> AuditConfig {
        AuditConfig {
            seed: 7,
            inputs: 4,
            mode,
        }
    }

    #[test]
    fn independent_program_audits_clean() {
        let src = "program t
             integer i, n
             real x(32), y(32)
             n = 32
             do 10 i = 1, n
               x(i) = y(i) * 2.0
 10          continue
             print x(1)
             end";
        let rep = audit_source(src, DriverOptions::with_iaa(), &cfg(AuditMode::Full)).unwrap();
        assert!(rep.is_sound(), "{:?}", rep.findings);
        assert_eq!(rep.runs_completed, 5);
        assert_eq!(rep.runs_failed, 0);
        assert!(rep.executions_traced >= 5);
        // The loop is correctly parallel, so it is not a precision gap.
        assert_eq!(rep.precision_gaps(), 0, "{:?}", rep.findings);
    }

    #[test]
    fn dependent_sequential_loop_is_not_a_violation() {
        let src = "program t
             integer i, n
             real x(32)
             n = 32
             do 10 i = 2, n
               x(i) = x(i - 1) + 1.0
 10          continue
             print x(32)
             end";
        let rep = audit_source(src, DriverOptions::with_iaa(), &cfg(AuditMode::Full)).unwrap();
        assert!(rep.is_sound(), "{:?}", rep.findings);
        // The dependence is real and observed, so no precision gap
        // either.
        assert_eq!(rep.precision_gaps(), 0, "{:?}", rep.findings);
    }

    #[test]
    fn injected_broken_verdict_is_caught_with_witness() {
        let src = "program t
             integer i, n
             real x(32)
             n = 32
             do 10 i = 2, n
               x(i) = x(i - 1) + 1.0
 10          continue
             print x(32)
             end";
        let mut rep = compile_source(src, DriverOptions::with_iaa()).unwrap();
        let v = rep
            .verdicts
            .iter_mut()
            .find(|v| v.label == "T/do10")
            .unwrap();
        assert!(!v.parallel);
        v.parallel = true;
        v.tier = DispatchTier::CompileTimeParallel;
        let audit = audit_report(&rep, &cfg(AuditMode::Soundness));
        assert_eq!(audit.violations(), 1, "{:?}", audit.findings);
        let f = &audit.findings[0];
        assert_eq!(f.kind, FindingKind::SoundnessViolation);
        assert_eq!(f.label, "T/do10");
        let w = f.witness.expect("concrete witness");
        assert_eq!(w.distance(), 1);
        assert!(f.detail.contains("flow dependence on `x`"), "{}", f.detail);
        assert_eq!(audit.telemetry.audit_violations, 1);
    }

    #[test]
    fn forged_disjointness_verdict_names_the_strategy_in_the_witness() {
        // A lying analysis claims the flow-dependent loop writes
        // disjoint affine windows — the fact that would license the
        // zero-merge in-place strategy. The audit must both catch the
        // contradiction and attribute the exact commit path the forged
        // proof would have driven.
        let src = "program t
             integer i, n
             real x(32)
             n = 32
             do 10 i = 2, n
               x(i) = x(i - 1) + 1.0
 10          continue
             print x(32)
             end";
        let mut rep = compile_source(src, DriverOptions::with_iaa()).unwrap();
        let x = rep.program.symbols.lookup("x").unwrap();
        let v = rep
            .verdicts
            .iter_mut()
            .find(|v| v.label == "T/do10")
            .unwrap();
        assert!(!v.parallel);
        v.parallel = true;
        v.tier = DispatchTier::CompileTimeParallel;
        v.strategy_facts = StrategyFacts::DisjointAffine {
            arrays: vec![(x, 0)],
        };
        let audit = audit_report(&rep, &cfg(AuditMode::Soundness));
        assert_eq!(audit.violations(), 1, "{:?}", audit.findings);
        let f = &audit.findings[0];
        assert_eq!(f.kind, FindingKind::SoundnessViolation);
        assert_eq!(f.label, "T/do10");
        assert!(
            f.detail.contains("in-place-disjoint"),
            "witness must name the strategy: {}",
            f.detail
        );
        assert!(f.detail.contains("flow dependence on `x`"), "{}", f.detail);
        assert_eq!(f.witness.expect("concrete witness").distance(), 1);
    }

    #[test]
    fn precision_gap_reported_only_in_full_mode() {
        // A call inside the loop blocks the analysis outright, but the
        // callee only touches per-iteration elements: dynamically the
        // loop is independent on every input. The callee is padded past
        // the inlining threshold (dead statements behind `i < 0`) so the
        // call survives the pass pipeline.
        let mut filler = String::new();
        for k in 0..60 {
            filler.push_str(&format!("  dummy({}) = {k}\n", k + 1));
        }
        let src = format!(
            "program t
             integer i, n, dummy(64)
             real b(32), c(32)
             n = 32
             do 10 i = 1, n
               call work
 10          continue
             print c(1)
             end
             subroutine work
               c(i) = b(i) * 2.0
               if (i < 0) then
{filler}               endif
             end"
        );
        let rep = compile_source(&src, DriverOptions::with_iaa()).unwrap();
        let v = rep.verdict("T/do10").unwrap();
        assert!(!v.parallel, "{v:?}");
        assert!(matches!(v.tier, DispatchTier::Sequential));
        assert!(v.blockers.iter().any(|b| b.contains("call")), "{v:?}");
        let full = audit_report(&rep, &cfg(AuditMode::Full));
        assert!(full.is_sound());
        assert!(
            full.findings
                .iter()
                .any(|f| f.kind == FindingKind::PrecisionGap && f.label == "T/do10"),
            "{:?}",
            full.findings
        );
        let sound = audit_report(&rep, &cfg(AuditMode::Soundness));
        assert!(
            !sound
                .findings
                .iter()
                .any(|f| f.kind == FindingKind::PrecisionGap),
            "{:?}",
            sound.findings
        );
    }

    #[test]
    fn figures_audit_clean() {
        for fig in figures() {
            let rep = audit_source(
                fig.source,
                DriverOptions::with_iaa(),
                &cfg(AuditMode::Soundness),
            )
            .unwrap_or_else(|e| panic!("{}: {e}", fig.name));
            assert!(rep.is_sound(), "{}: {:?}", fig.name, rep.findings);
            assert!(rep.runs_completed >= 1, "{}", fig.name);
        }
    }
}
