//! Shadow-memory dependence tracing.
//!
//! A [`DependenceTracer`] attaches to the interpreter's tracing hooks
//! (`irr_exec::AccessTracer`) and maintains, per *dynamic execution* of
//! every traced `do` loop, a shadow cell for each array element and
//! scalar the loop touches: the iteration that last wrote it and the
//! iteration that last read it. Comparing the current iteration against
//! the shadow cell classifies every access on the spot:
//!
//! - a **flow** dependence when a read sees an element written by an
//!   earlier iteration;
//! - an **anti** dependence when a write overwrites an element an
//!   earlier iteration read;
//! - an **output** dependence when a write overwrites an element an
//!   earlier iteration wrote.
//!
//! Loop-independent (same-iteration) access pairs are not dependences
//! for parallelization and are skipped. The tracer keeps only the
//! **minimized witness** per `(kind, variable)` — the dependence with
//! the smallest iteration distance, breaking ties toward the smallest
//! element and earliest source iteration — so an audit failure reports
//! the tightest concrete counterexample a run exhibited.
//!
//! Alongside dependences the tracer derives the **observed index-array
//! facts** the paper's property analysis reasons about statically: per
//! array, whether the loop's write footprint was pairwise distinct
//! (injectivity of the subscript stream), whether successive writes had
//! non-decreasing flat indices (monotonicity), and the bounds of the
//! accessed section. These are reported per execution so precision
//! investigations can see *why* a run was conflict-free.
//!
//! For loops the compiler left [`RuntimeGuarded`](DispatchTier), the
//! tracer replays the guard's residual checks against the live store at
//! loop entry — exactly what the hybrid dispatcher would do — and tags
//! the execution with the guard verdict, so the auditor holds a guarded
//! loop to the parallel standard only on executions the guard would
//! actually have cleared.

use irr_driver::{CompilationReport, DispatchTier, GuardPlan, ResidualCheck};
use irr_exec::{inspect_injective, inspect_offset_length, AccessTracer, Inspection, Store};
use irr_frontend::{Program, StmtId, VarId};
use std::cell::RefCell;
use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::rc::Rc;

/// The kind of a loop-carried dependence.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub enum DepKind {
    /// Read-after-write across iterations (true dependence).
    Flow,
    /// Write-after-read across iterations.
    Anti,
    /// Write-after-write across iterations.
    Output,
}

impl std::fmt::Display for DepKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DepKind::Flow => write!(f, "flow"),
            DepKind::Anti => write!(f, "anti"),
            DepKind::Output => write!(f, "output"),
        }
    }
}

/// A concrete loop-carried dependence one execution exhibited.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct DepWitness {
    /// Dependence kind.
    pub kind: DepKind,
    /// The variable carrying the dependence.
    pub var: VarId,
    /// Flat element index for arrays; `None` for scalars.
    pub element: Option<usize>,
    /// Induction-variable value of the source iteration (the earlier
    /// access).
    pub src_iter: i64,
    /// Induction-variable value of the sink iteration (the later
    /// access).
    pub dst_iter: i64,
}

impl DepWitness {
    /// Iteration distance of the dependence.
    pub fn distance(&self) -> u64 {
        self.dst_iter.abs_diff(self.src_iter)
    }

    /// Minimization rank: smaller is a tighter witness.
    fn rank(&self) -> (u64, usize, i64) {
        (
            self.distance(),
            self.element.unwrap_or(usize::MAX),
            self.src_iter,
        )
    }

    /// Renders the witness with resolved variable names.
    pub fn describe(&self, program: &Program) -> String {
        let name = program.symbols.name(self.var);
        match self.element {
            Some(e) => format!(
                "{} dependence on `{name}` element {e}: iteration {} then iteration {}",
                self.kind, self.src_iter, self.dst_iter
            ),
            None => format!(
                "{} dependence on scalar `{name}`: iteration {} then iteration {}",
                self.kind, self.src_iter, self.dst_iter
            ),
        }
    }
}

/// Observed access facts for one array in one loop execution — the
/// dynamic counterparts of the properties the §3 solver proves
/// statically.
#[derive(Clone, Debug)]
pub struct AccessFacts {
    /// Element reads attributed to the loop.
    pub reads: u64,
    /// Element writes attributed to the loop.
    pub writes: u64,
    /// `(min, max)` flat index read, when any.
    pub read_section: Option<(usize, usize)>,
    /// `(min, max)` flat index written, when any.
    pub write_section: Option<(usize, usize)>,
    /// Whether the write footprint was pairwise distinct (no element
    /// written twice) — the observed injectivity of the subscript
    /// stream driving the writes.
    pub writes_injective: bool,
    /// Whether successive writes had non-decreasing flat indices — the
    /// observed monotonicity of the subscript stream.
    pub writes_monotone: bool,
    /// Flat index of the most recent write (monotonicity bookkeeping).
    last_write_idx: Option<usize>,
}

impl Default for AccessFacts {
    fn default() -> Self {
        AccessFacts {
            reads: 0,
            writes: 0,
            read_section: None,
            write_section: None,
            // Vacuously true until a counterexample is observed.
            writes_injective: true,
            writes_monotone: true,
            last_write_idx: None,
        }
    }
}

fn widen(section: &mut Option<(usize, usize)>, idx: usize) {
    *section = Some(match *section {
        None => (idx, idx),
        Some((lo, hi)) => (lo.min(idx), hi.max(idx)),
    });
}

/// Everything the tracer learned from one dynamic execution of one
/// traced loop.
#[derive(Clone, Debug)]
pub struct LoopExecTrace {
    /// The loop statement.
    pub loop_stmt: StmtId,
    /// 1-based dynamic execution count of this loop within the run.
    pub invocation: u64,
    /// Evaluated bounds at entry.
    pub lo: i64,
    /// Evaluated upper bound.
    pub hi: i64,
    /// Evaluated step.
    pub step: i64,
    /// Iterations actually executed (0 for a zero-trip entry).
    pub iterations: u64,
    /// For runtime-guarded loops: whether the guard's residual checks
    /// passed against the live store at this entry. `None` when the
    /// loop carries no guard.
    pub guard_passed: Option<bool>,
    /// Total dependence events observed (every access that extended a
    /// loop-carried chain, before witness minimization).
    pub dep_events: u64,
    /// Minimized witnesses, one per `(kind, variable)`, sorted by
    /// variable then kind.
    pub deps: Vec<DepWitness>,
    /// Per-array observed facts, sorted by variable.
    pub facts: Vec<(VarId, AccessFacts)>,
}

impl LoopExecTrace {
    /// The minimized witness on `var` of the given kind, if observed.
    pub fn dep_on(&self, var: VarId, kind: DepKind) -> Option<&DepWitness> {
        self.deps.iter().find(|w| w.var == var && w.kind == kind)
    }

    /// Whether any loop-carried dependence was observed.
    pub fn has_deps(&self) -> bool {
        self.dep_events > 0
    }

    /// The observed facts for `var`, if the loop touched it.
    pub fn facts_for(&self, var: VarId) -> Option<&AccessFacts> {
        self.facts.iter().find(|(v, _)| *v == var).map(|(_, f)| f)
    }
}

/// The accumulated traces of one interpreter run.
#[derive(Clone, Debug, Default)]
pub struct TraceLog {
    /// One entry per completed dynamic execution of a traced loop, in
    /// completion order (inner loops complete before their enclosing
    /// execution).
    pub executions: Vec<LoopExecTrace>,
}

impl TraceLog {
    /// All executions of `loop_stmt`, in dynamic order.
    pub fn executions_of(&self, loop_stmt: StmtId) -> Vec<&LoopExecTrace> {
        self.executions
            .iter()
            .filter(|e| e.loop_stmt == loop_stmt)
            .collect()
    }
}

/// Shared handle to a tracer's log, readable after the interpreter run
/// consumed the tracer.
pub type TraceHandle = Rc<RefCell<TraceLog>>;

#[derive(Clone, Copy, Default)]
struct Cell {
    last_write: Option<i64>,
    last_read: Option<i64>,
}

/// Per-active-loop shadow state. Nested traced loops each hold their
/// own frame; every access updates all active frames, so an outer loop
/// sees inner-loop accesses attributed to its own iterations.
struct Frame {
    loop_stmt: StmtId,
    invocation: u64,
    lo: i64,
    hi: i64,
    step: i64,
    guard_passed: Option<bool>,
    cur_iter: i64,
    started: bool,
    iterations: u64,
    element_cells: HashMap<(VarId, usize), Cell>,
    scalar_cells: HashMap<VarId, Cell>,
    facts: HashMap<VarId, AccessFacts>,
    witnesses: HashMap<(DepKind, VarId), DepWitness>,
    dep_events: u64,
}

impl Frame {
    fn record(&mut self, var: VarId, element: Option<usize>, is_write: bool) {
        if !self.started {
            return;
        }
        let cur = self.cur_iter;
        let cell = match element {
            Some(idx) => self.element_cells.entry((var, idx)).or_default(),
            None => self.scalar_cells.entry(var).or_default(),
        };
        let mut carried: [Option<(DepKind, i64)>; 2] = [None, None];
        let had_prior_write = cell.last_write.is_some();
        if is_write {
            if let Some(w) = cell.last_write {
                if w != cur {
                    carried[0] = Some((DepKind::Output, w));
                }
            }
            if let Some(r) = cell.last_read {
                if r != cur {
                    carried[1] = Some((DepKind::Anti, r));
                }
            }
            cell.last_write = Some(cur);
        } else {
            if let Some(w) = cell.last_write {
                if w != cur {
                    carried[0] = Some((DepKind::Flow, w));
                }
            }
            cell.last_read = Some(cur);
        }
        for (kind, src) in carried.into_iter().flatten() {
            self.note_dep(kind, var, element, src, cur);
        }
        if let Some(idx) = element {
            let facts = self.facts.entry(var).or_default();
            if is_write {
                facts.writes += 1;
                widen(&mut facts.write_section, idx);
                if had_prior_write {
                    facts.writes_injective = false;
                }
                if facts.last_write_idx.is_some_and(|last| idx < last) {
                    facts.writes_monotone = false;
                }
                facts.last_write_idx = Some(idx);
            } else {
                facts.reads += 1;
                widen(&mut facts.read_section, idx);
            }
        }
    }

    fn note_dep(&mut self, kind: DepKind, var: VarId, element: Option<usize>, src: i64, dst: i64) {
        self.dep_events += 1;
        let cand = DepWitness {
            kind,
            var,
            element,
            src_iter: src,
            dst_iter: dst,
        };
        match self.witnesses.entry((kind, var)) {
            Entry::Occupied(mut e) => {
                if cand.rank() < e.get().rank() {
                    e.insert(cand);
                }
            }
            Entry::Vacant(e) => {
                e.insert(cand);
            }
        }
    }

    fn into_trace(self) -> LoopExecTrace {
        let mut deps: Vec<DepWitness> = self.witnesses.into_values().collect();
        deps.sort_by_key(|w| (w.var, w.kind));
        let mut facts: Vec<(VarId, AccessFacts)> = self.facts.into_iter().collect();
        facts.sort_by_key(|(v, _)| *v);
        LoopExecTrace {
            loop_stmt: self.loop_stmt,
            invocation: self.invocation,
            lo: self.lo,
            hi: self.hi,
            step: self.step,
            iterations: self.iterations,
            guard_passed: self.guard_passed,
            dep_events: self.dep_events,
            deps,
            facts,
        }
    }
}

/// Evaluates every residual check of `guard` against the live store —
/// the same inspection the hybrid dispatcher runs before clearing a
/// guarded loop for parallel execution.
pub fn guard_passes(store: &Store, guard: &GuardPlan, lo: i64, hi: i64) -> bool {
    // Conjunction of disjunctions: every group must be cleared by at
    // least one of its checks (each check alone establishes that
    // array's independence).
    guard.groups.iter().all(|group| {
        group.iter().any(|check| {
            let verdict = match check {
                ResidualCheck::Injective { array } => inspect_injective(store, *array, lo, hi),
                ResidualCheck::OffsetLength { ptr, len } => {
                    inspect_offset_length(store, *ptr, *len, lo, hi)
                }
            };
            verdict == Inspection::ParallelOk
        })
    })
}

/// The shadow-memory dependence tracer (see the module docs).
pub struct DependenceTracer {
    guards: HashMap<StmtId, GuardPlan>,
    frames: Vec<Frame>,
    invocations: HashMap<StmtId, u64>,
    log: TraceHandle,
}

impl DependenceTracer {
    /// A tracer with no guard knowledge; every traced loop reports
    /// `guard_passed: None`.
    pub fn new() -> (DependenceTracer, TraceHandle) {
        DependenceTracer::with_guards(HashMap::new())
    }

    /// A tracer that replays the given guard plans at loop entry.
    pub fn with_guards(guards: HashMap<StmtId, GuardPlan>) -> (DependenceTracer, TraceHandle) {
        let log: TraceHandle = Rc::new(RefCell::new(TraceLog::default()));
        (
            DependenceTracer {
                guards,
                frames: Vec::new(),
                invocations: HashMap::new(),
                log: log.clone(),
            },
            log,
        )
    }

    /// A tracer primed with every runtime-guarded verdict of `report`,
    /// plus a synthetic guard for every evolution-promoted loop: the
    /// retired checks are replayed as a conjunction (each in its own
    /// group — every one must hold on the live data), so a promotion
    /// whose compile-time proof was wrong surfaces as a failed guard
    /// even before any dependence manifests.
    pub fn from_report(report: &CompilationReport) -> (DependenceTracer, TraceHandle) {
        let guards = report
            .verdicts
            .iter()
            .filter_map(|v| match &v.tier {
                DispatchTier::RuntimeGuarded(g) => Some((v.loop_stmt, g.clone())),
                DispatchTier::CompileTimeParallel if !v.retired_checks.is_empty() => Some((
                    v.loop_stmt,
                    GuardPlan {
                        groups: v.retired_checks.iter().map(|c| vec![c.clone()]).collect(),
                    },
                )),
                _ => None,
            })
            .collect();
        DependenceTracer::with_guards(guards)
    }

    fn record_all(&mut self, var: VarId, element: Option<usize>, is_write: bool) {
        for frame in &mut self.frames {
            frame.record(var, element, is_write);
        }
    }
}

impl AccessTracer for DependenceTracer {
    fn loop_enter(&mut self, store: &Store, loop_stmt: StmtId, lo: i64, hi: i64, step: i64) {
        let invocation = {
            let n = self.invocations.entry(loop_stmt).or_insert(0);
            *n += 1;
            *n
        };
        let guard_passed = self
            .guards
            .get(&loop_stmt)
            .map(|g| guard_passes(store, g, lo, hi));
        self.frames.push(Frame {
            loop_stmt,
            invocation,
            lo,
            hi,
            step,
            guard_passed,
            cur_iter: lo,
            started: false,
            iterations: 0,
            element_cells: HashMap::new(),
            scalar_cells: HashMap::new(),
            facts: HashMap::new(),
            witnesses: HashMap::new(),
            dep_events: 0,
        });
    }

    fn loop_iter(&mut self, loop_stmt: StmtId, iter: i64) {
        if let Some(frame) = self
            .frames
            .iter_mut()
            .rev()
            .find(|f| f.loop_stmt == loop_stmt)
        {
            frame.cur_iter = iter;
            frame.started = true;
            frame.iterations += 1;
        }
    }

    fn loop_exit(&mut self, loop_stmt: StmtId) {
        let Some(frame) = self.frames.pop() else {
            return;
        };
        debug_assert_eq!(frame.loop_stmt, loop_stmt, "unbalanced loop events");
        self.log.borrow_mut().executions.push(frame.into_trace());
    }

    fn read_element(&mut self, array: VarId, idx: usize) {
        self.record_all(array, Some(idx), false);
    }

    fn write_element(&mut self, array: VarId, idx: usize) {
        self.record_all(array, Some(idx), true);
    }

    fn read_scalar(&mut self, var: VarId) {
        self.record_all(var, None, false);
    }

    fn write_scalar(&mut self, var: VarId) {
        self.record_all(var, None, true);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use irr_exec::{Interp, TraceConfig};
    use irr_frontend::{parse_program, Program, StmtKind};

    fn trace_all(src: &str) -> (Program, TraceLog) {
        let p = parse_program(src).unwrap();
        let (tracer, handle) = DependenceTracer::new();
        let mut it = Interp::new(&p);
        it.attach_tracer(TraceConfig::all(), Box::new(tracer));
        it.run().unwrap();
        let log = handle.borrow().clone();
        (p, log)
    }

    fn first_do(p: &Program) -> StmtId {
        p.stmts_in(&p.procedure(p.main()).body)
            .into_iter()
            .find(|s| matches!(p.stmt(*s).kind, StmtKind::Do { .. }))
            .unwrap()
    }

    #[test]
    fn independent_loop_has_no_carried_deps() {
        let (p, log) = trace_all(
            "program t
             integer i
             real x(10), y(10)
             do i = 1, 10
               x(i) = y(i) * 2.0
             enddo
             end",
        );
        let ex = &log.executions_of(first_do(&p))[0];
        assert_eq!(ex.iterations, 10);
        assert!(!ex.has_deps(), "{ex:?}");
        let x = p.symbols.lookup("x").unwrap();
        let fx = ex.facts_for(x).unwrap();
        assert_eq!(fx.writes, 10);
        assert!(fx.writes_injective);
        assert!(fx.writes_monotone);
        assert_eq!(fx.write_section, Some((0, 9)));
    }

    #[test]
    fn shifted_read_yields_flow_dependence_with_minimal_witness() {
        let (p, log) = trace_all(
            "program t
             integer i
             real x(10)
             do i = 2, 10
               x(i) = x(i - 1) + 1.0
             enddo
             end",
        );
        let x = p.symbols.lookup("x").unwrap();
        let ex = &log.executions_of(first_do(&p))[0];
        let w = ex.dep_on(x, DepKind::Flow).expect("flow dep observed");
        // Every iteration reads its predecessor's write: distance 1,
        // minimized to the earliest element.
        assert_eq!(w.distance(), 1);
        assert_eq!(w.element, Some(1));
        assert_eq!((w.src_iter, w.dst_iter), (2, 3));
        assert!(w.describe(&p).contains("flow dependence on `x`"));
    }

    #[test]
    fn repeated_element_write_is_output_dependence_and_kills_injectivity() {
        let (p, log) = trace_all(
            "program t
             integer i
             real x(10)
             do i = 1, 5
               x(3) = i
             enddo
             end",
        );
        let x = p.symbols.lookup("x").unwrap();
        let ex = &log.executions_of(first_do(&p))[0];
        let w = ex.dep_on(x, DepKind::Output).expect("output dep");
        assert_eq!(w.element, Some(2));
        assert_eq!(w.distance(), 1);
        assert!(!ex.facts_for(x).unwrap().writes_injective);
    }

    #[test]
    fn read_then_later_write_is_anti_dependence() {
        let (p, log) = trace_all(
            "program t
             integer i
             real x(10), y(10)
             do i = 1, 9
               y(i) = x(i + 1)
               x(i) = i
             enddo
             end",
        );
        let x = p.symbols.lookup("x").unwrap();
        let ex = &log.executions_of(first_do(&p))[0];
        // Iteration i reads x(i+1); iteration i+1 writes it.
        let w = ex.dep_on(x, DepKind::Anti).expect("anti dep");
        assert_eq!(w.distance(), 1);
        assert!(ex.dep_on(x, DepKind::Flow).is_none(), "{ex:?}");
    }

    #[test]
    fn scalar_carried_dependence_is_observed() {
        let (p, log) = trace_all(
            "program t
             integer i
             real s, x(10)
             do i = 1, 10
               x(i) = s
               s = s * 2.0 + 1.0
             enddo
             end",
        );
        let s = p.symbols.lookup("s").unwrap();
        let ex = &log.executions_of(first_do(&p))[0];
        let w = ex.dep_on(s, DepKind::Flow).expect("scalar flow dep");
        assert_eq!(w.element, None);
        assert_eq!(w.distance(), 1);
    }

    #[test]
    fn same_iteration_accesses_are_not_dependences() {
        let (p, log) = trace_all(
            "program t
             integer i
             real t2, x(10)
             do i = 1, 10
               t2 = i * 2.0
               x(i) = t2 + t2
             enddo
             end",
        );
        let t2 = p.symbols.lookup("t2").unwrap();
        let ex = &log.executions_of(first_do(&p))[0];
        // t2 is written then read within each iteration: the only
        // carried chain is write-after-write/write-after-read across
        // iterations (anti/output), never flow.
        assert!(ex.dep_on(t2, DepKind::Flow).is_none(), "{ex:?}");
        assert!(ex.dep_on(t2, DepKind::Output).is_some());
    }

    #[test]
    fn nested_loops_attribute_inner_accesses_to_outer_iterations() {
        let (p, log) = trace_all(
            "program t
             integer i, j
             real acc(4), z(6)
             do i = 1, 6
               do j = 1, 4
                 acc(j) = i + j
               enddo
               z(i) = acc(1) + acc(4)
             enddo
             end",
        );
        let acc = p.symbols.lookup("acc").unwrap();
        let z = p.symbols.lookup("z").unwrap();
        let outer = first_do(&p);
        let outer_ex = &log.executions_of(outer)[0];
        // acc is rewritten every outer iteration: carried output dep on
        // the outer loop, none on z.
        assert!(outer_ex.dep_on(acc, DepKind::Output).is_some());
        assert!(outer_ex.dep_on(z, DepKind::Output).is_none());
        // The inner loop itself is independent per execution.
        let inner_execs: Vec<&LoopExecTrace> = log
            .executions
            .iter()
            .filter(|e| e.loop_stmt != outer)
            .collect();
        assert_eq!(inner_execs.len(), 6);
        assert!(inner_execs.iter().all(|e| !e.has_deps()));
    }

    #[test]
    fn monotone_but_noninjective_writes_are_classified() {
        let (p, log) = trace_all(
            "program t
             integer i
             real x(10)
             do i = 1, 8
               x((i + 1) / 2) = i
             enddo
             end",
        );
        let x = p.symbols.lookup("x").unwrap();
        let ex = &log.executions_of(first_do(&p))[0];
        let fx = ex.facts_for(x).unwrap();
        assert!(fx.writes_monotone, "{fx:?}");
        assert!(!fx.writes_injective, "{fx:?}");
        assert_eq!(fx.write_section, Some((0, 3)));
    }

    #[test]
    fn guard_is_replayed_at_entry() {
        use irr_driver::{compile_source, DriverOptions};
        // mod-permutation: injective at run time, unknown statically.
        let src = "program t
             integer i, n, p(8)
             real z(8), x(8)
             n = 8
             do i = 1, n
               p(i) = mod(i * 3, n) + 1
               x(i) = i * 1.0
             enddo
             do 20 i = 1, n
               z(p(i)) = x(i) * 2.0
 20          continue
             print z(1), z(8)
             end";
        let rep = compile_source(src, DriverOptions::with_iaa()).unwrap();
        let v = rep.verdict("T/do20").unwrap();
        assert!(matches!(v.tier, DispatchTier::RuntimeGuarded(_)));
        let (tracer, handle) = DependenceTracer::from_report(&rep);
        let mut it = Interp::new(&rep.program);
        it.attach_tracer(TraceConfig::all(), Box::new(tracer));
        it.run().unwrap();
        let log = handle.borrow().clone();
        let ex = &log.executions_of(v.loop_stmt)[0];
        assert_eq!(ex.guard_passed, Some(true));
        assert!(!ex.has_deps(), "{ex:?}");
        let z = rep.program.symbols.lookup("z").unwrap();
        assert!(ex.facts_for(z).unwrap().writes_injective);
        assert!(!ex.facts_for(z).unwrap().writes_monotone);
    }
}
