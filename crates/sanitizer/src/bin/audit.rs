//! `sanitizer-audit`: replay the benchmark suite and the paper figures
//! under shadow-memory tracing and cross-check every loop verdict.
//!
//! ```text
//! sanitizer-audit [--mode soundness|full] [--seed N] [--inputs N]
//!                 [--scale test|paper] [--only SUBSTR]
//! ```
//!
//! Exits nonzero iff any soundness violation is found, so the command
//! doubles as a CI gate. Precision gaps (full mode) are informational.

use irr_driver::{compile_source, DriverOptions};
use irr_programs::{all, Scale};
use irr_sanitizer::{audit_report, figures, AuditConfig, AuditMode, FindingKind};

fn main() {
    let mut config = AuditConfig {
        mode: AuditMode::Soundness,
        ..AuditConfig::default()
    };
    let mut scale = Scale::Test;
    let mut only: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .unwrap_or_else(|| die(&format!("{flag} needs a value")))
        };
        match a.as_str() {
            "--mode" => {
                config.mode = match value("--mode").as_str() {
                    "soundness" => AuditMode::Soundness,
                    "full" => AuditMode::Full,
                    other => die(&format!("unknown mode `{other}`")),
                }
            }
            "--seed" => {
                config.seed = value("--seed")
                    .parse()
                    .unwrap_or_else(|_| die("--seed needs an integer"))
            }
            "--inputs" => {
                config.inputs = value("--inputs")
                    .parse()
                    .unwrap_or_else(|_| die("--inputs needs an integer"))
            }
            "--scale" => {
                scale = match value("--scale").as_str() {
                    "test" => Scale::Test,
                    "paper" => Scale::Paper,
                    other => die(&format!("unknown scale `{other}`")),
                }
            }
            "--only" => only = Some(value("--only")),
            "--help" | "-h" => {
                println!(
                    "sanitizer-audit [--mode soundness|full] [--seed N] [--inputs N] \
                     [--scale test|paper] [--only SUBSTR]"
                );
                return;
            }
            other => die(&format!("unknown argument `{other}`")),
        }
    }

    let mut targets: Vec<(String, String)> = all(scale)
        .into_iter()
        .map(|b| (b.name.to_string(), b.source))
        .collect();
    targets.extend(
        figures()
            .into_iter()
            .map(|f| (f.name.to_string(), f.source.to_string())),
    );
    if let Some(filter) = &only {
        targets.retain(|(name, _)| name.contains(filter.as_str()));
    }

    let mode = match config.mode {
        AuditMode::Soundness => "soundness",
        AuditMode::Full => "full",
    };
    println!(
        "sanitizer-audit: mode {mode}, seed {}, 1 pristine + {} randomized input(s) per program",
        config.seed, config.inputs
    );
    let mut total_violations = 0usize;
    let mut total_gaps = 0usize;
    for (name, src) in &targets {
        let rep = match compile_source(src, DriverOptions::with_iaa()) {
            Ok(r) => r,
            Err(e) => die(&format!("{name}: parse error: {e}")),
        };
        let audit = audit_report(&rep, &config);
        println!(
            "{name}: {} loop(s) audited, {} traced execution(s), {} run(s) ok, {} failed, \
             {} violation(s), {} precision gap(s)",
            audit.loops_audited,
            audit.executions_traced,
            audit.runs_completed,
            audit.runs_failed,
            audit.violations(),
            audit.precision_gaps(),
        );
        for f in &audit.findings {
            let tag = match f.kind {
                FindingKind::SoundnessViolation => "VIOLATION",
                FindingKind::PrecisionGap => "precision-gap",
            };
            println!("  [{tag}] {}", f.detail);
        }
        total_violations += audit.violations();
        total_gaps += audit.precision_gaps();
    }
    println!(
        "sanitizer-audit: {} program(s), {total_violations} violation(s), {total_gaps} \
         precision gap(s)",
        targets.len()
    );
    if total_violations > 0 {
        std::process::exit(1);
    }
}

fn die(msg: &str) -> ! {
    eprintln!("sanitizer-audit: {msg}");
    std::process::exit(2);
}
