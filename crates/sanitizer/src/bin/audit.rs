//! `sanitizer-audit`: replay the benchmark suite and the paper figures
//! under shadow-memory tracing and cross-check every loop verdict.
//!
//! ```text
//! sanitizer-audit [--mode soundness|full] [--seed N] [--inputs N]
//!                 [--scale test|paper] [--only SUBSTR] [--chaos N]
//!                 [--sparse N] [--evolution] [--interproc]
//! ```
//!
//! `--chaos N` additionally replays every target under `N` seeded
//! random fault schedules (forged conflicts, worker panics, stalls,
//! inspector lies) through the hybrid runtime and checks that each run
//! still completes with sequential semantics; a parity break counts as
//! a violation.
//!
//! `--sparse N` additionally audits `N` generated sparse-kernel
//! programs (cycling kernels × matrix structures with per-sample
//! seeds), presetting each program's index arrays from the matrix
//! generator so the guards inspect real CRS/CCS structure.
//!
//! `--evolution` audits the producer-loop sparse kernels — programs
//! whose index arrays are built by in-program loops so the
//! value-evolution analysis promotes the consumers to compile-time
//! parallel. The shadow tracer replays every retired check against the
//! live store; a contradicted promotion is a soundness violation, and
//! so is a sweep in which *no* consumer promotes (the analysis has
//! silently regressed to runtime guarding).
//!
//! `--interproc` audits the call-structured kernels — producers that
//! live out of line in a subroutine, so only the interprocedural
//! summaries can promote the consumers. Same rules as `--evolution`,
//! plus each promotion must be flagged `promoted_interproc`; a sweep
//! with zero surviving interprocedural promotions is a violation.
//!
//! `--compiled` differentially audits the bytecode execution tier:
//! every target (benchmarks, figures, a sparse-kernel sweep, and a
//! batch of SplitMix64-randomized loop programs) runs once on the
//! sequential tree-walk and once with every eligible loop forced
//! through the register-bytecode engine. The two runs must be
//! **byte-identical** — same store bits, same printed output, same
//! fuel accounting per loop — and the sweep must compile at least one
//! loop, or the tier has silently regressed to the tree-walk.
//!
//! `--ladder` compiles every target (benchmarks, figures, and one
//! sparse-kernel sweep) at every rung of the service degradation
//! ladder (full → summaries-off → evolution-off → parse-only) and
//! checks two things per rung: the verdicts are monotone — descending
//! a rung never moves any loop *toward* parallel — and the degraded
//! report still replays dependence-clean under shadow tracing. A
//! strengthened verdict or a contradicted degraded verdict is a
//! violation.
//!
//! Exits nonzero iff any soundness violation is found, so the command
//! doubles as a CI gate. Precision gaps (full mode) are informational.

use irr_driver::ladder::{tier_rank, DegradeLevel};
use irr_driver::{compile_source, CompilationReport, DispatchTier, DriverOptions};
use irr_exec::{CompiledDispatch, FaultPlan, Interp, SplitMix64, Store, Value};
use irr_programs::fuzz::random_loop_program;
use irr_programs::sparse::{interproc_kernels, kernels, producer_kernels, SparseScale};
use irr_programs::{all, Scale};
use irr_runtime::{run_hybrid_with_faults, HybridConfig};
use irr_sanitizer::{
    audit_report, audit_report_seeded, figures, AuditConfig, AuditMode, FindingKind,
};
use irr_sparse::Structure;

fn main() {
    let mut config = AuditConfig {
        mode: AuditMode::Soundness,
        ..AuditConfig::default()
    };
    let mut scale = Scale::Test;
    let mut only: Option<String> = None;
    let mut chaos = 0usize;
    let mut sparse = 0usize;
    let mut evolution = false;
    let mut interproc = false;
    let mut ladder = false;
    let mut compiled = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .unwrap_or_else(|| die(&format!("{flag} needs a value")))
        };
        match a.as_str() {
            "--mode" => {
                config.mode = match value("--mode").as_str() {
                    "soundness" => AuditMode::Soundness,
                    "full" => AuditMode::Full,
                    other => die(&format!("unknown mode `{other}`")),
                }
            }
            "--seed" => {
                config.seed = value("--seed")
                    .parse()
                    .unwrap_or_else(|_| die("--seed needs an integer"))
            }
            "--inputs" => {
                config.inputs = value("--inputs")
                    .parse()
                    .unwrap_or_else(|_| die("--inputs needs an integer"))
            }
            "--scale" => {
                scale = match value("--scale").as_str() {
                    "test" => Scale::Test,
                    "paper" => Scale::Paper,
                    other => die(&format!("unknown scale `{other}`")),
                }
            }
            "--only" => only = Some(value("--only")),
            "--chaos" => {
                chaos = value("--chaos")
                    .parse()
                    .unwrap_or_else(|_| die("--chaos needs an integer"))
            }
            "--sparse" => {
                sparse = value("--sparse")
                    .parse()
                    .unwrap_or_else(|_| die("--sparse needs an integer"))
            }
            "--evolution" => evolution = true,
            "--interproc" => interproc = true,
            "--ladder" => ladder = true,
            "--compiled" => compiled = true,
            "--help" | "-h" => {
                println!(
                    "sanitizer-audit [--mode soundness|full] [--seed N] [--inputs N] \
                     [--scale test|paper] [--only SUBSTR] [--chaos N] [--sparse N] \
                     [--evolution] [--interproc] [--ladder] [--compiled]"
                );
                return;
            }
            other => die(&format!("unknown argument `{other}`")),
        }
    }

    let mut targets: Vec<(String, String)> = all(scale)
        .into_iter()
        .map(|b| (b.name.to_string(), b.source))
        .collect();
    targets.extend(
        figures()
            .into_iter()
            .map(|f| (f.name.to_string(), f.source.to_string())),
    );
    if let Some(filter) = &only {
        targets.retain(|(name, _)| name.contains(filter.as_str()));
    }

    let mode = match config.mode {
        AuditMode::Soundness => "soundness",
        AuditMode::Full => "full",
    };
    println!(
        "sanitizer-audit: mode {mode}, seed {}, 1 pristine + {} randomized input(s) per program",
        config.seed, config.inputs
    );
    let mut total_violations = 0usize;
    let mut total_gaps = 0usize;
    for (name, src) in &targets {
        let rep = match compile_source(src, DriverOptions::with_iaa()) {
            Ok(r) => r,
            Err(e) => die(&format!("{name}: parse error: {e}")),
        };
        let audit = audit_report(&rep, &config);
        println!(
            "{name}: {} loop(s) audited, {} traced execution(s), {} run(s) ok, {} failed, \
             {} violation(s), {} precision gap(s)",
            audit.loops_audited,
            audit.executions_traced,
            audit.runs_completed,
            audit.runs_failed,
            audit.violations(),
            audit.precision_gaps(),
        );
        for f in &audit.findings {
            let tag = match f.kind {
                FindingKind::SoundnessViolation => "VIOLATION",
                FindingKind::PrecisionGap => "precision-gap",
            };
            println!("  [{tag}] {}", f.detail);
        }
        total_violations += audit.violations();
        total_gaps += audit.precision_gaps();
        if chaos > 0 {
            total_violations += chaos_sweep(name, &rep, config.seed, chaos);
        }
    }
    let mut audited = targets.len();
    if sparse > 0 {
        let (sampled, violations, gaps) = sparse_sweep(&config, sparse);
        audited += sampled;
        total_violations += violations;
        total_gaps += gaps;
    }
    if evolution {
        let (sampled, violations, gaps) = evolution_sweep(&config);
        audited += sampled;
        total_violations += violations;
        total_gaps += gaps;
    }
    if interproc {
        let (sampled, violations, gaps) = interproc_sweep(&config);
        audited += sampled;
        total_violations += violations;
        total_gaps += gaps;
    }
    if ladder {
        let (sampled, violations, gaps) = ladder_sweep(&config, &targets);
        audited += sampled;
        total_violations += violations;
        total_gaps += gaps;
    }
    if compiled {
        let (sampled, violations) = compiled_sweep(&config, &targets);
        audited += sampled;
        total_violations += violations;
    }
    println!(
        "sanitizer-audit: {audited} program(s), {total_violations} violation(s), {total_gaps} \
         precision gap(s)"
    );
    if total_violations > 0 {
        std::process::exit(1);
    }
}

/// Audits `n` generated sparse-kernel programs, cycling through the
/// kernel library and the three matrix structures with a fresh
/// generator seed per sample. Each program's index arrays are preset
/// from the generated matrix before every replay, so the traced runs
/// exercise the same CRS/CCS structure the runtime guards inspect.
/// Returns `(programs audited, violations, precision gaps)`.
fn sparse_sweep(config: &AuditConfig, n: usize) -> (usize, usize, usize) {
    const STRUCTURES: [Structure; 3] = [
        Structure::Banded { bandwidth: 8 },
        Structure::Uniform,
        Structure::PowerLaw,
    ];
    println!("sparse sweep: {n} generated kernel program(s)");
    let mut violations = 0usize;
    let mut gaps = 0usize;
    let mut sampled = 0usize;
    let mut i = 0usize;
    'outer: loop {
        let structure = STRUCTURES[i % STRUCTURES.len()];
        let seed = config.seed.wrapping_add(i as u64).wrapping_mul(3) | 1;
        for k in kernels(&SparseScale::test(structure, seed)) {
            if sampled == n {
                break 'outer;
            }
            let rep = match compile_source(&k.source, DriverOptions::with_iaa()) {
                Ok(r) => r,
                Err(e) => die(&format!("sparse {}: parse error: {e}", k.name)),
            };
            let presets = k.resolve_presets(&rep.program);
            let audit = audit_report_seeded(&rep, config, &presets);
            println!(
                "sparse {} ({}, seed {seed}): {} loop(s) audited, {} run(s) ok, {} failed, \
                 {} violation(s), {} precision gap(s)",
                k.name,
                structure.tag(),
                audit.loops_audited,
                audit.runs_completed,
                audit.runs_failed,
                audit.violations(),
                audit.precision_gaps(),
            );
            for f in &audit.findings {
                let tag = match f.kind {
                    FindingKind::SoundnessViolation => "VIOLATION",
                    FindingKind::PrecisionGap => "precision-gap",
                };
                println!("  [{tag}] {}", f.detail);
            }
            if audit.runs_failed > 0 {
                println!(
                    "  [VIOLATION] sparse {}: {} run(s) failed",
                    k.name, audit.runs_failed
                );
                violations += audit.runs_failed as usize;
            }
            violations += audit.violations();
            gaps += audit.precision_gaps();
            sampled += 1;
        }
        i += 1;
    }
    (sampled, violations, gaps)
}

/// Audits the producer-loop kernels across the three matrix
/// structures: every consumer loop the value-evolution analysis
/// promoted is replayed under shadow tracing with its retired checks
/// re-evaluated against the live store. Counts a violation for every
/// contradicted promotion or failed run, and one extra violation if
/// the sweep produces *zero* promotions — the regression gate that
/// keeps the analysis from silently degrading to runtime guards.
/// Returns `(programs audited, violations, precision gaps)`.
fn evolution_sweep(config: &AuditConfig) -> (usize, usize, usize) {
    const STRUCTURES: [Structure; 3] = [
        Structure::Banded { bandwidth: 8 },
        Structure::Uniform,
        Structure::PowerLaw,
    ];
    println!(
        "evolution sweep: producer-loop kernels, {} structure(s)",
        STRUCTURES.len()
    );
    let mut violations = 0usize;
    let mut gaps = 0usize;
    let mut sampled = 0usize;
    let mut promoted = 0usize;
    for (i, structure) in STRUCTURES.iter().enumerate() {
        let seed = config.seed.wrapping_add(i as u64).wrapping_mul(5) | 1;
        for k in producer_kernels(&SparseScale::test(*structure, seed)) {
            let rep = match compile_source(&k.source, DriverOptions::with_iaa()) {
                Ok(r) => r,
                Err(e) => die(&format!("evolution {}: parse error: {e}", k.name)),
            };
            let retired = rep
                .verdict(&k.label)
                .filter(|v| matches!(v.tier, DispatchTier::CompileTimeParallel))
                .map_or(0, |v| v.retired_checks.len());
            if retired > 0 {
                promoted += 1;
            }
            let presets = k.resolve_presets(&rep.program);
            let audit = audit_report_seeded(&rep, config, &presets);
            println!(
                "evolution {} ({}, seed {seed}): {} retired check(s), {} loop(s) audited, \
                 {} run(s) ok, {} failed, {} violation(s), {} precision gap(s)",
                k.name,
                structure.tag(),
                retired,
                audit.loops_audited,
                audit.runs_completed,
                audit.runs_failed,
                audit.violations(),
                audit.precision_gaps(),
            );
            for f in &audit.findings {
                let tag = match f.kind {
                    FindingKind::SoundnessViolation => "VIOLATION",
                    FindingKind::PrecisionGap => "precision-gap",
                };
                println!("  [{tag}] {}", f.detail);
            }
            if audit.runs_failed > 0 {
                println!(
                    "  [VIOLATION] evolution {}: {} run(s) failed",
                    k.name, audit.runs_failed
                );
                violations += audit.runs_failed as usize;
            }
            violations += audit.violations();
            gaps += audit.precision_gaps();
            sampled += 1;
        }
    }
    println!("evolution sweep: {promoted}/{sampled} consumer loop(s) promoted");
    if promoted == 0 {
        println!(
            "  [VIOLATION] evolution sweep: no promotions — value-evolution analysis regressed"
        );
        violations += 1;
    }
    (sampled, violations, gaps)
}

/// Audits the call-structured kernels: the index-array producers live
/// in a subroutine the inliner never flattens, so the consumer promotes
/// to compile-time parallel *only* through the interprocedural property
/// summaries. Every promotion must carry the `promoted_interproc` flag
/// and survive dynamic replay (retired checks re-evaluated against the
/// live store). A sweep with zero surviving interprocedural promotions
/// counts as a violation — the regression gate for the summary layer.
/// Returns `(programs audited, violations, precision gaps)`.
fn interproc_sweep(config: &AuditConfig) -> (usize, usize, usize) {
    const STRUCTURES: [Structure; 3] = [
        Structure::Banded { bandwidth: 8 },
        Structure::Uniform,
        Structure::PowerLaw,
    ];
    println!(
        "interproc sweep: call-structured kernels, {} structure(s)",
        STRUCTURES.len()
    );
    let mut violations = 0usize;
    let mut gaps = 0usize;
    let mut sampled = 0usize;
    let mut promoted = 0usize;
    for (i, structure) in STRUCTURES.iter().enumerate() {
        let seed = config.seed.wrapping_add(i as u64).wrapping_mul(7) | 1;
        for k in interproc_kernels(&SparseScale::test(*structure, seed)) {
            let rep = match compile_source(&k.source, DriverOptions::with_iaa()) {
                Ok(r) => r,
                Err(e) => die(&format!("interproc {}: parse error: {e}", k.name)),
            };
            let consumer = rep
                .verdict(&k.label)
                .filter(|v| matches!(v.tier, DispatchTier::CompileTimeParallel));
            let retired = consumer.map_or(0, |v| v.retired_checks.len());
            let flagged = consumer.is_some_and(|v| v.promoted_interproc);
            if retired > 0 && !flagged {
                println!(
                    "  [VIOLATION] interproc {}: promotion not flagged promoted_interproc",
                    k.name
                );
                violations += 1;
            }
            let presets = k.resolve_presets(&rep.program);
            let audit = audit_report_seeded(&rep, config, &presets);
            println!(
                "interproc {} ({}, seed {seed}): {} retired check(s), interproc {}, {} loop(s) \
                 audited, {} run(s) ok, {} failed, {} violation(s), {} precision gap(s)",
                k.name,
                structure.tag(),
                retired,
                flagged,
                audit.loops_audited,
                audit.runs_completed,
                audit.runs_failed,
                audit.violations(),
                audit.precision_gaps(),
            );
            for f in &audit.findings {
                let tag = match f.kind {
                    FindingKind::SoundnessViolation => "VIOLATION",
                    FindingKind::PrecisionGap => "precision-gap",
                };
                println!("  [{tag}] {}", f.detail);
            }
            if audit.runs_failed > 0 {
                println!(
                    "  [VIOLATION] interproc {}: {} run(s) failed",
                    k.name, audit.runs_failed
                );
                violations += audit.runs_failed as usize;
            }
            if retired > 0 && flagged && audit.violations() == 0 && audit.runs_failed == 0 {
                promoted += 1;
            }
            violations += audit.violations();
            gaps += audit.precision_gaps();
            sampled += 1;
        }
    }
    println!("interproc sweep: {promoted}/{sampled} consumer loop(s) promoted interprocedurally");
    if promoted == 0 {
        println!(
            "  [VIOLATION] interproc sweep: no surviving interprocedural promotions — the \
             summary layer regressed"
        );
        violations += 1;
    }
    (sampled, violations, gaps)
}

/// Compiles every target plus one sparse-kernel set at every rung of
/// the service degradation ladder and checks, per rung:
///
/// - **monotonicity** — descending a rung never moves any loop's
///   dispatch tier toward parallel (Sequential stays Sequential, a
///   runtime-guarded loop may only stay or fall to Sequential);
/// - **soundness** — the degraded report still replays
///   dependence-clean under shadow tracing.
///
/// Returns `(programs audited, violations, precision gaps)` where one
/// program counts once regardless of rungs.
fn ladder_sweep(config: &AuditConfig, targets: &[(String, String)]) -> (usize, usize, usize) {
    type Presets = Vec<(irr_frontend::VarId, irr_exec::ArrayData)>;
    let mut cases: Vec<(String, String, Presets)> = Vec::new();
    let mut violations = 0usize;
    let mut gaps = 0usize;
    for (name, src) in targets {
        cases.push((name.clone(), src.clone(), Vec::new()));
    }
    let scale = SparseScale::test(Structure::Uniform, config.seed | 1);
    let mut sparse_presets: Vec<(String, irr_programs::sparse::SparseProgram)> = Vec::new();
    for k in kernels(&scale) {
        sparse_presets.push((format!("sparse/{}", k.name), k));
    }
    println!(
        "ladder sweep: {} program(s) x {} rung(s)",
        cases.len() + sparse_presets.len(),
        DegradeLevel::ALL.len()
    );

    let audit_rungs = |name: &str,
                       src: &str,
                       presets: &[(irr_frontend::VarId, irr_exec::ArrayData)]|
     -> (usize, usize) {
        let mut violations = 0usize;
        let mut gaps = 0usize;
        let mut prev: Option<(DegradeLevel, std::collections::HashMap<String, u8>)> = None;
        for level in DegradeLevel::ALL {
            let program = match irr_frontend::parse_program(src) {
                Ok(p) => p,
                Err(e) => die(&format!("ladder {name}: parse error: {e}")),
            };
            let rep = level.compile_at(program, DriverOptions::with_iaa(), None);
            let ranks: std::collections::HashMap<String, u8> = rep
                .verdicts
                .iter()
                .map(|v| (v.label.clone(), tier_rank(&v.tier)))
                .collect();
            if let Some((prev_level, prev_ranks)) = &prev {
                for (label, rank) in &ranks {
                    if let Some(prev_rank) = prev_ranks.get(label) {
                        if rank > prev_rank {
                            println!(
                                "  [VIOLATION] ladder {name}: {label} strengthened from rank \
                                 {prev_rank} ({}) to rank {rank} ({})",
                                prev_level.name(),
                                level.name()
                            );
                            violations += 1;
                        }
                    }
                }
            }
            let audit = audit_report_seeded(&rep, config, presets);
            if audit.violations() > 0 || audit.runs_failed > 0 {
                for f in &audit.findings {
                    if f.kind == FindingKind::SoundnessViolation {
                        println!(
                            "  [VIOLATION] ladder {name} at {}: {}",
                            level.name(),
                            f.detail
                        );
                    }
                }
                violations += audit.violations() + audit.runs_failed as usize;
            }
            gaps += audit.precision_gaps();
            prev = Some((level, ranks));
        }
        (violations, gaps)
    };

    for (name, src, presets) in &cases {
        let (v, g) = audit_rungs(name, src, presets);
        violations += v;
        gaps += g;
        println!(
            "ladder {name}: {} rung(s), {v} violation(s)",
            DegradeLevel::ALL.len()
        );
    }
    let mut sampled = cases.len();
    for (name, k) in &sparse_presets {
        let rep = match compile_source(&k.source, DriverOptions::with_iaa()) {
            Ok(r) => r,
            Err(e) => die(&format!("ladder {name}: parse error: {e}")),
        };
        let presets = k.resolve_presets(&rep.program);
        let (v, g) = audit_rungs(name, &k.source, &presets);
        violations += v;
        gaps += g;
        println!(
            "ladder {name}: {} rung(s), {v} violation(s)",
            DegradeLevel::ALL.len()
        );
        sampled += 1;
    }
    (sampled, violations, gaps)
}

/// Differentially audits the bytecode execution tier. Every corpus
/// program — the CLI targets, one generated sparse-kernel set (index
/// arrays preset from the matrix generator), and a batch of
/// SplitMix64-randomized loop programs — runs once on the sequential
/// tree-walk and once with every dynamic loop entry forced through
/// [`CompiledDispatch`] (bytecode where the lowering accepts the nest,
/// reason-coded fallback to the tree-walk where it does not). The two
/// runs must agree **byte for byte**: store bits, output lines, total
/// fuel, and per-loop statistics — the compiled tier's contract is
/// exact replay, so there is no tolerance. A sweep in which *zero*
/// loop entries compile is itself a violation: the tier has silently
/// regressed to the tree-walk. Returns `(programs audited,
/// violations)`.
fn compiled_sweep(config: &AuditConfig, targets: &[(String, String)]) -> (usize, usize) {
    const RANDOM_PROGRAMS: usize = 12;

    fn audit_one(
        name: &str,
        rep: &CompilationReport,
        presets: &[(irr_frontend::VarId, irr_exec::ArrayData)],
        compiled_total: &mut u64,
    ) -> usize {
        let mut seq_it = Interp::new(&rep.program);
        let mut comp_it = Interp::new(&rep.program);
        for (var, data) in presets {
            seq_it.preset_array(*var, data.clone());
            comp_it.preset_array(*var, data.clone());
        }
        let seq = match seq_it.run() {
            Ok(o) => o,
            Err(e) => die(&format!("compiled {name}: sequential run failed: {e}")),
        };
        let mut dispatch = CompiledDispatch::new();
        let comp = match comp_it.run_dispatched(&mut dispatch) {
            Ok(o) => o,
            Err(e) => die(&format!("compiled {name}: bytecode run failed: {e}")),
        };
        *compiled_total += dispatch.compiled;
        let mut bad = 0usize;
        if comp.output != seq.output {
            println!("  [VIOLATION] compiled {name}: output diverged");
            bad += 1;
        }
        if comp.store != seq.store {
            println!("  [VIOLATION] compiled {name}: store bits diverged");
            bad += 1;
        }
        if comp.stats.total_cost != seq.stats.total_cost {
            println!(
                "  [VIOLATION] compiled {name}: fuel diverged: {} vs {}",
                comp.stats.total_cost, seq.stats.total_cost
            );
            bad += 1;
        }
        for (stmt, want) in &seq.stats.loops {
            match comp.stats.loops.get(stmt) {
                Some(got)
                    if got.invocations == want.invocations && got.total_cost == want.total_cost => {
                }
                _ => {
                    println!("  [VIOLATION] compiled {name}: loop stats diverged at {stmt:?}");
                    bad += 1;
                }
            }
        }
        println!(
            "compiled {name}: {} loop entr(ies) compiled, {} fallback(s), {}",
            dispatch.compiled,
            dispatch.fallback_count(),
            if bad == 0 {
                "byte-identical"
            } else {
                "DIVERGED"
            }
        );
        bad
    }

    println!(
        "compiled sweep: {} target(s) + sparse kernels + {RANDOM_PROGRAMS} randomized program(s)",
        targets.len()
    );
    let mut violations = 0usize;
    let mut sampled = 0usize;
    let mut compiled_total = 0u64;
    for (name, src) in targets {
        let rep = match compile_source(src, DriverOptions::with_iaa()) {
            Ok(r) => r,
            Err(e) => die(&format!("compiled {name}: parse error: {e}")),
        };
        violations += audit_one(name, &rep, &[], &mut compiled_total);
        sampled += 1;
    }
    for k in kernels(&SparseScale::test(Structure::Uniform, config.seed | 1)) {
        let rep = match compile_source(&k.source, DriverOptions::with_iaa()) {
            Ok(r) => r,
            Err(e) => die(&format!("compiled sparse/{}: parse error: {e}", k.name)),
        };
        let presets = k.resolve_presets(&rep.program);
        let name = format!("sparse/{}", k.name);
        violations += audit_one(&name, &rep, &presets, &mut compiled_total);
        sampled += 1;
    }
    let mut rng = SplitMix64::new(config.seed ^ 0xB17E_C0DE);
    for i in 0..RANDOM_PROGRAMS {
        let src = random_loop_program(&mut rng);
        let rep = match compile_source(&src, DriverOptions::with_iaa()) {
            Ok(r) => r,
            Err(e) => die(&format!("compiled random-{i}: parse error: {e}")),
        };
        let name = format!("random-{i}");
        violations += audit_one(&name, &rep, &[], &mut compiled_total);
        sampled += 1;
    }
    println!("compiled sweep: {sampled} program(s), {compiled_total} loop entr(ies) compiled");
    if compiled_total == 0 {
        println!(
            "  [VIOLATION] compiled sweep: no loop compiled — the bytecode tier regressed to \
             the tree-walk"
        );
        violations += 1;
    }
    (sampled, violations)
}

/// Replays `rep` under `seeds` randomized fault schedules through the
/// hybrid runtime and checks every run completes with sequential
/// semantics. Returns the number of parity breaks (each is a soundness
/// violation: the recovery path corrupted an observable result).
fn chaos_sweep(name: &str, rep: &CompilationReport, base_seed: u64, seeds: usize) -> usize {
    const FAULT_RATE_PER_MILLE: u32 = 400;
    const STALL_MS: u64 = 150;
    let config = HybridConfig {
        worker_deadline_ms: Some(50),
        quarantine_retries: 1,
        ..HybridConfig::default()
    };
    let seq = match Interp::new(&rep.program).run() {
        Ok(o) => o,
        Err(e) => die(&format!("{name}: sequential run failed: {e}")),
    };
    let mut breaks = 0usize;
    let mut faults_fired = 0usize;
    for i in 0..seeds {
        let seed = base_seed
            .wrapping_add(i as u64)
            .wrapping_mul(2)
            .wrapping_add(1);
        let plan = FaultPlan::randomized(seed, FAULT_RATE_PER_MILLE, STALL_MS);
        let (hybrid, plan) = match run_hybrid_with_faults(rep, config, plan) {
            Ok(r) => r,
            Err(e) => {
                println!("  [VIOLATION] chaos seed {seed}: run aborted: {e}");
                breaks += 1;
                continue;
            }
        };
        faults_fired += plan.fired().len();
        if let Some(detail) = parity_break(rep, &seq.output, &seq.store, &hybrid.outcome) {
            println!("  [VIOLATION] chaos seed {seed}: {detail}");
            breaks += 1;
        }
    }
    println!(
        "{name}: chaos sweep, {seeds} seed(s), {faults_fired} fault(s) fired, {breaks} parity \
         break(s)"
    );
    breaks
}

/// First observable divergence between the chaos run and the sequential
/// baseline, or `None` for parity. Reals compare with a relative
/// tolerance: a *successful* parallel reduction reassociates the sum
/// and may move the last ulp, which is not a recovery failure.
fn parity_break(
    rep: &CompilationReport,
    seq_output: &[String],
    seq_store: &Store,
    got: &irr_exec::ExecOutcome,
) -> Option<String> {
    fn reals_eq(a: f64, b: f64) -> bool {
        a == b || (a - b).abs() <= 1e-9 * a.abs().max(b.abs())
    }
    if got.output.len() != seq_output.len() {
        return Some("output length differs".into());
    }
    for (have, want) in got.output.iter().zip(seq_output) {
        let close = match (have.parse::<f64>(), want.parse::<f64>()) {
            (Ok(h), Ok(w)) => reals_eq(h, w),
            _ => have == want,
        };
        if !close {
            return Some(format!("output differs: {have} vs {want}"));
        }
    }
    let privatized: std::collections::HashSet<_> = rep
        .verdicts
        .iter()
        .flat_map(|v| {
            v.privatized_scalars
                .iter()
                .copied()
                .chain(v.privatized_arrays.iter().map(|(a, _)| *a))
        })
        .collect();
    for (vid, info) in rep.program.symbols.iter() {
        if privatized.contains(&vid) {
            continue;
        }
        if info.is_array() {
            match (seq_store.array_as_reals(vid), got.store.array_as_reals(vid)) {
                (Some(want), Some(have)) if want.len() == have.len() => {
                    for (k, (w, h)) in want.iter().zip(&have).enumerate() {
                        if !reals_eq(*w, *h) {
                            return Some(format!(
                                "array {}({}) differs: {h} vs {w}",
                                info.name,
                                k + 1
                            ));
                        }
                    }
                }
                (w, h) if w == h => {}
                _ => return Some(format!("array {} materialization differs", info.name)),
            }
        } else {
            let (want, have) = (seq_store.scalar(vid), got.store.scalar(vid));
            let close = match (want, have) {
                (Value::Real(w), Value::Real(h)) => reals_eq(w, h),
                _ => want == have,
            };
            if !close {
                return Some(format!(
                    "scalar {} differs: {have:?} vs {want:?}",
                    info.name
                ));
            }
        }
    }
    None
}

fn die(msg: &str) -> ! {
    eprintln!("sanitizer-audit: {msg}");
    std::process::exit(2);
}
