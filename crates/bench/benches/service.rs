//! Load generator for the analysis service: a deterministic mixed
//! request stream — generated sparse kernels, the five figure
//! benchmarks, and the malformed-program corpus — pushed through a
//! budgeted [`irr_service::Service`] in a semi-open loop (a bounded
//! window of in-flight requests, so admission control is exercised
//! without drowning the pool).
//!
//! Emitted into the `--json` report:
//!
//! - timed entries `service/latency/{p50,p99}` — end-to-end response
//!   latency percentiles in nanoseconds (queue wait included), so the
//!   CI soft perf gate (`--baseline` + `--regress-threshold`) watches
//!   the tail, not just the middle;
//! - annotations: request/completion/shed counts, cache hits and the
//!   hit rate (per-mille), degraded counts by reason, parse errors,
//!   caught panics, and the per-fault fired counts.
//!
//! The stream completes or the binary fails: every response must carry
//! a known reason code, and every caught panic must be an injected
//! one — an escaped or unattributed panic is a hard error, which is
//! what makes the CI smoke run (1k requests, tight budgets) a
//! robustness gate and not just a timer.
//!
//! Configuration is by environment (bare arguments are harness
//! filters):
//!
//! | variable             | default | meaning                          |
//! |----------------------|---------|----------------------------------|
//! | `SERVICE_REQUESTS`   | 10000   | requests in the stream           |
//! | `SERVICE_WORKERS`    | 4       | worker threads                   |
//! | `SERVICE_QUEUE`      | 64      | admission-queue capacity         |
//! | `SERVICE_FUEL`       | 2000000 | per-rung fuel (0 = unmetered)    |
//! | `SERVICE_WALL_MS`    | 200     | per-request deadline (0 = none)  |
//! | `SERVICE_FAULT_RATE` | 20      | injected faults per 1000 requests|
//! | `SERVICE_SEED`       | 0x5eed  | stream + fault randomization     |
//!
//! ```sh
//! cargo bench -p irr-bench --bench service -- --json BENCH_service.json
//! SERVICE_REQUESTS=1000 SERVICE_FUEL=30000 cargo bench -p irr-bench --bench service
//! ```

use irr_bench::harness::Runner;
use irr_exec::SplitMix64;
use irr_programs::sparse::{kernels, producer_kernels, SparseScale};
use irr_service::{Service, ServiceConfig, ServiceFaultPlan, Submitted};
use irr_sparse::Structure;
use std::collections::{HashMap, VecDeque};
use std::time::Duration;

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// The source pool the stream draws from: `(name, source, well_formed)`.
fn pool() -> Vec<(String, String, bool)> {
    let mut out = Vec::new();
    for (structure, tag) in [(Structure::Uniform, "uni"), (Structure::PowerLaw, "pow")] {
        let scale = SparseScale::test(structure, 0xbeef);
        for k in kernels(&scale).into_iter().chain(producer_kernels(&scale)) {
            out.push((format!("{}-{tag}", k.name), k.source, true));
        }
    }
    for b in irr_programs::all(irr_programs::Scale::Test) {
        out.push((b.name.to_string(), b.source, true));
    }
    for c in irr_frontend::malformed_corpus(40) {
        out.push((c.name.to_string(), c.source, false));
    }
    out
}

fn percentile(sorted_ns: &[u128], p: f64) -> u128 {
    if sorted_ns.is_empty() {
        return 0;
    }
    let idx = ((sorted_ns.len() - 1) as f64 * p).round() as usize;
    sorted_ns[idx]
}

fn main() {
    // Injected panics are caught and attributed by the service; keep
    // their default-hook backtraces out of the log. Real panics still
    // print.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let injected = info
            .payload()
            .downcast_ref::<&str>()
            .is_some_and(|s| s.contains("injected analysis fault"));
        if !injected {
            default_hook(info);
        }
    }));

    let runner = Runner::from_env();
    let requests = if runner.is_check_only() {
        200
    } else {
        env_u64("SERVICE_REQUESTS", 10_000) as usize
    };
    let workers = env_u64("SERVICE_WORKERS", 4) as usize;
    let queue = env_u64("SERVICE_QUEUE", 64) as usize;
    let fuel = match env_u64("SERVICE_FUEL", 2_000_000) {
        0 => None,
        f => Some(f),
    };
    let wall = match env_u64("SERVICE_WALL_MS", 200) {
        0 => None,
        ms => Some(Duration::from_millis(ms)),
    };
    let fault_rate = env_u64("SERVICE_FAULT_RATE", 20) as u32;
    let seed = env_u64("SERVICE_SEED", 0x5eed);

    let pool = pool();
    let well_formed: Vec<usize> = (0..pool.len()).filter(|&i| pool[i].2).collect();
    let malformed: Vec<usize> = (0..pool.len()).filter(|&i| !pool[i].2).collect();

    let svc = Service::start(ServiceConfig {
        workers,
        queue_capacity: queue,
        fuel,
        wall_budget: wall,
        fault_plan: if fault_rate > 0 {
            ServiceFaultPlan::randomized(seed, fault_rate, 5)
        } else {
            ServiceFaultPlan::none()
        },
        ..ServiceConfig::default()
    });

    // Semi-open loop: a paced phase keeps at most `window` requests in
    // flight (draining the oldest before submitting), and every eighth
    // block of 64 requests is an unpaced burst that slams the bounded
    // queue — so both completions and reason-coded sheds are exercised.
    let window = (queue / 2).max(workers + 1);
    let mut rng = SplitMix64::new(seed);
    let mut inflight: VecDeque<std::sync::mpsc::Receiver<irr_service::AnalysisResponse>> =
        VecDeque::new();
    let mut latencies_ns: Vec<u128> = Vec::with_capacity(requests);
    let mut reasons: HashMap<&'static str, u64> = HashMap::new();
    let drain = |rx: std::sync::mpsc::Receiver<irr_service::AnalysisResponse>,
                 latencies_ns: &mut Vec<u128>,
                 reasons: &mut HashMap<&'static str, u64>| {
        let resp = rx.recv().expect("worker replies");
        latencies_ns.push(resp.latency.as_nanos());
        *reasons.entry(resp.reason_code()).or_insert(0) += 1;
    };

    let t0 = std::time::Instant::now();
    for i in 0..requests {
        // 70% well-formed (so the cache and the ladder do real work),
        // 30% malformed (so the parse front door does).
        let idx = if rng.next_u64() % 10 < 7 {
            well_formed[(rng.next_u64() % well_formed.len() as u64) as usize]
        } else {
            malformed[(rng.next_u64() % malformed.len() as u64) as usize]
        };
        let (name, source, _) = &pool[idx];
        let bursting = (i / 64) % 8 == 7;
        if !bursting {
            while inflight.len() >= window {
                let rx = inflight.pop_front().unwrap();
                drain(rx, &mut latencies_ns, &mut reasons);
            }
        }
        match svc.submit(name, source) {
            Submitted::Accepted(rx) => {
                inflight.push_back(rx);
            }
            Submitted::Shed(resp) => {
                *reasons.entry(resp.reason_code()).or_insert(0) += 1;
            }
        }
    }
    for rx in inflight {
        drain(rx, &mut latencies_ns, &mut reasons);
    }
    let elapsed = t0.elapsed();

    // ---- hard robustness checks -----------------------------------------
    let known = [
        "ok",
        "fuel",
        "wall-clock",
        "quarantined",
        "parse-error",
        "panic",
        "shed:queue-full",
        "shed:shutting-down",
    ];
    for (code, n) in &reasons {
        assert!(known.contains(code), "unknown reason code {code} x{n}");
    }
    let injected_panics = svc.faults_fired_count("panic-in-analysis") as u64;
    let stats = svc.stats();
    assert_eq!(
        stats.panics_caught, injected_panics,
        "a panic escaped attribution: {} caught vs {} injected",
        stats.panics_caught, injected_panics
    );
    assert_eq!(stats.submitted, requests as u64);
    assert_eq!(
        stats.completed + stats.shed_queue_full + stats.shed_shutdown,
        requests as u64,
        "requests lost in flight"
    );

    // ---- report ---------------------------------------------------------
    latencies_ns.sort_unstable();
    let p50 = percentile(&latencies_ns, 0.50);
    let p99 = percentile(&latencies_ns, 0.99);
    println!(
        "service load: {requests} requests in {:.2}s ({:.0} req/s, {workers} workers)",
        elapsed.as_secs_f64(),
        requests as f64 / elapsed.as_secs_f64().max(1e-9),
    );
    println!(
        "  latency p50 {:.3} ms, p99 {:.3} ms (completed {})",
        p50 as f64 / 1e6,
        p99 as f64 / 1e6,
        stats.completed
    );
    println!(
        "  cache {:.1}% hit, shed {:.1}%, degraded {}, parse errors {}, panics caught {}",
        stats.cache_hit_rate() * 100.0,
        stats.shed_rate() * 100.0,
        stats.degraded,
        stats.parse_errors,
        stats.panics_caught
    );
    let mut codes: Vec<_> = reasons.iter().collect();
    codes.sort();
    for (code, n) in codes {
        println!("    {code}: {n}");
    }

    runner.record_value("service/latency/p50", p50);
    runner.record_value("service/latency/p99", p99);
    runner.annotate("service/requests", requests as u64);
    runner.annotate("service/completed", stats.completed);
    runner.annotate("service/shed_queue_full", stats.shed_queue_full);
    runner.annotate("service/cache_hits", stats.cache_hits);
    runner.annotate(
        "service/cache_hit_rate_x1000",
        (stats.cache_hit_rate() * 1000.0) as u64,
    );
    runner.annotate(
        "service/shed_rate_x1000",
        (stats.shed_rate() * 1000.0) as u64,
    );
    runner.annotate("service/degraded", stats.degraded);
    runner.annotate("service/fuel_exhaustions", stats.fuel_exhaustions);
    runner.annotate("service/wall_exhaustions", stats.wall_exhaustions);
    runner.annotate("service/quarantined_served", stats.quarantined_served);
    runner.annotate("service/parse_errors", stats.parse_errors);
    runner.annotate("service/panics_caught", stats.panics_caught);
    for (reason, count) in reasons {
        runner.annotate(&format!("service/reason/{reason}"), count);
    }
    for fault in [
        "panic-in-analysis",
        "stalled-worker",
        "poisoned-cache-entry",
        "budget-starvation",
    ] {
        runner.annotate(
            &format!("service/fault/{fault}"),
            svc.faults_fired_count(fault) as u64,
        );
    }
    drop(svc);
    std::process::exit(runner.finalize());
}
