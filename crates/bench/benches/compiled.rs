//! The compiled-tier sweep: tree-walk interpreter vs the register
//! bytecode backend, single-threaded and inside parallel workers, on
//! the Figure-16 sparse kernels at 64k–1M nonzeros.
//!
//! Every swept combination records four timed entries,
//! `compiled/{kernel}/{nnz}/{interp,bytecode,hybrid_compiled,hybrid_treewalk}`:
//!
//! - `interp` — the sequential tree walk, the baseline every prior
//!   speedup in this repo was measured against.
//! - `bytecode` — the same program through [`CompiledDispatch`]: every
//!   verdict-annotated leaf `do` nest lowers to register bytecode
//!   (typed-specialized where the nest types statically) and the rest
//!   of the program tree-walks.
//! - `hybrid_compiled` / `hybrid_treewalk` — the hybrid runtime with
//!   bytecode workers on and off, isolating what the compiled tier
//!   contributes inside the parallel path.
//!
//! Annotations (scaled by 1000 where fractional):
//!
//! - `speedup_x1000` — interp median over bytecode median. The
//!   acceptance floor is 10x on `spmv` at 1M nonzeros and a 5x
//!   geomean across the swept kernels at the largest size
//!   (`compiled/geomean_speedup_x1000`).
//! - `hybrid_speedup_x1000` — hybrid-treewalk over hybrid-compiled.
//! - `compiled_loops` / `compiled_worker_dispatches` /
//!   `compiled_fallbacks` — sequential-tier bytecode entries, parallel
//!   dispatches with bytecode workers, and reason-coded interpreter
//!   fallbacks, from one instrumented hybrid run. CI gates on the
//!   sweep keeping the first two jointly nonzero.
//! - `compiled/opcodes/{name}` — per-opcode dispatch counts from one
//!   profiled `spmv` pass at the largest size. Profiling pins the
//!   untyped per-op path (the typed and pinned fast paths have no
//!   per-op hook by design), so these counts describe the opcode mix,
//!   not the timed runs' dispatch rate.
//!
//! The sweep is capped by `COMPILED_MAX_NNZ` (default 1,048,576; CI
//! smoke runs can lower it, unoptimized builds default to 65,536).
//!
//! ```sh
//! cargo bench -p irr-bench --bench compiled -- --json BENCH_compiled.json
//! COMPILED_MAX_NNZ=65536 cargo bench -p irr-bench --bench compiled -- --samples 3
//! ```

use irr_bench::harness::Runner;
use irr_driver::{compile_source, DriverOptions};
use irr_exec::{CompiledDispatch, CompiledProfile, Interp, OPCODE_NAMES};
use irr_programs::sparse::{kernels, SparseScale};
use irr_runtime::{run_hybrid_seeded, HybridConfig};
use irr_sparse::Structure;

/// The Figure-16 kernels: affine scale, row/column gather, permutation
/// scatter, and the offset–length SpMV walk — one per superinstruction
/// family the lowering recognizes.
const SWEPT: [&str; 5] = ["spmv", "scale", "colscale", "permute", "rowgather"];

fn max_nnz() -> usize {
    let default = if cfg!(debug_assertions) {
        1 << 16
    } else {
        1 << 20
    };
    std::env::var("COMPILED_MAX_NNZ")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn hybrid_config(compiled: bool) -> HybridConfig {
    HybridConfig {
        enable_compiled: compiled,
        ..HybridConfig::default()
    }
}

fn main() {
    let r = Runner::from_env();
    let cap = max_nnz();
    let sizes: Vec<usize> = [1 << 16, 1 << 18, 1 << 20]
        .into_iter()
        .filter(|&s| s <= cap)
        .collect();
    assert!(
        !sizes.is_empty(),
        "COMPILED_MAX_NNZ below the smallest size"
    );
    let top = *sizes.last().expect("non-empty sizes");
    println!("compiled sweep: nnz {sizes:?} (cap {cap}), kernels {SWEPT:?}");

    // (kernel, single-thread speedup) at the largest size, for the
    // geomean gate.
    let mut top_speedups: Vec<(String, f64)> = Vec::new();
    for &nnz in &sizes {
        let scale = SparseScale {
            n: (nnz / 16).max(1),
            nnz,
            structure: Structure::Uniform,
            seed: 0xCC5,
        };
        for k in kernels(&scale) {
            if !SWEPT.contains(&k.name) {
                continue;
            }
            let rep = compile_source(&k.source, DriverOptions::with_iaa()).expect("kernel parses");
            let presets = k.resolve_presets(&rep.program);

            let combo = format!("{}/{}", k.name, nnz);
            let mut g = r.group("compiled");
            g.sample_size(if nnz >= 1 << 20 { 3 } else { 5 });
            g.bench_function(&format!("{combo}/interp"), || {
                let mut it = Interp::new(&rep.program);
                for (var, data) in &presets {
                    it.preset_array(*var, data.clone());
                }
                it.run().expect("interpreter run")
            });
            g.bench_function(&format!("{combo}/bytecode"), || {
                let mut it = Interp::new(&rep.program);
                for (var, data) in &presets {
                    it.preset_array(*var, data.clone());
                }
                let mut d = CompiledDispatch::new();
                it.run_dispatched(&mut d).expect("bytecode run");
                assert!(d.compiled > 0, "{}: nothing compiled", k.name);
                d.compiled
            });
            g.bench_function(&format!("{combo}/hybrid_compiled"), || {
                run_hybrid_seeded(&rep, hybrid_config(true), &presets).expect("hybrid run")
            });
            g.bench_function(&format!("{combo}/hybrid_treewalk"), || {
                run_hybrid_seeded(&rep, hybrid_config(false), &presets).expect("hybrid run")
            });
            g.finish();

            if let (Some(seq), Some(byte)) = (
                r.median_of(&format!("compiled/{combo}/interp")),
                r.median_of(&format!("compiled/{combo}/bytecode")),
            ) {
                if byte > 0 {
                    let speedup = seq as f64 / byte as f64;
                    r.annotate(
                        &format!("compiled/{combo}/speedup_x1000"),
                        (speedup * 1000.0) as u64,
                    );
                    if nnz == top {
                        top_speedups.push((k.name.to_string(), speedup));
                    }
                }
            }
            if let (Some(tree), Some(comp)) = (
                r.median_of(&format!("compiled/{combo}/hybrid_treewalk")),
                r.median_of(&format!("compiled/{combo}/hybrid_compiled")),
            ) {
                if comp > 0 {
                    r.annotate(
                        &format!("compiled/{combo}/hybrid_speedup_x1000"),
                        (tree as f64 / comp as f64 * 1000.0) as u64,
                    );
                }
            }
            let probe = run_hybrid_seeded(&rep, hybrid_config(true), &presets)
                .expect("telemetry probe run");
            r.annotate(
                &format!("compiled/{combo}/compiled_loops"),
                probe.telemetry.compiled_loops,
            );
            r.annotate(
                &format!("compiled/{combo}/compiled_worker_dispatches"),
                probe.telemetry.compiled_worker_dispatches,
            );
            r.annotate(
                &format!("compiled/{combo}/compiled_fallbacks"),
                probe.telemetry.compiled_fallbacks(),
            );
        }
    }

    // Opcode mix of the flagship kernel: one profiled pass (profiling
    // forces the untyped per-op path, so this is not a timed entry).
    let scale = SparseScale {
        n: (top / 16).max(1),
        nnz: top,
        structure: Structure::Uniform,
        seed: 0xCC5,
    };
    if let Some(k) = kernels(&scale).into_iter().find(|k| k.name == "spmv") {
        let rep = compile_source(&k.source, DriverOptions::with_iaa()).expect("kernel parses");
        let presets = k.resolve_presets(&rep.program);
        let mut it = Interp::new(&rep.program);
        for (var, data) in &presets {
            it.preset_array(*var, data.clone());
        }
        it.compiled_profile = Some(Box::new(CompiledProfile::new()));
        let mut d = CompiledDispatch::new();
        it.exec_proc_with(rep.program.main(), &mut d)
            .expect("profiled run");
        let prof = it
            .compiled_profile
            .take()
            .expect("profile survives the run");
        for (i, &count) in prof.counts.iter().enumerate() {
            if count > 0 {
                r.annotate(&format!("compiled/opcodes/{}", OPCODE_NAMES[i]), count);
            }
        }
    }

    if !top_speedups.is_empty() {
        let geomean = (top_speedups.iter().map(|(_, s)| s.ln()).sum::<f64>()
            / top_speedups.len() as f64)
            .exp();
        r.annotate("compiled/geomean_speedup_x1000", (geomean * 1000.0) as u64);
        println!("\nsingle-thread bytecode speedup at {top} nnz:");
        for (name, s) in &top_speedups {
            println!("  {name:<12} {s:.2}x");
        }
        println!("  {:<12} {geomean:.2}x", "geomean");
    }
    std::process::exit(r.finalize());
}
