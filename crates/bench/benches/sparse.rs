//! The SPARK00-style scaling sweep: generated sparse kernels timed
//! sequentially and through the hybrid runtime across nonzero counts
//! and matrix structures, emitting speedup-vs-nnz curves.
//!
//! Every swept combination records two timed entries,
//! `sparse/{kernel}/{structure}/{nnz}/{seq,hybrid}`, plus two
//! annotations (scaled by 1000 so the JSON stays integer-only):
//!
//! - `speedup_x1000` — measured: sequential median over hybrid median.
//!   On a single-core host this hovers near 1.0x at best; it captures
//!   the *overhead* of dispatch, inspection, and commit, not the
//!   parallel win.
//! - `modeled_speedup_16p_x1000` — the paper's Fig. 16 methodology:
//!   per-iteration costs of every dispatchable loop (compile-time
//!   parallel and runtime-guarded) are profiled, then replayed on the
//!   Origin 2000 machine model with 16 processors.
//!
//! Every combination also annotates `guarded_entries_retired`,
//! `promoted_by_evolution`, and `promoted_interproc` from one
//! instrumented hybrid run: the runtime inspections the value-evolution
//! analysis discharged at compile time, and how many of those
//! promotions needed the interprocedural summaries (the call-structured
//! kernels keep the last one nonzero). The producer-loop kernels must
//! keep the first two nonzero — CI gates on either sum regressing to
//! zero.
//!
//! Reading a curve: fix a kernel and structure, follow the annotation
//! across nnz.
//!
//! The sweep is capped by the `SPARSE_MAX_NNZ` environment variable
//! (default 1,048,576): CI smoke runs set 262144, a full local sweep
//! can raise it toward the generator's 10M ceiling.
//!
//! ```sh
//! cargo bench -p irr-bench --bench sparse -- --json BENCH_sparse.json
//! SPARSE_MAX_NNZ=262144 cargo bench -p irr-bench --bench sparse -- --samples 3
//! ```

use irr_bench::harness::Runner;
use irr_bench::profile_report_seeded;
use irr_driver::{compile_source, DispatchTier, DriverOptions};
use irr_exec::{simulate_speedup, Interp, MachineModel};
use irr_programs::sparse::{
    interproc_kernels, kernels, producer_kernels, ExpectedTier, SparseScale,
};
use irr_runtime::{run_hybrid_seeded, HybridConfig};
use irr_sparse::Structure;

/// The kernels swept (a subset of the library: the three dispatch
/// tiers and all three execution strategies are each represented,
/// plus the producer-loop variants whose consumers the value-evolution
/// analysis promotes to compile-time parallel, plus the call-structured
/// variants that only promote through the interprocedural summaries).
const SWEPT: [&str; 9] = [
    "spmv",
    "scale",
    "colscale",
    "permute",
    "rowgather",
    "lufront_producer",
    "permute_producer",
    "lufront_callchain",
    "permute_callchain",
];

fn max_nnz() -> usize {
    // Unoptimized builds (`cargo test --benches` smoke runs) default to
    // the smallest size; `cargo bench` sweeps to 1M unless overridden.
    let default = if cfg!(debug_assertions) {
        1 << 16
    } else {
        1 << 20
    };
    std::env::var("SPARSE_MAX_NNZ")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let r = Runner::from_env();
    let cap = max_nnz();
    let sizes: Vec<usize> = [1 << 16, 1 << 18, 1 << 20, 1 << 22, 10_000_000]
        .into_iter()
        .filter(|&s| s <= cap)
        .collect();
    assert!(!sizes.is_empty(), "SPARSE_MAX_NNZ below the smallest size");
    let structures = [Structure::Uniform, Structure::PowerLaw];
    println!(
        "sparse sweep: nnz {:?} (cap {cap}), structures {:?}",
        sizes,
        structures.iter().map(Structure::tag).collect::<Vec<_>>()
    );

    let mut curves: Vec<(String, usize, f64, f64)> = Vec::new();
    for &nnz in &sizes {
        for structure in structures {
            let scale = SparseScale {
                n: (nnz / 16).max(1),
                nnz,
                structure,
                seed: 0xCC5,
            };
            for k in kernels(&scale)
                .into_iter()
                .chain(producer_kernels(&scale))
                .chain(interproc_kernels(&scale))
            {
                if !SWEPT.contains(&k.name) {
                    continue;
                }
                let rep =
                    compile_source(&k.source, DriverOptions::with_iaa()).expect("kernel parses");
                let v = rep.verdict(&k.label).expect("loop verdict");
                let tier_ok = match k.expected_tier {
                    ExpectedTier::CompileTimeParallel => {
                        matches!(v.tier, DispatchTier::CompileTimeParallel)
                    }
                    ExpectedTier::RuntimeGuarded => {
                        matches!(v.tier, DispatchTier::RuntimeGuarded(_))
                    }
                    ExpectedTier::Sequential => matches!(v.tier, DispatchTier::Sequential),
                };
                assert!(tier_ok, "{}: verdict drifted: {:?}", k.name, v.tier);
                let presets = k.resolve_presets(&rep.program);

                let combo = format!("{}/{}/{}", k.name, structure.tag(), nnz);
                let mut g = r.group("sparse");
                g.sample_size(if nnz >= 1 << 20 { 3 } else { 5 });
                g.bench_function(&format!("{combo}/seq"), || {
                    let mut it = Interp::new(&rep.program);
                    for (var, data) in &presets {
                        it.preset_array(*var, data.clone());
                    }
                    it.run().expect("sequential run")
                });
                g.bench_function(&format!("{combo}/hybrid"), || {
                    run_hybrid_seeded(&rep, HybridConfig::default(), &presets).expect("hybrid run")
                });
                g.finish();

                let measured = match (
                    r.median_of(&format!("sparse/{combo}/seq")),
                    r.median_of(&format!("sparse/{combo}/hybrid")),
                ) {
                    (Some(seq), Some(hyb)) if hyb > 0 => {
                        let speedup = seq as f64 / hyb as f64;
                        r.annotate(
                            &format!("sparse/{combo}/speedup_x1000"),
                            (speedup * 1000.0) as u64,
                        );
                        speedup
                    }
                    _ => continue,
                };
                let profile = profile_report_seeded(&rep, &presets);
                let modeled = simulate_speedup(&profile, 16, &MachineModel::origin2000());
                r.annotate(
                    &format!("sparse/{combo}/modeled_speedup_16p_x1000"),
                    (modeled * 1000.0) as u64,
                );
                let probe = run_hybrid_seeded(&rep, HybridConfig::default(), &presets)
                    .expect("telemetry probe run");
                r.annotate(
                    &format!("sparse/{combo}/guarded_entries_retired"),
                    probe.telemetry.inspections_retired,
                );
                r.annotate(
                    &format!("sparse/{combo}/promoted_by_evolution"),
                    probe.telemetry.promoted_by_evolution,
                );
                r.annotate(
                    &format!("sparse/{combo}/promoted_interproc"),
                    probe.telemetry.promoted_interproc,
                );
                curves.push((
                    format!("{}/{}", k.name, structure.tag()),
                    nnz,
                    measured,
                    modeled,
                ));
            }
        }
    }

    if !curves.is_empty() {
        println!("\nspeedup-vs-nnz curves (measured seq/hybrid, modeled 16p):");
        let mut names: Vec<&String> = Vec::new();
        for (n, _, _, _) in &curves {
            if !names.contains(&n) {
                names.push(n);
            }
        }
        for name in names {
            let pts: Vec<String> = curves
                .iter()
                .filter(|(n, _, _, _)| n == name)
                .map(|(_, nnz, s, m)| format!("{nnz}: {s:.2}x/{m:.2}x"))
                .collect();
            println!("  {name:<20} {}", pts.join("  "));
        }
    }
    std::process::exit(r.finalize());
}
