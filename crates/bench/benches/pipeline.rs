//! Benchmarks of the substrate: the Fig. 15 scalar passes, graph
//! construction, the interpreter, and the Fig. 16 speedup simulation.

use irr_bench::harness::Runner;
use irr_bench::{profile_run, Config};
use irr_exec::{simulate_speedup, Interp, MachineModel};
use irr_frontend::parse_program;
use irr_graph::{Cfg, Hcg};
use irr_passes::{
    eliminate_dead_code, forward_substitute, inline_small_procedures, normalize_loops,
    propagate_constants, substitute_induction_variables,
};
use irr_programs::{all, Scale};

fn passes(r: &Runner) {
    let b = all(Scale::Test)
        .into_iter()
        .find(|b| b.name == "DYFESM")
        .unwrap();
    let program = parse_program(&b.source).unwrap();
    let mut g = r.group("passes");
    g.bench_with_setup(
        "inline",
        || program.clone(),
        |mut p| inline_small_procedures(&mut p, 50),
    );
    g.bench_with_setup(
        "constprop",
        || program.clone(),
        |mut p| propagate_constants(&mut p),
    );
    g.bench_with_setup(
        "forward-sub",
        || program.clone(),
        |mut p| forward_substitute(&mut p),
    );
    g.bench_with_setup(
        "induction",
        || program.clone(),
        |mut p| substitute_induction_variables(&mut p),
    );
    g.bench_with_setup(
        "normalize",
        || program.clone(),
        |mut p| normalize_loops(&mut p),
    );
    g.bench_with_setup(
        "dce",
        || program.clone(),
        |mut p| eliminate_dead_code(&mut p),
    );
    g.finish();
}

fn graphs(r: &Runner) {
    let b = all(Scale::Test)
        .into_iter()
        .find(|b| b.name == "TREE")
        .unwrap();
    let program = parse_program(&b.source).unwrap();
    let mut g = r.group("graphs");
    g.bench_function("hcg-build", || Hcg::build(&program));
    let main_body = program.procedures[program.main().index()].body.clone();
    g.bench_function("cfg-build", || Cfg::build(&program, &main_body));
    g.finish();
}

fn execution(r: &Runner) {
    let mut g = r.group("execution");
    g.sample_size(10);
    for b in all(Scale::Test) {
        let program = parse_program(&b.source).unwrap();
        g.bench_function(&format!("interpret/{}", b.name), || {
            Interp::new(&program).run().expect("runs")
        });
    }
    // Speedup simulation itself (per Fig. 16 data point).
    let tree = all(Scale::Test)
        .into_iter()
        .find(|b| b.name == "TREE")
        .unwrap();
    let run = profile_run(&tree.source, Config::WithIaa);
    let origin = MachineModel::origin2000();
    g.bench_function("simulate-speedup-32", || {
        simulate_speedup(&run.profile, 32, &origin)
    });
    g.finish();
}

fn main() {
    let r = Runner::from_env();
    passes(&r);
    graphs(&r);
    execution(&r);
    std::process::exit(r.finalize());
}
