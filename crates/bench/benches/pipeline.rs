//! Benchmarks of the substrate: the Fig. 15 scalar passes, graph
//! construction, the interpreter, and the Fig. 16 speedup simulation.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use irr_bench::{profile_run, Config};
use irr_exec::{simulate_speedup, Interp, MachineModel};
use irr_frontend::parse_program;
use irr_graph::{Cfg, Hcg};
use irr_passes::{
    eliminate_dead_code, forward_substitute, inline_small_procedures, normalize_loops,
    propagate_constants, substitute_induction_variables,
};
use irr_programs::{all, Scale};

fn passes(c: &mut Criterion) {
    let b = all(Scale::Test)
        .into_iter()
        .find(|b| b.name == "DYFESM")
        .unwrap();
    let program = parse_program(&b.source).unwrap();
    let mut g = c.benchmark_group("passes");
    g.bench_function("inline", |bench| {
        bench.iter_batched(
            || program.clone(),
            |mut p| inline_small_procedures(&mut p, 50),
            BatchSize::SmallInput,
        )
    });
    g.bench_function("constprop", |bench| {
        bench.iter_batched(
            || program.clone(),
            |mut p| propagate_constants(&mut p),
            BatchSize::SmallInput,
        )
    });
    g.bench_function("forward-sub", |bench| {
        bench.iter_batched(
            || program.clone(),
            |mut p| forward_substitute(&mut p),
            BatchSize::SmallInput,
        )
    });
    g.bench_function("induction", |bench| {
        bench.iter_batched(
            || program.clone(),
            |mut p| substitute_induction_variables(&mut p),
            BatchSize::SmallInput,
        )
    });
    g.bench_function("normalize", |bench| {
        bench.iter_batched(
            || program.clone(),
            |mut p| normalize_loops(&mut p),
            BatchSize::SmallInput,
        )
    });
    g.bench_function("dce", |bench| {
        bench.iter_batched(
            || program.clone(),
            |mut p| eliminate_dead_code(&mut p),
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn graphs(c: &mut Criterion) {
    let b = all(Scale::Test)
        .into_iter()
        .find(|b| b.name == "TREE")
        .unwrap();
    let program = parse_program(&b.source).unwrap();
    let mut g = c.benchmark_group("graphs");
    g.bench_function("hcg-build", |bench| bench.iter(|| Hcg::build(&program)));
    let main_body = program.procedures[program.main().index()].body.clone();
    g.bench_function("cfg-build", |bench| {
        bench.iter(|| Cfg::build(&program, &main_body))
    });
    g.finish();
}

fn execution(c: &mut Criterion) {
    let mut g = c.benchmark_group("execution");
    g.sample_size(10);
    for b in all(Scale::Test) {
        let program = parse_program(&b.source).unwrap();
        g.bench_function(format!("interpret/{}", b.name), |bench| {
            bench.iter(|| Interp::new(&program).run().expect("runs"))
        });
    }
    // Speedup simulation itself (per Fig. 16 data point).
    let tree = all(Scale::Test)
        .into_iter()
        .find(|b| b.name == "TREE")
        .unwrap();
    let run = profile_run(&tree.source, Config::WithIaa);
    let origin = MachineModel::origin2000();
    g.bench_function("simulate-speedup-32", |bench| {
        bench.iter(|| simulate_speedup(&run.profile, 32, &origin))
    });
    g.finish();
}

criterion_group!(benches, passes, graphs, execution);
criterion_main!(benches);
