//! Benchmarks of the paper's analyses, including the ablations of
//! DESIGN.md §6:
//!
//! - whole-compiler throughput per benchmark kernel;
//! - demand-driven vs exhaustive property analysis;
//! - early termination on/off (Fig. 5 / Fig. 9);
//! - reverse-topological priority worklist vs FIFO (§3.2.2);
//! - interprocedural vs intraprocedural (the Fig. 15 reorganization);
//! - the §2 single-indexed analyses (bDFS-based);
//! - the §1 run-time-vs-compile-time trade-off, now including the
//!   hybrid runtime's versioned schedule cache.

use irr_bench::harness::Runner;
use irr_core::property::{ArrayPropertyAnalysis, SolverOptions};
use irr_core::{
    consecutively_written, find_index_gathering_loops, single_indexed_arrays, stack_access,
    AnalysisCtx, DistanceSpec, Property, PropertyQuery,
};
use irr_driver::{DispatchTier, DriverOptions};
use irr_exec::{
    exec_do_parallel, inspect_offset_length, ExecutionStrategy, FallbackReason, FaultKind,
    FaultPlan, Interp, LoopDispatcher, ParallelPlan,
};
use irr_frontend::{parse_program, Program, StmtId, StmtKind};
use irr_programs::{all, Scale};
use irr_runtime::{run_hybrid, run_hybrid_with_faults, HybridConfig, HybridDispatcher};
use irr_sanitizer::{audit_report, AuditConfig, AuditMode, DependenceTracer};
use irr_symbolic::{Section, SymExpr};

fn compile_benchmarks(r: &Runner) {
    let mut g = r.group("compile");
    g.sample_size(20);
    for b in all(Scale::Test) {
        let program = parse_program(&b.source).unwrap();
        g.bench_with_setup(
            &format!("{}/with-iaa", b.name),
            || program.clone(),
            |p| irr_driver::compile(p, DriverOptions::with_iaa()),
        );
        g.bench_with_setup(
            &format!("{}/without-iaa", b.name),
            || program.clone(),
            |p| irr_driver::compile(p, DriverOptions::without_iaa()),
        );
    }
    g.finish();
}

/// The DYFESM setup + query scenario used by several ablations.
fn dyfesm_scenario() -> (Program, &'static str) {
    let src = "program t
         integer i, j, pptr(101), iblen(100)
         real x(10000)
         call setup
         do 10 i = 1, 100
           do j = 1, iblen(i)
             x(pptr(i) + j - 1) = 1
           enddo
 10      continue
         end
         subroutine setup
         integer i2
         do i2 = 1, 100
           iblen(i2) = mod(i2, 7) + 1
         enddo
         pptr(1) = 1
         do i2 = 1, 100
           pptr(i2 + 1) = pptr(i2) + iblen(i2)
         enddo
         end";
    (parse_program(src).unwrap(), src)
}

fn labeled_loop(p: &Program, label: u32) -> StmtId {
    let mut all_s = Vec::new();
    for proc in &p.procedures {
        all_s.extend(p.stmts_in(&proc.body));
    }
    all_s
        .into_iter()
        .find(|s| matches!(p.stmt(*s).kind, StmtKind::Do { label: Some(l), .. } if l == label))
        .expect("labeled loop exists")
}

fn query_with(opts: SolverOptions, ctx: &AnalysisCtx<'_>, at: StmtId) -> bool {
    let p = ctx.program;
    let pptr = p.symbols.lookup("pptr").unwrap();
    let iblen = p.symbols.lookup("iblen").unwrap();
    let mut apa = ArrayPropertyAnalysis::with_options(ctx, opts);
    apa.check(&PropertyQuery {
        array: pptr,
        property: Property::ClosedFormDistance {
            distance: DistanceSpec::Array(iblen),
        },
        section: Section::range1(SymExpr::int(1), SymExpr::int(99)),
        at_stmt: at,
    })
}

fn solver_ablations(r: &Runner) {
    let (program, _) = dyfesm_scenario();
    let ctx = AnalysisCtx::new(&program);
    let at = labeled_loop(&program, 10);
    let mut g = r.group("query-solver");
    g.sample_size(30);
    let base = SolverOptions::default();
    assert!(query_with(base, &ctx, at));
    g.bench_function("default", || query_with(base, &ctx, at));
    g.bench_function("no-early-termination", || {
        query_with(
            SolverOptions {
                early_termination: false,
                ..base
            },
            &ctx,
            at,
        )
    });
    g.bench_function("fifo-worklist", || {
        query_with(
            SolverOptions {
                rtop_priority: false,
                ..base
            },
            &ctx,
            at,
        )
    });
    // Summary caching across queries: repeated queries on one engine.
    {
        let p = &program;
        let pptr = p.symbols.lookup("pptr").unwrap();
        let iblen = p.symbols.lookup("iblen").unwrap();
        let mut apa = ArrayPropertyAnalysis::new(&ctx);
        let q = PropertyQuery {
            array: pptr,
            property: Property::ClosedFormDistance {
                distance: DistanceSpec::Array(iblen),
            },
            section: Section::range1(SymExpr::int(1), SymExpr::int(99)),
            at_stmt: at,
        };
        apa.check(&q);
        g.bench_function("cached-requery", || apa.check(&q));
    }
    g.finish();
}

/// Demand-driven (only the queries clients need) vs exhaustive (verify a
/// battery of properties for every array everywhere) — the design choice
/// §3 calls out: "the cost of interprocedural array reaching definition
/// analysis and property checking is high".
fn demand_vs_exhaustive(r: &Runner) {
    let b = all(Scale::Test)
        .into_iter()
        .find(|b| b.name == "DYFESM")
        .unwrap();
    let program = parse_program(&b.source).unwrap();
    let mut g = r.group("demand-vs-exhaustive");
    g.sample_size(10);
    g.bench_with_setup(
        "demand-driven-pipeline",
        || program.clone(),
        |p| irr_driver::compile(p, DriverOptions::with_iaa()),
    );
    g.bench_function("exhaustive-all-arrays", || {
        let ctx = AnalysisCtx::new(&program);
        let mut apa = ArrayPropertyAnalysis::new(&ctx);
        let last = *program.procedures[program.main().index()]
            .body
            .last()
            .unwrap();
        let mut verified = 0;
        for (v, info) in program.symbols.iter() {
            if !info.is_array() {
                continue;
            }
            let battery = [
                Property::Injective,
                Property::MonotoneNonDecreasing,
                Property::ClosedFormBound {
                    lo: Some(SymExpr::int(0)),
                    hi: None,
                },
            ];
            for prop in battery {
                let q = PropertyQuery {
                    array: v,
                    property: prop,
                    section: Section::range1(SymExpr::int(1), SymExpr::int(50)),
                    at_stmt: last,
                };
                if apa.check(&q) {
                    verified += 1;
                }
            }
        }
        verified
    });
    g.finish();
}

fn single_indexed_analyses(r: &Runner) {
    let tree = all(Scale::Test)
        .into_iter()
        .find(|b| b.name == "TREE")
        .unwrap();
    let program = parse_program(&tree.source).unwrap();
    let ctx = AnalysisCtx::new(&program);
    let accel = program.find_procedure("accel").unwrap();
    let do10 = program
        .stmts_in(&program.procedure(accel).body)
        .into_iter()
        .find(|s| program.stmt(*s).kind.is_loop())
        .unwrap();
    let stack = program.symbols.lookup("stack").unwrap();
    let sptr = program.symbols.lookup("sptr").unwrap();
    let mut g = r.group("single-indexed");
    g.bench_function("detect", || single_indexed_arrays(&ctx, do10));
    g.bench_function("stack-access", || stack_access(&ctx, do10, stack, sptr));
    let bdna = all(Scale::Test)
        .into_iter()
        .find(|b| b.name == "BDNA")
        .unwrap();
    let bprog = parse_program(&bdna.source).unwrap();
    let bctx = AnalysisCtx::new(&bprog);
    let actfor = bprog.find_procedure("actfor").unwrap();
    let body = bprog.procedure(actfor).body.clone();
    g.bench_function("gather-scan", || find_index_gathering_loops(&bctx, &body));
    let gather = find_index_gathering_loops(&bctx, &body)[0].loop_stmt;
    let ind = bprog.symbols.lookup("ind").unwrap();
    let q = bprog.symbols.lookup("q").unwrap();
    g.bench_function("consecutively-written", || {
        consecutively_written(&bctx, gather, ind, q)
    });
    g.finish();
}

/// The flagship guarded loop: `p(i) = mod(i*3, n) + 1` is a permutation
/// (gcd(3, 512) = 1) the static injectivity checkers cannot derive, so
/// the compiler leaves a `RuntimeGuarded` verdict on `do 20`.
const GUARDED_SRC: &str = "program t
     integer i, n, p(512)
     real z(512), x(512)
     n = 512
     do i = 1, n
       p(i) = mod(i * 3, n) + 1
       x(i) = i * 1.0
     enddo
     do 20 i = 1, n
       z(p(i)) = x(i) * 2.0
 20  continue
     print z(1)
     end";

/// The paper's §1 argument against run-time tests: the inspector pays on
/// every execution, while the compile-time query pays once at compile
/// time. Compare the per-execution inspector cost against the (cached)
/// compile-time query — and against the hybrid runtime's middle ground,
/// where a versioned schedule cache turns re-entry into a few integer
/// compares.
fn runtime_vs_compile_time(r: &Runner) {
    let (program, _) = dyfesm_scenario();
    let store = Interp::new(&program).run().unwrap().store;
    let ptr = program.symbols.lookup("pptr").unwrap();
    let len = program.symbols.lookup("iblen").unwrap();
    let ctx = AnalysisCtx::new(&program);
    let at = labeled_loop(&program, 10);
    let mut g = r.group("runtime-vs-compile-time");
    g.bench_function("runtime-inspector-per-execution", || {
        inspect_offset_length(&store, ptr, len, 1, 100)
    });
    g.bench_function("compile-time-query-once", || {
        query_with(SolverOptions::default(), &ctx, at)
    });

    // The hybrid tier: dispatch the guarded mod-permutation loop with
    // and without the schedule cache. Uncached pays the O(section)
    // inspector on every entry; cached re-entry compares store versions.
    let rep = irr_driver::compile_source(GUARDED_SRC, DriverOptions::with_iaa()).unwrap();
    let v = rep.verdict("T/do20").expect("verdict for do20");
    assert!(
        matches!(v.tier, DispatchTier::RuntimeGuarded(_)),
        "bench scenario must stay guarded: {v:?}"
    );
    let loop_stmt = v.loop_stmt;
    let guarded_store = Interp::new(&rep.program).run().unwrap().store;
    let mut uncached = HybridDispatcher::new(
        &rep,
        HybridConfig {
            cache_schedules: false,
            ..HybridConfig::default()
        },
    );
    g.bench_function("hybrid-guarded-inspect-per-entry", || {
        uncached.dispatch(&guarded_store, loop_stmt, 1, 512, 1)
    });
    let mut cached = HybridDispatcher::new(&rep, HybridConfig::default());
    cached.dispatch(&guarded_store, loop_stmt, 1, 512, 1); // warm the cache
    cached.dispatch(&guarded_store, loop_stmt, 1, 512, 1);
    assert_eq!(cached.telemetry.cache_hits, 1, "{:?}", cached.telemetry);
    g.bench_function("hybrid-guarded-cached-reentry", || {
        cached.dispatch(&guarded_store, loop_stmt, 1, 512, 1)
    });

    // Write-log merge scaling: the same 16-element write set executed in
    // parallel against a small and a 16×-larger store. Worker clones are
    // copy-on-write and the merge replays write logs, so the cost tracks
    // the write volume, not the store size — `store-8192` must land
    // within ~2× of `store-512` (the old snapshot-diff merge cloned and
    // diffed every element, scaling with the store instead).
    for n in [512usize, 8192] {
        let (program, fill, target) = sixteen_writes_scenario(n);
        g.bench_with_setup(
            &format!("parallel-exec-16-writes/store-{n}"),
            || {
                // Fill the big array sequentially so the workers fork
                // from a store that really holds `n` live elements.
                let mut it = Interp::new(&program);
                it.exec_stmt(fill).unwrap();
                it
            },
            |mut it| {
                exec_do_parallel(&mut it, target, &ParallelPlan::with_threads(4), 1, 16, 1).unwrap()
            },
        );
    }
    g.finish();
}

/// A loop writing 16 elements of a `y` array backed by an `n`-element
/// store — the write-log merge scaling scenario, shared by the
/// parallel-exec, fallback, and parallel-strategy groups. The fill loop
/// materializes both arrays, so workers fork from a store holding `2n`
/// live elements and a worker's first write to `y` pays the
/// copy-on-write clone of the full payload on the write-log path.
/// Returns the program, the fill loop, and the 16-write target loop.
fn sixteen_writes_scenario(n: usize) -> (Program, StmtId, StmtId) {
    let src = format!(
        "program t
         integer i
         real big({n}), y({n})
         do i = 1, {n}
           big(i) = i * 0.5
           y(i) = 0.0
         enddo
         do i = 1, 16
           y(i) = big(i) + i
         enddo
         end"
    );
    let program = parse_program(&src).unwrap();
    let loops: Vec<StmtId> = program
        .stmts_in(&program.procedure(program.main()).body)
        .into_iter()
        .filter(|s| matches!(program.stmt(*s).kind, StmtKind::Do { .. }))
        .collect();
    let (fill, target) = (loops[0], loops[1]);
    (program, fill, target)
}

/// A consecutively-written gather (§2.2): the sequential-tier loop the
/// privatize-and-concat strategy promotes to parallel dispatch.
const GATHER_SRC: &str = "program t
     integer i, n, q, ind(512)
     real x(512)
     n = 512
     q = 0
     do i = 1, n
       x(i) = mod(i, 3) * 1.0
     enddo
     do 20 i = 1, n
       if (x(i) > 0.5) then
         q = q + 1
         ind(q) = i
       endif
 20  continue
     print q, ind(1)
     end";

/// The tentpole measurement: proof-directed in-place commits against
/// the transactional write-log on the identical 16-writes kernel, swept
/// across store sizes. The write-log path pays a per-worker
/// copy-on-write clone of the written array's full payload plus the
/// log-and-merge round trip, so its cost tracks the store size; the
/// in-place path re-proves disjointness and issues 16 raw writes into
/// the master buffer, so its cost tracks the write volume. The gap must
/// widen as the store grows (CI keeps the sweep honest through the
/// `--baseline` soft gate).
fn strategy_sweep(r: &Runner) {
    let mut g = r.group("parallel-strategy");
    g.sample_size(20);
    for n in [512usize, 4096, 16384, 65536] {
        let (program, fill, target) = sixteen_writes_scenario(n);
        let write_log = ParallelPlan {
            deadline_ms: None,
            fault: None,
            ..ParallelPlan::with_threads(4)
        };
        let in_place = ParallelPlan {
            strategy: ExecutionStrategy::InPlaceDisjoint,
            deadline_ms: None,
            fault: None,
            ..ParallelPlan::with_threads(4)
        };
        // The request must hold, not silently downgrade: the executor
        // re-derives the disjointness facts and reports what committed.
        {
            let mut it = Interp::new(&program);
            it.exec_stmt(fill).unwrap();
            let committed = exec_do_parallel(&mut it, target, &in_place, 1, 16, 1).unwrap();
            assert_eq!(committed, ExecutionStrategy::InPlaceDisjoint);
        }
        g.bench_with_setup(
            &format!("write-log-16-writes/store-{n}"),
            || {
                let mut it = Interp::new(&program);
                it.exec_stmt(fill).unwrap();
                it
            },
            |mut it| exec_do_parallel(&mut it, target, &write_log, 1, 16, 1).unwrap(),
        );
        g.bench_with_setup(
            &format!("in-place-16-writes/store-{n}"),
            || {
                let mut it = Interp::new(&program);
                it.exec_stmt(fill).unwrap();
                it
            },
            |mut it| exec_do_parallel(&mut it, target, &in_place, 1, 16, 1).unwrap(),
        );
    }
    g.finish();

    // The per-strategy dispatch counts behind representative hybrid
    // runs, recorded next to the sweep timings (the JSON report is the
    // cross-commit record of which commit path each kernel took).
    let guarded = irr_driver::compile_source(GUARDED_SRC, DriverOptions::with_iaa()).unwrap();
    let out = run_hybrid(&guarded, HybridConfig::default()).unwrap();
    for (name, v) in out.strategy_counts() {
        r.annotate(&format!("parallel-strategy/hybrid-modperm/{name}"), v);
    }
    for (name, v) in compiled_counts(&out) {
        r.annotate(&format!("parallel-strategy/hybrid-modperm/{name}"), v);
    }
    let gather = irr_driver::compile_source(GATHER_SRC, DriverOptions::with_iaa()).unwrap();
    let out = run_hybrid(&gather, HybridConfig::default()).unwrap();
    for (name, v) in out.strategy_counts() {
        r.annotate(&format!("parallel-strategy/hybrid-gather/{name}"), v);
    }
    for (name, v) in compiled_counts(&out) {
        r.annotate(&format!("parallel-strategy/hybrid-gather/{name}"), v);
    }
}

/// Compiled-tier engagement counters recorded alongside the strategy
/// counts: sequential-tier bytecode entries, parallel dispatches with
/// bytecode workers, and reason-coded tree-walk fallbacks.
fn compiled_counts(out: &irr_runtime::HybridOutcome) -> [(&'static str, u64); 3] {
    [
        ("compiled_loops", out.telemetry.compiled_loops),
        (
            "compiled_worker_dispatches",
            out.telemetry.compiled_worker_dispatches,
        ),
        ("compiled_fallbacks", out.telemetry.compiled_fallbacks()),
    ]
}

/// The transactional-fallback costs:
///
/// - `parallel-hot-path-hooks-off` — the exact `parallel-exec-16-writes`
///   scenario through a plan with no fault armed and no deadline; every
///   fault hook is a `None` check, so this must land within noise of
///   `runtime-vs-compile-time/parallel-exec-16-writes/store-512` (CI
///   enforces a same-run ratio).
/// - `hybrid-fault-free-run` / `hybrid-conflict-recovery-run` — a whole
///   guarded-kernel hybrid execution without faults vs with a forged
///   conflict, which pays one discarded parallel attempt plus the
///   sequential re-execution of the loop.
/// - `hybrid-quarantined-reentry-dispatch` — dispatching a poisoned
///   schedule: a cache probe and a counter decrement, no inspection.
fn fallback_overhead(r: &Runner) {
    let mut g = r.group("fallback");
    g.sample_size(20);
    let (program, fill, target) = sixteen_writes_scenario(512);
    g.bench_with_setup(
        "parallel-hot-path-hooks-off/store-512",
        || {
            let mut it = Interp::new(&program);
            it.exec_stmt(fill).unwrap();
            it
        },
        |mut it| {
            let plan = ParallelPlan {
                deadline_ms: None,
                fault: None,
                ..ParallelPlan::with_threads(4)
            };
            exec_do_parallel(&mut it, target, &plan, 1, 16, 1).unwrap()
        },
    );

    let rep = irr_driver::compile_source(GUARDED_SRC, DriverOptions::with_iaa()).unwrap();
    g.bench_function("hybrid-fault-free-run", || {
        run_hybrid(&rep, HybridConfig::default()).unwrap()
    });
    g.bench_function("hybrid-conflict-recovery-run", || {
        // Site 0 is the compile-time-parallel fill loop; site 1 is the
        // guarded `do 20`, which the forged conflict rolls back.
        let plan = FaultPlan::scripted([(1, FaultKind::ForgeConflict)]);
        let (out, plan) = run_hybrid_with_faults(&rep, HybridConfig::default(), plan).unwrap();
        assert_eq!(out.telemetry.fallbacks(), 1, "{:?}", plan.fired());
        out
    });
    // The reason-coded dispatch counters behind the recovery scenario,
    // recorded into the JSON report next to its timing.
    {
        let plan = FaultPlan::scripted([(1, FaultKind::ForgeConflict)]);
        let (out, _) = run_hybrid_with_faults(&rep, HybridConfig::default(), plan).unwrap();
        let t = out.telemetry;
        for (key, v) in [
            ("fallback-conflict", t.fallback_conflict),
            ("quarantine-poisonings", t.quarantine_poisonings),
            ("sequential-proven", t.sequential_proven),
            ("sequential-unknown-loop", t.sequential_unknown_loop),
            ("sequential-non-unit-step", t.sequential_non_unit_step),
        ] {
            r.annotate(&format!("fallback/hybrid-conflict-recovery-run/{key}"), v);
        }
    }

    // A dispatcher whose guarded schedule is pinned sequential: the
    // re-entry cost of a quarantined loop.
    let v = rep.verdict("T/do20").expect("verdict for do20");
    let store = Interp::new(&rep.program).run().unwrap().store;
    let mut quarantined = HybridDispatcher::new(
        &rep,
        HybridConfig {
            quarantine_retries: u32::MAX,
            ..HybridConfig::default()
        },
    );
    quarantined.dispatch(&store, v.loop_stmt, 1, 512, 1);
    quarantined.parallel_failed(v.loop_stmt, FallbackReason::Conflict);
    // One explicit poisoned re-entry, so the scenario holds even when a
    // command-line filter skips the timed entry below.
    quarantined.dispatch(&store, v.loop_stmt, 1, 512, 1);
    assert!(
        quarantined.telemetry.quarantined > 0,
        "{:?}",
        quarantined.telemetry
    );
    g.bench_function("hybrid-quarantined-reentry-dispatch", || {
        quarantined.dispatch(&store, v.loop_stmt, 1, 512, 1)
    });
    g.finish();
}

/// The dependence sanitizer's costs: the interpreter with no tracer
/// attached (every hook site is one null check — the tracing-off
/// overhead must stay within noise of the pre-sanitizer interpreter),
/// the same run under full shadow-memory tracing, and a complete audit
/// of the guarded mod-permutation kernel.
fn sanitizer_overhead(r: &Runner) {
    let trfd = all(Scale::Test)
        .into_iter()
        .find(|b| b.name == "TRFD")
        .unwrap();
    let rep = irr_driver::compile_source(&trfd.source, DriverOptions::with_iaa()).unwrap();
    let mut g = r.group("sanitizer");
    g.sample_size(20);
    g.bench_function("interp-tracing-off", || {
        Interp::new(&rep.program).run().unwrap()
    });
    g.bench_function("interp-tracing-on", || {
        let (tracer, _handle) = DependenceTracer::from_report(&rep);
        let mut it = Interp::new(&rep.program);
        it.attach_tracer(irr_exec::TraceConfig::all(), Box::new(tracer));
        it.run().unwrap()
    });
    let guarded = irr_driver::compile_source(GUARDED_SRC, DriverOptions::with_iaa()).unwrap();
    g.sample_size(10);
    g.bench_function("audit-soundness-modperm-4-inputs", || {
        audit_report(
            &guarded,
            &AuditConfig {
                seed: 42,
                inputs: 4,
                mode: AuditMode::Soundness,
            },
        )
    });
    g.finish();
}

fn main() {
    let r = Runner::from_env();
    compile_benchmarks(&r);
    solver_ablations(&r);
    demand_vs_exhaustive(&r);
    single_indexed_analyses(&r);
    runtime_vs_compile_time(&r);
    strategy_sweep(&r);
    fallback_overhead(&r);
    sanitizer_overhead(&r);
    std::process::exit(r.finalize());
}
