//! A minimal timing harness for the `[[bench]]` targets.
//!
//! The repository builds with no network access, so the benches cannot
//! depend on an external framework such as criterion. This harness
//! keeps the familiar group / `bench_function` shape: each benchmark
//! warms up, takes `samples` wall-clock samples of the closure, and
//! prints min / median / mean nanoseconds per call.
//!
//! Command-line behavior (so the binaries stay friendly to `cargo
//! bench` and `cargo test --benches`):
//!
//! - a bare argument is a substring filter on `group/name`;
//! - `--test` (passed by `cargo test --benches`) runs every benchmark
//!   exactly once, as a smoke test, without timing loops;
//! - `--samples N` overrides every group's sample count (fast CI runs);
//! - `--json PATH` additionally writes the timed results as a JSON
//!   document when the runner is dropped, so the perf trajectory is
//!   machine-readable across commits (see `BENCH_parallel.json`);
//! - other flags (`--bench`, etc.) are ignored.

use std::cell::RefCell;
use std::hint::black_box;
use std::time::Instant;

/// One timed benchmark result, recorded for `--json`.
struct Record {
    id: String,
    median_ns: u128,
    min_ns: u128,
    mean_ns: u128,
    samples: usize,
}

/// Top-level runner; parses the command line once per bench binary.
pub struct Runner {
    filter: Option<String>,
    check_only: bool,
    samples_override: Option<usize>,
    json_path: Option<String>,
    results: RefCell<Vec<Record>>,
    annotations: RefCell<Vec<(String, u64)>>,
}

impl Runner {
    /// Builds a runner from `std::env::args`.
    pub fn from_env() -> Runner {
        let mut filter = None;
        let mut check_only = false;
        let mut samples_override = None;
        let mut json_path = None;
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            if a == "--test" {
                check_only = true;
            } else if a == "--samples" {
                samples_override = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .map(|n: usize| n.max(1));
            } else if a == "--json" {
                json_path = args.next();
            } else if !a.starts_with('-') && filter.is_none() {
                filter = Some(a);
            }
        }
        Runner {
            filter,
            check_only,
            samples_override,
            json_path,
            results: RefCell::new(Vec::new()),
            annotations: RefCell::new(Vec::new()),
        }
    }

    /// Records a non-timing fact (e.g. a telemetry counter behind a
    /// benchmark scenario) for the `--json` report's `annotations`
    /// object.
    pub fn annotate(&self, key: &str, value: u64) {
        if self.json_path.is_some() {
            self.annotations.borrow_mut().push((key.to_string(), value));
        }
    }

    /// Starts a named benchmark group (default 50 samples per entry).
    pub fn group(&self, name: &str) -> Group<'_> {
        Group {
            runner: self,
            name: name.to_string(),
            samples: self.samples_override.unwrap_or(50),
        }
    }

    fn record(&self, rec: Record) {
        if self.json_path.is_some() {
            self.results.borrow_mut().push(rec);
        }
    }

    fn render_json(&self) -> String {
        let mut out = String::from("{\n  \"schema\": \"irr-bench/1\",\n  \"benchmarks\": [\n");
        let results = self.results.borrow();
        for (i, r) in results.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"id\": \"{}\", \"median_ns\": {}, \"min_ns\": {}, \"mean_ns\": {}, \
                 \"samples\": {}}}{}\n",
                r.id.replace('"', "'"),
                r.median_ns,
                r.min_ns,
                r.mean_ns,
                r.samples,
                if i + 1 < results.len() { "," } else { "" }
            ));
        }
        out.push_str("  ],\n  \"annotations\": {\n");
        let annotations = self.annotations.borrow();
        for (i, (k, v)) in annotations.iter().enumerate() {
            out.push_str(&format!(
                "    \"{}\": {}{}\n",
                k.replace('"', "'"),
                v,
                if i + 1 < annotations.len() { "," } else { "" }
            ));
        }
        out.push_str("  }\n}\n");
        out
    }
}

impl Drop for Runner {
    fn drop(&mut self) {
        if let Some(path) = &self.json_path {
            if let Err(e) = std::fs::write(path, self.render_json()) {
                eprintln!("bench harness: cannot write {path}: {e}");
            } else {
                println!("bench results written to {path}");
            }
        }
    }
}

/// A named group of benchmarks sharing a sample count.
pub struct Group<'r> {
    runner: &'r Runner,
    name: String,
    samples: usize,
}

impl Group<'_> {
    /// Sets the number of timed samples for subsequent entries (a
    /// `--samples` override on the command line wins).
    pub fn sample_size(&mut self, n: usize) {
        self.samples = self.runner.samples_override.unwrap_or(n.max(1));
    }

    /// Times `f`, which receives a fresh value from `setup` on every
    /// call (the setup cost is excluded from the measurement).
    pub fn bench_with_setup<S, R>(
        &mut self,
        id: &str,
        mut setup: impl FnMut() -> S,
        mut f: impl FnMut(S) -> R,
    ) {
        let full = format!("{}/{}", self.name, id);
        if let Some(filter) = &self.runner.filter {
            if !full.contains(filter.as_str()) {
                return;
            }
        }
        if self.runner.check_only {
            black_box(f(setup()));
            println!("{full}: ok (check mode)");
            return;
        }
        // Warmup.
        for _ in 0..2 {
            black_box(f(setup()));
        }
        let mut ns: Vec<u128> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let input = setup();
            let t = Instant::now();
            black_box(f(input));
            ns.push(t.elapsed().as_nanos());
        }
        ns.sort_unstable();
        let min = ns[0];
        let median = ns[ns.len() / 2];
        let mean = ns.iter().sum::<u128>() / ns.len() as u128;
        println!(
            "{full}: median {median} ns, min {min} ns, mean {mean} ns ({} samples)",
            ns.len()
        );
        self.runner.record(Record {
            id: full,
            median_ns: median,
            min_ns: min,
            mean_ns: mean,
            samples: ns.len(),
        });
    }

    /// Times a closure with no per-call setup.
    pub fn bench_function<R>(&mut self, id: &str, mut f: impl FnMut() -> R) {
        self.bench_with_setup(id, || (), |()| f());
    }

    /// Ends the group (kept for call-site symmetry with the former
    /// criterion API; prints nothing).
    pub fn finish(self) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_runner(filter: Option<&str>, check_only: bool) -> Runner {
        Runner {
            filter: filter.map(str::to_string),
            check_only,
            samples_override: None,
            json_path: None,
            results: RefCell::new(Vec::new()),
            annotations: RefCell::new(Vec::new()),
        }
    }

    #[test]
    fn bench_function_runs_closure() {
        let runner = test_runner(None, true);
        let mut called = 0;
        let mut g = runner.group("g");
        g.bench_function("f", || called += 1);
        assert_eq!(called, 1);
        g.finish();
    }

    #[test]
    fn filter_skips_nonmatching() {
        let runner = test_runner(Some("other"), true);
        let mut called = 0;
        let mut g = runner.group("g");
        g.bench_function("f", || called += 1);
        assert_eq!(called, 0);
    }

    #[test]
    fn json_records_timed_results() {
        let mut runner = test_runner(None, false);
        runner.samples_override = Some(2);
        runner.json_path = Some("unused".into());
        {
            let mut g = runner.group("g");
            g.sample_size(50); // the override wins
            g.bench_function("f", || 1 + 1);
            g.finish();
        }
        runner.annotate("g/telemetry/fallbacks", 3);
        let json = runner.render_json();
        assert!(json.contains("\"id\": \"g/f\""), "{json}");
        assert!(json.contains("\"samples\": 2"), "{json}");
        assert!(json.contains("\"schema\": \"irr-bench/1\""), "{json}");
        assert!(json.contains("\"g/telemetry/fallbacks\": 3"), "{json}");
        // Don't let Drop write a stray file from the test.
        runner.json_path = None;
    }
}
