//! A minimal timing harness for the `[[bench]]` targets.
//!
//! The repository builds with no network access, so the benches cannot
//! depend on an external framework such as criterion. This harness
//! keeps the familiar group / `bench_function` shape: each benchmark
//! warms up, takes `samples` wall-clock samples of the closure, and
//! prints min / median / mean nanoseconds per call.
//!
//! Command-line behavior (so the binaries stay friendly to `cargo
//! bench` and `cargo test --benches`):
//!
//! - a bare argument is a substring filter on `group/name`;
//! - `--test` (passed by `cargo test --benches`) runs every benchmark
//!   exactly once, as a smoke test, without timing loops;
//! - other flags (`--bench`, etc.) are ignored.

use std::hint::black_box;
use std::time::Instant;

/// Top-level runner; parses the command line once per bench binary.
pub struct Runner {
    filter: Option<String>,
    check_only: bool,
}

impl Runner {
    /// Builds a runner from `std::env::args`.
    pub fn from_env() -> Runner {
        let mut filter = None;
        let mut check_only = false;
        for a in std::env::args().skip(1) {
            if a == "--test" {
                check_only = true;
            } else if !a.starts_with('-') && filter.is_none() {
                filter = Some(a);
            }
        }
        Runner { filter, check_only }
    }

    /// Starts a named benchmark group (default 50 samples per entry).
    pub fn group(&self, name: &str) -> Group<'_> {
        Group {
            runner: self,
            name: name.to_string(),
            samples: 50,
        }
    }
}

/// A named group of benchmarks sharing a sample count.
pub struct Group<'r> {
    runner: &'r Runner,
    name: String,
    samples: usize,
}

impl Group<'_> {
    /// Sets the number of timed samples for subsequent entries.
    pub fn sample_size(&mut self, n: usize) {
        self.samples = n.max(1);
    }

    /// Times `f`, which receives a fresh value from `setup` on every
    /// call (the setup cost is excluded from the measurement).
    pub fn bench_with_setup<S, R>(
        &mut self,
        id: &str,
        mut setup: impl FnMut() -> S,
        mut f: impl FnMut(S) -> R,
    ) {
        let full = format!("{}/{}", self.name, id);
        if let Some(filter) = &self.runner.filter {
            if !full.contains(filter.as_str()) {
                return;
            }
        }
        if self.runner.check_only {
            black_box(f(setup()));
            println!("{full}: ok (check mode)");
            return;
        }
        // Warmup.
        for _ in 0..2 {
            black_box(f(setup()));
        }
        let mut ns: Vec<u128> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let input = setup();
            let t = Instant::now();
            black_box(f(input));
            ns.push(t.elapsed().as_nanos());
        }
        ns.sort_unstable();
        let min = ns[0];
        let median = ns[ns.len() / 2];
        let mean = ns.iter().sum::<u128>() / ns.len() as u128;
        println!(
            "{full}: median {median} ns, min {min} ns, mean {mean} ns ({} samples)",
            ns.len()
        );
    }

    /// Times a closure with no per-call setup.
    pub fn bench_function<R>(&mut self, id: &str, mut f: impl FnMut() -> R) {
        self.bench_with_setup(id, || (), |()| f());
    }

    /// Ends the group (kept for call-site symmetry with the former
    /// criterion API; prints nothing).
    pub fn finish(self) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let runner = Runner {
            filter: None,
            check_only: true,
        };
        let mut called = 0;
        let mut g = runner.group("g");
        g.bench_function("f", || called += 1);
        assert_eq!(called, 1);
        g.finish();
    }

    #[test]
    fn filter_skips_nonmatching() {
        let runner = Runner {
            filter: Some("other".into()),
            check_only: true,
        };
        let mut called = 0;
        let mut g = runner.group("g");
        g.bench_function("f", || called += 1);
        assert_eq!(called, 0);
    }
}
