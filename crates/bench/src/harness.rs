//! A minimal timing harness for the `[[bench]]` targets.
//!
//! The repository builds with no network access, so the benches cannot
//! depend on an external framework such as criterion. This harness
//! keeps the familiar group / `bench_function` shape: each benchmark
//! warms up, takes `samples` wall-clock samples of the closure, and
//! prints min / median / mean nanoseconds per call.
//!
//! Command-line behavior (so the binaries stay friendly to `cargo
//! bench` and `cargo test --benches`):
//!
//! - a bare argument is a substring filter on `group/name`;
//! - `--test` (passed by `cargo test --benches`) runs every benchmark
//!   exactly once, as a smoke test, without timing loops;
//! - `--samples N` overrides every group's sample count (fast CI runs);
//! - `--json PATH` additionally writes the timed results as a JSON
//!   document when the runner is dropped, so the perf trajectory is
//!   machine-readable across commits (see `BENCH_parallel.json`);
//! - `--baseline PATH` compares every timed result against a previous
//!   `--json` report: per-id median ratios are printed and
//!   [`Runner::finalize`] returns a nonzero exit code when any
//!   benchmark regressed past the threshold (the CI soft perf gate);
//! - `--regress-threshold R` sets that threshold as a ratio (default
//!   1.5: a benchmark 50% over its baseline median is a regression);
//! - other flags (`--bench`, etc.) are ignored.
//!
//! `cargo bench` runs the binary with the *package* directory
//! (`crates/bench`) as its working directory, so relative `--json` and
//! `--baseline` paths are resolved against the workspace root (the
//! nearest ancestor holding a `Cargo.lock`) — `--json
//! BENCH_parallel.json` lands next to the committed baselines however
//! the bench is invoked. Absolute paths are used as given.

use std::cell::RefCell;
use std::hint::black_box;
use std::time::Instant;

/// One timed benchmark result, recorded for `--json`.
struct Record {
    id: String,
    median_ns: u128,
    min_ns: u128,
    mean_ns: u128,
    samples: usize,
}

/// Top-level runner; parses the command line once per bench binary.
pub struct Runner {
    filter: Option<String>,
    check_only: bool,
    samples_override: Option<usize>,
    json_path: Option<String>,
    baseline_path: Option<String>,
    regress_threshold: f64,
    results: RefCell<Vec<Record>>,
    annotations: RefCell<Vec<(String, u64)>>,
}

impl Runner {
    /// Builds a runner from `std::env::args`.
    pub fn from_env() -> Runner {
        let mut filter = None;
        let mut check_only = false;
        let mut samples_override = None;
        let mut json_path = None;
        let mut baseline_path = None;
        let mut regress_threshold = 1.5;
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            if a == "--test" {
                check_only = true;
            } else if a == "--samples" {
                samples_override = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .map(|n: usize| n.max(1));
            } else if a == "--json" {
                json_path = args.next().map(|p| resolve_report_path(&p));
            } else if a == "--baseline" {
                baseline_path = args.next().map(|p| resolve_report_path(&p));
            } else if a == "--regress-threshold" {
                if let Some(t) = args.next().and_then(|v| v.parse().ok()) {
                    regress_threshold = t;
                }
            } else if !a.starts_with('-') && filter.is_none() {
                filter = Some(a);
            }
        }
        Runner {
            filter,
            check_only,
            samples_override,
            json_path,
            baseline_path,
            regress_threshold,
            results: RefCell::new(Vec::new()),
            annotations: RefCell::new(Vec::new()),
        }
    }

    /// Records a non-timing fact (e.g. a telemetry counter behind a
    /// benchmark scenario) for the `--json` report's `annotations`
    /// object.
    pub fn annotate(&self, key: &str, value: u64) {
        if self.json_path.is_some() {
            self.annotations.borrow_mut().push((key.to_string(), value));
        }
    }

    /// Whether the binary runs in `--test` smoke mode (one pass, no
    /// timing loops) — load generators use this to shrink the request
    /// stream.
    pub fn is_check_only(&self) -> bool {
        self.check_only
    }

    /// Records an externally measured value (e.g. a latency percentile
    /// computed by a load generator) as a one-sample benchmark entry,
    /// so it lands in `--json` and is gated by `--baseline` like any
    /// timed result. No-op in check mode.
    pub fn record_value(&self, id: &str, ns: u128) {
        if self.check_only {
            return;
        }
        self.record(Record {
            id: id.to_string(),
            median_ns: ns,
            min_ns: ns,
            mean_ns: ns,
            samples: 1,
        });
    }

    /// Starts a named benchmark group (default 50 samples per entry).
    pub fn group(&self, name: &str) -> Group<'_> {
        Group {
            runner: self,
            name: name.to_string(),
            samples: self.samples_override.unwrap_or(50),
        }
    }

    fn record(&self, rec: Record) {
        if self.json_path.is_some() || self.baseline_path.is_some() {
            self.results.borrow_mut().push(rec);
        }
    }

    /// Median of an already-timed benchmark by its full `group/id`
    /// name, so bench binaries can derive facts across entries (e.g.
    /// a sequential/parallel speedup annotation). `None` in check mode
    /// or when the result was not recorded (no `--json`/`--baseline`).
    pub fn median_of(&self, id: &str) -> Option<u128> {
        self.results
            .borrow()
            .iter()
            .find(|r| r.id == id)
            .map(|r| r.median_ns)
    }

    /// Writes the `--json` report (if requested), compares the timed
    /// results against the `--baseline` report (if given), and returns
    /// the process exit code: nonzero iff any benchmark's median
    /// regressed past `--regress-threshold` times its baseline median.
    /// Bench binaries end with `std::process::exit(runner.finalize())`.
    pub fn finalize(mut self) -> i32 {
        if let Some(path) = self.json_path.take() {
            if let Err(e) = std::fs::write(&path, self.render_json()) {
                eprintln!("bench harness: cannot write {path}: {e}");
            } else {
                println!("bench results written to {path}");
            }
        }
        let Some(path) = self.baseline_path.take() else {
            return 0;
        };
        if self.check_only {
            return 0;
        }
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("bench harness: cannot read baseline {path}: {e}");
                return 2;
            }
        };
        let baseline = parse_baseline(&text);
        println!(
            "\nbaseline comparison against {path} (regression threshold {:.2}x):",
            self.regress_threshold
        );
        let results = self.results.borrow();
        let regressions = report_ratios(&results, &baseline, self.regress_threshold);
        if regressions > 0 {
            eprintln!(
                "bench harness: {regressions} benchmark(s) regressed past {:.2}x of baseline",
                self.regress_threshold
            );
            1
        } else {
            0
        }
    }

    fn render_json(&self) -> String {
        let mut out = String::from("{\n  \"schema\": \"irr-bench/1\",\n  \"benchmarks\": [\n");
        let results = self.results.borrow();
        for (i, r) in results.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"id\": \"{}\", \"median_ns\": {}, \"min_ns\": {}, \"mean_ns\": {}, \
                 \"samples\": {}}}{}\n",
                r.id.replace('"', "'"),
                r.median_ns,
                r.min_ns,
                r.mean_ns,
                r.samples,
                if i + 1 < results.len() { "," } else { "" }
            ));
        }
        out.push_str("  ],\n  \"annotations\": {\n");
        // Sorted by key so the report is byte-stable regardless of the
        // order benchmarks ran (and diffs cleanly across runs).
        let mut annotations = self.annotations.borrow().clone();
        annotations.sort_by(|a, b| a.0.cmp(&b.0));
        for (i, (k, v)) in annotations.iter().enumerate() {
            out.push_str(&format!(
                "    \"{}\": {}{}\n",
                k.replace('"', "'"),
                v,
                if i + 1 < annotations.len() { "," } else { "" }
            ));
        }
        out.push_str("  }\n}\n");
        out
    }
}

/// Extracts `(id, median_ns)` pairs from an `irr-bench/1` report. The
/// parser is deliberately minimal — the repository builds without a
/// JSON dependency — and reads exactly the shape `render_json` writes:
/// one benchmark object per line.
/// Resolves a `--json`/`--baseline` path: absolute paths pass through;
/// relative paths anchor at the workspace root (the nearest ancestor
/// of the working directory holding a `Cargo.lock`), because `cargo
/// bench` starts the binary in the bench *package* directory, not the
/// directory the command was typed in.
fn resolve_report_path(path: &str) -> String {
    let p = std::path::Path::new(path);
    if p.is_absolute() {
        return path.to_string();
    }
    let Ok(cwd) = std::env::current_dir() else {
        return path.to_string();
    };
    let mut dir = cwd.as_path();
    loop {
        if dir.join("Cargo.lock").exists() {
            return dir.join(p).to_string_lossy().into_owned();
        }
        match dir.parent() {
            Some(parent) => dir = parent,
            None => return path.to_string(),
        }
    }
}

fn parse_baseline(text: &str) -> Vec<(String, u128)> {
    let mut out = Vec::new();
    for line in text.lines() {
        let Some(id) = extract_string(line, "\"id\": \"") else {
            continue;
        };
        let Some(median) = extract_number(line, "\"median_ns\": ") else {
            continue;
        };
        out.push((id, median));
    }
    out
}

fn extract_string(line: &str, key: &str) -> Option<String> {
    let rest = &line[line.find(key)? + key.len()..];
    Some(rest[..rest.find('"')?].to_string())
}

fn extract_number(line: &str, key: &str) -> Option<u128> {
    let rest = &line[line.find(key)? + key.len()..];
    let digits: String = rest.chars().take_while(char::is_ascii_digit).collect();
    digits.parse().ok()
}

/// Prints one ratio line per timed result and returns how many
/// regressed past `threshold` times their baseline median.
fn report_ratios(results: &[Record], baseline: &[(String, u128)], threshold: f64) -> usize {
    let mut regressions = 0;
    for r in results {
        match baseline.iter().find(|(id, _)| *id == r.id) {
            Some((_, base)) if *base > 0 => {
                let ratio = r.median_ns as f64 / *base as f64;
                let flag = if ratio > threshold {
                    regressions += 1;
                    "  REGRESSION"
                } else {
                    ""
                };
                println!(
                    "  {}: {} ns -> {} ns ({ratio:.2}x){flag}",
                    r.id, base, r.median_ns
                );
            }
            _ => println!("  {}: {} ns (no baseline entry)", r.id, r.median_ns),
        }
    }
    regressions
}

impl Drop for Runner {
    fn drop(&mut self) {
        if let Some(path) = &self.json_path {
            if let Err(e) = std::fs::write(path, self.render_json()) {
                eprintln!("bench harness: cannot write {path}: {e}");
            } else {
                println!("bench results written to {path}");
            }
        }
    }
}

/// A named group of benchmarks sharing a sample count.
pub struct Group<'r> {
    runner: &'r Runner,
    name: String,
    samples: usize,
}

impl Group<'_> {
    /// Sets the number of timed samples for subsequent entries (a
    /// `--samples` override on the command line wins).
    pub fn sample_size(&mut self, n: usize) {
        self.samples = self.runner.samples_override.unwrap_or(n.max(1));
    }

    /// Times `f`, which receives a fresh value from `setup` on every
    /// call (the setup cost is excluded from the measurement).
    pub fn bench_with_setup<S, R>(
        &mut self,
        id: &str,
        mut setup: impl FnMut() -> S,
        mut f: impl FnMut(S) -> R,
    ) {
        let full = format!("{}/{}", self.name, id);
        if let Some(filter) = &self.runner.filter {
            if !full.contains(filter.as_str()) {
                return;
            }
        }
        if self.runner.check_only {
            black_box(f(setup()));
            println!("{full}: ok (check mode)");
            return;
        }
        // Warmup.
        for _ in 0..2 {
            black_box(f(setup()));
        }
        let mut ns: Vec<u128> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let input = setup();
            let t = Instant::now();
            black_box(f(input));
            ns.push(t.elapsed().as_nanos());
        }
        ns.sort_unstable();
        let min = ns[0];
        let median = ns[ns.len() / 2];
        let mean = ns.iter().sum::<u128>() / ns.len() as u128;
        println!(
            "{full}: median {median} ns, min {min} ns, mean {mean} ns ({} samples)",
            ns.len()
        );
        self.runner.record(Record {
            id: full,
            median_ns: median,
            min_ns: min,
            mean_ns: mean,
            samples: ns.len(),
        });
    }

    /// Times a closure with no per-call setup.
    pub fn bench_function<R>(&mut self, id: &str, mut f: impl FnMut() -> R) {
        self.bench_with_setup(id, || (), |()| f());
    }

    /// Ends the group (kept for call-site symmetry with the former
    /// criterion API; prints nothing).
    pub fn finish(self) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_runner(filter: Option<&str>, check_only: bool) -> Runner {
        Runner {
            filter: filter.map(str::to_string),
            check_only,
            samples_override: None,
            json_path: None,
            baseline_path: None,
            regress_threshold: 1.5,
            results: RefCell::new(Vec::new()),
            annotations: RefCell::new(Vec::new()),
        }
    }

    #[test]
    fn bench_function_runs_closure() {
        let runner = test_runner(None, true);
        let mut called = 0;
        let mut g = runner.group("g");
        g.bench_function("f", || called += 1);
        assert_eq!(called, 1);
        g.finish();
    }

    #[test]
    fn filter_skips_nonmatching() {
        let runner = test_runner(Some("other"), true);
        let mut called = 0;
        let mut g = runner.group("g");
        g.bench_function("f", || called += 1);
        assert_eq!(called, 0);
    }

    #[test]
    fn json_records_timed_results() {
        let mut runner = test_runner(None, false);
        runner.samples_override = Some(2);
        runner.json_path = Some("unused".into());
        {
            let mut g = runner.group("g");
            g.sample_size(50); // the override wins
            g.bench_function("f", || 1 + 1);
            g.finish();
        }
        runner.annotate("g/telemetry/fallbacks", 3);
        let json = runner.render_json();
        assert!(json.contains("\"id\": \"g/f\""), "{json}");
        assert!(json.contains("\"samples\": 2"), "{json}");
        assert!(json.contains("\"schema\": \"irr-bench/1\""), "{json}");
        assert!(json.contains("\"g/telemetry/fallbacks\": 3"), "{json}");
        // Don't let Drop write a stray file from the test.
        runner.json_path = None;
    }

    #[test]
    fn baseline_roundtrips_through_render_json() {
        let mut runner = test_runner(None, false);
        runner.samples_override = Some(2);
        runner.json_path = Some("unused".into());
        {
            let mut g = runner.group("g");
            g.bench_function("f", || 1 + 1);
            g.finish();
        }
        let parsed = parse_baseline(&runner.render_json());
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed[0].0, "g/f");
        assert_eq!(parsed[0].1, runner.results.borrow()[0].median_ns);
        runner.json_path = None;
    }

    #[test]
    fn ratios_flag_only_past_threshold_regressions() {
        let results = vec![
            Record {
                id: "g/fast".into(),
                median_ns: 100,
                min_ns: 90,
                mean_ns: 100,
                samples: 2,
            },
            Record {
                id: "g/slow".into(),
                median_ns: 400,
                min_ns: 380,
                mean_ns: 400,
                samples: 2,
            },
            Record {
                id: "g/new".into(),
                median_ns: 50,
                min_ns: 50,
                mean_ns: 50,
                samples: 2,
            },
        ];
        let baseline = vec![("g/fast".to_string(), 110u128), ("g/slow".to_string(), 100)];
        // g/slow is 4.0x its baseline; g/fast improved; g/new has no
        // baseline entry and must not count as a regression.
        assert_eq!(report_ratios(&results, &baseline, 1.5), 1);
        assert_eq!(report_ratios(&results, &baseline, 5.0), 0);
    }
}
