//! Reproduces Table 3: the loops with irregular array accesses that the
//! analyses handle — per loop: whether it is newly parallelized (the
//! `*` of the paper), the array properties verified (CW / STACK / CFV /
//! CFD / CFB), the client test that used them (DD / PRIV), and the share
//! of sequential execution time the loops account for.
//!
//! Run with `cargo run --release -p irr-bench --bin table3`.

use irr_bench::{profile_run, Config};
use irr_exec::Interp;
use irr_programs::{all, Scale};

fn main() {
    println!("Table 3 — irregular loops, properties, and tests");
    println!(
        "{:<8} {:<16} {:>4} {:<28} {:<6} {:>8} {:>10}",
        "Program", "Loop", "new?", "properties (array:tag)", "test", "%seq", "paper %seq"
    );
    for b in all(Scale::Paper) {
        let with = profile_run(&b.source, Config::WithIaa);
        let without = profile_run(&b.source, Config::WithoutIaa);
        // Sequential cost of each irregular loop, from an instrumented
        // run recording those loops.
        let program = &with.report.program;
        let mut interp = Interp::new(program);
        let loops: Vec<_> = b
            .irregular_labels
            .iter()
            .filter_map(|l| with.report.verdict(l).map(|v| v.loop_stmt))
            .collect();
        for &l in &loops {
            interp.record_loops.insert(l);
        }
        let outcome = interp.run().expect("runs");
        let mut covered = 0u64;
        for label in &b.irregular_labels {
            let v = with.report.verdict(label).expect("verdict exists");
            let newly = v.parallel
                && !without
                    .report
                    .verdict(label)
                    .map(|w| w.parallel)
                    .unwrap_or(false);
            let mut props: Vec<String> = v
                .properties_used
                .iter()
                .map(|(a, t)| format!("{a}:{t}"))
                .collect();
            for (arr, tag) in &v.privatized_arrays {
                props.push(format!(
                    "{}:{}",
                    with.report.program.symbols.name(*arr),
                    tag
                ));
            }
            props.sort();
            props.dedup();
            let mut tests: Vec<&str> = Vec::new();
            if v.independent_arrays
                .iter()
                .any(|(_, t)| !matches!(*t, "IDDIM" | "AFFINE"))
            {
                tests.push("DD");
            }
            if v.privatized_arrays.iter().any(|(_, t)| *t != "REG") {
                tests.push("PRIV");
            }
            if tests.is_empty() {
                tests.push(if v.independent_arrays.is_empty() {
                    "PRIV"
                } else {
                    "DD"
                });
            }
            let test = tests.join(",");
            let cost = outcome
                .stats
                .loops
                .get(&v.loop_stmt)
                .map(|s| s.total_cost)
                .unwrap_or(0);
            covered += cost;
            let pct = 100.0 * cost as f64 / outcome.stats.total_cost as f64;
            println!(
                "{:<8} {:<16} {:>4} {:<28} {:<6} {:>7.1}% {:>9}",
                b.name,
                label,
                if newly { "*" } else { "" },
                props.join(","),
                test,
                pct,
                "",
            );
        }
        let total_pct = 100.0 * covered as f64 / outcome.stats.total_cost as f64;
        println!(
            "{:<8} {:<16} {:>4} {:<28} {:<6} {:>7.1}% {:>8.0}%",
            b.name,
            "(all irregular)",
            "",
            "",
            "",
            total_pct,
            b.paper_coverage * 100.0
        );
        println!();
    }
    println!(
        "(paper inventory: 9 newly parallel loops; properties CW, STACK, \
         CFV, CFD, CFB; tests DD and PRIV — Table 3 of the paper)"
    );
}
