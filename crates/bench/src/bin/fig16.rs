//! Reproduces Fig. 16: speedup curves for the five benchmarks under the
//! three compiler configurations (Polaris+IAA / Polaris / APO) on the
//! Origin 2000 machine model, plus DYFESM on the 4-processor Challenge
//! model (Fig. 16(f)).
//!
//! Run with `cargo run --release -p irr-bench --bin fig16`.

use irr_bench::{profile_run, speedup_curve, Config};
use irr_exec::MachineModel;
use irr_programs::{all, Scale};

fn main() {
    let procs = [1usize, 2, 4, 8, 16, 32];
    let origin = MachineModel::origin2000();
    println!("Fig. 16 — simulated speedups ({})", origin.name);
    for b in all(Scale::Paper) {
        println!(
            "\n{} (irregular-loop coverage target {:.0}%):",
            b.name,
            b.paper_coverage * 100.0
        );
        print!("{:>12}", "procs");
        for p in procs {
            print!("{p:>8}");
        }
        println!();
        for config in Config::all() {
            let run = profile_run(&b.source, config);
            let curve = speedup_curve(&run, &origin, &procs);
            print!("{:>12}", config.label());
            for s in curve {
                print!("{s:>8.2}");
            }
            println!(
                "   (coverage {:.0}%)",
                run.profile.parallel_coverage() * 100.0
            );
        }
    }
    // Fig. 16(f): DYFESM on the SGI Challenge.
    let challenge = MachineModel::challenge();
    let dyfesm = all(Scale::Paper)
        .into_iter()
        .find(|b| b.name == "DYFESM")
        .expect("dyfesm exists");
    println!(
        "\nDYFESM on {} (Fig. 16(f); paper: ~1.6x at 4 procs):",
        challenge.name
    );
    let cprocs = [1usize, 2, 3, 4];
    print!("{:>12}", "procs");
    for p in cprocs {
        print!("{p:>8}");
    }
    println!();
    for config in Config::all() {
        let run = profile_run(&dyfesm.source, config);
        let curve = speedup_curve(&run, &challenge, &cprocs);
        print!("{:>12}", config.label());
        for s in curve {
            print!("{s:>8.2}");
        }
        println!();
    }
    println!(
        "\nExpected shapes (paper): TREE near-linear (90% coverage); P3M \
         strong gains; BDNA clear gains; TRFD +IAA slightly above Polaris \
         (do140 is only ~5%); DYFESM *slows down* on the Origin with more \
         processors but gains ~1.6x on the Challenge."
    );
}
