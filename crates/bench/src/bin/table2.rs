//! Reproduces Table 2: per-program lines of code, compilation time,
//! time spent in array property analysis, and its percentage of the
//! whole compilation — plus the sequential execution cost measured by
//! the interpreter (the paper reports wall-clock seconds on an Origin
//! 2000; we report deterministic interpreter cost units).
//!
//! Run with `cargo run --release -p irr-bench --bin table2`.

use irr_bench::{profile_run, Config};
use irr_programs::{all, loc, Scale};

fn main() {
    // Paper values for comparison (Table 2): LoC, compile time (s),
    // property-analysis share of compilation.
    let paper: &[(&str, usize, f64)] = &[
        ("TRFD", 485, 0.045),
        ("DYFESM", 7650, 0.064),
        ("BDNA", 4896, 0.067),
        ("P3M", 2414, 0.109),
        ("TREE", 1553, 0.067),
    ];
    println!("Table 2 — compilation time and analysis overhead");
    println!(
        "{:<8} {:>6} {:>12} {:>12} {:>10} {:>14} {:>12}",
        "Program", "LoC", "compile(ms)", "analysis(ms)", "analysis%", "seq cost", "paper-an.%"
    );
    for b in all(Scale::Paper) {
        let run = profile_run(&b.source, Config::WithIaa);
        let stats = run.report.stats;
        let compile_ms = stats.total_time.as_secs_f64() * 1e3;
        let analysis_ms = stats.property_time.as_secs_f64() * 1e3;
        let pct = if compile_ms > 0.0 {
            100.0 * analysis_ms / compile_ms
        } else {
            0.0
        };
        let paper_pct = paper
            .iter()
            .find(|(n, _, _)| *n == b.name)
            .map(|(_, _, p)| p * 100.0)
            .unwrap_or(0.0);
        println!(
            "{:<8} {:>6} {:>12.2} {:>12.2} {:>9.1}% {:>14} {:>11.1}%",
            b.name,
            loc(&b.source),
            compile_ms,
            analysis_ms,
            pct,
            run.profile.total_cost,
            paper_pct,
        );
    }
    println!();
    println!(
        "(The paper's absolute compile times were measured on a 1999 Sun \
         Enterprise server compiling the full applications; the comparable \
         quantity is the modest share of compilation spent in the \
         demand-driven property analysis: 4.5%–10.9% in the paper.)"
    );
}
