//! Shared harness for reproducing the paper's evaluation (Tables 2–3,
//! Fig. 16).
//!
//! The flow for every benchmark × compiler configuration:
//!
//! 1. compile the kernel with [`irr_driver::compile`] (verdicts name the
//!    parallel loops);
//! 2. pick the *outermost dynamically-disjoint* set of parallel loops
//!    (a loop inside another parallel loop — statically or through a
//!    call — executes within its parent's parallel region);
//! 3. interpret the transformed program, recording per-iteration costs
//!    of the chosen loops;
//! 4. feed the measured profile to the machine model.

pub mod harness;

use irr_driver::{CompilationReport, DriverOptions};
use irr_exec::{ArrayData, Interp, MachineModel, ProgramProfile};
use irr_frontend::{ProcId, Program, StmtId, StmtKind, VarId};
use std::collections::HashSet;

/// A compiler configuration of Fig. 16.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Config {
    /// Polaris + irregular array access analysis (the paper).
    WithIaa,
    /// Polaris without IAA.
    WithoutIaa,
    /// The SGI `-apo`-like baseline.
    Apo,
}

impl Config {
    /// All three configurations, strongest first.
    pub fn all() -> [Config; 3] {
        [Config::WithIaa, Config::WithoutIaa, Config::Apo]
    }

    /// Driver options for the configuration.
    pub fn options(self) -> DriverOptions {
        match self {
            Config::WithIaa => DriverOptions::with_iaa(),
            Config::WithoutIaa => DriverOptions::without_iaa(),
            Config::Apo => DriverOptions::apo(),
        }
    }

    /// Display label (as in Fig. 16's legend).
    pub fn label(self) -> &'static str {
        match self {
            Config::WithIaa => "Polaris+IAA",
            Config::WithoutIaa => "Polaris",
            Config::Apo => "APO",
        }
    }
}

/// Procedures transitively callable from the statements of `body`.
fn reachable_procs(program: &Program, body: &[StmtId]) -> HashSet<ProcId> {
    let mut out: HashSet<ProcId> = HashSet::new();
    let mut work: Vec<ProcId> = Vec::new();
    for s in program.stmts_in(body) {
        if let StmtKind::Call { proc } = &program.stmt(s).kind {
            if out.insert(*proc) {
                work.push(*proc);
            }
        }
    }
    while let Some(p) = work.pop() {
        for s in program.stmts_in(&program.procedures[p.index()].body) {
            if let StmtKind::Call { proc } = &program.stmt(s).kind {
                if out.insert(*proc) {
                    work.push(*proc);
                }
            }
        }
    }
    out
}

/// The set of parallel loops to actually run in parallel: parallel
/// verdicts whose loops are not dynamically enclosed by another chosen
/// parallel loop.
pub fn parallel_loop_set(report: &CompilationReport) -> Vec<StmtId> {
    outermost_disjoint(
        report,
        report
            .verdicts
            .iter()
            .filter(|v| v.parallel)
            .map(|v| (v.loop_stmt, v.proc))
            .collect(),
    )
}

/// Like [`parallel_loop_set`] but for the hybrid runtime's view: every
/// loop the dispatcher may run in parallel, i.e. compile-time parallel
/// *and* runtime-guarded verdicts (whose guards the inspector clears at
/// entry when the preset index arrays are well-formed).
pub fn dispatchable_loop_set(report: &CompilationReport) -> Vec<StmtId> {
    outermost_disjoint(
        report,
        report
            .verdicts
            .iter()
            .filter(|v| !matches!(v.tier, irr_driver::DispatchTier::Sequential))
            .map(|v| (v.loop_stmt, v.proc))
            .collect(),
    )
}

fn outermost_disjoint(report: &CompilationReport, parallel: Vec<(StmtId, ProcId)>) -> Vec<StmtId> {
    let program = &report.program;
    let mut chosen: Vec<StmtId> = Vec::new();
    for &(s, _proc) in &parallel {
        let enclosed = parallel.iter().any(|&(outer, _)| {
            if outer == s {
                return false;
            }
            let (StmtKind::Do { body, .. } | StmtKind::While { body, .. }) =
                &program.stmt(outer).kind
            else {
                return false;
            };
            // Statically nested?
            if program.stmts_in(body).contains(&s) {
                return true;
            }
            // Dynamically nested through calls?
            let reach = reachable_procs(program, body);
            reach.iter().any(|p| {
                program
                    .stmts_in(&program.procedures[p.index()].body)
                    .contains(&s)
            })
        });
        if !enclosed {
            chosen.push(s);
        }
    }
    chosen
}

/// A compiled-and-profiled benchmark under one configuration.
pub struct ProfiledRun {
    /// The compilation report.
    pub report: CompilationReport,
    /// The chosen parallel loop set.
    pub parallel: Vec<StmtId>,
    /// The measured profile.
    pub profile: ProgramProfile,
    /// The program's printed output.
    pub output: Vec<String>,
}

/// Compiles and profiles `source` under `config`.
///
/// # Panics
///
/// Panics if the source fails to parse or the program fails to execute —
/// benchmark kernels are trusted inputs.
pub fn profile_run(source: &str, config: Config) -> ProfiledRun {
    let report =
        irr_driver::compile_source(source, config.options()).expect("benchmark source parses");
    let parallel = parallel_loop_set(&report);
    let mut interp = Interp::new(&report.program);
    for &l in &parallel {
        interp.record_loops.insert(l);
    }
    let outcome = interp.run().expect("benchmark executes");
    let profile = ProgramProfile::from_stats(&outcome.stats, &parallel);
    ProfiledRun {
        report,
        parallel,
        profile,
        output: outcome.output,
    }
}

/// Profiles an already-compiled report with preset arrays installed
/// before the run — the path for generated sparse kernels, whose index
/// arrays come from the matrix generator rather than interpreted
/// initialization loops. Returns the measured [`ProgramProfile`] over
/// the report's outermost parallel loop set, ready for
/// [`irr_exec::simulate_speedup`].
///
/// # Panics
///
/// Panics if the program fails to execute — kernels are trusted inputs.
pub fn profile_report_seeded(
    report: &CompilationReport,
    presets: &[(VarId, ArrayData)],
) -> ProgramProfile {
    let parallel = dispatchable_loop_set(report);
    let mut interp = Interp::new(&report.program);
    for (var, data) in presets {
        interp.preset_array(*var, data.clone());
    }
    for &l in &parallel {
        interp.record_loops.insert(l);
    }
    let outcome = interp.run().expect("kernel executes");
    ProgramProfile::from_stats(&outcome.stats, &parallel)
}

/// Speedup curve for the run on `machine` over the given processor
/// counts.
pub fn speedup_curve(run: &ProfiledRun, machine: &MachineModel, procs: &[usize]) -> Vec<f64> {
    procs
        .iter()
        .map(|&p| irr_exec::simulate_speedup(&run.profile, p, machine))
        .collect()
}

/// Formats a row of fixed-width cells.
pub fn row(cells: &[String], widths: &[usize]) -> String {
    cells
        .iter()
        .zip(widths.iter())
        .map(|(c, w)| format!("{c:>w$}", w = w))
        .collect::<Vec<_>>()
        .join("  ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use irr_programs::{all, Scale};

    #[test]
    fn parallel_set_excludes_nested_loops() {
        for b in all(Scale::Test) {
            let run = profile_run(&b.source, Config::WithIaa);
            let program = &run.report.program;
            // No chosen loop may contain another chosen loop.
            for &a in &run.parallel {
                for &c in &run.parallel {
                    if a == c {
                        continue;
                    }
                    let StmtKind::Do { body, .. } = &program.stmt(a).kind else {
                        continue;
                    };
                    assert!(
                        !program.stmts_in(body).contains(&c),
                        "{}: nested parallel loops chosen together",
                        b.name
                    );
                }
            }
        }
    }

    #[test]
    fn outputs_identical_across_configs() {
        for b in all(Scale::Test) {
            let outs: Vec<Vec<String>> = Config::all()
                .iter()
                .map(|c| profile_run(&b.source, *c).output)
                .collect();
            assert_eq!(outs[0], outs[1], "{}", b.name);
            assert_eq!(outs[0], outs[2], "{}", b.name);
        }
    }

    #[test]
    fn iaa_strictly_increases_coverage() {
        for b in all(Scale::Test) {
            let with = profile_run(&b.source, Config::WithIaa);
            let without = profile_run(&b.source, Config::WithoutIaa);
            assert!(
                with.profile.parallel_coverage() > without.profile.parallel_coverage(),
                "{}: coverage with IAA {} <= without {}",
                b.name,
                with.profile.parallel_coverage(),
                without.profile.parallel_coverage()
            );
        }
    }
}
