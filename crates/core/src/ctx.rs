//! Shared analysis context: the program, its graphs, and common helpers.

use irr_frontend::{Expr, LValue, ProcId, Program, StmtId, StmtKind, VarId};
use irr_graph::{Cfg, CfgNodeId, CfgNodeKind, Hcg};
use irr_symbolic::{expr_to_sym, RangeEnv, SymExpr};
use std::cell::RefCell;
use std::collections::HashMap;

/// Analysis context over one program: owns the hierarchical control
/// graph, caches per-region CFGs, and provides the common "what does this
/// statement read/write" and "what ranges hold here" helpers all the
/// analyses share.
pub struct AnalysisCtx<'p> {
    /// The program under analysis.
    pub program: &'p Program,
    /// The hierarchical control graph (§3.2.1).
    pub hcg: Hcg,
    /// Enclosing loop statement for each statement (innermost first).
    parents: HashMap<StmtId, Vec<StmtId>>,
    /// Procedure containing each statement.
    proc_of: HashMap<StmtId, ProcId>,
    cfg_cache: RefCell<HashMap<StmtId, std::rc::Rc<Cfg>>>,
}

impl<'p> AnalysisCtx<'p> {
    /// Builds the context (and the HCG) for `program`.
    pub fn new(program: &'p Program) -> AnalysisCtx<'p> {
        let hcg = Hcg::build(program);
        let mut parents: HashMap<StmtId, Vec<StmtId>> = HashMap::new();
        let mut proc_of = HashMap::new();
        for (i, proc) in program.procedures.iter().enumerate() {
            let pid = ProcId(i as u32);
            let mut stack: Vec<(StmtId, Vec<StmtId>)> =
                proc.body.iter().map(|s| (*s, Vec::new())).collect();
            while let Some((s, chain)) = stack.pop() {
                parents.insert(s, chain.clone());
                proc_of.insert(s, pid);
                let stmt = program.stmt(s);
                let child_chain = if stmt.kind.is_loop() {
                    let mut c = vec![s];
                    c.extend(chain.iter().copied());
                    c
                } else {
                    chain.clone()
                };
                for body in stmt.kind.bodies() {
                    for &b in body {
                        stack.push((b, child_chain.clone()));
                    }
                }
            }
        }
        AnalysisCtx {
            program,
            hcg,
            parents,
            proc_of,
            cfg_cache: RefCell::new(HashMap::new()),
        }
    }

    /// Enclosing loop statements of `stmt`, innermost first.
    pub fn enclosing_loops(&self, stmt: StmtId) -> &[StmtId] {
        self.parents.get(&stmt).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The procedure containing `stmt`.
    pub fn proc_of(&self, stmt: StmtId) -> Option<ProcId> {
        self.proc_of.get(&stmt).copied()
    }

    /// The (cached) flat CFG of a loop statement — the region the bounded
    /// DFS searches, including the back edge.
    pub fn loop_cfg(&self, loop_stmt: StmtId) -> std::rc::Rc<Cfg> {
        let mut cache = self.cfg_cache.borrow_mut();
        cache
            .entry(loop_stmt)
            .or_insert_with(|| {
                std::rc::Rc::new(Cfg::build(self.program, std::slice::from_ref(&loop_stmt)))
            })
            .clone()
    }

    /// A [`RangeEnv`] with the ranges of every `do` variable enclosing
    /// `stmt` (including `stmt` itself when it is a `do`).
    pub fn range_env_at(&self, stmt: StmtId) -> RangeEnv {
        let mut env = RangeEnv::new();
        let add = |s: StmtId, env: &mut RangeEnv| {
            if let StmtKind::Do {
                var, lo, hi, step, ..
            } = &self.program.stmt(s).kind
            {
                if step.as_ref().and_then(|e| e.as_int_lit()).unwrap_or(1) == 1 {
                    if let (Some(lo), Some(hi)) = (expr_to_sym(lo), expr_to_sym(hi)) {
                        env.set_var_range(*var, lo, hi);
                    }
                }
            }
        };
        add(stmt, &mut env);
        for &l in self.enclosing_loops(stmt) {
            add(l, &mut env);
        }
        env
    }

    /// The `(lhs, rhs)` of an assignment statement.
    pub fn assign_parts(&self, stmt: StmtId) -> Option<(&LValue, &Expr)> {
        match &self.program.stmt(stmt).kind {
            StmtKind::Assign { lhs, rhs } => Some((lhs, rhs)),
            _ => None,
        }
    }

    /// Whether the do-loop `stmt` has unit step.
    pub fn unit_step(&self, stmt: StmtId) -> bool {
        match &self.program.stmt(stmt).kind {
            StmtKind::Do { step, .. } => {
                step.as_ref().and_then(|e| e.as_int_lit()).unwrap_or(1) == 1
            }
            _ => false,
        }
    }

    /// Symbolic loop bounds `(var, lo, hi)` of a unit-step do-loop.
    pub fn do_bounds_sym(&self, stmt: StmtId) -> Option<(VarId, SymExpr, SymExpr)> {
        match &self.program.stmt(stmt).kind {
            StmtKind::Do {
                var, lo, hi, step, ..
            } if step.as_ref().and_then(|e| e.as_int_lit()).unwrap_or(1) == 1 => {
                Some((*var, expr_to_sym(lo)?, expr_to_sym(hi)?))
            }
            _ => None,
        }
    }

    /// The expressions *evaluated* at a CFG node (assignment rhs and
    /// subscripts, loop bounds, conditions, print arguments) — used to
    /// classify reads.
    pub fn node_exprs(&self, cfg: &Cfg, n: CfgNodeId) -> Vec<&Expr> {
        let mut out = Vec::new();
        match cfg.kind(n) {
            CfgNodeKind::Stmt(s) => match &self.program.stmt(s).kind {
                StmtKind::Assign { lhs, rhs } => {
                    for e in lhs.subscripts() {
                        out.push(e);
                    }
                    out.push(rhs);
                }
                StmtKind::Print { args } => out.extend(args.iter()),
                _ => {}
            },
            CfgNodeKind::LoopHead(s) => match &self.program.stmt(s).kind {
                StmtKind::Do { lo, hi, step, .. } => {
                    out.push(lo);
                    out.push(hi);
                    if let Some(st) = step {
                        out.push(st);
                    }
                }
                StmtKind::While { cond, .. } => out.push(cond),
                _ => {}
            },
            CfgNodeKind::Branch(s) => {
                if let StmtKind::If { cond, .. } = &self.program.stmt(s).kind {
                    out.push(cond);
                }
            }
            _ => {}
        }
        out
    }

    /// Whether the expressions evaluated at `n` read array element
    /// `arr(idx_var)` (exactly single-indexed form).
    pub fn node_reads_elem(&self, cfg: &Cfg, n: CfgNodeId, arr: VarId, idx_var: VarId) -> bool {
        for e in self.node_exprs(cfg, n) {
            let mut found = false;
            irr_frontend::visit::for_each_subexpr(e, &mut |sub| {
                if let Expr::Element(a, subs) = sub {
                    if *a == arr && subs.len() == 1 && subs[0].is_var(idx_var) {
                        found = true;
                    }
                }
            });
            if found {
                return true;
            }
        }
        false
    }

    /// Whether node `n` is an assignment whose target is `arr(idx_var)`.
    pub fn node_writes_elem(&self, cfg: &Cfg, n: CfgNodeId, arr: VarId, idx_var: VarId) -> bool {
        if let CfgNodeKind::Stmt(s) = cfg.kind(n) {
            if let Some((LValue::Element(a, subs), _)) = self.assign_parts(s) {
                return *a == arr && subs.len() == 1 && subs[0].is_var(idx_var);
            }
        }
        false
    }

    /// Whether any procedure transitively reachable from a `call` in
    /// `body` references `var` (read or write) — used to bail out of the
    /// single-indexed analyses when calls could disturb the index.
    pub fn calls_touch_var(&self, body: &[StmtId], var: VarId) -> bool {
        let mut procs: Vec<ProcId> = Vec::new();
        for s in self.program.stmts_in(body) {
            if let StmtKind::Call { proc } = &self.program.stmt(s).kind {
                if !procs.contains(proc) {
                    procs.push(*proc);
                }
            }
        }
        let mut i = 0;
        while i < procs.len() {
            let p = procs[i];
            i += 1;
            let pbody = &self.program.procedure(p).body;
            for s in self.program.stmts_in(pbody) {
                if let StmtKind::Call { proc } = &self.program.stmt(s).kind {
                    if !procs.contains(proc) {
                        procs.push(*proc);
                    }
                }
                let mut touched = false;
                if let StmtKind::Assign { lhs, .. } = &self.program.stmt(s).kind {
                    if lhs.var() == var {
                        touched = true;
                    }
                }
                irr_frontend::visit::for_each_expr_in_stmt(self.program, s, |e| {
                    if e.mentions(var) {
                        touched = true;
                    }
                });
                if touched {
                    return true;
                }
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use irr_frontend::parse_program;

    #[test]
    fn enclosing_loops_innermost_first() {
        let p = parse_program(
            "program t
             integer i, j
             do i = 1, 3
               do j = 1, 2
                 x = 1
               enddo
             enddo
             end",
        )
        .unwrap();
        let ctx = AnalysisCtx::new(&p);
        let all = p.stmts_in(&p.procedure(p.main()).body);
        let inner_assign = all
            .iter()
            .copied()
            .find(|s| matches!(p.stmt(*s).kind, StmtKind::Assign { .. }))
            .unwrap();
        let loops = ctx.enclosing_loops(inner_assign);
        assert_eq!(loops.len(), 2);
        // Innermost (j-loop) first.
        if let StmtKind::Do { var, .. } = &p.stmt(loops[0]).kind {
            assert_eq!(p.symbols.name(*var), "j");
        } else {
            panic!("expected do");
        }
    }

    #[test]
    fn range_env_includes_loop_bounds() {
        let p = parse_program(
            "program t
             integer i, n
             real x(10)
             do i = 2, n
               x(i) = 1
             enddo
             end",
        )
        .unwrap();
        let ctx = AnalysisCtx::new(&p);
        let all = p.stmts_in(&p.procedure(p.main()).body);
        let assign = all
            .iter()
            .copied()
            .find(|s| matches!(p.stmt(*s).kind, StmtKind::Assign { .. }))
            .unwrap();
        let env = ctx.range_env_at(assign);
        let i = p.symbols.lookup("i").unwrap();
        // i - 2 >= 0 provable.
        let e = SymExpr::var(i).sub(&SymExpr::int(2));
        assert!(irr_symbolic::prove_ge0(&e, &env));
    }

    #[test]
    fn calls_touch_var_detects_transitive_use() {
        let p = parse_program(
            "program t
             integer p, q
             call a
             end
             subroutine a
             call b
             end
             subroutine b
             p = p + 1
             end",
        )
        .unwrap();
        let ctx = AnalysisCtx::new(&p);
        let body = p.procedure(p.main()).body.clone();
        let pv = p.symbols.lookup("p").unwrap();
        let qv = p.symbols.lookup("q").unwrap();
        assert!(ctx.calls_touch_var(&body, pv));
        assert!(!ctx.calls_touch_var(&body, qv));
    }
}
