//! Resource budgets for the compile-time analyses.
//!
//! A production analysis service cannot let one pathological program
//! monopolize a worker: every pass that does data-dependent work — the
//! demand-driven property solver, the value-evolution walk, the
//! bottom-up summary fixpoint — must be stoppable mid-flight without
//! compromising soundness. [`AnalysisBudget`] is the shared meter: a
//! fuel counter (analysis steps) plus an optional wall-clock deadline,
//! checked cooperatively at the passes' work sites.
//!
//! The contract that keeps exhaustion *sound* is the same one the
//! solver already obeys: every budgeted question answers "could not be
//! verified" when the meter runs dry. Unverified properties only ever
//! move loop verdicts toward `Sequential` (fewer proofs, fewer
//! promotions, more runtime guards), never toward a parallel claim —
//! so a starved analysis yields weaker verdicts, not wrong ones. The
//! degradation ladder in `irr-driver`/`irr-service` builds on exactly
//! this property.
//!
//! The budget is `Sync` (atomics throughout) so a service watchdog can
//! observe a worker's meter while the worker burns it; the deadline is
//! sampled only every [`CLOCK_CHECK_INTERVAL`] spends to keep the
//! per-step cost to a pair of relaxed atomic operations.

use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::time::{Duration, Instant};

/// How many fuel spends happen between wall-clock samples: `Instant::
/// now()` is far more expensive than the atomic bookkeeping, so the
/// deadline is enforced at this granularity.
pub const CLOCK_CHECK_INTERVAL: u64 = 256;

/// Why a budget ran out.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BudgetExhaustion {
    /// The fuel counter (analysis steps) reached zero.
    Fuel,
    /// The wall-clock deadline passed.
    WallClock,
}

impl BudgetExhaustion {
    /// Short stable name for telemetry and reason-coded responses.
    pub fn name(&self) -> &'static str {
        match self {
            BudgetExhaustion::Fuel => "fuel",
            BudgetExhaustion::WallClock => "wall-clock",
        }
    }
}

const STATE_OK: u8 = 0;
const STATE_FUEL: u8 = 1;
const STATE_WALL: u8 = 2;

/// A cooperative fuel + wall-clock meter threaded through the analysis
/// passes. Cloneable handles are not needed: passes borrow the budget
/// (`&AnalysisBudget`), the owner keeps it for the post-run verdict.
#[derive(Debug)]
pub struct AnalysisBudget {
    /// Remaining fuel; `u64::MAX` means unmetered.
    fuel: AtomicU64,
    /// Deadline, if any.
    deadline: Option<Instant>,
    /// Spends since the last clock sample.
    since_clock_check: AtomicU64,
    /// `STATE_*`: sticky exhaustion flag.
    state: AtomicU8,
}

impl AnalysisBudget {
    /// A budget that never exhausts (the default for direct compiles).
    pub fn unbounded() -> AnalysisBudget {
        AnalysisBudget {
            fuel: AtomicU64::new(u64::MAX),
            deadline: None,
            since_clock_check: AtomicU64::new(0),
            state: AtomicU8::new(STATE_OK),
        }
    }

    /// A budget of `fuel` analysis steps (`None` = unmetered) and an
    /// optional wall-clock allowance starting now.
    pub fn limited(fuel: Option<u64>, wall: Option<Duration>) -> AnalysisBudget {
        AnalysisBudget {
            fuel: AtomicU64::new(fuel.unwrap_or(u64::MAX)),
            deadline: wall.map(|w| Instant::now() + w),
            since_clock_check: AtomicU64::new(0),
            state: AtomicU8::new(STATE_OK),
        }
    }

    /// A budget sharing this one's deadline but with a fresh fuel
    /// allowance — the degradation ladder descends with new fuel while
    /// the request's wall clock keeps ticking.
    pub fn refueled(&self, fuel: Option<u64>) -> AnalysisBudget {
        AnalysisBudget {
            fuel: AtomicU64::new(fuel.unwrap_or(u64::MAX)),
            deadline: self.deadline,
            since_clock_check: AtomicU64::new(0),
            state: AtomicU8::new(if self.exhausted() == Some(BudgetExhaustion::WallClock) {
                STATE_WALL
            } else {
                STATE_OK
            }),
        }
    }

    /// Burns `n` fuel. Returns `false` — permanently, once per budget —
    /// when the meter is dry: callers must then answer conservatively
    /// (property unverified, fact unknown, summary opaque).
    pub fn spend(&self, n: u64) -> bool {
        if self.state.load(Ordering::Relaxed) != STATE_OK {
            return false;
        }
        let prev = self.fuel.fetch_sub(n, Ordering::Relaxed);
        if prev < n {
            self.fuel.store(0, Ordering::Relaxed);
            self.state.store(STATE_FUEL, Ordering::Relaxed);
            return false;
        }
        if let Some(deadline) = self.deadline {
            let ticks = self.since_clock_check.fetch_add(n, Ordering::Relaxed) + n;
            if ticks >= CLOCK_CHECK_INTERVAL {
                self.since_clock_check.store(0, Ordering::Relaxed);
                if Instant::now() >= deadline {
                    self.state.store(STATE_WALL, Ordering::Relaxed);
                    return false;
                }
            }
        }
        true
    }

    /// Whether (and why) the budget has run out. Sticky: once exhausted,
    /// a budget stays exhausted.
    pub fn exhausted(&self) -> Option<BudgetExhaustion> {
        match self.state.load(Ordering::Relaxed) {
            STATE_FUEL => Some(BudgetExhaustion::Fuel),
            STATE_WALL => Some(BudgetExhaustion::WallClock),
            _ => {
                // An expired deadline counts even between clock samples,
                // so observers (watchdogs, the ladder) see a stall the
                // moment they look.
                if self.deadline.is_some_and(|d| Instant::now() >= d) {
                    self.state.store(STATE_WALL, Ordering::Relaxed);
                    Some(BudgetExhaustion::WallClock)
                } else {
                    None
                }
            }
        }
    }

    /// Remaining fuel (`u64::MAX` when unmetered).
    pub fn fuel_left(&self) -> u64 {
        if self.exhausted() == Some(BudgetExhaustion::Fuel) {
            0
        } else {
            self.fuel.load(Ordering::Relaxed)
        }
    }
}

impl Default for AnalysisBudget {
    fn default() -> Self {
        AnalysisBudget::unbounded()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_never_exhausts() {
        let b = AnalysisBudget::unbounded();
        for _ in 0..10_000 {
            assert!(b.spend(1));
        }
        assert_eq!(b.exhausted(), None);
    }

    #[test]
    fn fuel_exhaustion_is_sticky_and_reason_coded() {
        let b = AnalysisBudget::limited(Some(10), None);
        for _ in 0..10 {
            assert!(b.spend(1));
        }
        assert!(!b.spend(1));
        assert_eq!(b.exhausted(), Some(BudgetExhaustion::Fuel));
        assert!(!b.spend(1), "exhaustion is permanent");
        assert_eq!(b.fuel_left(), 0);
    }

    #[test]
    fn oversized_spend_exhausts_immediately() {
        let b = AnalysisBudget::limited(Some(5), None);
        assert!(!b.spend(6));
        assert_eq!(b.exhausted(), Some(BudgetExhaustion::Fuel));
    }

    #[test]
    fn wall_clock_deadline_trips() {
        let b = AnalysisBudget::limited(None, Some(Duration::from_millis(0)));
        // The deadline is already past; the first full clock-check
        // window notices.
        let mut tripped = false;
        for _ in 0..(2 * CLOCK_CHECK_INTERVAL) {
            if !b.spend(1) {
                tripped = true;
                break;
            }
        }
        assert!(tripped);
        assert_eq!(b.exhausted(), Some(BudgetExhaustion::WallClock));
    }

    #[test]
    fn observers_see_expired_deadline_without_spending() {
        let b = AnalysisBudget::limited(None, Some(Duration::from_millis(0)));
        assert_eq!(b.exhausted(), Some(BudgetExhaustion::WallClock));
    }

    #[test]
    fn refueled_keeps_deadline_but_resets_fuel() {
        let b = AnalysisBudget::limited(Some(1), None);
        assert!(b.spend(1));
        assert!(!b.spend(1));
        let r = b.refueled(Some(100));
        assert_eq!(r.exhausted(), None, "fuel exhaustion does not carry over");
        assert!(r.spend(50));
        let expired = AnalysisBudget::limited(None, Some(Duration::from_millis(0)));
        let r2 = expired.refueled(Some(100));
        assert_eq!(
            r2.exhausted(),
            Some(BudgetExhaustion::WallClock),
            "an expired request deadline survives the refuel"
        );
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(BudgetExhaustion::Fuel.name(), "fuel");
        assert_eq!(BudgetExhaustion::WallClock.name(), "wall-clock");
    }
}
