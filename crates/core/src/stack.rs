//! Array-stack access analysis (§2.3, Table 1).
//!
//! Many programs implement stacks in arrays (`t(p)` with `p` the
//! top-of-stack index). The analysis checks, with bounded DFS runs per
//! Table 1, that accesses follow the last-written-first-read discipline:
//!
//! | from            | bound set `S_bound`              | failed set `S_failed`            |
//! |-----------------|----------------------------------|----------------------------------|
//! | `p = p + 1`     | `{x(p) = .., p = C_bottom}`      | `{p = p+1, p = p-1, .. = x(p)}`  |
//! | `p = p - 1`     | `{p = p+1, .. = x(p), p = C_bottom}` | `{p = p-1, x(p) = ..}`       |
//! | `x(p) = ..`     | `{p = p+1, .. = x(p), p = C_bottom}` | `{p = p-1, x(p) = ..}`       |
//! | `.. = x(p)`     | `{p = p-1, p = C_bottom}`        | `{p = p+1, x(p) = .., .. = x(p)}`|
//!
//! (The decrement row allows a following *read* — after a pop, peeking
//! the new top reads an element that was pushed earlier in the same
//! iteration, which preserves written-before-read; Barnes–Hut-style tree
//! walks rely on this.)
//!
//! Intuitively this ensures `p` is set to `C_bottom` before use, a push
//! increments then writes, a pop reads then decrements, and the value of
//! `p` never escapes the stack discipline.

use crate::ctx::AnalysisCtx;
use crate::single_indexed::{classify_index_def, index_defs, IndexDefKind};
use irr_frontend::{StmtId, StmtKind, VarId};
use irr_graph::bdfs::{bounded_dfs, BdfsOutcome};
use irr_graph::{CfgNodeId, CfgNodeKind};
use irr_symbolic::SymExpr;

/// A verified array stack in a loop body.
#[derive(Clone, Debug)]
pub struct StackAccess {
    /// The stack array.
    pub array: VarId,
    /// The top-of-stack index variable.
    pub index: VarId,
    /// The constant the index is reset to (`C_bottom`).
    pub bottom: SymExpr,
    /// Whether the index is reset to `C_bottom` at the beginning of every
    /// iteration of the loop before any other use — the §2.3 condition
    /// for privatizing the stack array.
    pub resets_each_iteration: bool,
}

/// Per-node classification within the stack discipline.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
struct NodeClass {
    inc: bool,
    dec: bool,
    set_bottom: bool,
    write: bool,
    read: bool,
}

/// Checks whether `array` (single-indexed by `index`) is used as a stack
/// inside `loop_stmt`.
pub fn stack_access(
    ctx: &AnalysisCtx<'_>,
    loop_stmt: StmtId,
    array: VarId,
    index: VarId,
) -> Option<StackAccess> {
    let program = ctx.program;
    let body: Vec<StmtId> = match &program.stmt(loop_stmt).kind {
        StmtKind::Do { body, .. } | StmtKind::While { body, .. } => body.clone(),
        _ => return None,
    };
    if ctx.calls_touch_var(&body, index) || ctx.calls_touch_var(&body, array) {
        return None;
    }
    // 1. Index defined only as p+1, p-1, or p = C_bottom, with a single
    //    C_bottom value.
    let defs = index_defs(ctx, &body, index);
    if defs.is_empty() {
        return None;
    }
    let mut bottom: Option<SymExpr> = None;
    for (_, kind) in &defs {
        match kind {
            IndexDefKind::Increment | IndexDefKind::Decrement => {}
            IndexDefKind::SetConst(c) => match &bottom {
                None => bottom = Some(c.clone()),
                Some(b) if b == c => {}
                _ => return None,
            },
            IndexDefKind::Other => return None,
        }
    }
    // Writes of the array must all be x(p).
    for acc in irr_frontend::visit::collect_array_accesses(program, &body) {
        if acc.array == array {
            let ok =
                matches!(acc.subscripts.as_slice(), [irr_frontend::Expr::Var(v)] if *v == index);
            if !ok {
                return None;
            }
        }
    }
    let cfg = ctx.loop_cfg(loop_stmt);
    let classify = |n: CfgNodeId| -> NodeClass {
        let mut c = NodeClass {
            inc: false,
            dec: false,
            set_bottom: false,
            write: false,
            read: false,
        };
        if let CfgNodeKind::Stmt(s) = cfg.kind(n) {
            match classify_index_def(ctx, s, index) {
                Some(IndexDefKind::Increment) => c.inc = true,
                Some(IndexDefKind::Decrement) => c.dec = true,
                Some(IndexDefKind::SetConst(_)) => c.set_bottom = true,
                _ => {}
            }
            if ctx.node_writes_elem(&cfg, n, array, index) {
                c.write = true;
            }
        }
        if ctx.node_reads_elem(&cfg, n, array, index) {
            c.read = true;
        }
        c
    };
    let classes: Vec<NodeClass> = cfg.nodes().map(classify).collect();
    let cls = |n: CfgNodeId| classes[n.index()];

    // 2. Table 1 checks from every occurrence of each statement kind.
    type ClassPred = fn(NodeClass) -> bool;
    let checks: [(ClassPred, ClassPred, ClassPred); 4] = [
        // from p = p + 1
        (
            |c| c.inc,
            |c| c.write || c.set_bottom,
            |c| c.inc || c.dec || c.read,
        ),
        // from p = p - 1 (a following read peeks the new top: allowed)
        (
            |c| c.dec,
            |c| c.inc || c.read || c.set_bottom,
            |c| c.dec || c.write,
        ),
        // from x(p) = ..
        (
            |c| c.write,
            |c| c.inc || c.read || c.set_bottom,
            |c| c.dec || c.write,
        ),
        // from .. = x(p)
        (
            |c| c.read,
            |c| c.dec || c.set_bottom,
            |c| c.inc || c.write || c.read,
        ),
    ];
    for (is_start, in_bound, in_failed) in checks {
        let starts: Vec<CfgNodeId> = cfg.nodes().filter(|n| is_start(cls(*n))).collect();
        for s in starts {
            if bounded_dfs(&cfg, s, |n| in_bound(cls(n)), |n| in_failed(cls(n)))
                == BdfsOutcome::Failed
            {
                return None;
            }
        }
    }
    let bottom = bottom?; // a stack must have a reset somewhere

    // 3. Reset discipline: from the loop header, the index must be set to
    //    C_bottom before any other index operation or array access.
    let head = cfg
        .nodes_where(|k| matches!(k, CfgNodeKind::LoopHead(s) if s == loop_stmt))
        .into_iter()
        .next()?;
    let resets = bounded_dfs(
        &cfg,
        head,
        |n| cls(n).set_bottom,
        |n| {
            let c = cls(n);
            c.inc || c.dec || c.write || c.read
        },
    ) == BdfsOutcome::Succeeded;

    Some(StackAccess {
        array,
        index,
        bottom,
        resets_each_iteration: resets,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use irr_frontend::parse_program;
    use irr_frontend::Program;

    fn first_loop(p: &Program) -> StmtId {
        p.stmts_in(&p.procedure(p.main()).body)
            .into_iter()
            .find(|s| p.stmt(*s).kind.is_loop())
            .expect("program has a loop")
    }

    /// The Fig. 1(b)-style array stack: reset, push loop, conditional
    /// pops.
    fn fig1b_src() -> &'static str {
        "program t
         integer i, j, n, m, p, cond(100)
         real t2(100), work(100)
         do i = 1, n
           p = 0
           do j = 1, m
             p = p + 1
             t2(p) = work(j)
             if (cond(j) > 0) then
               if (p >= 1) then
                 work(j) = t2(p)
                 p = p - 1
               endif
             endif
           enddo
         enddo
         end"
    }

    #[test]
    fn fig1b_stack_is_recognized() {
        let p = parse_program(fig1b_src()).unwrap();
        let ctx = AnalysisCtx::new(&p);
        let t2 = p.symbols.lookup("t2").unwrap();
        let pv = p.symbols.lookup("p").unwrap();
        let outer = first_loop(&p);
        let st = stack_access(&ctx, outer, t2, pv).expect("t2 is a stack");
        assert_eq!(st.bottom, SymExpr::int(0));
        assert!(st.resets_each_iteration);
    }

    #[test]
    fn pop_before_push_fails() {
        // Reading x(p) right after the reset (before any push) violates
        // the read row of Table 1 only through the decrement path; the
        // failure here is the read following the reset path without a
        // push... the discipline check that catches it: from `.. = x(p)`,
        // a path reaches another read or the loop wrap without a
        // decrement bound. Build a case where a read follows a read.
        let src = "program t
             integer i, n, p
             real x(100), y(100)
             do i = 1, n
               p = 0
               p = p + 1
               x(p) = 1
               y(i) = x(p)
               y(i) = x(p) + 1
             enddo
             end";
        let p = parse_program(src).unwrap();
        let ctx = AnalysisCtx::new(&p);
        let x = p.symbols.lookup("x").unwrap();
        let pv = p.symbols.lookup("p").unwrap();
        // Two consecutive reads: from the first read, the adjacent second
        // read is in S_failed.
        assert!(stack_access(&ctx, first_loop(&p), x, pv).is_none());
    }

    #[test]
    fn push_without_write_fails() {
        let src = "program t
             integer i, n, p
             real x(100), y(100)
             do i = 1, n
               p = 0
               p = p + 1
               p = p + 1
               x(p) = 1
             enddo
             end";
        let p = parse_program(src).unwrap();
        let ctx = AnalysisCtx::new(&p);
        let x = p.symbols.lookup("x").unwrap();
        let pv = p.symbols.lookup("p").unwrap();
        assert!(stack_access(&ctx, first_loop(&p), x, pv).is_none());
    }

    #[test]
    fn two_different_bottoms_fail() {
        let src = "program t
             integer i, n, p, c
             real x(100)
             do i = 1, n
               if (c > 0) then
                 p = 0
               else
                 p = 5
               endif
               p = p + 1
               x(p) = 1
             enddo
             end";
        let p = parse_program(src).unwrap();
        let ctx = AnalysisCtx::new(&p);
        let x = p.symbols.lookup("x").unwrap();
        let pv = p.symbols.lookup("p").unwrap();
        assert!(stack_access(&ctx, first_loop(&p), x, pv).is_none());
    }

    #[test]
    fn missing_reset_is_not_privatizable() {
        // A well-formed stack that never resets: the Table 1 discipline
        // holds but resets_each_iteration must be false... without any
        // SetConst def there is no C_bottom at all, so it is not
        // recognized as a stack.
        let src = "program t
             integer i, n, p
             real x(100), y(100)
             do i = 1, n
               p = p + 1
               x(p) = 1
               y(i) = x(p)
               p = p - 1
             enddo
             end";
        let p = parse_program(src).unwrap();
        let ctx = AnalysisCtx::new(&p);
        let x = p.symbols.lookup("x").unwrap();
        let pv = p.symbols.lookup("p").unwrap();
        assert!(stack_access(&ctx, first_loop(&p), x, pv).is_none());
    }

    #[test]
    fn barnes_hut_style_traversal_stack() {
        // TREE/ACCEL-style tree walk with an explicit stack: push root,
        // loop while stack nonempty popping and pushing children.
        let src = "program t
             integer i, n, sptr, child(100), nchild(100), node
             real stack(100), acc(100)
             do i = 1, n
               sptr = 0
               sptr = sptr + 1
               stack(sptr) = 1
               while (sptr >= 1)
                 node = int(stack(sptr))
                 sptr = sptr - 1
                 acc(i) = acc(i) + node
                 if (nchild(node) > 0) then
                   sptr = sptr + 1
                   stack(sptr) = child(node)
                 endif
               endwhile
             enddo
             end";
        let p = parse_program(src).unwrap();
        let ctx = AnalysisCtx::new(&p);
        let st = p.symbols.lookup("stack").unwrap();
        let sptr = p.symbols.lookup("sptr").unwrap();
        let outer = first_loop(&p);
        let info = stack_access(&ctx, outer, st, sptr).expect("stack recognized");
        assert!(info.resets_each_iteration);
        assert_eq!(info.bottom, SymExpr::int(0));
    }
}
