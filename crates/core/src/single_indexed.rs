//! Irregular single-indexed array access analysis (§2).
//!
//! An array is *single-indexed* in a loop when it is always subscripted
//! by the same scalar variable throughout the loop (like `x(p)` in the
//! `while` loop of Fig. 1(a)). The analyses here trace how the index
//! variable evolves between consecutive accesses using the bounded DFS
//! of Fig. 2.

use crate::ctx::AnalysisCtx;
use irr_frontend::{Expr, LValue, StmtId, StmtKind, VarId};
use irr_graph::bdfs::{bounded_dfs, BdfsOutcome};
use irr_graph::{Cfg, CfgNodeId, CfgNodeKind};
use irr_symbolic::{expr_to_sym, SymExpr};

/// A single-indexed array in a region: `array` is only ever subscripted
/// by `index`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SingleIndexed {
    /// The host array.
    pub array: VarId,
    /// The single index variable.
    pub index: VarId,
}

/// Classification of one definition of an index variable inside a region
/// (§2.3 allows exactly increments, decrements, and resets to a constant
/// bottom).
#[derive(Clone, PartialEq, Debug)]
pub enum IndexDefKind {
    /// `p = p + 1`.
    Increment,
    /// `p = p - 1`.
    Decrement,
    /// `p = c` for a region-invariant expression `c`.
    SetConst(SymExpr),
    /// Anything else.
    Other,
}

/// Classifies an assignment to `var`; `None` if `stmt` does not assign
/// `var`.
pub fn classify_index_def(ctx: &AnalysisCtx<'_>, stmt: StmtId, var: VarId) -> Option<IndexDefKind> {
    match &ctx.program.stmt(stmt).kind {
        StmtKind::Assign {
            lhs: LValue::Scalar(v),
            rhs,
        } if *v == var => {
            let Some(rhs_sym) = expr_to_sym(rhs) else {
                return Some(IndexDefKind::Other);
            };
            let p = SymExpr::var(var);
            if rhs_sym == p.add(&SymExpr::int(1)) {
                return Some(IndexDefKind::Increment);
            }
            if rhs_sym == p.sub(&SymExpr::int(1)) {
                return Some(IndexDefKind::Decrement);
            }
            if !rhs_sym.mentions_var(var) {
                return Some(IndexDefKind::SetConst(rhs_sym));
            }
            Some(IndexDefKind::Other)
        }
        StmtKind::Do { var: v, .. } if *v == var => Some(IndexDefKind::Other),
        _ => None,
    }
}

/// All definitions of `var` in the (transitive) statements of a region,
/// with their classification.
pub fn index_defs(
    ctx: &AnalysisCtx<'_>,
    body: &[StmtId],
    var: VarId,
) -> Vec<(StmtId, IndexDefKind)> {
    let mut out = Vec::new();
    for s in ctx.program.stmts_in(body) {
        if let Some(kind) = classify_index_def(ctx, s, var) {
            out.push((s, kind));
        }
    }
    out
}

/// Finds the arrays that are single-indexed inside the body of
/// `loop_stmt` (§2): 1-D arrays whose every access uses the same bare
/// scalar subscript. The loop's own induction variable does not count —
/// accesses through it are regular.
pub fn single_indexed_arrays(ctx: &AnalysisCtx<'_>, loop_stmt: StmtId) -> Vec<SingleIndexed> {
    let program = ctx.program;
    let body: Vec<StmtId> = match &program.stmt(loop_stmt).kind {
        StmtKind::Do { body, .. } | StmtKind::While { body, .. } => body.clone(),
        _ => return Vec::new(),
    };
    let accesses = irr_frontend::visit::collect_array_accesses(program, &body);
    let mut result: Vec<(VarId, Option<VarId>)> = Vec::new(); // None = disqualified
    let loop_var = match &program.stmt(loop_stmt).kind {
        StmtKind::Do { var, .. } => Some(*var),
        _ => None,
    };
    for acc in &accesses {
        let idx = match acc.subscripts.as_slice() {
            [Expr::Var(v)] => Some(*v),
            _ => None,
        };
        let entry = result.iter_mut().find(|(a, _)| *a == acc.array);
        match entry {
            None => result.push((acc.array, idx)),
            Some((_, slot)) => {
                if *slot != idx {
                    *slot = None;
                }
            }
        }
    }
    result
        .into_iter()
        .filter_map(|(array, idx)| {
            let index = idx?;
            if Some(index) == loop_var {
                return None; // regular access, not irregular
            }
            Some(SingleIndexed { array, index })
        })
        .collect()
}

/// Result of the consecutively-written analysis (§2.2): inside the loop,
/// all writes to `array` go through `index`, the index only moves up by
/// one, and every increment is followed by a write before the next
/// increment (and before loop exit) — so the region
/// `[index_at_entry + 1 : index_at_exit]` is densely written.
#[derive(Clone, Debug)]
pub struct ConsecutivelyWritten {
    /// The host array.
    pub array: VarId,
    /// The index variable.
    pub index: VarId,
    /// The `p = p + 1` statements.
    pub increments: Vec<StmtId>,
}

/// Checks whether single-indexed `array` (indexed by `index`) is
/// consecutively written in `loop_stmt` (§2.2).
///
/// The algorithm is the one in the paper: first check that `index` is
/// never defined other than by `p = p + 1` inside the loop; then run a
/// bounded DFS from every increment, bounding at writes of `array(index)`
/// and failing at increments — if some path reaches a second increment
/// (or the loop exit) without writing the array, there may be holes.
pub fn consecutively_written(
    ctx: &AnalysisCtx<'_>,
    loop_stmt: StmtId,
    array: VarId,
    index: VarId,
) -> Option<ConsecutivelyWritten> {
    let program = ctx.program;
    let body: Vec<StmtId> = match &program.stmt(loop_stmt).kind {
        StmtKind::Do { body, .. } | StmtKind::While { body, .. } => body.clone(),
        _ => return None,
    };
    // Calls inside the loop must not touch the index or the array.
    if ctx.calls_touch_var(&body, index) || ctx.calls_touch_var(&body, array) {
        return None;
    }
    let defs = index_defs(ctx, &body, index);
    if defs.is_empty() || !defs.iter().all(|(_, k)| *k == IndexDefKind::Increment) {
        return None;
    }
    let increments: Vec<StmtId> = defs.into_iter().map(|(s, _)| s).collect();
    // Writes of the array must all be through `index` (single-indexed
    // callers guarantee this, but re-check writes specifically).
    for acc in irr_frontend::visit::collect_array_accesses(program, &body) {
        if acc.array == array && acc.is_write {
            let ok = matches!(acc.subscripts.as_slice(), [Expr::Var(v)] if *v == index);
            if !ok {
                return None;
            }
        }
    }
    let cfg = ctx.loop_cfg(loop_stmt);
    let inc_nodes: Vec<CfgNodeId> =
        cfg.nodes_where(|k| matches!(k, CfgNodeKind::Stmt(s) if increments.contains(&s)));
    let is_write = |n: CfgNodeId| ctx.node_writes_elem(&cfg, n, array, index);
    let is_inc_or_exit = |n: CfgNodeId| {
        n == Cfg::EXIT || matches!(cfg.kind(n), CfgNodeKind::Stmt(s) if increments.contains(&s))
    };
    for &inc in &inc_nodes {
        // From each increment, every path must hit a write of
        // array(index) before reaching another increment or the region
        // exit (the exit case closes the "hole at the end" that a purely
        // increment-to-increment check would miss).
        if bounded_dfs(&cfg, inc, is_write, is_inc_or_exit) == BdfsOutcome::Failed {
            return None;
        }
    }
    Some(ConsecutivelyWritten {
        array,
        index,
        increments,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use irr_frontend::parse_program;
    use irr_frontend::Program;

    fn first_loop(p: &Program) -> StmtId {
        p.stmts_in(&p.procedure(p.main()).body)
            .into_iter()
            .find(|s| p.stmt(*s).kind.is_loop())
            .expect("program has a loop")
    }

    fn nth_loop(p: &Program, k: usize) -> StmtId {
        p.stmts_in(&p.procedure(p.main()).body)
            .into_iter()
            .filter(|s| p.stmt(*s).kind.is_loop())
            .nth(k)
            .expect("program has enough loops")
    }

    #[test]
    fn detects_single_indexed_array() {
        let p = parse_program(
            "program t
             integer i, n, p
             real x(100), y(100)
             do i = 1, n
               p = p + 1
               x(p) = y(i)
             enddo
             end",
        )
        .unwrap();
        let ctx = AnalysisCtx::new(&p);
        let l = first_loop(&p);
        let si = single_indexed_arrays(&ctx, l);
        let x = p.symbols.lookup("x").unwrap();
        let pv = p.symbols.lookup("p").unwrap();
        assert!(si.contains(&SingleIndexed {
            array: x,
            index: pv
        }));
        // y(i) is regular (loop index), so it must not be reported.
        let y = p.symbols.lookup("y").unwrap();
        assert!(!si.iter().any(|s| s.array == y));
    }

    #[test]
    fn mixed_subscripts_disqualify() {
        let p = parse_program(
            "program t
             integer i, n, p, q
             real x(100)
             do i = 1, n
               x(p) = 1
               x(q) = 2
             enddo
             end",
        )
        .unwrap();
        let ctx = AnalysisCtx::new(&p);
        let si = single_indexed_arrays(&ctx, first_loop(&p));
        assert!(si.is_empty());
    }

    #[test]
    fn classify_defs() {
        let p = parse_program(
            "program t
             integer p
             p = p + 1
             p = p - 1
             p = 0
             p = p * 2
             end",
        )
        .unwrap();
        let ctx = AnalysisCtx::new(&p);
        let pv = p.symbols.lookup("p").unwrap();
        let body = p.procedure(p.main()).body.clone();
        let kinds: Vec<IndexDefKind> = index_defs(&ctx, &body, pv)
            .into_iter()
            .map(|(_, k)| k)
            .collect();
        assert_eq!(
            kinds,
            vec![
                IndexDefKind::Increment,
                IndexDefKind::Decrement,
                IndexDefKind::SetConst(SymExpr::int(0)),
                IndexDefKind::Other
            ]
        );
    }

    #[test]
    fn fig1a_while_loop_is_consecutively_written() {
        // The motivating example of Fig. 1(a): inside the while loop the
        // array x is written at x(p) immediately after each p = p + 1.
        let p = parse_program(
            "program t
             integer i, k, n, p, link(100, 10), cond(10, 100)
             real x(100), y(100), z(10, 100)
             do k = 1, n
               p = 0
               i = link(1, k)
               while (i /= 0)
                 p = p + 1
                 x(p) = y(i)
                 i = link(i, k)
                 if (cond(k, i) > 0) then
                   p = p + 1
                   x(p) = y(i)
                 endif
               endwhile
               do j = 1, p
                 z(k, j) = x(j)
               enddo
             enddo
             end",
        )
        .unwrap();
        let ctx = AnalysisCtx::new(&p);
        let x = p.symbols.lookup("x").unwrap();
        let pv = p.symbols.lookup("p").unwrap();
        // The while loop is the second loop in pre-order.
        let wl = nth_loop(&p, 1);
        assert!(matches!(p.stmt(wl).kind, StmtKind::While { .. }));
        let cw = consecutively_written(&ctx, wl, x, pv).expect("x is consecutively written");
        assert_eq!(cw.increments.len(), 2);
    }

    #[test]
    fn conditional_write_breaks_consecutiveness() {
        // p=p+1 followed by a *conditional* write leaves holes.
        let p = parse_program(
            "program t
             integer i, n, p, c
             real x(100)
             do i = 1, n
               p = p + 1
               if (c > 0) then
                 x(p) = 1
               endif
             enddo
             end",
        )
        .unwrap();
        let ctx = AnalysisCtx::new(&p);
        let x = p.symbols.lookup("x").unwrap();
        let pv = p.symbols.lookup("p").unwrap();
        assert!(consecutively_written(&ctx, first_loop(&p), x, pv).is_none());
    }

    #[test]
    fn decrement_breaks_consecutiveness() {
        let p = parse_program(
            "program t
             integer i, n, p
             real x(100)
             do i = 1, n
               p = p + 1
               x(p) = 1
               p = p - 1
             enddo
             end",
        )
        .unwrap();
        let ctx = AnalysisCtx::new(&p);
        let x = p.symbols.lookup("x").unwrap();
        let pv = p.symbols.lookup("p").unwrap();
        assert!(consecutively_written(&ctx, first_loop(&p), x, pv).is_none());
    }

    #[test]
    fn two_increments_in_a_row_break_consecutiveness() {
        let p = parse_program(
            "program t
             integer i, n, p
             real x(100)
             do i = 1, n
               p = p + 1
               p = p + 1
               x(p) = 1
             enddo
             end",
        )
        .unwrap();
        let ctx = AnalysisCtx::new(&p);
        let x = p.symbols.lookup("x").unwrap();
        let pv = p.symbols.lookup("p").unwrap();
        assert!(consecutively_written(&ctx, first_loop(&p), x, pv).is_none());
    }

    #[test]
    fn call_touching_index_disqualifies() {
        let p = parse_program(
            "program t
             integer i, n, p
             real x(100)
             do i = 1, n
               p = p + 1
               x(p) = 1
               call bump
             enddo
             end
             subroutine bump
             p = p + 1
             end",
        )
        .unwrap();
        let ctx = AnalysisCtx::new(&p);
        let x = p.symbols.lookup("x").unwrap();
        let pv = p.symbols.lookup("p").unwrap();
        // The loop is nth_loop 0 in main.
        assert!(consecutively_written(&ctx, first_loop(&p), x, pv).is_none());
    }

    #[test]
    fn write_then_increment_order_is_rejected() {
        // x(p) written before the increment: holes at the bottom.
        // After p=p+1 the path wraps to the next iteration's write, so
        // the simple wrap check passes, but the exit check fails: the
        // last increment is never followed by a write.
        let p = parse_program(
            "program t
             integer i, n, p
             real x(100)
             do i = 1, n
               x(p) = 1
               p = p + 1
             enddo
             end",
        )
        .unwrap();
        let ctx = AnalysisCtx::new(&p);
        let x = p.symbols.lookup("x").unwrap();
        let pv = p.symbols.lookup("p").unwrap();
        assert!(consecutively_written(&ctx, first_loop(&p), x, pv).is_none());
    }
}
