//! Interprocedural property summaries (the `irr-summaries` pass).
//!
//! The paper's whole-program examples assume index-array properties
//! survive subroutine boundaries (§4: the gathering phase and the
//! consuming phase live in different routines), and Bhosale &
//! Eigenmann make the same move explicit: propagate index-array
//! properties *interprocedurally* at compile time instead of
//! re-inspecting at every phase boundary. Without summaries, every
//! `call` is a property barrier — [`evolution`](crate::evolution)
//! clears all facts and the property solver refuses to look across
//! non-inlined calls.
//!
//! This module computes one [`ProcSummary`] per routine by a bottom-up
//! pass over the call graph (`Hcg::bottom_up_procs`): callees first,
//! so a caller's summary composes its callees'. Each summary holds
//!
//! - **MOD/REF sets** over the global symbol table (the mini-Fortran
//!   dialect has no parameters — every routine reads and writes
//!   globals), split into scalars and arrays;
//! - **MOD array sections**: a symbolic over-approximation of the
//!   region each array is written in ([`Section`], aggregated over the
//!   callee's loop nests), degraded to `Universal` whenever a bound
//!   mentions something the routine itself modifies (the stored bound
//!   would otherwise denote a mid-execution value, not the exit
//!   value);
//! - **property transformers** for the value-evolution facts: the
//!   *kill* component is the MOD sets (a fact about array `x` dies
//!   when the callee may write `x` or anything its symbolic material
//!   mentions — everything else is *preserved*), and the *establish*
//!   component is the callee's exit-fact set from running the
//!   evolution walk over its body, which composes the three producer
//!   shapes across nested calls because the walk itself applies
//!   callee summaries.
//!
//! Routines in a call-graph cycle — and routines calling an opaque
//! routine — are **opaque**: callers treat a call to them as
//! clobbering everything, which is exactly the old conservative
//! behavior. Routines with an early `return` keep their (may-)MOD
//! sets but drop the establish component: the exit state is then not
//! the state after the last statement.

use crate::budget::AnalysisBudget;
use crate::evolution::{self, EvoFacts};
use crate::AnalysisCtx;
use irr_frontend::{Expr, LValue, ProcId, StmtKind, VarId};
use irr_symbolic::{expr_to_sym, AggMode, RangeEnv, Section, SymExpr};
use std::collections::{BTreeMap, BTreeSet, HashSet};

/// What one routine does to global state, composed over its callees.
#[derive(Clone, Debug)]
pub struct ProcSummary {
    /// Scalars the routine (or a callee) may assign, including loop
    /// variables.
    pub mod_scalars: BTreeSet<VarId>,
    /// Arrays the routine (or a callee) may write.
    pub mod_arrays: BTreeSet<VarId>,
    /// Scalars the routine (or a callee) may read.
    pub ref_scalars: BTreeSet<VarId>,
    /// Arrays the routine (or a callee) may read.
    pub ref_arrays: BTreeSet<VarId>,
    /// Symbolic over-approximation of the written region per array in
    /// `mod_arrays` (in terms of values at routine exit); `Universal`
    /// when not representable.
    pub mod_sections: BTreeMap<VarId, Section>,
    /// Evolution facts that hold at routine exit when entered with no
    /// facts (the context-free part of the property transformer); the
    /// flow-sensitive composition at a call site re-walks the body.
    pub establishes: BTreeMap<VarId, EvoFacts>,
    /// The routine can return before its last top-level statement, so
    /// `establishes` (and call-site body walks) would overclaim.
    pub early_return: bool,
    /// In a call-graph cycle, or calls an opaque routine: nothing is
    /// known, callers must clobber.
    pub opaque: bool,
}

impl ProcSummary {
    fn unknown() -> ProcSummary {
        ProcSummary {
            mod_scalars: BTreeSet::new(),
            mod_arrays: BTreeSet::new(),
            ref_scalars: BTreeSet::new(),
            ref_arrays: BTreeSet::new(),
            mod_sections: BTreeMap::new(),
            establishes: BTreeMap::new(),
            early_return: false,
            opaque: true,
        }
    }

    /// The evolution-fact kill sets a call to this routine applies:
    /// `(scalars, arrays)` as hash sets.
    pub fn kill_sets(&self) -> (HashSet<VarId>, HashSet<VarId>) {
        (
            self.mod_scalars.iter().copied().collect(),
            self.mod_arrays.iter().copied().collect(),
        )
    }

    /// Whether the routine may write array `a` (`true` when opaque).
    pub fn may_write_array(&self, a: VarId) -> bool {
        self.opaque || self.mod_arrays.contains(&a)
    }

    /// Whether the routine may write scalar `v` (`true` when opaque).
    pub fn may_write_scalar(&self, v: VarId) -> bool {
        self.opaque || self.mod_scalars.contains(&v)
    }

    /// The written region of array `a`: `Universal` unless a tighter
    /// section was computed.
    pub fn mod_section(&self, a: VarId) -> Section {
        if !self.may_write_array(a) {
            return Section::Empty;
        }
        self.mod_sections
            .get(&a)
            .cloned()
            .unwrap_or(Section::Universal)
    }
}

/// Per-routine summaries for a whole program, bottom-up over the call
/// graph.
pub struct SummaryAnalysis {
    summaries: Vec<ProcSummary>,
}

impl SummaryAnalysis {
    /// Computes summaries for every routine, callees before callers.
    /// Routines on call-graph cycles stay [`ProcSummary::unknown`].
    pub fn new(ctx: &AnalysisCtx<'_>) -> SummaryAnalysis {
        Self::new_budgeted(ctx, None)
    }

    /// [`new`](Self::new) under an [`AnalysisBudget`]: each routine is
    /// charged proportionally to its body before being summarized, and
    /// once the meter runs dry every remaining routine keeps its
    /// `unknown` (opaque) summary — callers then treat its calls as
    /// clobbering everything, which is the sound direction.
    pub fn new_budgeted(ctx: &AnalysisCtx<'_>, budget: Option<&AnalysisBudget>) -> SummaryAnalysis {
        let nprocs = ctx.program.procedures.len();
        let mut sa = SummaryAnalysis {
            summaries: vec![ProcSummary::unknown(); nprocs],
        };
        let recursive = ctx.hcg.recursive_procs();
        for p in ctx.hcg.bottom_up_procs() {
            if recursive.contains(&p) {
                continue; // stays opaque
            }
            let cost = 1 + ctx.program.stmts_in(&ctx.program.procedure(p).body).len() as u64;
            if budget.is_some_and(|b| !b.spend(cost)) {
                break; // the rest stay opaque
            }
            sa.summaries[p.index()] = compute_summary(ctx, p, &sa);
        }
        sa
    }

    /// The summary for routine `p`.
    pub fn summary(&self, p: ProcId) -> &ProcSummary {
        &self.summaries[p.index()]
    }
}

fn compute_summary(ctx: &AnalysisCtx<'_>, p: ProcId, partial: &SummaryAnalysis) -> ProcSummary {
    let program = ctx.program;
    let body = &program.procedure(p).body;
    let mut sum = ProcSummary {
        opaque: false,
        ..ProcSummary::unknown()
    };

    let all = program.stmts_in(body);
    for &s in &all {
        match &program.stmt(s).kind {
            StmtKind::Assign { lhs, .. } => match lhs {
                LValue::Scalar(v) => {
                    sum.mod_scalars.insert(*v);
                }
                LValue::Element(a, _) => {
                    sum.mod_arrays.insert(*a);
                }
            },
            StmtKind::Do { var, .. } => {
                sum.mod_scalars.insert(*var);
            }
            StmtKind::Call { proc } => {
                let callee = partial.summary(*proc);
                if callee.opaque {
                    // An opaque callee makes the caller opaque too:
                    // anything could be written.
                    return ProcSummary::unknown();
                }
                sum.mod_scalars.extend(callee.mod_scalars.iter().copied());
                sum.mod_arrays.extend(callee.mod_arrays.iter().copied());
                sum.ref_scalars.extend(callee.ref_scalars.iter().copied());
                sum.ref_arrays.extend(callee.ref_arrays.iter().copied());
                sum.early_return |= callee.early_return;
            }
            StmtKind::Return if Some(&s) != body.last() => {
                sum.early_return = true;
            }
            _ => {}
        }
        irr_frontend::visit::for_each_expr_in_stmt(program, s, |e| {
            irr_frontend::visit::for_each_subexpr(e, &mut |sub| match sub {
                Expr::Var(v) => {
                    sum.ref_scalars.insert(*v);
                }
                Expr::Element(a, _) => {
                    sum.ref_arrays.insert(*a);
                }
                _ => {}
            });
        });
    }

    sum.mod_sections = mod_sections(ctx, p, partial, &sum);
    if !sum.early_return {
        sum.establishes = evolution::facts_at_exit(ctx, body, partial)
            .into_iter()
            .collect();
    }
    sum
}

/// Aggregates the per-statement write sections of each directly
/// written array over the enclosing loop nest, unions in callee
/// sections, and degrades any section whose bounds mention something
/// the routine itself modifies (the bound would denote a
/// mid-execution value).
fn mod_sections(
    ctx: &AnalysisCtx<'_>,
    p: ProcId,
    partial: &SummaryAnalysis,
    sum: &ProcSummary,
) -> BTreeMap<VarId, Section> {
    let program = ctx.program;
    let body = &program.procedure(p).body;
    let env = RangeEnv::new();
    let mut sections: BTreeMap<VarId, Section> = BTreeMap::new();
    let add = |arr: VarId, sec: Section, sections: &mut BTreeMap<VarId, Section>| {
        let merged = match sections.get(&arr) {
            Some(prev) => prev.union_may(&sec, &env),
            None => sec,
        };
        sections.insert(arr, merged);
    };
    for s in program.stmts_in(body) {
        match &program.stmt(s).kind {
            StmtKind::Assign {
                lhs: LValue::Element(a, subs),
                ..
            } => {
                let sec = write_section(ctx, s, subs).unwrap_or(Section::Universal);
                add(*a, sec, &mut sections);
            }
            StmtKind::Call { proc } => {
                let callee = partial.summary(*proc);
                for &a in &callee.mod_arrays {
                    add(a, callee.mod_section(a), &mut sections);
                }
            }
            _ => {}
        }
    }
    // A bound mentioning a modified scalar (or array, for
    // subscripted-subscript bounds) denotes some mid-execution value,
    // not the exit value a caller would read it as.
    for sec in sections.values_mut() {
        let stale = sum.mod_scalars.iter().any(|&v| sec.mentions_var(v))
            || sum
                .mod_arrays
                .iter()
                .any(|&a| section_mentions_array(sec, a));
        if stale {
            *sec = Section::Universal;
        }
    }
    sections
}

/// The section one `Assign` to `arr(subs...)` writes, aggregated
/// (May) over every enclosing loop of the statement.
fn write_section(ctx: &AnalysisCtx<'_>, s: irr_frontend::StmtId, subs: &[Expr]) -> Option<Section> {
    let syms: Vec<SymExpr> = subs.iter().map(expr_to_sym).collect::<Option<_>>()?;
    let mut sec = Section::point(syms);
    let env = RangeEnv::new();
    for &lp in ctx.enclosing_loops(s) {
        let (var, lo, hi) = ctx.do_bounds_sym(lp)?;
        sec = sec.aggregate(var, &lo, &hi, &env, AggMode::May);
    }
    Some(sec)
}

/// Whether any finite bound of the section mentions an element of
/// `arr` (the [`Section::mentions_var`] analogue for arrays).
pub fn section_mentions_array(sec: &Section, arr: VarId) -> bool {
    sec.ranges().is_some_and(|ranges| {
        ranges.iter().any(|r| {
            r.lo.as_finite().is_some_and(|e| e.mentions_array(arr))
                || r.hi.as_finite().is_some_and(|e| e.mentions_array(arr))
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use irr_frontend::parse_program;

    fn var(p: &irr_frontend::Program, name: &str) -> VarId {
        p.symbols.lookup(name).unwrap()
    }

    fn pid(p: &irr_frontend::Program, name: &str) -> ProcId {
        p.procedures
            .iter()
            .enumerate()
            .find(|(_, pr)| pr.name == name)
            .map(|(i, _)| ProcId(i as u32))
            .unwrap()
    }

    #[test]
    fn mod_ref_sets_compose_over_calls() {
        let p = parse_program(
            "program t
             integer i, n, a(8), b(8)
             n = 8
             call outer
             end
             subroutine outer
             integer i, n, a(8), b(8)
             do i = 1, n
               a(i) = b(i)
             enddo
             call inner
             end
             subroutine inner
             integer n, b(8)
             b(1) = n
             end",
        )
        .unwrap();
        let ctx = AnalysisCtx::new(&p);
        let sa = SummaryAnalysis::new(&ctx);
        let outer = sa.summary(pid(&p, "outer"));
        assert!(!outer.opaque);
        assert!(outer.may_write_array(var(&p, "a")));
        assert!(outer.may_write_array(var(&p, "b")), "inherited from inner");
        assert!(!outer.may_write_scalar(var(&p, "n")));
        assert!(outer.ref_scalars.contains(&var(&p, "n")));
        assert!(outer.ref_arrays.contains(&var(&p, "b")));
        assert!(outer.mod_scalars.contains(&var(&p, "i")), "loop variable");
    }

    #[test]
    fn recursion_makes_the_whole_cycle_opaque() {
        let p = parse_program(
            "program t
             call a
             end
             subroutine a
             call b
             end
             subroutine b
             call a
             end",
        )
        .unwrap();
        let ctx = AnalysisCtx::new(&p);
        let sa = SummaryAnalysis::new(&ctx);
        assert!(sa.summary(pid(&p, "a")).opaque);
        assert!(sa.summary(pid(&p, "b")).opaque);
        assert!(
            sa.summary(pid(&p, "t")).opaque,
            "caller of an opaque routine is opaque"
        );
    }

    #[test]
    fn mod_sections_aggregate_loop_writes() {
        let p = parse_program(
            "program t
             call fill
             end
             subroutine fill
             integer i, a(8)
             do i = 1, 8
               a(i) = 0
             enddo
             end",
        )
        .unwrap();
        let ctx = AnalysisCtx::new(&p);
        let sa = SummaryAnalysis::new(&ctx);
        let fill = sa.summary(pid(&p, "fill"));
        let sec = fill.mod_section(var(&p, "a"));
        let env = RangeEnv::new();
        let probe = Section::point(vec![SymExpr::int(9)]);
        assert!(
            sec.provably_disjoint(&probe, &env),
            "write section [1:8] excludes element 9, got {sec:?}"
        );
        assert!(!sec.provably_disjoint(&Section::point(vec![SymExpr::int(8)]), &env));
    }

    #[test]
    fn early_return_drops_establishes_but_keeps_mod_sets() {
        let p = parse_program(
            "program t
             call f
             end
             subroutine f
             integer i, n, a(8)
             if (n > 0) then
               return
             endif
             do i = 1, 8
               a(i) = i
             enddo
             end",
        )
        .unwrap();
        let ctx = AnalysisCtx::new(&p);
        let sa = SummaryAnalysis::new(&ctx);
        let f = sa.summary(pid(&p, "f"));
        assert!(f.early_return);
        assert!(f.establishes.is_empty());
        assert!(f.may_write_array(var(&p, "a")));
    }

    #[test]
    fn establishes_composes_producer_shapes_across_nested_calls() {
        // The prefix sum in `ptrs` only composes because the walk of
        // `ptrs` applies the already-computed summary of `lens`.
        let p = parse_program(
            "program t
             call ptrs
             end
             subroutine ptrs
             integer i, n, len(8), ptr(9)
             call lens
             ptr(1) = 1
             do i = 1, 8
               ptr(i + 1) = ptr(i) + len(i)
             enddo
             end
             subroutine lens
             integer i, len(8)
             do i = 1, 8
               len(i) = 1
             enddo
             end",
        )
        .unwrap();
        let ctx = AnalysisCtx::new(&p);
        let sa = SummaryAnalysis::new(&ctx);
        let ptrs = sa.summary(pid(&p, "ptrs"));
        let pf = ptrs
            .establishes
            .get(&var(&p, "ptr"))
            .expect("prefix-sum fact established across the nested call");
        assert!(pf.chain.is_some());
        assert!(ptrs.establishes.contains_key(&var(&p, "len")));
    }
}
