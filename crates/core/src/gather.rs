//! Index-gathering loop recognition (§4, Fig. 14).
//!
//! An *index-gathering loop* collects the indices of interesting elements
//! into an index array:
//!
//! ```text
//! q = 0
//! do i = 1, p
//!   if (x(i) > 0) then
//!     q = q + 1
//!     ind(q) = i
//!   endif
//! enddo
//! ```
//!
//! After such a loop, the values stored in `ind(c+1 : q)` are
//! **injective**, **monotonically increasing**, and **bounded** by the
//! loop bounds — exactly the facts the privatization and dependence
//! clients need for subsequent `z(ind(j))` accesses. The five conditions
//! of §4 are checked here; conditions 2–3 reuse the consecutively-written
//! analysis, condition 5 is a bounded DFS.

use crate::ctx::AnalysisCtx;
use crate::single_indexed::{consecutively_written, single_indexed_arrays};
use irr_frontend::{Expr, LValue, StmtId, StmtKind, VarId};
use irr_graph::bdfs::{bounded_dfs, BdfsOutcome};
use irr_graph::{CfgNodeId, CfgNodeKind};
use irr_symbolic::SymExpr;

/// A recognized index-gathering loop.
#[derive(Clone, Debug)]
pub struct IndexGatherInfo {
    /// The gathering `do` loop.
    pub loop_stmt: StmtId,
    /// The index array being filled (`ind`).
    pub array: VarId,
    /// The counter variable (`q`).
    pub counter: VarId,
    /// The loop induction variable whose values are gathered.
    pub loop_var: VarId,
    /// Symbolic lower bound of the gathered *values* (the loop lower
    /// bound).
    pub value_lo: SymExpr,
    /// Symbolic upper bound of the gathered *values* (the loop upper
    /// bound).
    pub value_hi: SymExpr,
}

/// Checks whether `loop_stmt` is an index-gathering loop for some array,
/// returning every `(array, counter)` pair that qualifies.
///
/// Conditions (§4): the loop is a unit-step `do`; the index array is
/// single-indexed by the counter and consecutively written; every
/// assignment stores the loop index; and no assignment reaches another
/// without passing the loop header (so values are strictly increasing
/// and injective).
pub fn index_gathering_info(ctx: &AnalysisCtx<'_>, loop_stmt: StmtId) -> Vec<IndexGatherInfo> {
    let program = ctx.program;
    let StmtKind::Do { var, body, .. } = &program.stmt(loop_stmt).kind else {
        return Vec::new();
    };
    if !ctx.unit_step(loop_stmt) {
        return Vec::new();
    }
    let Some((loop_var, lo_sym, hi_sym)) = ctx.do_bounds_sym(loop_stmt) else {
        return Vec::new();
    };
    debug_assert_eq!(loop_var, *var);
    let body = body.clone();
    let mut out = Vec::new();
    for si in single_indexed_arrays(ctx, loop_stmt) {
        // Condition 3: consecutively written (also validates that the
        // counter only increments).
        if consecutively_written(ctx, loop_stmt, si.array, si.index).is_none() {
            continue;
        }
        // Condition 4: every assignment of the index array stores the
        // loop index.
        let mut assigns: Vec<StmtId> = Vec::new();
        let mut all_store_index = true;
        for s in program.stmts_in(&body) {
            if let StmtKind::Assign {
                lhs: LValue::Element(a, _),
                rhs,
            } = &program.stmt(s).kind
            {
                if *a == si.array {
                    assigns.push(s);
                    if !matches!(rhs, Expr::Var(v) if *v == loop_var) {
                        all_store_index = false;
                    }
                }
            }
        }
        if assigns.is_empty() || !all_store_index {
            continue;
        }
        // Condition 5: one assignment cannot reach another without first
        // reaching the do header — each iteration stores at most once.
        let cfg = ctx.loop_cfg(loop_stmt);
        let is_header =
            |n: CfgNodeId| matches!(cfg.kind(n), CfgNodeKind::LoopHead(s) if s == loop_stmt);
        let is_assign =
            |n: CfgNodeId| matches!(cfg.kind(n), CfgNodeKind::Stmt(s) if assigns.contains(&s));
        let starts: Vec<CfgNodeId> = cfg.nodes().filter(|n| is_assign(*n)).collect();
        let mut ok = true;
        for s in starts {
            if bounded_dfs(&cfg, s, is_header, is_assign) == BdfsOutcome::Failed {
                ok = false;
                break;
            }
        }
        if !ok {
            continue;
        }
        out.push(IndexGatherInfo {
            loop_stmt,
            array: si.array,
            counter: si.index,
            loop_var,
            value_lo: lo_sym.clone(),
            value_hi: hi_sym.clone(),
        });
    }
    out
}

/// Scans a whole procedure body (transitively) for index-gathering loops.
pub fn find_index_gathering_loops(ctx: &AnalysisCtx<'_>, body: &[StmtId]) -> Vec<IndexGatherInfo> {
    let mut out = Vec::new();
    for s in ctx.program.stmts_in(body) {
        if matches!(ctx.program.stmt(s).kind, StmtKind::Do { .. }) {
            out.extend(index_gathering_info(ctx, s));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use irr_frontend::parse_program;
    use irr_frontend::Program;

    fn loops_of(p: &Program) -> Vec<StmtId> {
        p.stmts_in(&p.procedure(p.main()).body)
            .into_iter()
            .filter(|s| p.stmt(*s).kind.is_loop())
            .collect()
    }

    #[test]
    fn fig14_gathering_loop_is_recognized() {
        let p = parse_program(
            "program t
             integer i, q, p, ind(100)
             real x(100)
             q = 0
             do i = 1, p
               if (x(i) > 0) then
                 q = q + 1
                 ind(q) = i
               endif
             enddo
             end",
        )
        .unwrap();
        let ctx = AnalysisCtx::new(&p);
        let l = loops_of(&p)[0];
        let infos = index_gathering_info(&ctx, l);
        assert_eq!(infos.len(), 1);
        let info = &infos[0];
        assert_eq!(p.symbols.name(info.array), "ind");
        assert_eq!(p.symbols.name(info.counter), "q");
        assert_eq!(info.value_lo, SymExpr::int(1));
        let pv = p.symbols.lookup("p").unwrap();
        assert_eq!(info.value_hi, SymExpr::var(pv));
    }

    #[test]
    fn non_index_rhs_is_rejected() {
        let p = parse_program(
            "program t
             integer i, q, n, ind(100)
             do i = 1, n
               q = q + 1
               ind(q) = i + 1
             enddo
             end",
        )
        .unwrap();
        let ctx = AnalysisCtx::new(&p);
        assert!(index_gathering_info(&ctx, loops_of(&p)[0]).is_empty());
    }

    #[test]
    fn two_stores_per_iteration_are_rejected() {
        // Storing twice per iteration breaks injectivity (same i twice).
        let p = parse_program(
            "program t
             integer i, q, n, ind(100)
             real x(100)
             do i = 1, n
               if (x(i) > 0) then
                 q = q + 1
                 ind(q) = i
                 q = q + 1
                 ind(q) = i
               endif
             enddo
             end",
        )
        .unwrap();
        let ctx = AnalysisCtx::new(&p);
        assert!(index_gathering_info(&ctx, loops_of(&p)[0]).is_empty());
    }

    #[test]
    fn non_consecutive_counter_is_rejected() {
        let p = parse_program(
            "program t
             integer i, q, n, ind(100)
             do i = 1, n
               q = q + 2
               ind(q) = i
             enddo
             end",
        )
        .unwrap();
        let ctx = AnalysisCtx::new(&p);
        assert!(index_gathering_info(&ctx, loops_of(&p)[0]).is_empty());
    }

    #[test]
    fn find_scans_nested_loops() {
        let p = parse_program(
            "program t
             integer i, k, q, n, m, ind(100)
             real x(100)
             do k = 1, m
               q = 0
               do i = 1, n
                 if (x(i) > 0) then
                   q = q + 1
                   ind(q) = i
                 endif
               enddo
             enddo
             end",
        )
        .unwrap();
        let ctx = AnalysisCtx::new(&p);
        let body = p.procedure(p.main()).body.clone();
        let found = find_index_gathering_loops(&ctx, &body);
        assert_eq!(found.len(), 1);
        assert_eq!(p.symbols.name(found[0].array), "ind");
    }
}
