//! Property checkers: pattern matching at definition sites (§3.2.8, §4).
//!
//! Given a property and an assignment statement, the checker decides
//! which array elements are *generated* (now provably have the property)
//! and which are *killed* (no longer provably have it). `Gen` is a MUST
//! under-approximation and `Kill` a MAY over-approximation, as required
//! by the data-flow equations of §3.1.
//!
//! As in the paper, whole-loop patterns are recognized in addition to
//! single statements: the running-sum and recurrence patterns for
//! closed-form distance, identity loops, and §4's index-gathering loops
//! for injectivity / monotonicity / closed-form bounds.

use crate::ctx::AnalysisCtx;
use crate::gather::index_gathering_info;
use crate::property::{DistanceSpec, Property, INDEX_VAR};
use irr_frontend::{LValue, StmtId, StmtKind, VarId};
use irr_graph::HcgNodeKind;
use irr_symbolic::{expr_to_sym, prove_le, RangeEnv, Section, SymExpr};

/// Pattern-matching checker for one `(array, property)` demand.
#[derive(Clone, Debug)]
pub struct PropertyChecker {
    /// The index array whose property is being verified.
    pub array: VarId,
    /// The property being verified.
    pub property: Property,
}

impl PropertyChecker {
    /// Creates a checker.
    pub fn new(array: VarId, property: Property) -> PropertyChecker {
        PropertyChecker { array, property }
    }

    /// `(Kill, Gen)` of a simple (non-loop, non-call) statement.
    pub fn summarize_stmt(&self, ctx: &AnalysisCtx<'_>, stmt: StmtId) -> (Section, Section) {
        let program = ctx.program;
        match &program.stmt(stmt).kind {
            StmtKind::Assign { lhs, rhs } => match lhs {
                LValue::Scalar(v) => {
                    if self.property.mentions_var(*v) {
                        // A scalar used to express the property changed:
                        // nothing is verifiable any more.
                        (Section::Universal, Section::Empty)
                    } else {
                        (Section::Empty, Section::Empty)
                    }
                }
                LValue::Element(a, subs) => {
                    if *a == self.array {
                        let sub = if subs.len() == 1 {
                            expr_to_sym(&subs[0])
                        } else {
                            None
                        };
                        let Some(sub) = sub else {
                            return (Section::Universal, Section::Empty);
                        };
                        self.summarize_own_write(ctx, stmt, &sub, rhs)
                    } else if self.property.mentions_array(*a) {
                        // E.g. a write to the length array of a
                        // closed-form distance: all bets are off (§3.2.8
                        // step 3).
                        (Section::Universal, Section::Empty)
                    } else {
                        (Section::Empty, Section::Empty)
                    }
                }
            },
            // Reads have no effect; calls and loops are handled by the
            // solver, not here.
            _ => (Section::Empty, Section::Empty),
        }
    }

    /// `(Kill, Gen)` of `array(sub) = rhs`.
    fn summarize_own_write(
        &self,
        ctx: &AnalysisCtx<'_>,
        stmt: StmtId,
        sub: &SymExpr,
        rhs: &irr_frontend::Expr,
    ) -> (Section, Section) {
        let env = ctx.range_env_at(stmt);
        match &self.property {
            Property::ClosedFormValue { value } => {
                let expected = value.subst(INDEX_VAR, sub);
                match expr_to_sym(rhs) {
                    Some(r) if r == expected => (Section::Empty, Section::point(vec![sub.clone()])),
                    _ => (Section::point(vec![sub.clone()]), Section::Empty),
                }
            }
            Property::ClosedFormBound { lo, hi } => {
                let Some(r) = expr_to_sym(rhs) else {
                    return (Section::point(vec![sub.clone()]), Section::Empty);
                };
                let lo_ok = lo.as_ref().is_none_or(|l| prove_le(l, &r, &env));
                let hi_ok = hi.as_ref().is_none_or(|h| prove_le(&r, h, &env));
                if lo_ok && hi_ok {
                    (Section::Empty, Section::point(vec![sub.clone()]))
                } else {
                    (Section::point(vec![sub.clone()]), Section::Empty)
                }
            }
            Property::ClosedFormDistance { distance } => {
                // Writing x(s) disturbs pairs s-1 and s. The recurrence
                // form x(s) = x(s-1) + d(s-1) generates pair s-1.
                let one = SymExpr::int(1);
                let kill = Section::range1(sub.sub(&one), sub.clone());
                let expected = SymExpr::elem(self.array, vec![sub.sub(&one)])
                    .add(&distance.at(&sub.sub(&one)));
                match expr_to_sym(rhs) {
                    Some(r) if r == expected => {
                        let gen = Section::point(vec![sub.sub(&one)]);
                        // Pair s is still killed; pair s-1 is generated.
                        (Section::point(vec![sub.clone()]), gen)
                    }
                    Some(r) => {
                        // Functional write: x(v) = f(v) for a simple
                        // subscript v and array-free f. The pair v-1 is
                        // generated when f(v) - f(v-1) == distance(v-1)
                        // — this is how a closed-form *value* like
                        // i*(i-1)/2 yields its closed-form distance.
                        if let Some(v) = sub.as_var() {
                            // `f` must depend on nothing but the
                            // subscript variable itself — any other
                            // scalar or array could change between the
                            // writes of x(v-1) and x(v).
                            let pure = r.atoms().iter().all(|a| match a {
                                irr_symbolic::Atom::Var(w) => *w == v,
                                irr_symbolic::Atom::Elem(..) => false,
                                irr_symbolic::Atom::Opaque(_, args) => args.iter().all(|x| {
                                    x.atoms()
                                        .iter()
                                        .all(|b| matches!(b, irr_symbolic::Atom::Var(w) if *w == v))
                                }),
                            });
                            if pure {
                                let prev = r.subst(v, &sub.sub(&one));
                                let want = distance.at(&sub.sub(&one));
                                if irr_symbolic::prove_eq(&r.sub(&prev), &want, &env) {
                                    return (
                                        Section::point(vec![sub.clone()]),
                                        Section::point(vec![sub.sub(&one)]),
                                    );
                                }
                            }
                        }
                        (kill, Section::Empty)
                    }
                    _ => (kill, Section::Empty),
                }
            }
            Property::Injective | Property::MonotoneNonDecreasing => {
                // A lone write can break the set-global property
                // anywhere.
                (Section::Universal, Section::Empty)
            }
        }
    }

    /// Whole-loop pattern recognition. Returns `Some((Kill, Gen))` when
    /// the loop as a whole matches a known generating pattern; `None`
    /// falls back to generic aggregation.
    pub fn summarize_loop(
        &self,
        ctx: &AnalysisCtx<'_>,
        loop_stmt: StmtId,
    ) -> Option<(Section, Section)> {
        let program = ctx.program;
        let StmtKind::Do { body, .. } = &program.stmt(loop_stmt).kind else {
            return None;
        };
        let (var, lo, hi) = ctx.do_bounds_sym(loop_stmt)?;
        let body = body.clone();
        let env = ctx.range_env_at(loop_stmt);
        match &self.property {
            Property::ClosedFormDistance { distance } => {
                self.cfd_loop_patterns(ctx, &body, var, &lo, &hi, distance, &env)
            }
            Property::Injective | Property::MonotoneNonDecreasing => {
                // Identity loop: do i = lo, hi { x(i) = i }.
                if let Some((kill, gen)) = self.identity_loop(ctx, &body, var, &lo, &hi) {
                    return Some((kill, gen));
                }
                self.gather_loop(ctx, loop_stmt)
            }
            Property::ClosedFormBound { lo: blo, hi: bhi } => {
                // An index-gathering loop bounds its values by the loop
                // bounds (§4).
                let (kill, gen) = self.gather_loop(ctx, loop_stmt)?;
                let info = index_gathering_info(ctx, loop_stmt)
                    .into_iter()
                    .find(|g| g.array == self.array)?;
                let lo_ok = blo
                    .as_ref()
                    .is_none_or(|b| prove_le(b, &info.value_lo, &env));
                let hi_ok = bhi
                    .as_ref()
                    .is_none_or(|b| prove_le(&info.value_hi, b, &env));
                if lo_ok && hi_ok {
                    Some((kill, gen))
                } else {
                    None
                }
            }
            Property::ClosedFormValue { .. } => None,
        }
    }

    /// `do i = lo, hi { x(i) = i }` generates injectivity, monotonicity,
    /// and the identity closed form on `[lo:hi]`.
    fn identity_loop(
        &self,
        ctx: &AnalysisCtx<'_>,
        body: &[StmtId],
        var: VarId,
        lo: &SymExpr,
        hi: &SymExpr,
    ) -> Option<(Section, Section)> {
        if body.len() != 1 {
            return None;
        }
        let (lhs, rhs) = ctx.assign_parts(body[0])?;
        let LValue::Element(a, subs) = lhs else {
            return None;
        };
        if *a != self.array || subs.len() != 1 {
            return None;
        }
        let sub = expr_to_sym(&subs[0])?;
        let r = expr_to_sym(rhs)?;
        if sub == SymExpr::var(var) && r == SymExpr::var(var) {
            let sec = Section::range1(lo.clone(), hi.clone());
            Some((sec.clone(), sec))
        } else {
            None
        }
    }

    /// §4: an index-gathering loop generates injectivity, monotonicity,
    /// and closed-form bounds on the gathered section `[c+1 : q]`, where
    /// `c` is the counter's value on loop entry (required to be a
    /// constant assignment immediately dominating the loop).
    fn gather_loop(&self, ctx: &AnalysisCtx<'_>, loop_stmt: StmtId) -> Option<(Section, Section)> {
        let info = index_gathering_info(ctx, loop_stmt)
            .into_iter()
            .find(|g| g.array == self.array)?;
        // Find the counter's initialization: the unique predecessor of
        // the loop node must be `q = c`.
        let loop_node = ctx.hcg.node_of_stmt(loop_stmt)?;
        let preds = ctx.hcg.preds(loop_node);
        if preds.len() != 1 {
            return None;
        }
        let HcgNodeKind::Simple(init_stmt) = ctx.hcg.kind(preds[0]) else {
            return None;
        };
        let (lhs, rhs) = ctx.assign_parts(init_stmt)?;
        let LValue::Scalar(v) = lhs else { return None };
        if *v != info.counter {
            return None;
        }
        let c = expr_to_sym(rhs)?;
        if c.mentions_var(info.counter) {
            return None;
        }
        // After the loop the gathered section is [c+1 : q] in terms of
        // the counter's value at loop exit.
        let gen = Section::range1(c.add(&SymExpr::int(1)), SymExpr::var(info.counter));
        (Section::Empty, gen).into()
    }

    /// The three closed-form-distance loop patterns of §3.2.8 / Fig. 3(c).
    #[allow(clippy::too_many_arguments)]
    fn cfd_loop_patterns(
        &self,
        ctx: &AnalysisCtx<'_>,
        body: &[StmtId],
        var: VarId,
        lo: &SymExpr,
        hi: &SymExpr,
        distance: &DistanceSpec,
        env: &RangeEnv,
    ) -> Option<(Section, Section)> {
        let one = SymExpr::int(1);
        let i = SymExpr::var(var);
        // The loop must execute at least once for a MUST Gen.
        if !prove_le(lo, hi, env) {
            return None;
        }
        if body.len() == 1 {
            let (lhs, rhs) = ctx.assign_parts(body[0])?;
            let LValue::Element(a, subs) = lhs else {
                return None;
            };
            if *a != self.array || subs.len() != 1 {
                return None;
            }
            let sub = expr_to_sym(&subs[0])?;
            let r = expr_to_sym(rhs)?;
            // Pattern (c): x(i+1) = x(i) + d(i) — generates pairs
            // [lo : hi], kills pairs [lo : hi+1].
            if sub == i.add(&one) {
                let expected = SymExpr::elem(self.array, vec![i.clone()]).add(&distance.at(&i));
                if r == expected {
                    return Some((
                        Section::range1(lo.clone(), hi.add(&one)),
                        Section::range1(lo.clone(), hi.clone()),
                    ));
                }
            }
            // Pattern (b): x(i) = x(i-1) + d(i-1) — generates pairs
            // [lo-1 : hi-1], kills pairs [lo-1 : hi].
            if sub == i {
                let expected =
                    SymExpr::elem(self.array, vec![i.sub(&one)]).add(&distance.at(&i.sub(&one)));
                if r == expected {
                    return Some((
                        Section::range1(lo.sub(&one), hi.clone()),
                        Section::range1(lo.sub(&one), hi.sub(&one)),
                    ));
                }
            }
            return None;
        }
        // Pattern (a): running sum { x(i) = t ; t = t + d(i) } — then
        // x(i+1) - x(i) = d(i): generates pairs [lo : hi-1], kills
        // [lo-1 : hi].
        if body.len() == 2 {
            let (lhs1, rhs1) = ctx.assign_parts(body[0])?;
            let (lhs2, rhs2) = ctx.assign_parts(body[1])?;
            let LValue::Element(a, subs) = lhs1 else {
                return None;
            };
            let LValue::Scalar(t) = lhs2 else { return None };
            if *a != self.array || subs.len() != 1 {
                return None;
            }
            let sub = expr_to_sym(&subs[0])?;
            let r1 = expr_to_sym(rhs1)?;
            let r2 = expr_to_sym(rhs2)?;
            if sub == i && r1 == SymExpr::var(*t) && r2 == SymExpr::var(*t).add(&distance.at(&i)) {
                return Some((
                    Section::range1(lo.sub(&one), hi.clone()),
                    Section::range1(lo.clone(), hi.sub(&one)),
                ));
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use irr_frontend::parse_program;
    use irr_frontend::Program;

    fn nth_assign(p: &Program, k: usize) -> StmtId {
        p.stmts_in(&p.procedure(p.main()).body)
            .into_iter()
            .filter(|s| matches!(p.stmt(*s).kind, StmtKind::Assign { .. }))
            .nth(k)
            .unwrap()
    }

    fn nth_loop(p: &Program, k: usize) -> StmtId {
        p.stmts_in(&p.procedure(p.main()).body)
            .into_iter()
            .filter(|s| p.stmt(*s).kind.is_loop())
            .nth(k)
            .unwrap()
    }

    #[test]
    fn fig8_closed_form_value_gen_and_kill() {
        // Fig. 8: st1 `a(n) = n*(n-1)/2` generates [n:n]; st2
        // `a(i) = i*(i-1)/2` (inside no loop, i arbitrary) generates
        // [i:i]; an unrelated write kills pointwise.
        let p = parse_program(
            "program t
             integer a(100), n, i
             a(n) = n*(n-1)/2
             a(i) = i*(i-1)/2
             a(n) = 7
             end",
        )
        .unwrap();
        let ctx = AnalysisCtx::new(&p);
        let a = p.symbols.lookup("a").unwrap();
        let n = p.symbols.lookup("n").unwrap();
        let value = SymExpr::var(INDEX_VAR)
            .mul(&SymExpr::var(INDEX_VAR).sub(&SymExpr::int(1)))
            .div(&SymExpr::int(2));
        let chk = PropertyChecker::new(a, Property::ClosedFormValue { value });
        let (k1, g1) = chk.summarize_stmt(&ctx, nth_assign(&p, 0));
        assert_eq!(k1, Section::Empty);
        assert_eq!(g1, Section::point(vec![SymExpr::var(n)]));
        let (k2, g2) = chk.summarize_stmt(&ctx, nth_assign(&p, 1));
        assert_eq!(k2, Section::Empty);
        assert!(!g2.is_empty());
        let (k3, g3) = chk.summarize_stmt(&ctx, nth_assign(&p, 2));
        assert_eq!(k3, Section::point(vec![SymExpr::var(n)]));
        assert_eq!(g3, Section::Empty);
    }

    #[test]
    fn cfb_uses_loop_context() {
        let p = parse_program(
            "program t
             integer idx(100), i, n
             do i = 1, n
               idx(i) = i + 1
             enddo
             end",
        )
        .unwrap();
        let ctx = AnalysisCtx::new(&p);
        let idx = p.symbols.lookup("idx").unwrap();
        // Values i+1 with i >= 1: bounded below by 2.
        let chk = PropertyChecker::new(
            idx,
            Property::ClosedFormBound {
                lo: Some(SymExpr::int(2)),
                hi: None,
            },
        );
        let (k, g) = chk.summarize_stmt(&ctx, nth_assign(&p, 0));
        assert_eq!(k, Section::Empty);
        assert!(!g.is_empty());
        // But bounded below by 3 is not provable.
        let chk3 = PropertyChecker::new(
            idx,
            Property::ClosedFormBound {
                lo: Some(SymExpr::int(3)),
                hi: None,
            },
        );
        let (k3, g3) = chk3.summarize_stmt(&ctx, nth_assign(&p, 0));
        assert!(!k3.is_empty());
        assert_eq!(g3, Section::Empty);
    }

    #[test]
    fn cfd_loop_pattern_fig3c() {
        // offset(1) = 1; do i = 1, n { offset(i+1) = offset(i)+length(i) }
        let p = parse_program(
            "program t
             integer offset(101), length(100), i, n
             n = 100
             offset(1) = 1
             do i = 1, n
               offset(i+1) = offset(i) + length(i)
             enddo
             end",
        )
        .unwrap();
        let ctx = AnalysisCtx::new(&p);
        let offset = p.symbols.lookup("offset").unwrap();
        let length = p.symbols.lookup("length").unwrap();
        let chk = PropertyChecker::new(
            offset,
            Property::ClosedFormDistance {
                distance: DistanceSpec::Array(length),
            },
        );
        let l = nth_loop(&p, 0);
        // n = 100 is not propagated here, so lo <= hi needs the literal
        // bounds; the loop is do i = 1, n with n unknown -> the MUST gen
        // requires lo <= hi... use explicit bounds instead.
        let _ = chk.summarize_loop(&ctx, l);
        // With literal bounds the pattern must fire:
        let p2 = parse_program(
            "program t
             integer offset(101), length(100), i
             offset(1) = 1
             do i = 1, 100
               offset(i+1) = offset(i) + length(i)
             enddo
             end",
        )
        .unwrap();
        let ctx2 = AnalysisCtx::new(&p2);
        let offset2 = p2.symbols.lookup("offset").unwrap();
        let length2 = p2.symbols.lookup("length").unwrap();
        let chk2 = PropertyChecker::new(
            offset2,
            Property::ClosedFormDistance {
                distance: DistanceSpec::Array(length2),
            },
        );
        let all_loops: Vec<StmtId> = p2
            .stmts_in(&p2.procedure(p2.main()).body)
            .into_iter()
            .filter(|s| p2.stmt(*s).kind.is_loop())
            .collect();
        let (kill, gen) = chk2.summarize_loop(&ctx2, all_loops[0]).expect("pattern");
        assert_eq!(gen, Section::range1(SymExpr::int(1), SymExpr::int(100)));
        assert_eq!(kill, Section::range1(SymExpr::int(1), SymExpr::int(101)));
    }

    #[test]
    fn cfd_running_sum_pattern() {
        let p = parse_program(
            "program t
             integer x(100), y(100), t2, i
             t2 = 0
             do i = 1, 50
               x(i) = t2
               t2 = t2 + y(i)
             enddo
             end",
        )
        .unwrap();
        let ctx = AnalysisCtx::new(&p);
        let x = p.symbols.lookup("x").unwrap();
        let y = p.symbols.lookup("y").unwrap();
        let chk = PropertyChecker::new(
            x,
            Property::ClosedFormDistance {
                distance: DistanceSpec::Array(y),
            },
        );
        let (kill, gen) = chk.summarize_loop(&ctx, nth_loop(&p, 0)).expect("pattern");
        assert_eq!(gen, Section::range1(SymExpr::int(1), SymExpr::int(49)));
        assert_eq!(kill, Section::range1(SymExpr::int(0), SymExpr::int(50)));
    }

    #[test]
    fn write_to_distance_array_kills_everything() {
        let p = parse_program(
            "program t
             integer x(100), y(100), n
             y(n) = 3
             end",
        )
        .unwrap();
        let ctx = AnalysisCtx::new(&p);
        let x = p.symbols.lookup("x").unwrap();
        let y = p.symbols.lookup("y").unwrap();
        let chk = PropertyChecker::new(
            x,
            Property::ClosedFormDistance {
                distance: DistanceSpec::Array(y),
            },
        );
        let (kill, gen) = chk.summarize_stmt(&ctx, nth_assign(&p, 0));
        assert_eq!(kill, Section::Universal);
        assert_eq!(gen, Section::Empty);
    }

    #[test]
    fn scalar_in_property_kills_on_assignment() {
        let p = parse_program(
            "program t
             integer x(100), n
             n = 5
             end",
        )
        .unwrap();
        let ctx = AnalysisCtx::new(&p);
        let x = p.symbols.lookup("x").unwrap();
        let n = p.symbols.lookup("n").unwrap();
        let chk = PropertyChecker::new(
            x,
            Property::ClosedFormBound {
                lo: Some(SymExpr::int(1)),
                hi: Some(SymExpr::var(n)),
            },
        );
        let (kill, _) = chk.summarize_stmt(&ctx, nth_assign(&p, 0));
        assert_eq!(kill, Section::Universal);
    }

    #[test]
    fn identity_loop_generates_injectivity() {
        let p = parse_program(
            "program t
             integer x(100), i
             do i = 1, 100
               x(i) = i
             enddo
             end",
        )
        .unwrap();
        let ctx = AnalysisCtx::new(&p);
        let x = p.symbols.lookup("x").unwrap();
        let chk = PropertyChecker::new(x, Property::Injective);
        let (_, gen) = chk.summarize_loop(&ctx, nth_loop(&p, 0)).expect("pattern");
        assert_eq!(gen, Section::range1(SymExpr::int(1), SymExpr::int(100)));
        let chkm = PropertyChecker::new(x, Property::MonotoneNonDecreasing);
        assert!(chkm.summarize_loop(&ctx, nth_loop(&p, 0)).is_some());
    }

    #[test]
    fn gather_loop_generates_injectivity_and_bounds() {
        let p = parse_program(
            "program t
             integer ind(100), q, i, m
             real x(100)
             q = 0
             do i = 1, m
               if (x(i) > 0) then
                 q = q + 1
                 ind(q) = i
               endif
             enddo
             end",
        )
        .unwrap();
        let ctx = AnalysisCtx::new(&p);
        let ind = p.symbols.lookup("ind").unwrap();
        let q = p.symbols.lookup("q").unwrap();
        let m = p.symbols.lookup("m").unwrap();
        let chk = PropertyChecker::new(ind, Property::Injective);
        let (_, gen) = chk.summarize_loop(&ctx, nth_loop(&p, 0)).expect("gather");
        assert_eq!(gen, Section::range1(SymExpr::int(1), SymExpr::var(q)));
        // Closed-form bound [1, m] also holds.
        let chkb = PropertyChecker::new(
            ind,
            Property::ClosedFormBound {
                lo: Some(SymExpr::int(1)),
                hi: Some(SymExpr::var(m)),
            },
        );
        assert!(chkb.summarize_loop(&ctx, nth_loop(&p, 0)).is_some());
        // But a tighter bound [2, m] does not.
        let chkb2 = PropertyChecker::new(
            ind,
            Property::ClosedFormBound {
                lo: Some(SymExpr::int(2)),
                hi: Some(SymExpr::var(m)),
            },
        );
        assert!(chkb2.summarize_loop(&ctx, nth_loop(&p, 0)).is_none());
    }
}
