//! The demand-driven query solver (§3.2, Figs. 5–12).
//!
//! A query `(node, section)` asks whether the index array's elements in
//! `section` have the property when control reaches the point *after*
//! `node`. The solver propagates the query **backwards** over the HCG:
//!
//! - [`QuerySolver`](ArrayPropertyAnalysis::check) — a priority worklist
//!   in reverse topological order with early termination (Fig. 5);
//! - per-node reverse propagation computes `(Kill, Gen)` and the
//!   *remaining* section (Fig. 6);
//! - whole sections (loop bodies, procedure bodies) are summarized
//!   backwards with a MUST-intersecting worklist (Fig. 9,
//!   `SummarizeProgSection`);
//! - queries crossing a loop header from inside aggregate the effect of
//!   the preceding iterations (Fig. 10);
//! - a `call` node recursively solves inside the callee (Fig. 11), and a
//!   procedure entry splits the query to every call site (Fig. 12).

use crate::budget::AnalysisBudget;
use crate::ctx::AnalysisCtx;
use crate::property::{checkers::PropertyChecker, Property, PropertyQuery, ITER_VAR};
use crate::summaries::{section_mentions_array, SummaryAnalysis};
use irr_frontend::{LValue, ProcId, StmtId, StmtKind, VarId};
use irr_graph::{HcgNodeId, HcgNodeKind, SectionId, SectionKind};
use irr_symbolic::{expr_to_sym, AggMode, RangeEnv, Section, SymExpr};
use std::collections::HashMap;

/// Tunable solver behavior (the ablation knobs of DESIGN.md §6).
#[derive(Clone, Copy, Debug)]
pub struct SolverOptions {
    /// Terminate the whole query as soon as any element is killed
    /// (Fig. 5 line 11). Disabling only costs time, never changes the
    /// answer.
    pub early_termination: bool,
    /// Order the worklist in reverse topological order (§3.2.2). With
    /// `false` a FIFO queue is used, which may process nodes several
    /// times.
    pub rtop_priority: bool,
    /// Allow queries to cross procedure boundaries (Figs. 11–12). The
    /// Fig. 15(a) phase organization — analyses running per program unit
    /// — corresponds to `false`.
    pub interprocedural: bool,
}

impl Default for SolverOptions {
    fn default() -> Self {
        SolverOptions {
            early_termination: true,
            rtop_priority: true,
            interprocedural: true,
        }
    }
}

/// Counters describing the work a solver instance performed.
#[derive(Clone, Copy, Debug, Default)]
pub struct QueryStats {
    /// Queries checked.
    pub queries: u64,
    /// Worklist pops across all section solves.
    pub nodes_visited: u64,
    /// Statement/loop summarizations performed.
    pub summarizations: u64,
    /// Early terminations taken.
    pub early_terminations: u64,
    /// Wall-clock time spent answering queries.
    pub total_time: std::time::Duration,
}

/// The property analysis engine. One instance caches section and loop
/// summaries across queries (the "independent tool invoked on demand" of
/// §5.1.3).
pub struct ArrayPropertyAnalysis<'c, 'p> {
    ctx: &'c AnalysisCtx<'p>,
    opts: SolverOptions,
    /// Per-routine MOD/REF summaries: when present, a query reaching a
    /// `call` node may step over it instead of recursively solving (or
    /// failing on recursion), whenever the summary proves the callee
    /// leaves the queried elements and the query bounds untouched.
    summaries: Option<&'c SummaryAnalysis>,
    /// Cooperative resource meter: when it runs dry, every in-flight and
    /// subsequent query answers "could not be verified" (which is always
    /// sound — see `budget`'s module docs).
    budget: Option<&'c AnalysisBudget>,
    /// `(loop stmt, array, property) -> (Kill, Gen)`.
    loop_cache: HashMap<(StmtId, VarId, Property), (Section, Section)>,
    /// `(section, array, property) -> (Kill, Gen)`.
    section_cache: HashMap<(SectionId, VarId, Property), (Section, Section)>,
    /// Statistics.
    pub stats: QueryStats,
}

/// Result of solving within one section.
enum SectionOutcome {
    /// Some queried element was (possibly) killed: answer is false.
    Killed,
    /// Every queried element was verified inside the section.
    Resolved,
    /// Part of the query survived to the section entry.
    ReachedEntry(Section),
}

impl<'c, 'p> ArrayPropertyAnalysis<'c, 'p> {
    /// Creates an engine with default options.
    pub fn new(ctx: &'c AnalysisCtx<'p>) -> Self {
        Self::with_options(ctx, SolverOptions::default())
    }

    /// Creates an engine with explicit options.
    pub fn with_options(ctx: &'c AnalysisCtx<'p>, opts: SolverOptions) -> Self {
        ArrayPropertyAnalysis {
            ctx,
            opts,
            summaries: None,
            budget: None,
            loop_cache: HashMap::new(),
            section_cache: HashMap::new(),
            stats: QueryStats::default(),
        }
    }

    /// Supplies per-routine summaries for stepping over calls. Must be
    /// set before the first query: the summary-aware answers share the
    /// section caches.
    pub fn set_summaries(&mut self, summaries: &'c SummaryAnalysis) {
        self.summaries = Some(summaries);
    }

    /// Meters this engine's worklists against `budget`. Once the meter
    /// runs dry the engine keeps answering, but always conservatively
    /// ("could not be verified").
    pub fn set_budget(&mut self, budget: &'c AnalysisBudget) {
        self.budget = Some(budget);
    }

    /// One unit of worklist work; `false` means the meter is dry and the
    /// caller must bail conservatively.
    fn tick(&self) -> bool {
        self.budget.is_none_or(|b| b.spend(1))
    }

    /// Whether the summary of `callee` proves a query on `chk.array`
    /// with bounds material in `set` passes through the call unchanged:
    /// the callee must not write the queried elements (whole array
    /// untouched, or MOD section provably disjoint) nor anything the
    /// query bounds mention (which would make the bounds denote
    /// pre-call values).
    fn summary_passes_call(&self, chk: &PropertyChecker, callee: ProcId, set: &Section) -> bool {
        let Some(sum) = self.summaries.map(|sa| sa.summary(callee)) else {
            return false;
        };
        if sum.opaque || sum.mod_scalars.iter().any(|&v| set.mentions_var(v)) {
            return false;
        }
        if sum
            .mod_arrays
            .iter()
            .any(|&a| section_mentions_array(set, a))
        {
            return false;
        }
        !sum.may_write_array(chk.array)
            || sum
                .mod_section(chk.array)
                .provably_disjoint(set, &RangeEnv::new())
    }

    /// Answers a property query: `true` means *verified*; `false` means
    /// "could not be verified" (never "disproved").
    pub fn check(&mut self, query: &PropertyQuery) -> bool {
        let start = std::time::Instant::now();
        self.stats.queries += 1;
        let result = (|| {
            if query.section.is_empty() {
                return true;
            }
            if self.budget.is_some_and(|b| b.exhausted().is_some()) {
                return false; // dry meter: unverified, not disproved
            }
            let Some(node) = self.ctx.hcg.node_of_stmt(query.at_stmt) else {
                return false;
            };
            let chk = PropertyChecker::new(query.array, query.property.clone());
            let mut visited_procs = Vec::new();
            self.resolve_upward(
                &chk,
                vec![(node, query.section.clone())],
                &mut visited_procs,
            )
        })();
        self.stats.total_time += start.elapsed();
        result
    }

    /// Propagates a query frontier upwards through nested sections until
    /// it is resolved, killed, or splits across call sites.
    fn resolve_upward(
        &mut self,
        chk: &PropertyChecker,
        frontier: Vec<(HcgNodeId, Section)>,
        visited_procs: &mut Vec<ProcId>,
    ) -> bool {
        let mut frontier = frontier;
        loop {
            if frontier.is_empty() {
                return true;
            }
            let sec = self.ctx.hcg.section_of(frontier[0].0);
            debug_assert!(frontier
                .iter()
                .all(|(n, _)| self.ctx.hcg.section_of(*n) == sec));
            match self.solve_section(chk, sec, frontier, visited_procs) {
                SectionOutcome::Killed => return false,
                SectionOutcome::Resolved => return true,
                SectionOutcome::ReachedEntry(remaining) => {
                    match self.ctx.hcg.section(sec).kind {
                        SectionKind::LoopBody(loop_stmt) => {
                            // Case 2 (Fig. 10): account for the preceding
                            // iterations, then continue above the loop.
                            let Some(rem) =
                                self.loop_header_case(chk, loop_stmt, &remaining, visited_procs)
                            else {
                                return false;
                            };
                            if rem.is_empty() {
                                return true;
                            }
                            let Some(loop_node) = self.ctx.hcg.node_of_stmt(loop_stmt) else {
                                return false;
                            };
                            frontier = self
                                .ctx
                                .hcg
                                .preds(loop_node)
                                .iter()
                                .map(|p| (*p, rem.clone()))
                                .collect();
                        }
                        SectionKind::ProcBody(pid) => {
                            let env = RangeEnv::new();
                            if remaining.provably_empty(&env) {
                                return true;
                            }
                            if self.ctx.program.procedures[pid.index()].is_main {
                                // Fig. 12: at the program entry with a
                                // non-empty query the answer is false.
                                return false;
                            }
                            // Query splitting (Fig. 12): every call site
                            // must verify the remaining query.
                            if !self.opts.interprocedural {
                                return false;
                            }
                            if visited_procs.contains(&pid) {
                                return false; // recursion: give up
                            }
                            visited_procs.push(pid);
                            let sites: Vec<HcgNodeId> = self.ctx.hcg.call_sites(pid).to_vec();
                            if sites.is_empty() {
                                return false; // unreachable procedure
                            }
                            for site in sites {
                                let preds: Vec<(HcgNodeId, Section)> = self
                                    .ctx
                                    .hcg
                                    .preds(site)
                                    .iter()
                                    .map(|p| (*p, remaining.clone()))
                                    .collect();
                                if !self.resolve_upward(chk, preds, visited_procs) {
                                    visited_procs.pop();
                                    return false;
                                }
                            }
                            visited_procs.pop();
                            return true;
                        }
                    }
                }
            }
        }
    }

    /// Fig. 5's `QuerySolver` restricted to one section: pops queries in
    /// reverse topological order, summarizes each node (Fig. 6), and
    /// propagates the remaining section to predecessors.
    fn solve_section(
        &mut self,
        chk: &PropertyChecker,
        sec: SectionId,
        init: Vec<(HcgNodeId, Section)>,
        visited_procs: &mut Vec<ProcId>,
    ) -> SectionOutcome {
        let hcg = &self.ctx.hcg;
        let entry = hcg.section(sec).entry;
        let env_base = self.section_env(sec);
        // Worklist: node -> pending query section; ordering per options.
        let mut pending: HashMap<HcgNodeId, Section> = HashMap::new();
        let mut fifo: std::collections::VecDeque<HcgNodeId> = Default::default();
        let mut visits: HashMap<HcgNodeId, u32> = HashMap::new();
        for (n, s) in init {
            match pending.entry(n) {
                std::collections::hash_map::Entry::Occupied(mut e) => {
                    let merged = e.get().union_may(&s, &env_base);
                    e.insert(merged);
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(s);
                    fifo.push_back(n);
                }
            }
        }
        let mut entry_remaining = Section::Empty;
        let mut killed = false;
        while !pending.is_empty() {
            // Pop: max topological index (reverse topological) or FIFO.
            let n = if self.opts.rtop_priority {
                *pending
                    .keys()
                    .max_by_key(|n| hcg.topo_index(**n))
                    .expect("pending nonempty")
            } else {
                loop {
                    let cand = fifo.pop_front().expect("fifo tracks pending");
                    if pending.contains_key(&cand) {
                        break cand;
                    }
                }
            };
            let set = pending.remove(&n).expect("popped key");
            self.stats.nodes_visited += 1;
            if !self.tick() {
                killed = true; // out of budget: report unverified
                break;
            }
            let vcount = visits.entry(n).or_insert(0);
            *vcount += 1;
            if *vcount > 8 {
                // FIFO mode can revisit; bound the work conservatively.
                killed = true;
                break;
            }
            if set.is_empty() {
                continue;
            }
            if n == entry {
                entry_remaining = entry_remaining.union_may(&set, &env_base);
                continue;
            }
            let outcome = self.propagate_through(chk, n, &set, &env_base, visited_procs);
            let remaining = match outcome {
                Ok(r) => r,
                Err(()) => {
                    killed = true;
                    if self.opts.early_termination {
                        self.stats.early_terminations += 1;
                        break;
                    }
                    continue;
                }
            };
            if remaining.is_empty() {
                continue;
            }
            for &m in hcg.preds(n) {
                match pending.entry(m) {
                    std::collections::hash_map::Entry::Occupied(mut e) => {
                        let merged = e.get().union_may(&remaining, &env_base);
                        e.insert(merged);
                    }
                    std::collections::hash_map::Entry::Vacant(e) => {
                        e.insert(remaining.clone());
                        fifo.push_back(m);
                    }
                }
            }
        }
        if killed {
            SectionOutcome::Killed
        } else if entry_remaining.is_empty() {
            SectionOutcome::Resolved
        } else {
            SectionOutcome::ReachedEntry(entry_remaining)
        }
    }

    /// Fig. 6: the effect of one node on a query. `Ok(remaining)` or
    /// `Err(())` when the property may be killed / cannot be tracked.
    fn propagate_through(
        &mut self,
        chk: &PropertyChecker,
        n: HcgNodeId,
        set: &Section,
        env: &RangeEnv,
        visited_procs: &mut Vec<ProcId>,
    ) -> Result<Section, ()> {
        match self.ctx.hcg.kind(n) {
            HcgNodeKind::Entry(_) => Ok(set.clone()),
            HcgNodeKind::Exit(_) | HcgNodeKind::Join(_) | HcgNodeKind::Branch(_) => Ok(set.clone()),
            HcgNodeKind::Simple(stmt) => {
                self.stats.summarizations += 1;
                let (kill, gen) = chk.summarize_stmt(self.ctx, stmt);
                let stmt_env = self.ctx.range_env_at(stmt);
                // Gen wins over Kill for the same element (Gen is the
                // MUST state at the node's exit), so subtract it first.
                let remaining = self.apply_gen(chk, set, &gen, &stmt_env)?;
                if !kill.provably_disjoint(&remaining, &stmt_env) {
                    return Err(());
                }
                // Backward renaming: a scalar in the query bounds that is
                // assigned here must be rewritten in terms of the
                // pre-state.
                self.rename_backward(stmt, &remaining)
            }
            HcgNodeKind::Call { callee, .. } => {
                // Summary bypass (Bhosale & Eigenmann): when the callee
                // provably leaves the queried elements alone, the query
                // steps over the call — notably rescuing recursive call
                // chains and `interprocedural = false` runs, which
                // otherwise fail here.
                if self.summary_passes_call(chk, callee, set) {
                    return Ok(set.clone());
                }
                if !self.opts.interprocedural || visited_procs.contains(&callee) {
                    return Err(());
                }
                visited_procs.push(callee);
                let callee_sec = self.ctx.hcg.proc_section(callee);
                let callee_exit = self.ctx.hcg.section(callee_sec).exit;
                let out = self.solve_section(
                    chk,
                    callee_sec,
                    vec![(callee_exit, set.clone())],
                    visited_procs,
                );
                visited_procs.pop();
                match out {
                    SectionOutcome::Killed => Err(()),
                    SectionOutcome::Resolved => Ok(Section::Empty),
                    SectionOutcome::ReachedEntry(rem) => Ok(rem),
                }
            }
            HcgNodeKind::Loop { stmt, .. } => {
                // Summarization recursion is guarded independently of the
                // query-splitting ancestry: a query that *originated*
                // inside a procedure may still need that procedure's
                // effects summarized.
                let mut sum_guard = Vec::new();
                let (kill, gen) = self.summarize_loop(chk, stmt, &mut sum_guard);
                let env2 = env.clone();
                let remaining = self.apply_gen(chk, set, &gen, &env2)?;
                if !kill.provably_disjoint(&remaining, &env2) {
                    return Err(());
                }
                // Bounds that depend on scalars recomputed inside the
                // loop cannot be tracked across it — unless the loop's
                // Gen already resolved them.
                if !remaining.is_empty() {
                    let body: Vec<StmtId> = match &self.ctx.program.stmt(stmt).kind {
                        StmtKind::Do { body, .. } | StmtKind::While { body, .. } => body.clone(),
                        _ => Vec::new(),
                    };
                    let loop_var = match &self.ctx.program.stmt(stmt).kind {
                        StmtKind::Do { var, .. } => Some(*var),
                        _ => None,
                    };
                    for v in irr_frontend::visit::scalars_assigned_in(self.ctx.program, &body) {
                        if Some(v) != loop_var && remaining.mentions_var(v) {
                            return Err(());
                        }
                    }
                }
                Ok(remaining)
            }
        }
    }

    /// Subtracts a Gen from a query section, honoring the
    /// full-coverage requirement of set-global properties.
    fn apply_gen(
        &self,
        chk: &PropertyChecker,
        set: &Section,
        gen: &Section,
        env: &RangeEnv,
    ) -> Result<Section, ()> {
        if gen.is_empty() {
            return Ok(set.clone());
        }
        if chk.property.requires_full_coverage() {
            if gen.provably_contains(set, env) {
                return Ok(Section::Empty);
            }
            if gen.provably_disjoint(set, env) {
                return Ok(set.clone());
            }
            // Partial overlap mixes definition sites: unsound to split.
            return Err(());
        }
        Ok(set.subtract_under(gen, env))
    }

    /// Rewrites query bounds across a scalar assignment (backwards).
    fn rename_backward(&self, stmt: StmtId, set: &Section) -> Result<Section, ()> {
        if set.is_empty() {
            return Ok(set.clone());
        }
        if let Some((LValue::Scalar(v), rhs)) = self.ctx.assign_parts(stmt) {
            if set.mentions_var(*v) {
                return match expr_to_sym(rhs) {
                    Some(r) => Ok(set.subst(*v, &r)),
                    None => Err(()),
                };
            }
        }
        Ok(set.clone())
    }

    /// Case 2 of the node classes (Fig. 10): a query arriving at a loop
    /// header from *inside* iteration `I`. The preceding iterations'
    /// Kill must not touch the query; their Gen is subtracted; what is
    /// left is aggregated over all iterations and handed to the loop's
    /// predecessors.
    fn loop_header_case(
        &mut self,
        chk: &PropertyChecker,
        loop_stmt: StmtId,
        set: &Section,
        _visited_procs: &mut Vec<ProcId>,
    ) -> Option<Section> {
        let body_sec = self.ctx.hcg.loop_section(loop_stmt)?;
        let mut sum_guard = Vec::new();
        let (kill_b, gen_b) = self.summarize_section(chk, body_sec, &mut sum_guard);
        match self.ctx.do_bounds_sym(loop_stmt) {
            Some((var, lo, hi)) => {
                let mut env = self.ctx.range_env_at(loop_stmt);
                env.set_var_range(var, lo.clone(), hi.clone());
                let prev_hi = SymExpr::var(var).sub(&SymExpr::int(1));
                // Aggregate earlier iterations (j in [lo, i-1]) with a
                // placeholder for j.
                let kill_earlier = kill_b.subst(var, &SymExpr::var(ITER_VAR)).aggregate(
                    ITER_VAR,
                    &lo,
                    &prev_hi,
                    &env,
                    AggMode::May,
                );
                // Fig. 10 line 4: earlier iterations must not kill any
                // queried element. (Checking against the full set — not
                // the post-Gen remainder — is required here: a Gen from
                // iteration j may itself be killed by an iteration
                // between j and the current one.)
                if !kill_earlier.provably_disjoint(set, &env) {
                    return None;
                }
                let gen_earlier = gen_b.subst(var, &SymExpr::var(ITER_VAR)).aggregate(
                    ITER_VAR,
                    &lo,
                    &prev_hi,
                    &env,
                    AggMode::Must,
                );
                let rem_i = self.apply_gen(chk, set, &gen_earlier, &env).ok()?;
                // The query for the loop's predecessors covers all
                // iterations.
                let rem = rem_i.aggregate(var, &lo, &hi, &env, AggMode::May);
                // Scalars assigned in the body make the bounds untrackable.
                let body: Vec<StmtId> = match &self.ctx.program.stmt(loop_stmt).kind {
                    StmtKind::Do { body, .. } => body.clone(),
                    _ => Vec::new(),
                };
                for v in irr_frontend::visit::scalars_assigned_in(self.ctx.program, &body) {
                    if v != var && rem.mentions_var(v) {
                        return None;
                    }
                }
                Some(rem)
            }
            None => {
                // While loop: previous iterations may kill anything they
                // write; require the body to be kill-free, and take no
                // credit for its Gen.
                let env = self.ctx.range_env_at(loop_stmt);
                if !kill_b.is_empty() && !kill_b.provably_empty(&env) {
                    return None;
                }
                let _ = gen_b;
                // The query bounds must survive the body's scalar
                // assignments.
                let body: Vec<StmtId> = match &self.ctx.program.stmt(loop_stmt).kind {
                    StmtKind::While { body, .. } => body.clone(),
                    _ => Vec::new(),
                };
                for v in irr_frontend::visit::scalars_assigned_in(self.ctx.program, &body) {
                    if set.mentions_var(v) {
                        return None;
                    }
                }
                Some(set.clone())
            }
        }
    }

    /// Case 1: the aggregate `(Kill, Gen)` of executing a whole loop
    /// (§3.2.5), with the checker's whole-loop patterns tried first.
    fn summarize_loop(
        &mut self,
        chk: &PropertyChecker,
        loop_stmt: StmtId,
        visited_procs: &mut Vec<ProcId>,
    ) -> (Section, Section) {
        let key = (loop_stmt, chk.array, chk.property.clone());
        if let Some(hit) = self.loop_cache.get(&key) {
            return hit.clone();
        }
        self.stats.summarizations += 1;
        let result = self.summarize_loop_uncached(chk, loop_stmt, visited_procs);
        self.loop_cache.insert(key, result.clone());
        result
    }

    fn summarize_loop_uncached(
        &mut self,
        chk: &PropertyChecker,
        loop_stmt: StmtId,
        visited_procs: &mut Vec<ProcId>,
    ) -> (Section, Section) {
        if let Some(pat) = chk.summarize_loop(self.ctx, loop_stmt) {
            return pat;
        }
        let Some(body_sec) = self.ctx.hcg.loop_section(loop_stmt) else {
            return (Section::Universal, Section::Empty);
        };
        let (kill_b, gen_b) = self.summarize_section(chk, body_sec, visited_procs);
        let body: Vec<StmtId> = match &self.ctx.program.stmt(loop_stmt).kind {
            StmtKind::Do { body, .. } | StmtKind::While { body, .. } => body.clone(),
            _ => Vec::new(),
        };
        let assigned = irr_frontend::visit::scalars_assigned_in(self.ctx.program, &body);
        match self.ctx.do_bounds_sym(loop_stmt) {
            Some((var, lo, hi)) => {
                let env = self.ctx.range_env_at(loop_stmt);
                let kill_stale = assigned
                    .iter()
                    .any(|v| *v != var && kill_b.mentions_var(*v));
                let kill = if kill_stale {
                    Section::Universal
                } else {
                    kill_b.aggregate(var, &lo, &hi, &env, AggMode::May)
                };
                let gen_stale = assigned.iter().any(|v| *v != var && gen_b.mentions_var(*v));
                let gen = if gen_stale || gen_b.is_empty() {
                    Section::Empty
                } else {
                    // Gen_i survives only if not killed by later
                    // iterations (the Aggregate formula of §3.2.5).
                    let mut iter_env = env.clone();
                    iter_env.set_var_range(var, lo.clone(), hi.clone());
                    let next_lo = SymExpr::var(var).add(&SymExpr::int(1));
                    let kill_later = kill_b.subst(var, &SymExpr::var(ITER_VAR)).aggregate(
                        ITER_VAR,
                        &next_lo,
                        &hi,
                        &iter_env,
                        AggMode::May,
                    );
                    let gen_i = gen_b.subtract_may(&kill_later, &iter_env);
                    gen_i.aggregate(var, &lo, &hi, &env, AggMode::Must)
                };
                (kill, gen)
            }
            None => {
                // While loop (or non-unit step): unknown trip count.
                let env = self.ctx.range_env_at(loop_stmt);
                let kill = if kill_b.is_empty() || kill_b.provably_empty(&env) {
                    Section::Empty
                } else {
                    Section::Universal
                };
                (kill, Section::Empty)
            }
        }
    }

    /// Fig. 9, `SummarizeProgSection`: backward `(Kill, Gen)`
    /// summarization of a section, with MUST-intersection at merges and
    /// early termination when Kill saturates.
    fn summarize_section(
        &mut self,
        chk: &PropertyChecker,
        sec: SectionId,
        visited_procs: &mut Vec<ProcId>,
    ) -> (Section, Section) {
        let key = (sec, chk.array, chk.property.clone());
        if let Some(hit) = self.section_cache.get(&key) {
            return hit.clone();
        }
        let result = self.summarize_section_uncached(chk, sec, visited_procs);
        self.section_cache.insert(key, result.clone());
        result
    }

    fn summarize_section_uncached(
        &mut self,
        chk: &PropertyChecker,
        sec: SectionId,
        visited_procs: &mut Vec<ProcId>,
    ) -> (Section, Section) {
        let hcg = &self.ctx.hcg;
        let info = hcg.section(sec);
        let (entry, exit) = (info.entry, info.exit);
        let env = self.section_env(sec);
        let mut pending: HashMap<HcgNodeId, Section> = HashMap::new();
        pending.insert(exit, Section::Empty);
        let mut kill_acc = Section::Empty;
        // MUST-gen of nodes dominating the exit, used if we terminate
        // early (Fig. 9 line 20).
        let mut gen_dom = Section::Empty;
        let mut final_gen: Option<Section> = None;
        while !pending.is_empty() {
            let n = *pending
                .keys()
                .max_by_key(|n| hcg.topo_index(**n))
                .expect("pending nonempty");
            let gen_t = pending.remove(&n).expect("popped key");
            self.stats.nodes_visited += 1;
            if !self.tick() {
                // Out of budget: "may kill everything, generates nothing"
                // is the top of the summary lattice.
                return (Section::Universal, Section::Empty);
            }
            if n == entry {
                final_gen = Some(gen_t);
                break;
            }
            let (kill, gen) = match hcg.kind(n) {
                HcgNodeKind::Simple(stmt) => {
                    self.stats.summarizations += 1;
                    chk.summarize_stmt(self.ctx, stmt)
                }
                HcgNodeKind::Loop { stmt, .. } => self.summarize_loop(chk, stmt, visited_procs),
                HcgNodeKind::Call { callee, .. } => {
                    // SummarizeProcedure: the callee body's summary. A
                    // MOD/REF summary proving the callee never writes the
                    // array gives `(Kill, Gen) = (Empty, Empty)` without
                    // descending (and regardless of recursion).
                    if self
                        .summaries
                        .is_some_and(|sa| !sa.summary(callee).may_write_array(chk.array))
                    {
                        (Section::Empty, Section::Empty)
                    } else if !self.opts.interprocedural || visited_procs.contains(&callee) {
                        (Section::Universal, Section::Empty)
                    } else {
                        visited_procs.push(callee);
                        let callee_sec = hcg.proc_section(callee);
                        let r = self.summarize_section(chk, callee_sec, visited_procs);
                        visited_procs.pop();
                        r
                    }
                }
                _ => (Section::Empty, Section::Empty),
            };
            if kill.is_universal() && self.opts.early_termination {
                self.stats.early_terminations += 1;
                kill_acc = Section::Universal;
                final_gen = Some(gen_dom.clone());
                break;
            }
            // Kill at exit excludes elements re-generated afterwards.
            let kill_after = kill_acc.clone();
            kill_acc = kill_acc.union_may(&kill.subtract_under(&gen_t, &env), &env);
            // Gen of n survives to the exit if not killed later.
            let gen_surviving = gen.subtract_may(&kill_after, &env);
            if hcg.dominates_exit(n) {
                gen_dom = gen_dom.union_must(&gen_surviving, &env);
            }
            let mut new_gen = gen_t.union_must(&gen_surviving, &env);
            // Backward renaming across scalar assignments.
            if let HcgNodeKind::Simple(stmt) = hcg.kind(n) {
                if let Some((LValue::Scalar(v), rhs)) = self.ctx.assign_parts(stmt) {
                    if new_gen.mentions_var(*v) {
                        new_gen = match expr_to_sym(rhs) {
                            Some(r) => new_gen.subst(*v, &r),
                            None => Section::Empty,
                        };
                    }
                    if kill_acc.mentions_var(*v) {
                        kill_acc = match expr_to_sym(rhs) {
                            Some(r) => kill_acc.subst(*v, &r),
                            None => Section::Universal,
                        };
                    }
                }
            }
            for &m in hcg.preds(n) {
                match pending.entry(m) {
                    std::collections::hash_map::Entry::Occupied(mut e) => {
                        let merged = e.get().intersect_must(&new_gen, &env);
                        e.insert(merged);
                    }
                    std::collections::hash_map::Entry::Vacant(e) => {
                        e.insert(new_gen.clone());
                    }
                }
            }
        }
        (kill_acc, final_gen.unwrap_or(gen_dom))
    }

    /// The base range environment of a section: the enclosing loops'
    /// variable ranges.
    fn section_env(&self, sec: SectionId) -> RangeEnv {
        match self.ctx.hcg.section(sec).kind {
            SectionKind::LoopBody(stmt) => self.ctx.range_env_at(stmt),
            SectionKind::ProcBody(_) => RangeEnv::new(),
        }
    }
}

// The tests for the solver exercise whole-program scenarios and live in
// `crates/core/tests/property_analysis.rs`.
