//! Demand-driven interprocedural array property analysis (§3).
//!
//! Compilers can avoid conservative assumptions about indirect array
//! accesses `x(idx(i))` by verifying *properties* of the index array
//! `idx`: injectivity, monotonicity, closed-form value, closed-form
//! bound, and closed-form distance (§3, after Blume & Eigenmann's
//! observations on the Perfect Benchmarks).
//!
//! The analysis is *demand-driven*: a client (dependence test or
//! privatization test) issues a [`PropertyQuery`] — "do the elements of
//! `idx` in `section` have `property` at this statement?" — and the
//! [`ArrayPropertyAnalysis`] answers by reverse query propagation over
//! the hierarchical control graph (Figs. 5–12), consulting a
//! property-specific pattern-matching checker (§3.2.8) at definition
//! sites.

pub mod checkers;
pub mod solver;

pub use checkers::PropertyChecker;
pub use solver::{ArrayPropertyAnalysis, QueryStats, SolverOptions};

use irr_frontend::VarId;
use irr_symbolic::{Section, SymExpr};
use std::fmt;

/// Placeholder variable standing for the array subscript in property
/// expressions: a closed-form value `idx(k) = k*(k-1)/2` is stored as the
/// expression `k*(k-1)/2` with `k` replaced by [`INDEX_VAR`].
pub const INDEX_VAR: VarId = VarId(u32::MAX - 1);

/// Placeholder used internally for aggregation over a second iteration
/// variable (the `j` of §3.2.5's `Aggregate` formulas).
pub const ITER_VAR: VarId = VarId(u32::MAX - 2);

/// The closed-form distance of an index array (§3): how
/// `x(k+1) - x(k)` is expressed.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum DistanceSpec {
    /// The distance is another array: `x(k+1) - x(k) = y(k)` (the
    /// offset/length pattern of Fig. 3).
    Array(VarId),
    /// The distance is an expression of the subscript ([`INDEX_VAR`]),
    /// e.g. `k` for the TRFD triangular index array.
    Expr(SymExpr),
}

impl DistanceSpec {
    /// The distance at subscript `k` as a symbolic expression.
    pub fn at(&self, k: &SymExpr) -> SymExpr {
        match self {
            DistanceSpec::Array(y) => SymExpr::elem(*y, vec![k.clone()]),
            DistanceSpec::Expr(e) => e.subst(INDEX_VAR, k),
        }
    }
}

/// A verifiable property of an index array (§3).
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Property {
    /// `x(k) == value[INDEX_VAR := k]` for every `k` in the section.
    ClosedFormValue {
        /// The closed-form value in terms of [`INDEX_VAR`].
        value: SymExpr,
    },
    /// `lo <= x(k) <= hi` for every `k` in the section (either side
    /// optional).
    ClosedFormBound {
        /// Optional lower bound on element values.
        lo: Option<SymExpr>,
        /// Optional upper bound on element values.
        hi: Option<SymExpr>,
    },
    /// `x(k+1) - x(k) == distance(k)` for every *pair index* `k` in the
    /// section. For this property, section element `k` stands for the
    /// pair `(x(k), x(k+1))`.
    ClosedFormDistance {
        /// The distance specification.
        distance: DistanceSpec,
    },
    /// `x(i) != x(j)` whenever `i != j`, for subscripts in the section.
    Injective,
    /// `x(i) <= x(j)` whenever `i <= j`, for subscripts in the section.
    MonotoneNonDecreasing,
}

impl Property {
    /// Whether the property's own formulation mentions scalar `v` (such
    /// definitions invalidate the property when `v` is reassigned).
    pub fn mentions_var(&self, v: VarId) -> bool {
        match self {
            Property::ClosedFormValue { value } => value.mentions_var(v),
            Property::ClosedFormBound { lo, hi } => {
                lo.as_ref().is_some_and(|e| e.mentions_var(v))
                    || hi.as_ref().is_some_and(|e| e.mentions_var(v))
            }
            Property::ClosedFormDistance { distance } => match distance {
                DistanceSpec::Array(_) => false,
                DistanceSpec::Expr(e) => e.mentions_var(v),
            },
            Property::Injective | Property::MonotoneNonDecreasing => false,
        }
    }

    /// Whether the property's formulation mentions array `a`.
    pub fn mentions_array(&self, a: VarId) -> bool {
        match self {
            Property::ClosedFormValue { value } => value.mentions_array(a),
            Property::ClosedFormBound { lo, hi } => {
                lo.as_ref().is_some_and(|e| e.mentions_array(a))
                    || hi.as_ref().is_some_and(|e| e.mentions_array(a))
            }
            Property::ClosedFormDistance { distance } => match distance {
                DistanceSpec::Array(y) => *y == a,
                DistanceSpec::Expr(e) => e.mentions_array(a),
            },
            Property::Injective | Property::MonotoneNonDecreasing => false,
        }
    }

    /// Whether the property is *set-global*: it constrains the section's
    /// elements jointly, so a Gen that only partially covers a query is
    /// unusable (two separately-injective definition sites are not
    /// jointly injective).
    pub fn requires_full_coverage(&self) -> bool {
        matches!(self, Property::Injective | Property::MonotoneNonDecreasing)
    }

    /// A short human-readable tag (matching Table 3's abbreviations).
    pub fn tag(&self) -> &'static str {
        match self {
            Property::ClosedFormValue { .. } => "CFV",
            Property::ClosedFormBound { .. } => "CFB",
            Property::ClosedFormDistance { .. } => "CFD",
            Property::Injective => "INJ",
            Property::MonotoneNonDecreasing => "MONO",
        }
    }
}

impl fmt::Display for Property {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Property::ClosedFormValue { value } => write!(f, "closed-form value {value}"),
            Property::ClosedFormBound { lo, hi } => {
                write!(f, "closed-form bound [")?;
                match lo {
                    Some(e) => write!(f, "{e}")?,
                    None => write!(f, "-inf")?,
                }
                write!(f, ", ")?;
                match hi {
                    Some(e) => write!(f, "{e}")?,
                    None => write!(f, "+inf")?,
                }
                write!(f, "]")
            }
            Property::ClosedFormDistance { distance } => match distance {
                DistanceSpec::Array(y) => write!(f, "closed-form distance (array {y})"),
                DistanceSpec::Expr(e) => write!(f, "closed-form distance {e}"),
            },
            Property::Injective => write!(f, "injective"),
            Property::MonotoneNonDecreasing => write!(f, "monotonically non-decreasing"),
        }
    }
}

/// A demand: "do all elements of `array` in `section` have `property`
/// when control reaches the point after `at_stmt`?"
#[derive(Clone, Debug)]
pub struct PropertyQuery {
    /// The index array.
    pub array: VarId,
    /// The property to verify.
    pub property: Property,
    /// The array section to verify it on.
    pub section: Section,
    /// The program point (query is raised *after* this statement).
    pub at_stmt: irr_frontend::StmtId,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_spec_instantiation() {
        let y = VarId(3);
        let k = SymExpr::var(VarId(0));
        assert_eq!(
            DistanceSpec::Array(y).at(&k),
            SymExpr::elem(y, vec![k.clone()])
        );
        // distance "k" instantiated at k+1.
        let d = DistanceSpec::Expr(SymExpr::var(INDEX_VAR));
        assert_eq!(d.at(&k.add(&SymExpr::int(1))), k.add(&SymExpr::int(1)));
    }

    #[test]
    fn property_mentions() {
        let n = VarId(7);
        let p = Property::ClosedFormBound {
            lo: Some(SymExpr::int(1)),
            hi: Some(SymExpr::var(n)),
        };
        assert!(p.mentions_var(n));
        assert!(!p.mentions_var(VarId(8)));
        let y = VarId(3);
        let d = Property::ClosedFormDistance {
            distance: DistanceSpec::Array(y),
        };
        assert!(d.mentions_array(y));
        assert!(!d.mentions_array(VarId(4)));
    }

    #[test]
    fn coverage_requirements() {
        assert!(Property::Injective.requires_full_coverage());
        assert!(Property::MonotoneNonDecreasing.requires_full_coverage());
        assert!(!Property::ClosedFormValue {
            value: SymExpr::int(0)
        }
        .requires_full_coverage());
    }

    #[test]
    fn tags_match_table3() {
        assert_eq!(
            Property::ClosedFormValue {
                value: SymExpr::int(0)
            }
            .tag(),
            "CFV"
        );
        assert_eq!(Property::Injective.tag(), "INJ");
    }
}
