//! Value-evolution analysis of index-array producer loops.
//!
//! The property lattice in [`property`](crate::property) answers
//! queries about an index array *at the loop that consumes it*; when
//! the array's defining statements are opaque the query fails and the
//! driver falls back to a runtime inspector. But the producer loops of
//! the sparse kernels build `ptr`/`idx` arrays in a handful of
//! recurrence shapes whose properties follow *by construction*
//! (Bhosale & Eigenmann, *Compile-time Parallelization of Subscripted
//! Subscript Patterns*): a prefix sum over a nonnegative length array
//! is monotone nondecreasing and satisfies the offset–length equation
//! the runtime inspector would re-check element by element; an affine
//! fill with nonzero slope is injective.
//!
//! This module walks each procedure body once, in order, evolving a
//! per-array fact set:
//!
//! - **affine fill** `x(i + c) = a*i + b` (`b` loop-invariant):
//!   injective when `a != 0`, strictly increasing when `a >= 1`,
//!   nonnegative/positive when provable at the range endpoints;
//! - **prefix sum** `x(i+1) = x(i) + d(i)` with `d` known
//!   nonnegative over the traversed range: `x` is monotone
//!   nondecreasing and carries the *chain* fact
//!   `x(k+1) == x(k) + d(k)` for `k` in the loop range — exactly the
//!   predicate [`inspect_offset_length`] re-derives at run time —
//!   strictly increasing (hence injective) when `d` is positive;
//! - **accumulate** `x(e) = x(e) + c` with constant `c >= 0` (the
//!   histogram loop that counts segment lengths): preserves an
//!   existing nonnegativity fact and nothing else — in particular a
//!   zero-trip or duplicate-free histogram never upgrades the later
//!   prefix sum to *strictly* increasing, only `d >= 1` does.
//!
//! Any other write invalidates: a statement (or loop, or branch) that
//! writes array `x` kills the facts about `x`, kills every chain fact
//! whose length array is `x`, and kills facts whose symbolic ranges
//! mention `x`; assigning a scalar kills facts whose ranges mention
//! it. A `call` kills everything *unless* the analysis was built
//! [`with_summaries`](EvolutionAnalysis::with_summaries): then a call
//! to a summarized (non-opaque, no-early-return) routine is composed
//! flow-sensitively by walking the callee body under the call-site
//! facts — preserving facts the callee provably leaves alone and
//! establishing the facts its own producer loops create — and a call
//! to an early-returning routine applies only the summary's MOD kill
//! sets. Facts that survive or arise at a call are tagged
//! [`interproc`](EvoFacts::interproc) so the driver can attribute the
//! promotion to interprocedural reasoning.
//!
//! Facts are snapshotted at every loop entry (including loops nested
//! in other loops — the snapshot already excludes everything the
//! enclosing loop writes), where the driver queries them to discharge
//! residual guard checks statically: a discharged check is one the
//! runtime no longer needs to inspect.
//!
//! [`inspect_offset_length`]: https://docs.rs/irr-exec

use crate::budget::AnalysisBudget;
use crate::summaries::SummaryAnalysis;
use crate::AnalysisCtx;
use irr_frontend::{BinOp, Expr, LValue, StmtId, StmtKind, VarId};
use irr_symbolic::{expr_to_sym, prove_ge0, prove_gt0, prove_le, Atom, RangeEnv, SymExpr};
use std::collections::{HashMap, HashSet};

/// Monotonicity of an index array's values over its covered range.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Monotonicity {
    /// No ordering fact.
    Unknown,
    /// `x(k+1) >= x(k)` on the covered range.
    NonDecreasing,
    /// `x(k+1) > x(k)` on the covered range (hence injective).
    Increasing,
}

/// Facts proven about one array's values, valid over the inclusive
/// symbolic index range `covered`.
#[derive(Clone, Debug)]
pub struct EvoFacts {
    /// Inclusive index range the element facts hold over.
    pub covered: (SymExpr, SymExpr),
    /// Value ordering across adjacent covered indices.
    pub monotone: Monotonicity,
    /// Distinct covered indices hold distinct values.
    pub injective: bool,
    /// Every covered element is `>= 0`.
    pub nonneg: bool,
    /// Every covered element is `>= 1`.
    pub positive: bool,
    /// `(d, k_lo, k_hi)`: `x(k+1) == x(k) + d(k)` for every `k` in
    /// `[k_lo, k_hi]` — the offset–length recurrence, seed value
    /// irrelevant.
    pub chain: Option<(VarId, SymExpr, SymExpr)>,
    /// Which producer shape established the fact (for diagnostics).
    pub origin: &'static str,
    /// The fact survived, or was established, across a `call` via
    /// procedure summaries — its use is an interprocedural promotion.
    pub interproc: bool,
}

/// Field-wise equality, ignoring provenance (`origin`, `interproc`).
fn same_fact(a: &EvoFacts, b: &EvoFacts) -> bool {
    a.covered == b.covered
        && a.monotone == b.monotone
        && a.injective == b.injective
        && a.nonneg == b.nonneg
        && a.positive == b.positive
        && a.chain == b.chain
}

/// Per-loop snapshots of the array facts live at loop entry.
pub struct EvolutionAnalysis {
    at_loop: HashMap<StmtId, HashMap<VarId, EvoFacts>>,
}

impl EvolutionAnalysis {
    /// Walks every procedure of the (post-pass) program once, treating
    /// every `call` as clobbering all facts.
    pub fn new(ctx: &AnalysisCtx<'_>) -> EvolutionAnalysis {
        Self::budgeted(ctx, None, None)
    }

    /// Like [`new`](Self::new), but composes facts across calls using
    /// the per-routine summaries: calls to summarized routines
    /// preserve and establish facts instead of clobbering them.
    pub fn with_summaries(ctx: &AnalysisCtx<'_>, summaries: &SummaryAnalysis) -> EvolutionAnalysis {
        Self::budgeted(ctx, Some(summaries), None)
    }

    /// The fully general constructor: optional summaries, optional
    /// [`AnalysisBudget`]. When the budget runs dry mid-walk the
    /// remaining loops simply get no snapshots (and the live fact set
    /// is dropped), so every discharge question they would be asked
    /// answers "unknown" — weaker verdicts, never unsound ones.
    /// Snapshots recorded *before* exhaustion were computed from a
    /// complete walk up to that point and stay valid.
    pub fn budgeted(
        ctx: &AnalysisCtx<'_>,
        summaries: Option<&SummaryAnalysis>,
        budget: Option<&AnalysisBudget>,
    ) -> EvolutionAnalysis {
        let mut evo = EvolutionAnalysis {
            at_loop: HashMap::new(),
        };
        for proc in &ctx.program.procedures {
            let mut facts: HashMap<VarId, EvoFacts> = HashMap::new();
            evo.walk_body(ctx, &proc.body, &mut facts, summaries, budget);
        }
        evo
    }

    /// An analysis that never ran: no loop has a snapshot, so every
    /// discharge question answers "unknown". The evolution-off rung of
    /// the degradation ladder compiles against this.
    pub fn disabled() -> EvolutionAnalysis {
        EvolutionAnalysis {
            at_loop: HashMap::new(),
        }
    }

    /// The facts live at entry to `loop_stmt`, if the loop was reached
    /// by the walk.
    pub fn facts_at(&self, loop_stmt: StmtId) -> Option<&HashMap<VarId, EvoFacts>> {
        self.at_loop.get(&loop_stmt)
    }

    /// Whether the facts at `loop_stmt` imply what the runtime
    /// offset–length inspector would verify over `[lo, hi]`:
    /// `len(k) >= 0` and `ptr(k+1) == ptr(k) + len(k)` for every `k`.
    pub fn proves_offset_length(
        &self,
        loop_stmt: StmtId,
        ptr: VarId,
        len: VarId,
        lo: &SymExpr,
        hi: &SymExpr,
        env: &RangeEnv,
    ) -> bool {
        // Empty inspection range: the inspector passes vacuously.
        if prove_gt0(&lo.sub(hi), env) {
            return true;
        }
        let Some(facts) = self.at_loop.get(&loop_stmt) else {
            return false;
        };
        let Some((chain_len, k_lo, k_hi)) = facts.get(&ptr).and_then(|f| f.chain.as_ref()) else {
            return false;
        };
        if *chain_len != len {
            return false;
        }
        let Some(lf) = facts.get(&len) else {
            return false;
        };
        lf.nonneg
            && prove_le(k_lo, lo, env)
            && prove_le(hi, k_hi, env)
            && prove_le(&lf.covered.0, lo, env)
            && prove_le(hi, &lf.covered.1, env)
    }

    /// Whether the facts at `loop_stmt` imply injectivity of
    /// `arr(lo..=hi)` — what the runtime injectivity inspector would
    /// verify.
    pub fn proves_injective(
        &self,
        loop_stmt: StmtId,
        arr: VarId,
        lo: &SymExpr,
        hi: &SymExpr,
        env: &RangeEnv,
    ) -> bool {
        if prove_gt0(&lo.sub(hi), env) {
            return true;
        }
        let Some(f) = self.at_loop.get(&loop_stmt).and_then(|m| m.get(&arr)) else {
            return false;
        };
        f.injective && prove_le(&f.covered.0, lo, env) && prove_le(hi, &f.covered.1, env)
    }

    /// Whether the fact about `var` live at `loop_stmt` was carried or
    /// established across a call (an interprocedural promotion when
    /// used to discharge a check).
    pub fn fact_interproc(&self, loop_stmt: StmtId, var: VarId) -> bool {
        self.at_loop
            .get(&loop_stmt)
            .and_then(|m| m.get(&var))
            .is_some_and(|f| f.interproc)
    }

    fn walk_body(
        &mut self,
        ctx: &AnalysisCtx<'_>,
        body: &[StmtId],
        facts: &mut HashMap<VarId, EvoFacts>,
        summaries: Option<&SummaryAnalysis>,
        budget: Option<&AnalysisBudget>,
    ) {
        let program = ctx.program;
        for &s in body {
            if budget.is_some_and(|b| !b.spend(1)) {
                // Dry meter: stop producing facts. Clearing first keeps
                // the walk conservative — nothing recorded from here on
                // can claim a property the completed prefix didn't
                // establish.
                facts.clear();
                return;
            }
            match &program.stmt(s).kind {
                StmtKind::Assign { lhs, .. } => match lhs {
                    LValue::Scalar(v) => {
                        let ks = HashSet::from([*v]);
                        apply_kills(facts, &ks, &HashSet::new());
                    }
                    LValue::Element(a, _) => {
                        let ka = HashSet::from([*a]);
                        apply_kills(facts, &HashSet::new(), &ka);
                    }
                },
                StmtKind::Do { .. } => self.handle_do(ctx, s, facts, summaries, budget),
                StmtKind::While { body, .. } => {
                    kill_for_subtree(ctx, body, facts, summaries);
                }
                StmtKind::If {
                    then_body,
                    else_body,
                    ..
                } => {
                    let both: Vec<StmtId> =
                        then_body.iter().chain(else_body.iter()).copied().collect();
                    kill_for_subtree(ctx, &both, facts, summaries);
                }
                StmtKind::Call { proc } => {
                    match summaries.map(|sa| sa.summary(*proc)) {
                        Some(sum) if !sum.opaque => {
                            if sum.early_return {
                                // Exit state is not the state after the
                                // last statement: apply only the
                                // (may-)MOD kill sets.
                                let (ks, ka) = sum.kill_sets();
                                apply_kills(facts, &ks, &ka);
                            } else {
                                // Flow-sensitive transformer
                                // application: compose the callee's
                                // kills and establishments over the
                                // call-site facts by walking its body.
                                // Bottom-up summary construction
                                // guarantees the callee's own calls are
                                // already summarized and acyclic.
                                let callee_body = program.procedure(*proc).body.clone();
                                self.walk_body(ctx, &callee_body, facts, summaries, budget);
                            }
                            for f in facts.values_mut() {
                                f.interproc = true;
                            }
                        }
                        _ => facts.clear(),
                    }
                }
                StmtKind::Print { .. } | StmtKind::Return => {}
            }
        }
    }

    fn handle_do(
        &mut self,
        ctx: &AnalysisCtx<'_>,
        loop_stmt: StmtId,
        facts: &mut HashMap<VarId, EvoFacts>,
        summaries: Option<&SummaryAnalysis>,
        budget: Option<&AnalysisBudget>,
    ) {
        let program = ctx.program;
        let StmtKind::Do { var, body, .. } = &program.stmt(loop_stmt).kind else {
            unreachable!("handle_do on a non-do statement");
        };
        let loop_var = *var;
        let body = body.clone();
        // The kill-set and producer analyses below walk the whole
        // subtree: charge proportionally, and record nothing when dry
        // (no snapshot ⇒ `facts_at` is `None` ⇒ every discharge fails).
        if budget.is_some_and(|b| !b.spend(1 + body.len() as u64)) {
            facts.clear();
            return;
        }
        let pre = facts.clone();
        let kills = kill_sets(ctx, &body, summaries).map(|(mut ks, ka, via_call)| {
            ks.insert(loop_var);
            (ks, ka, via_call)
        });
        match &kills {
            None => facts.clear(),
            Some((ks, ka, via_call)) => {
                apply_kills(facts, ks, ka);
                if *via_call {
                    // Survival across the loop relied on callee
                    // summaries bounding what its calls write.
                    for f in facts.values_mut() {
                        f.interproc = true;
                    }
                }
            }
        }
        // The surviving facts exclude everything this loop writes, so
        // they hold at entry to the loop and to every loop nested in
        // it.
        self.snapshot(loop_stmt, facts);
        for s in program.stmts_in(&body) {
            if matches!(program.stmt(s).kind, StmtKind::Do { .. }) {
                self.snapshot(s, facts);
            }
        }
        if let Some((ks, ka, _)) = &kills {
            if let Some((arr, f)) =
                recognize_producer(ctx, loop_stmt, loop_var, &body, facts, &pre, ks, ka)
            {
                facts.insert(arr, f);
            }
        }
    }

    /// Records the facts live at entry to `s`. A loop inside a callee
    /// is reached once per call site (plus the standalone walk of its
    /// procedure), so on a revisit the snapshot is the *intersection*:
    /// only facts identical across every visit survive, which keeps
    /// the per-loop answer valid for every dynamic execution.
    fn snapshot(&mut self, s: StmtId, facts: &HashMap<VarId, EvoFacts>) {
        use std::collections::hash_map::Entry;
        match self.at_loop.entry(s) {
            Entry::Vacant(e) => {
                e.insert(facts.clone());
            }
            Entry::Occupied(mut e) => {
                e.get_mut().retain(|arr, f| match facts.get(arr) {
                    Some(g) if same_fact(f, g) => {
                        f.interproc |= g.interproc;
                        true
                    }
                    _ => false,
                });
            }
        }
    }
}

/// `(scalars assigned, arrays written, any-of-it-via-call)` anywhere
/// under `body`, or `None` when the subtree contains a call to an
/// unsummarized or opaque routine (kill everything).
fn kill_sets(
    ctx: &AnalysisCtx<'_>,
    body: &[StmtId],
    summaries: Option<&SummaryAnalysis>,
) -> Option<(HashSet<VarId>, HashSet<VarId>, bool)> {
    let program = ctx.program;
    let mut scalars: HashSet<VarId> = irr_frontend::visit::scalars_assigned_in(program, body)
        .into_iter()
        .collect();
    let mut arrays: HashSet<VarId> = irr_frontend::visit::arrays_written_in(program, body)
        .into_iter()
        .collect();
    let mut via_call = false;
    for s in program.stmts_in(body) {
        match &program.stmt(s).kind {
            StmtKind::Call { proc } => match summaries.map(|sa| sa.summary(*proc)) {
                Some(sum) if !sum.opaque => {
                    via_call = true;
                    scalars.extend(sum.mod_scalars.iter().copied());
                    arrays.extend(sum.mod_arrays.iter().copied());
                }
                _ => return None,
            },
            StmtKind::Do { var, .. } => {
                scalars.insert(*var);
            }
            _ => {}
        }
    }
    Some((scalars, arrays, via_call))
}

fn kill_for_subtree(
    ctx: &AnalysisCtx<'_>,
    body: &[StmtId],
    facts: &mut HashMap<VarId, EvoFacts>,
    summaries: Option<&SummaryAnalysis>,
) {
    match kill_sets(ctx, body, summaries) {
        None => facts.clear(),
        Some((ks, ka, via_call)) => {
            apply_kills(facts, &ks, &ka);
            if via_call {
                for f in facts.values_mut() {
                    f.interproc = true;
                }
            }
        }
    }
}

/// The exit fact set of `body` entered with no facts, composing calls
/// via the (possibly still partial, conservatively opaque) summary
/// table — used by summary construction for the *establishes*
/// component.
pub(crate) fn facts_at_exit(
    ctx: &AnalysisCtx<'_>,
    body: &[StmtId],
    summaries: &SummaryAnalysis,
) -> HashMap<VarId, EvoFacts> {
    let mut evo = EvolutionAnalysis {
        at_loop: HashMap::new(),
    };
    let mut facts = HashMap::new();
    evo.walk_body(ctx, body, &mut facts, Some(summaries), None);
    facts
}

/// Whether the symbolic material of a fact references a killed scalar
/// or array (its index ranges or its chain become stale).
fn refs_killed(f: &EvoFacts, ks: &HashSet<VarId>, ka: &HashSet<VarId>) -> bool {
    let stale = |e: &SymExpr| {
        ks.iter().any(|&s| e.mentions_var(s)) || ka.iter().any(|&a| e.mentions_array(a))
    };
    if stale(&f.covered.0) || stale(&f.covered.1) {
        return true;
    }
    match &f.chain {
        Some((d, k_lo, k_hi)) => ka.contains(d) || stale(k_lo) || stale(k_hi),
        None => false,
    }
}

fn apply_kills(facts: &mut HashMap<VarId, EvoFacts>, ks: &HashSet<VarId>, ka: &HashSet<VarId>) {
    facts.retain(|arr, f| !ka.contains(arr) && !refs_killed(f, ks, ka));
}

/// Tries to recognize the loop as one of the three producer shapes.
/// `facts` is the post-kill set (loop-invariant w.r.t. this loop);
/// `pre` the pre-kill set, used only by the accumulate shape to carry
/// nonnegativity over the self-update.
#[allow(clippy::too_many_arguments)]
fn recognize_producer(
    ctx: &AnalysisCtx<'_>,
    loop_stmt: StmtId,
    loop_var: VarId,
    body: &[StmtId],
    facts: &HashMap<VarId, EvoFacts>,
    pre: &HashMap<VarId, EvoFacts>,
    ks: &HashSet<VarId>,
    ka: &HashSet<VarId>,
) -> Option<(VarId, EvoFacts)> {
    if body.len() != 1 {
        return None;
    }
    let (lhs, rhs) = ctx.assign_parts(body[0])?;
    let LValue::Element(x, subs) = lhs else {
        return None;
    };
    let x = *x;
    if subs.len() != 1 {
        return None;
    }
    let (var, lo, hi) = ctx.do_bounds_sym(loop_stmt)?;
    debug_assert_eq!(var, loop_var);
    let env = ctx.range_env_at(loop_stmt);

    // ---- accumulate: x(e) = x(e) + c, c >= 0 -----------------------------
    // Tried first: `e` may be an arbitrary (subscripted-subscript)
    // expression the shift computation below cannot normalize.
    if let Expr::Bin(BinOp::Add, a, b) = rhs {
        let addend = match (&**a, &**b) {
            (Expr::Element(ax, asubs), other) if *ax == x && asubs == subs => Some(other),
            (other, Expr::Element(bx, bsubs)) if *bx == x && bsubs == subs => Some(other),
            _ => None,
        };
        if let Some(c) = addend.and_then(expr_to_sym).and_then(|c| c.as_int()) {
            if c < 0 {
                return None;
            }
            let f = pre.get(&x)?;
            if !f.nonneg || refs_killed(f, ks, ka) {
                return None;
            }
            return Some((
                x,
                EvoFacts {
                    covered: f.covered.clone(),
                    monotone: Monotonicity::Unknown,
                    injective: false,
                    nonneg: true,
                    positive: false,
                    chain: None,
                    origin: "accumulate",
                    interproc: false,
                },
            ));
        }
    }

    let se = expr_to_sym(&subs[0])?;
    if se.den() != 1 {
        return None;
    }
    // Subscript shift: the loop writes x(i + dc) for i in [lo, hi].
    let dc = se.sub(&SymExpr::var(loop_var)).as_int()?;

    // ---- prefix sum: x(i+1) = x(i) + d(i) --------------------------------
    if dc == 1 {
        if let Some(d) = prefix_sum_distance(rhs, x, loop_var) {
            if d != x && !ka.contains(&d) {
                if let Some(df) = facts.get(&d) {
                    if df.nonneg
                        && prove_le(&df.covered.0, &lo, &env)
                        && prove_le(&hi, &df.covered.1, &env)
                    {
                        let strict = df.positive;
                        return Some((
                            x,
                            EvoFacts {
                                covered: (lo.clone(), hi.add(&SymExpr::int(1))),
                                monotone: if strict {
                                    Monotonicity::Increasing
                                } else {
                                    Monotonicity::NonDecreasing
                                },
                                injective: strict,
                                nonneg: false,
                                positive: false,
                                chain: Some((d, lo, hi)),
                                origin: "prefix-sum",
                                interproc: false,
                            },
                        ));
                    }
                }
            }
        }
    }

    // ---- affine fill: x(i + dc) = a*i + b, b loop-invariant --------------
    let rs = expr_to_sym(rhs)?;
    if rs.den() != 1 || rs.mentions_array(x) {
        return None;
    }
    let (a, den) = rs.coeff_of_atom(&Atom::Var(loop_var));
    if den != 1 {
        return None;
    }
    let b = rs.sub(&SymExpr::var(loop_var).scale(a));
    if b.mentions_var(loop_var) {
        return None;
    }
    let at_lo = rs.subst(loop_var, &lo);
    let at_hi = rs.subst(loop_var, &hi);
    let nonneg = prove_ge0(&at_lo, &env) && prove_ge0(&at_hi, &env);
    let positive = prove_gt0(&at_lo, &env) && prove_gt0(&at_hi, &env);
    let shift = SymExpr::int(dc);
    Some((
        x,
        EvoFacts {
            covered: (lo.add(&shift), hi.add(&shift)),
            monotone: if a >= 1 {
                Monotonicity::Increasing
            } else if a == 0 {
                Monotonicity::NonDecreasing
            } else {
                Monotonicity::Unknown
            },
            injective: a != 0,
            nonneg,
            positive,
            chain: None,
            origin: "affine-fill",
            interproc: false,
        },
    ))
}

/// Matches `rhs == x(i) + d(i)` (either operand order) and returns `d`.
fn prefix_sum_distance(rhs: &Expr, x: VarId, i: VarId) -> Option<VarId> {
    let rs = expr_to_sym(rhs)?;
    let x_at_i = SymExpr::elem(x, vec![SymExpr::var(i)]);
    let diff = rs.sub(&x_at_i);
    if diff.mentions_array(x) {
        return None;
    }
    match diff.as_single_atom()? {
        Atom::Elem(d, dsubs) if dsubs.len() == 1 && dsubs[0] == SymExpr::var(i) => Some(*d),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use irr_frontend::parse_program;

    fn analyze(src: &str) -> (irr_frontend::Program, Vec<StmtId>) {
        let p = parse_program(src).expect("test program parses");
        let loops: Vec<StmtId> = p
            .stmts_in(&p.procedures[0].body)
            .into_iter()
            .filter(|&s| matches!(p.stmt(s).kind, StmtKind::Do { .. }))
            .collect();
        (p, loops)
    }

    fn var(p: &irr_frontend::Program, name: &str) -> VarId {
        p.symbols.lookup(name).unwrap()
    }

    #[test]
    fn positive_fill_then_prefix_sum_is_strictly_increasing() {
        let (p, loops) = analyze(
            "program t
             integer i, n, len(8), ptr(9)
             real x(16)
             n = 8
             do i = 1, n
               len(i) = 1
             enddo
             ptr(1) = 1
             do i = 1, n
               ptr(i + 1) = ptr(i) + len(i)
             enddo
             do 100 i = 1, n
               x(ptr(i)) = 0.0
         100 continue
             end",
        );
        let ctx = AnalysisCtx::new(&p);
        let evo = EvolutionAnalysis::new(&ctx);
        let consumer = *loops.last().unwrap();
        let facts = evo.facts_at(consumer).unwrap();
        let pf = &facts[&var(&p, "ptr")];
        assert_eq!(pf.monotone, Monotonicity::Increasing);
        assert!(pf.injective);
        let (d, _, _) = pf.chain.as_ref().unwrap();
        assert_eq!(*d, var(&p, "len"));
        let (one, n) = (SymExpr::int(1), SymExpr::var(var(&p, "n")));
        let env = ctx.range_env_at(consumer);
        assert!(evo.proves_offset_length(consumer, var(&p, "ptr"), var(&p, "len"), &one, &n, &env));
        assert!(evo.proves_injective(consumer, var(&p, "ptr"), &one, &n, &env));
    }

    #[test]
    fn histogram_prefix_sum_is_nondecreasing_not_strict() {
        // The satellite-3 shape: lengths come from a histogram, so
        // they are only >= 0 (an all-empty histogram is legal) — the
        // prefix sum must NOT claim strict monotonicity/injectivity.
        let (p, loops) = analyze(
            "program t
             integer i, k, n, nnz, len(8), ptr(9), seg(16)
             real x(16)
             n = 8
             nnz = 16
             do i = 1, n
               len(i) = 0
             enddo
             do k = 1, nnz
               len(seg(k)) = len(seg(k)) + 1
             enddo
             ptr(1) = 1
             do i = 1, n
               ptr(i + 1) = ptr(i) + len(i)
             enddo
             do 100 i = 1, n
               x(ptr(i)) = 0.0
         100 continue
             end",
        );
        let ctx = AnalysisCtx::new(&p);
        let evo = EvolutionAnalysis::new(&ctx);
        let consumer = *loops.last().unwrap();
        let facts = evo.facts_at(consumer).unwrap();
        let pf = &facts[&var(&p, "ptr")];
        assert_eq!(pf.monotone, Monotonicity::NonDecreasing);
        assert!(!pf.injective);
        assert!(pf.chain.is_some());
        let lf = &facts[&var(&p, "len")];
        assert!(lf.nonneg && !lf.positive);
        let (one, n) = (SymExpr::int(1), SymExpr::var(var(&p, "n")));
        let env = ctx.range_env_at(consumer);
        assert!(evo.proves_offset_length(consumer, var(&p, "ptr"), var(&p, "len"), &one, &n, &env));
        assert!(!evo.proves_injective(consumer, var(&p, "ptr"), &one, &n, &env));
    }

    #[test]
    fn affine_reversal_fill_is_injective() {
        // Constant bounds, as the driver's constant propagation leaves
        // them in the sparse kernels.
        let (p, loops) = analyze(
            "program t
             integer k, perm(16)
             real y(16)
             do k = 1, 16
               perm(k) = 17 - k
             enddo
             do 200 k = 1, 16
               y(perm(k)) = 1.0
         200 continue
             end",
        );
        let ctx = AnalysisCtx::new(&p);
        let evo = EvolutionAnalysis::new(&ctx);
        let consumer = *loops.last().unwrap();
        let f = &evo.facts_at(consumer).unwrap()[&var(&p, "perm")];
        assert!(f.injective);
        assert!(f.positive, "values run 16 down to 1");
        let (one, nnz) = (SymExpr::int(1), SymExpr::int(16));
        let env = ctx.range_env_at(consumer);
        assert!(evo.proves_injective(consumer, var(&p, "perm"), &one, &nnz, &env));
    }

    #[test]
    fn zero_trip_producer_still_discharges_vacuous_ranges() {
        let (p, loops) = analyze(
            "program t
             integer i, perm(8)
             real y(8)
             do i = 1, 0
               perm(i) = i
             enddo
             do 100 i = 1, 0
               y(perm(i)) = 1.0
         100 continue
             end",
        );
        let ctx = AnalysisCtx::new(&p);
        let evo = EvolutionAnalysis::new(&ctx);
        let consumer = *loops.last().unwrap();
        let env = ctx.range_env_at(consumer);
        let (one, zero) = (SymExpr::int(1), SymExpr::int(0));
        assert!(evo.proves_injective(consumer, var(&p, "perm"), &one, &zero, &env));
    }

    #[test]
    fn rewriting_the_length_array_kills_the_chain() {
        let (p, loops) = analyze(
            "program t
             integer i, n, len(8), ptr(9)
             n = 8
             do i = 1, n
               len(i) = 1
             enddo
             do i = 1, n
               ptr(i + 1) = ptr(i) + len(i)
             enddo
             do i = 1, n
               len(i) = 2
             enddo
             do 100 i = 1, n
               len(i) = ptr(i)
         100 continue
             end",
        );
        let ctx = AnalysisCtx::new(&p);
        let evo = EvolutionAnalysis::new(&ctx);
        let consumer = *loops.last().unwrap();
        let (one, n) = (SymExpr::int(1), SymExpr::var(var(&p, "n")));
        let env = ctx.range_env_at(consumer);
        assert!(!evo.proves_offset_length(
            consumer,
            var(&p, "ptr"),
            var(&p, "len"),
            &one,
            &n,
            &env
        ));
    }

    #[test]
    fn assigning_a_range_scalar_kills_dependent_facts() {
        let (p, loops) = analyze(
            "program t
             integer k, nnz, perm(16)
             real y(16)
             nnz = 16
             do k = 1, nnz
               perm(k) = k
             enddo
             nnz = 8
             do 200 k = 1, nnz
               y(perm(k)) = 1.0
         200 continue
             end",
        );
        let ctx = AnalysisCtx::new(&p);
        let evo = EvolutionAnalysis::new(&ctx);
        let consumer = *loops.last().unwrap();
        let env = ctx.range_env_at(consumer);
        let (one, nnz) = (SymExpr::int(1), SymExpr::var(var(&p, "nnz")));
        assert!(!evo.proves_injective(consumer, var(&p, "perm"), &one, &nnz, &env));
    }

    #[test]
    fn a_call_kills_everything_without_summaries() {
        let (p, loops) = analyze(UNRELATED_CALL_SRC);
        let ctx = AnalysisCtx::new(&p);
        let evo = EvolutionAnalysis::new(&ctx);
        let consumer = *loops.last().unwrap();
        let env = ctx.range_env_at(consumer);
        let (one, nnz) = (SymExpr::int(1), SymExpr::var(var(&p, "nnz")));
        assert!(!evo.proves_injective(consumer, var(&p, "perm"), &one, &nnz, &env));
    }

    const UNRELATED_CALL_SRC: &str = "program t
             integer k, nnz, perm(16), other(4)
             real y(16)
             nnz = 16
             do k = 1, nnz
               perm(k) = k
             enddo
             call clobber
             do 200 k = 1, nnz
               y(perm(k)) = 1.0
         200 continue
             end
             subroutine clobber
             integer j, other(4)
             do j = 1, 4
               other(j) = 0
             enddo
             end";

    #[test]
    fn unrelated_call_preserves_facts_with_summaries() {
        // Satellite: the callee writes only `j` and `other`, neither of
        // which the `perm` fact depends on — with summaries the fact
        // survives the call and is tagged interprocedural.
        let (p, loops) = analyze(UNRELATED_CALL_SRC);
        let ctx = AnalysisCtx::new(&p);
        let sa = crate::summaries::SummaryAnalysis::new(&ctx);
        let evo = EvolutionAnalysis::with_summaries(&ctx, &sa);
        let consumer = *loops.last().unwrap();
        let env = ctx.range_env_at(consumer);
        let (one, nnz) = (SymExpr::int(1), SymExpr::var(var(&p, "nnz")));
        assert!(evo.proves_injective(consumer, var(&p, "perm"), &one, &nnz, &env));
        assert!(evo.fact_interproc(consumer, var(&p, "perm")));
    }

    #[test]
    fn recursive_call_conservatively_kills_even_with_summaries() {
        let (p, loops) = analyze(
            "program t
             integer k, nnz, perm(16)
             real y(16)
             nnz = 16
             do k = 1, nnz
               perm(k) = k
             enddo
             call spin
             do 200 k = 1, nnz
               y(perm(k)) = 1.0
         200 continue
             end
             subroutine spin
             integer j
             j = j - 1
             if (j > 0) then
               call spin
             endif
             end",
        );
        let ctx = AnalysisCtx::new(&p);
        let sa = crate::summaries::SummaryAnalysis::new(&ctx);
        assert!(sa.summary(irr_frontend::ProcId(1)).opaque);
        let evo = EvolutionAnalysis::with_summaries(&ctx, &sa);
        let consumer = *loops.last().unwrap();
        let env = ctx.range_env_at(consumer);
        let (one, nnz) = (SymExpr::int(1), SymExpr::var(var(&p, "nnz")));
        assert!(!evo.proves_injective(consumer, var(&p, "perm"), &one, &nnz, &env));
    }

    #[test]
    fn zero_trip_producer_inside_a_callee() {
        // The callee's producer loop never runs; its fact covers the
        // empty range [1, 0]. A vacuous consumer range still passes
        // (the inspector would too), a real range must not.
        let (p, loops) = analyze(
            "program t
             integer k, perm(8)
             real y(8)
             call zt
             do 200 k = 1, 0
               y(perm(k)) = 1.0
         200 continue
             end
             subroutine zt
             integer i, perm(8)
             do i = 1, 0
               perm(i) = i
             enddo
             end",
        );
        let ctx = AnalysisCtx::new(&p);
        let sa = crate::summaries::SummaryAnalysis::new(&ctx);
        let evo = EvolutionAnalysis::with_summaries(&ctx, &sa);
        let consumer = *loops.last().unwrap();
        let env = ctx.range_env_at(consumer);
        let (one, zero, eight) = (SymExpr::int(1), SymExpr::int(0), SymExpr::int(8));
        assert!(evo.proves_injective(consumer, var(&p, "perm"), &one, &zero, &env));
        assert!(!evo.proves_injective(consumer, var(&p, "perm"), &one, &eight, &env));
    }

    #[test]
    fn call_structured_producer_chain_promotes_only_with_summaries() {
        // The whole producer chain lives in a subroutine; the consumer
        // stays in the caller. Without summaries the call clobbers the
        // chain fact; with summaries the offset–length inspection is
        // discharged across the call.
        let (p, loops) = analyze(
            "program t
             integer i, n, len(8), ptr(9)
             real x(16)
             n = 8
             call build
             do 400 i = 1, n
               x(ptr(i)) = 0.0
         400 continue
             end
             subroutine build
             integer i, n, len(8), ptr(9)
             do i = 1, n
               len(i) = 1
             enddo
             ptr(1) = 1
             do i = 1, n
               ptr(i + 1) = ptr(i) + len(i)
             enddo
             end",
        );
        let ctx = AnalysisCtx::new(&p);
        let consumer = *loops.last().unwrap();
        let (one, n) = (SymExpr::int(1), SymExpr::var(var(&p, "n")));
        let env = ctx.range_env_at(consumer);
        let (ptr, len) = (var(&p, "ptr"), var(&p, "len"));

        let cold = EvolutionAnalysis::new(&ctx);
        assert!(!cold.proves_offset_length(consumer, ptr, len, &one, &n, &env));

        let sa = crate::summaries::SummaryAnalysis::new(&ctx);
        let evo = EvolutionAnalysis::with_summaries(&ctx, &sa);
        assert!(evo.proves_offset_length(consumer, ptr, len, &one, &n, &env));
        assert!(evo.proves_injective(consumer, ptr, &one, &n, &env));
        assert!(evo.fact_interproc(consumer, ptr));
    }
}
