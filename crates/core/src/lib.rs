//! The compile-time analyses of Lin & Padua, *Compiler Analysis of
//! Irregular Memory Accesses* (PLDI 2000).
//!
//! Two families of irregular array accesses are analyzed:
//!
//! 1. **Irregular single-indexed accesses** (§2): every access of an
//!    array in a loop uses the same scalar index variable `p`. The
//!    bounded depth-first search classifies the *index evolution* as
//!    [consecutively written](single_indexed::consecutively_written)
//!    or as a [stack access](stack::stack_access), and §4's
//!    [index-gathering loops](gather) combine both with value
//!    reasoning.
//!
//! 2. **Simple indirect accesses** (§3): an array subscripted by an index
//!    array, `x(idx(i))`. The demand-driven interprocedural
//!    [array property analysis](property) verifies properties of the
//!    index array — injectivity, monotonicity, closed-form value,
//!    closed-form bound, closed-form distance — by reverse query
//!    propagation over the hierarchical control graph.
//!
//! The clients of these analyses (dependence tests, the privatization
//! test, and the parallelization driver) live in the `irr-deptest`,
//! `irr-privatize`, and `irr-driver` crates.

pub mod budget;
pub mod ctx;
pub mod evolution;
pub mod gather;
pub mod property;
pub mod single_indexed;
pub mod stack;
pub mod summaries;

pub use budget::{AnalysisBudget, BudgetExhaustion};
pub use ctx::AnalysisCtx;
pub use evolution::{EvoFacts, EvolutionAnalysis, Monotonicity};
pub use gather::{find_index_gathering_loops, IndexGatherInfo};
pub use property::{
    ArrayPropertyAnalysis, DistanceSpec, Property, PropertyQuery, QueryStats, INDEX_VAR,
};
pub use single_indexed::{
    consecutively_written, single_indexed_arrays, ConsecutivelyWritten, IndexDefKind, SingleIndexed,
};
pub use stack::{stack_access, StackAccess};
pub use summaries::{ProcSummary, SummaryAnalysis};
