//! Edge cases of the query solver: recursion, while-loop headers,
//! worklist configurations, query splitting over multiple call sites,
//! and conservative failures.

use irr_core::property::{ArrayPropertyAnalysis, SolverOptions};
use irr_core::{AnalysisCtx, DistanceSpec, Property, PropertyQuery};
use irr_frontend::{parse_program, Program, StmtId, StmtKind};
use irr_symbolic::{Section, SymExpr};

fn loop_labeled(p: &Program, label: u32) -> StmtId {
    let mut all = Vec::new();
    for proc in &p.procedures {
        all.extend(p.stmts_in(&proc.body));
    }
    all.into_iter()
        .find(|s| matches!(p.stmt(*s).kind, StmtKind::Do { label: Some(l), .. } if l == label))
        .expect("labeled loop")
}

#[test]
fn recursive_procedures_fail_conservatively() {
    // a calls b calls a: any query that needs to summarize or traverse
    // the cycle must give up, not hang.
    let src = "program t
         integer idx(10), i
         real z(10)
         do i = 1, 10
           idx(i) = i
         enddo
         call a
         z(1) = idx(3)
         end
         subroutine a
         call b
         end
         subroutine b
         idx(2) = 5
         call a
         end";
    let p = parse_program(src).unwrap();
    let ctx = AnalysisCtx::new(&p);
    let mut apa = ArrayPropertyAnalysis::new(&ctx);
    let idx = p.symbols.lookup("idx").unwrap();
    let use_stmt = *p.procedure(p.main()).body.last().unwrap();
    let q = PropertyQuery {
        array: idx,
        property: Property::Injective,
        section: Section::range1(SymExpr::int(1), SymExpr::int(10)),
        at_stmt: use_stmt,
    };
    assert!(!apa.check(&q), "recursion must be conservative");
}

#[test]
fn query_from_inside_a_while_loop() {
    // The index array is defined before a while loop that does not touch
    // it; a query raised inside the while loop must cross its header
    // (the Fig. 10 while case).
    let src = "program t
         integer idx(20), i, k, n
         real z(20), w(20)
         do i = 1, 20
           idx(i) = i
         enddo
         k = 0
         while (k < n)
           k = k + 1
           z(idx(1)) = w(k)
         endwhile
         end";
    let p = parse_program(src).unwrap();
    let ctx = AnalysisCtx::new(&p);
    let mut apa = ArrayPropertyAnalysis::new(&ctx);
    let idx = p.symbols.lookup("idx").unwrap();
    // The statement inside the while body.
    let inner = p
        .stmts_in(&p.procedure(p.main()).body)
        .into_iter()
        .rfind(|s| matches!(p.stmt(*s).kind, StmtKind::Assign { .. }))
        .unwrap();
    let q = PropertyQuery {
        array: idx,
        property: Property::ClosedFormBound {
            lo: Some(SymExpr::int(1)),
            hi: Some(SymExpr::int(20)),
        },
        section: Section::range1(SymExpr::int(1), SymExpr::int(20)),
        at_stmt: inner,
    };
    assert!(apa.check(&q), "query must escape the kill-free while loop");
    // If the while loop *wrote* the index array, the same query fails.
    let src2 = src.replace("z(idx(1)) = w(k)", "idx(1) = k\n           z(1) = w(k)");
    let p2 = parse_program(&src2).unwrap();
    let ctx2 = AnalysisCtx::new(&p2);
    let mut apa2 = ArrayPropertyAnalysis::new(&ctx2);
    let idx2 = p2.symbols.lookup("idx").unwrap();
    let inner2 = p2
        .stmts_in(&p2.procedure(p2.main()).body)
        .into_iter()
        .rfind(|s| matches!(p2.stmt(*s).kind, StmtKind::Assign { .. }))
        .unwrap();
    let q2 = PropertyQuery {
        array: idx2,
        property: Property::ClosedFormBound {
            lo: Some(SymExpr::int(1)),
            hi: Some(SymExpr::int(20)),
        },
        section: Section::range1(SymExpr::int(1), SymExpr::int(20)),
        at_stmt: inner2,
    };
    assert!(!apa2.check(&q2), "a while-loop kill is conservative");
}

#[test]
fn query_splitting_requires_all_call_sites() {
    // Two call sites of `use1`; the second is reached before the
    // defining loop, so splitting must fail overall even though the
    // first site verifies.
    let src = "program t
         integer idx(10), i
         real z(10)
         call use1
         do 5 i = 1, 10
           idx(i) = i
 5       continue
         call use1
         end
         subroutine use1
         z(1) = idx(3)
         end";
    let p = parse_program(src).unwrap();
    let ctx = AnalysisCtx::new(&p);
    let mut apa = ArrayPropertyAnalysis::new(&ctx);
    let idx = p.symbols.lookup("idx").unwrap();
    let use_stmt = {
        let sub = p.find_procedure("use1").unwrap();
        p.procedure(sub).body[0]
    };
    let q = PropertyQuery {
        array: idx,
        property: Property::Injective,
        section: Section::range1(SymExpr::int(1), SymExpr::int(10)),
        at_stmt: use_stmt,
    };
    assert!(!apa.check(&q), "one bad call site fails the split");
}

#[test]
fn solver_options_do_not_change_answers() {
    // All four on/off combinations of early termination and the priority
    // worklist agree on a battery of queries over the DYFESM-like
    // scenario (positive and negative).
    let src = "program t
         integer pptr(101), iblen(100), i, j
         real x(10000)
         call setup
         do 10 i = 1, 100
           do j = 1, iblen(i)
             x(pptr(i) + j - 1) = 1
           enddo
 10      continue
         pptr(3) = 0
         end
         subroutine setup
         integer k
         do k = 1, 100
           iblen(k) = mod(k, 5) + 1
         enddo
         pptr(1) = 1
         do k = 1, 100
           pptr(k + 1) = pptr(k) + iblen(k)
         enddo
         end";
    let p = parse_program(src).unwrap();
    let ctx = AnalysisCtx::new(&p);
    let pptr = p.symbols.lookup("pptr").unwrap();
    let iblen = p.symbols.lookup("iblen").unwrap();
    let at_loop = loop_labeled(&p, 10);
    let after_clobber = *p.procedure(p.main()).body.last().unwrap();
    let queries = [
        (
            PropertyQuery {
                array: pptr,
                property: Property::ClosedFormDistance {
                    distance: DistanceSpec::Array(iblen),
                },
                section: Section::range1(SymExpr::int(1), SymExpr::int(99)),
                at_stmt: at_loop,
            },
            true,
        ),
        (
            PropertyQuery {
                array: pptr,
                property: Property::ClosedFormDistance {
                    distance: DistanceSpec::Array(iblen),
                },
                section: Section::range1(SymExpr::int(1), SymExpr::int(99)),
                at_stmt: after_clobber,
            },
            false, // pptr(3) = 0 kills pairs 2 and 3
        ),
        (
            PropertyQuery {
                array: iblen,
                property: Property::ClosedFormBound {
                    lo: Some(SymExpr::int(1)),
                    hi: Some(SymExpr::int(5)),
                },
                section: Section::range1(SymExpr::int(1), SymExpr::int(100)),
                at_stmt: at_loop,
            },
            true,
        ),
    ];
    for early in [true, false] {
        for rtop in [true, false] {
            let mut apa = ArrayPropertyAnalysis::with_options(
                &ctx,
                SolverOptions {
                    early_termination: early,
                    rtop_priority: rtop,
                    ..SolverOptions::default()
                },
            );
            for (q, expect) in &queries {
                assert_eq!(
                    apa.check(q),
                    *expect,
                    "early={early} rtop={rtop} q={:?}",
                    q.property
                );
            }
        }
    }
}

#[test]
fn monotone_through_gather_loop() {
    let src = "program t
         integer ind(50), q, i, n
         real x(50)
         q = 0
         do 7 i = 1, 50
           if (x(i) > 0.5) then
             q = q + 1
             ind(q) = i
           endif
 7       continue
         end";
    let p = parse_program(src).unwrap();
    let ctx = AnalysisCtx::new(&p);
    let mut apa = ArrayPropertyAnalysis::new(&ctx);
    let ind = p.symbols.lookup("ind").unwrap();
    let q = p.symbols.lookup("q").unwrap();
    let gather = loop_labeled(&p, 7);
    let query = PropertyQuery {
        array: ind,
        property: Property::MonotoneNonDecreasing,
        section: Section::range1(SymExpr::int(1), SymExpr::var(q)),
        at_stmt: gather,
    };
    assert!(apa.check(&query));
    // Partial sections of a set-global property still verify when fully
    // covered by the gather's Gen... but a section extending beyond it
    // must not.
    let too_wide = PropertyQuery {
        array: ind,
        property: Property::MonotoneNonDecreasing,
        section: Section::range1(SymExpr::int(1), SymExpr::var(q).add(&SymExpr::int(1))),
        at_stmt: gather,
    };
    assert!(!apa.check(&too_wide));
}
