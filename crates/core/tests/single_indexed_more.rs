//! Additional scenarios for the §2 single-indexed analyses: interactions
//! with nested control flow, multiple stacks, and adversarial
//! near-misses.

use irr_core::{consecutively_written, single_indexed_arrays, stack_access, AnalysisCtx};
use irr_frontend::{parse_program, Program, StmtId};

fn loops_of(p: &Program) -> Vec<StmtId> {
    let mut out = Vec::new();
    for proc in &p.procedures {
        out.extend(
            p.stmts_in(&proc.body)
                .into_iter()
                .filter(|s| p.stmt(*s).kind.is_loop()),
        );
    }
    out
}

#[test]
fn cw_with_increments_on_both_if_arms() {
    // Both arms increment and write: still consecutively written.
    let src = "program t
         integer i, n, p, c(100)
         real x(200)
         do i = 1, n
           if (c(i) > 0) then
             p = p + 1
             x(p) = 1.0
           else
             p = p + 1
             x(p) = 2.0
           endif
         enddo
         end";
    let p = parse_program(src).unwrap();
    let ctx = AnalysisCtx::new(&p);
    let x = p.symbols.lookup("x").unwrap();
    let pv = p.symbols.lookup("p").unwrap();
    let l = loops_of(&p)[0];
    assert!(consecutively_written(&ctx, l, x, pv).is_some());
}

#[test]
fn cw_increment_inside_inner_while() {
    // Fig. 1(a)'s inner while as seen from the *outer* loop: every
    // increment is chased through the nested back edges.
    let src = "program t
         integer i, k, n, p, link(100)
         real x(100), y(100)
         do k = 1, n
           p = 0
           i = link(1)
           while (i /= 0)
             p = p + 1
             x(p) = y(i)
             i = link(i)
           endwhile
         enddo
         end";
    let p = parse_program(src).unwrap();
    let ctx = AnalysisCtx::new(&p);
    let x = p.symbols.lookup("x").unwrap();
    let pv = p.symbols.lookup("p").unwrap();
    // In the inner while loop x is CW.
    let wl = loops_of(&p)[1];
    assert!(consecutively_written(&ctx, wl, x, pv).is_some());
    // In the *outer* loop p is also reset: not pure increments, so CW
    // (which requires increment-only) does not apply there.
    let outer = loops_of(&p)[0];
    assert!(consecutively_written(&ctx, outer, x, pv).is_none());
}

#[test]
fn two_stacks_with_independent_pointers() {
    let src = "program t
         integer i, n, p, q, c(100)
         real s1(64), s2(64), out(100)
         do i = 1, n
           p = 0
           q = 0
           p = p + 1
           s1(p) = i
           q = q + 1
           s2(q) = i * 2
           if (c(i) > 0) then
             out(i) = s1(p) + s2(q)
             p = p - 1
             q = q - 1
           endif
         enddo
         end";
    let p = parse_program(src).unwrap();
    let ctx = AnalysisCtx::new(&p);
    let l = loops_of(&p)[0];
    let si = single_indexed_arrays(&ctx, l);
    assert_eq!(si.len(), 2);
    for s in si {
        let st = stack_access(&ctx, l, s.array, s.index)
            .unwrap_or_else(|| panic!("{} is a stack", p.symbols.name(s.array)));
        assert!(st.resets_each_iteration);
    }
}

#[test]
fn aliased_pointer_arithmetic_is_rejected() {
    // p copied into r and used to index: x is no longer single-indexed.
    let src = "program t
         integer i, n, p, r
         real x(100)
         do i = 1, n
           p = p + 1
           r = p
           x(r) = 1
           x(p) = 2
         enddo
         end";
    let p = parse_program(src).unwrap();
    let ctx = AnalysisCtx::new(&p);
    let l = loops_of(&p)[0];
    assert!(single_indexed_arrays(&ctx, l).is_empty());
}

#[test]
fn stack_discipline_rejects_read_below_bottom_guard_removal() {
    // Reading without any pop afterwards and then pushing again is a
    // read -> inc adjacency: S_failed for the read row.
    let src = "program t
         integer i, n, p
         real x(64), out(100)
         do i = 1, n
           p = 0
           p = p + 1
           x(p) = i
           out(i) = x(p)
           p = p + 1
           x(p) = i + 1
         enddo
         end";
    let p = parse_program(src).unwrap();
    let ctx = AnalysisCtx::new(&p);
    let l = loops_of(&p)[0];
    let x = p.symbols.lookup("x").unwrap();
    let pv = p.symbols.lookup("p").unwrap();
    assert!(stack_access(&ctx, l, x, pv).is_none());
}

#[test]
fn symbolic_bottom_constant_is_accepted() {
    // The TREE pattern: the reset value is a loop-invariant scalar, not
    // a literal.
    let src = "program t
         integer i, n, p, nbot
         real x(64), out(100)
         nbot = int(0.0)
         do i = 1, n
           p = nbot
           p = p + 1
           x(p) = i
           out(i) = x(p)
           p = p - 1
         enddo
         end";
    let p = parse_program(src).unwrap();
    let ctx = AnalysisCtx::new(&p);
    let l = loops_of(&p)[0];
    let x = p.symbols.lookup("x").unwrap();
    let pv = p.symbols.lookup("p").unwrap();
    let st = stack_access(&ctx, l, x, pv).expect("stack with symbolic bottom");
    assert!(st.resets_each_iteration);
    let nbot = p.symbols.lookup("nbot").unwrap();
    assert_eq!(st.bottom, irr_symbolic::SymExpr::var(nbot));
}

#[test]
fn bottom_modified_in_loop_is_rejected() {
    // The "constant" bottom is reassigned inside the loop: the two
    // SetConst defs differ symbolically over iterations — our analysis
    // must notice the bottom variable is not invariant. (It shows up as
    // a def of nbot being... nbot is not the stack index, but the reset
    // value references a changing variable; classify_index_def treats
    // `p = nbot` as SetConst, so the invariance is enforced by rejecting
    // a second, different SetConst — here we mutate nbot so the reset
    // *expression* stays identical. The stack claim would be wrong if
    // pops relied on absolute positions; our discipline only needs
    // within-iteration consistency, and nbot changes only *between*
    // resets... make it change between the reset and the pushes, which
    // the Table 1 walk cannot see. This documents the known limitation:
    // such a program is rejected for a different reason — nbot's def is
    // itself an `Other` def of... no: defensively, assert current
    // conservative behavior.)
    let src = "program t
         integer i, n, p, nbot
         real x(64), out(100)
         nbot = int(0.0)
         do i = 1, n
           p = nbot
           nbot = nbot + 1
           p = p + 1
           x(p) = i
           out(i) = x(p)
           p = p - 1
         enddo
         end";
    let p = parse_program(src).unwrap();
    let ctx = AnalysisCtx::new(&p);
    let l = loops_of(&p)[0];
    let x = p.symbols.lookup("x").unwrap();
    let pv = p.symbols.lookup("p").unwrap();
    // p's defs: SetConst(nbot), inc, dec — all fine per Table 1, and the
    // bottom is the *same expression* each time; x is still written
    // before read within each iteration, so the stack claim remains
    // correct for privatization even though nbot drifts. Accepting this
    // is sound; this test pins the behavior down.
    let st = stack_access(&ctx, l, x, pv);
    assert!(st.is_some());
}
