//! Whole-program tests of the demand-driven interprocedural array
//! property analysis (§3 of the paper): the Fig. 8 example, the Fig. 3
//! CCS pattern, gather loops, and interprocedural query propagation
//! (Figs. 11 and 12).

use irr_core::property::{ArrayPropertyAnalysis, SolverOptions};
use irr_core::{AnalysisCtx, DistanceSpec, Property, PropertyQuery, INDEX_VAR};
use irr_frontend::{parse_program, Program, StmtId, StmtKind};
use irr_symbolic::{Section, SymExpr};

/// Finds the n-th assignment in the whole program (pre-order, all
/// procedures).
fn nth_assign(p: &Program, k: usize) -> StmtId {
    let mut all = Vec::new();
    for proc in &p.procedures {
        all.extend(p.stmts_in(&proc.body));
    }
    all.sort();
    all.into_iter()
        .filter(|s| matches!(p.stmt(*s).kind, StmtKind::Assign { .. }))
        .nth(k)
        .expect("assignment exists")
}

/// Finds the statement whose printed form assigns to the given variable
/// name (first occurrence).
fn assign_to(p: &Program, name: &str) -> StmtId {
    let var = p.symbols.lookup(name).unwrap();
    let mut all = Vec::new();
    for proc in &p.procedures {
        all.extend(p.stmts_in(&proc.body));
    }
    all.sort();
    all.into_iter()
        .find(|s| match &p.stmt(*s).kind {
            StmtKind::Assign { lhs, .. } => lhs.var() == var,
            _ => false,
        })
        .expect("assignment to variable exists")
}

fn triangular_value() -> SymExpr {
    let k = SymExpr::var(INDEX_VAR);
    k.mul(&k.sub(&SymExpr::int(1))).div(&SymExpr::int(2))
}

#[test]
fn fig8_simple_reverse_propagation() {
    // st1: a(n) = n*(n-1)/2 ; query section [1:n] right after it.
    // The Gen [n:n] leaves [1:n-1] which reaches the program entry:
    // answer false. With the full loop defining [1:n], answer true.
    let src = "program t
         integer a(100), n, i
         n = 50
         do i = 1, n
           a(i) = i*(i-1)/2
         enddo
         a(n) = n*(n-1)/2
         end";
    let p = parse_program(src).unwrap();
    let ctx = AnalysisCtx::new(&p);
    let a = p.symbols.lookup("a").unwrap();
    let n = p.symbols.lookup("n").unwrap();
    let mut apa = ArrayPropertyAnalysis::new(&ctx);
    let q = PropertyQuery {
        array: a,
        property: Property::ClosedFormValue {
            value: triangular_value(),
        },
        section: Section::range1(SymExpr::int(1), SymExpr::var(n)),
        at_stmt: assign_to(&p, "a"), // last assignment? assign_to gives first
    };
    // Query at the loop-body assignment's location resolves via the loop
    // (case 2) plus the n-1 prefix... instead query after the final
    // statement:
    let final_stmt = {
        let body = &p.procedure(p.main()).body;
        *body.last().unwrap()
    };
    let q = PropertyQuery {
        at_stmt: final_stmt,
        ..q
    };
    assert!(apa.check(&q), "triangular CFV should verify");
    assert!(apa.stats.queries >= 1);
}

#[test]
fn unverifiable_without_defining_loop() {
    let src = "program t
         integer a(100), n
         a(n) = n*(n-1)/2
         end";
    let p = parse_program(src).unwrap();
    let ctx = AnalysisCtx::new(&p);
    let a = p.symbols.lookup("a").unwrap();
    let n = p.symbols.lookup("n").unwrap();
    let mut apa = ArrayPropertyAnalysis::new(&ctx);
    let q = PropertyQuery {
        array: a,
        property: Property::ClosedFormValue {
            value: triangular_value(),
        },
        section: Section::range1(SymExpr::int(1), SymExpr::var(n)),
        at_stmt: nth_assign(&p, 0),
    };
    assert!(!apa.check(&q), "only [n:n] is generated, [1:n-1] remains");
    // But the single element [n:n] does verify.
    let q2 = PropertyQuery {
        array: a,
        property: Property::ClosedFormValue {
            value: triangular_value(),
        },
        section: Section::point(vec![SymExpr::var(n)]),
        at_stmt: nth_assign(&p, 0),
    };
    assert!(apa.check(&q2));
}

#[test]
fn intervening_write_kills() {
    let src = "program t
         integer a(100), n, i
         do i = 1, 100
           a(i) = i*(i-1)/2
         enddo
         a(7) = 0
         end";
    let p = parse_program(src).unwrap();
    let ctx = AnalysisCtx::new(&p);
    let a = p.symbols.lookup("a").unwrap();
    let mut apa = ArrayPropertyAnalysis::new(&ctx);
    let final_stmt = *p.procedure(p.main()).body.last().unwrap();
    let q = PropertyQuery {
        array: a,
        property: Property::ClosedFormValue {
            value: triangular_value(),
        },
        section: Section::range1(SymExpr::int(1), SymExpr::int(100)),
        at_stmt: final_stmt,
    };
    assert!(!apa.check(&q), "a(7) = 0 kills the closed form");
}

#[test]
fn fig3_ccs_closed_form_distance() {
    // The CCS setup of Fig. 3(c): offset(1) = 1;
    // do i = 1, n { offset(i+1) = offset(i) + length(i) }.
    // Query: pairs [1:n] of offset have distance length.
    let src = "program t
         integer offset(101), length(100), i, n
         offset(1) = 1
         do 100 i = 1, n
           offset(i+1) = offset(i) + length(i)
 100     continue
         end";
    let p = parse_program(src).unwrap();
    let ctx = AnalysisCtx::new(&p);
    let offset = p.symbols.lookup("offset").unwrap();
    let length = p.symbols.lookup("length").unwrap();
    let n = p.symbols.lookup("n").unwrap();
    let mut apa = ArrayPropertyAnalysis::new(&ctx);
    let final_stmt = *p.procedure(p.main()).body.last().unwrap();
    let q = PropertyQuery {
        array: offset,
        property: Property::ClosedFormDistance {
            distance: DistanceSpec::Array(length),
        },
        section: Section::range1(SymExpr::int(1), SymExpr::var(n)),
        at_stmt: final_stmt,
    };
    // Even with n unknown this verifies: the per-statement Gen `[i:i]`
    // chains exactly, so the MUST aggregate `[1:n]` is sound — when the
    // loop runs zero times (n < 1) the section [1:n] is itself empty.
    assert!(apa.check(&q), "CCS distance verifies for symbolic n");

    let src2 = src.replace("1, n", "1, 100").replace("SymExpr", "x");
    let p2 = parse_program(&src2).unwrap();
    let ctx2 = AnalysisCtx::new(&p2);
    let offset2 = p2.symbols.lookup("offset").unwrap();
    let length2 = p2.symbols.lookup("length").unwrap();
    let mut apa2 = ArrayPropertyAnalysis::new(&ctx2);
    let final2 = *p2.procedure(p2.main()).body.last().unwrap();
    let q2 = PropertyQuery {
        array: offset2,
        property: Property::ClosedFormDistance {
            distance: DistanceSpec::Array(length2),
        },
        section: Section::range1(SymExpr::int(1), SymExpr::int(100)),
        at_stmt: final2,
    };
    assert!(apa2.check(&q2), "CCS distance verifies with known bounds");
}

#[test]
fn interprocedural_definition_fig11_fig12() {
    // The index array is defined in one subroutine and used in another —
    // "in most real programs, index arrays often are defined in one
    // procedure and used in other procedures" (§3).
    let src = "program t
         integer idx(100), i, n
         real z(100)
         n = 100
         call setup
         call use1
         end
         subroutine setup
         do i = 1, 100
           idx(i) = i
         enddo
         end
         subroutine use1
         z(1) = idx(5)
         end";
    let p = parse_program(src).unwrap();
    let ctx = AnalysisCtx::new(&p);
    let idx = p.symbols.lookup("idx").unwrap();
    let mut apa = ArrayPropertyAnalysis::new(&ctx);
    // Query at the use site inside use1: injectivity of idx[1:100].
    let use_stmt = {
        let sub = p.find_procedure("use1").unwrap();
        p.procedure(sub).body[0]
    };
    let q = PropertyQuery {
        array: idx,
        property: Property::Injective,
        section: Section::range1(SymExpr::int(1), SymExpr::int(100)),
        at_stmt: use_stmt,
    };
    assert!(
        apa.check(&q),
        "identity loop in callee verifies injectivity"
    );
    // Monotonicity holds too.
    let qm = PropertyQuery {
        array: idx,
        property: Property::MonotoneNonDecreasing,
        section: Section::range1(SymExpr::int(1), SymExpr::int(100)),
        at_stmt: use_stmt,
    };
    assert!(apa.check(&qm));
    // Closed-form bound [1:100].
    let qb = PropertyQuery {
        array: idx,
        property: Property::ClosedFormBound {
            lo: Some(SymExpr::int(1)),
            hi: Some(SymExpr::int(100)),
        },
        section: Section::range1(SymExpr::int(1), SymExpr::int(100)),
        at_stmt: use_stmt,
    };
    assert!(apa.check(&qb));
}

#[test]
fn clobbering_call_site_fails_query_splitting() {
    // Two call sites reach the use; on one path the index array is
    // clobbered after setup. Query splitting (Fig. 12) must fail.
    let src = "program t
         integer idx(100), i, c
         real z(100)
         call setup
         if (c > 0) then
           idx(3) = 9
         endif
         call use1
         end
         subroutine setup
         do i = 1, 100
           idx(i) = i
         enddo
         end
         subroutine use1
         z(1) = idx(5)
         end";
    let p = parse_program(src).unwrap();
    let ctx = AnalysisCtx::new(&p);
    let idx = p.symbols.lookup("idx").unwrap();
    let mut apa = ArrayPropertyAnalysis::new(&ctx);
    let use_stmt = {
        let sub = p.find_procedure("use1").unwrap();
        p.procedure(sub).body[0]
    };
    let q = PropertyQuery {
        array: idx,
        property: Property::Injective,
        section: Section::range1(SymExpr::int(1), SymExpr::int(100)),
        at_stmt: use_stmt,
    };
    assert!(!apa.check(&q), "conditional clobber kills injectivity");
}

#[test]
fn gather_loop_bounds_query() {
    // Fig. 14 / P3M-style gathering, then use: values of ind[1:q] lie in
    // [1, p].
    let src = "program t
         integer ind(100), q, i, p, k
         real x(100), z(100)
         q = 0
         do i = 1, p
           if (x(i) > 0) then
             q = q + 1
             ind(q) = i
           endif
         enddo
         do k = 1, q
           z(ind(k)) = x(ind(k))
         enddo
         end";
    let p = parse_program(src).unwrap();
    let ctx = AnalysisCtx::new(&p);
    let ind = p.symbols.lookup("ind").unwrap();
    let q = p.symbols.lookup("q").unwrap();
    let pv = p.symbols.lookup("p").unwrap();
    let mut apa = ArrayPropertyAnalysis::new(&ctx);
    // Query *after the gathering loop*: the loops in pre-order are
    // [gather, use]; query at the use loop's first statement... the use
    // loop body reads ind; query at the statement before it: the gather
    // loop itself.
    let gather_loop = p
        .stmts_in(&p.procedure(p.main()).body)
        .into_iter()
        .find(|s| p.stmt(*s).kind.is_loop())
        .unwrap();
    let qy = PropertyQuery {
        array: ind,
        property: Property::ClosedFormBound {
            lo: Some(SymExpr::int(1)),
            hi: Some(SymExpr::var(pv)),
        },
        section: Section::range1(SymExpr::int(1), SymExpr::var(q)),
        at_stmt: gather_loop,
    };
    assert!(apa.check(&qy), "gathered values bounded by loop bounds");
    let qi = PropertyQuery {
        array: ind,
        property: Property::Injective,
        section: Section::range1(SymExpr::int(1), SymExpr::var(q)),
        at_stmt: gather_loop,
    };
    assert!(apa.check(&qi), "gathered values injective");
}

#[test]
fn fifo_worklist_gives_same_answers() {
    let src = "program t
         integer a(100), i
         do i = 1, 100
           a(i) = i
         enddo
         end";
    let p = parse_program(src).unwrap();
    let ctx = AnalysisCtx::new(&p);
    let a = p.symbols.lookup("a").unwrap();
    let final_stmt = *p.procedure(p.main()).body.last().unwrap();
    let q = PropertyQuery {
        array: a,
        property: Property::Injective,
        section: Section::range1(SymExpr::int(1), SymExpr::int(100)),
        at_stmt: final_stmt,
    };
    for rtop in [true, false] {
        for early in [true, false] {
            let mut apa = ArrayPropertyAnalysis::with_options(
                &ctx,
                SolverOptions {
                    early_termination: early,
                    rtop_priority: rtop,
                    ..SolverOptions::default()
                },
            );
            assert!(apa.check(&q), "rtop={rtop} early={early}");
        }
    }
}

#[test]
fn query_stats_accumulate() {
    let src = "program t
         integer a(100), i
         do i = 1, 100
           a(i) = i
         enddo
         end";
    let p = parse_program(src).unwrap();
    let ctx = AnalysisCtx::new(&p);
    let a = p.symbols.lookup("a").unwrap();
    let final_stmt = *p.procedure(p.main()).body.last().unwrap();
    let mut apa = ArrayPropertyAnalysis::new(&ctx);
    let q = PropertyQuery {
        array: a,
        property: Property::Injective,
        section: Section::range1(SymExpr::int(1), SymExpr::int(100)),
        at_stmt: final_stmt,
    };
    apa.check(&q);
    apa.check(&q);
    assert_eq!(apa.stats.queries, 2);
    assert!(apa.stats.nodes_visited > 0);
}
