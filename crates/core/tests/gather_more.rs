//! Additional index-gathering recognition scenarios (§4).

use irr_core::gather::index_gathering_info;
use irr_core::{find_index_gathering_loops, AnalysisCtx};
use irr_frontend::{parse_program, Program, StmtId};

fn loops_of(p: &Program) -> Vec<StmtId> {
    let mut out = Vec::new();
    for proc in &p.procedures {
        out.extend(
            p.stmts_in(&proc.body)
                .into_iter()
                .filter(|s| p.stmt(*s).kind.is_loop()),
        );
    }
    out
}

#[test]
fn gather_with_nested_conditions() {
    let src = "program t
         integer i, q, n, ind(100), c(100)
         real x(100)
         do i = 1, n
           if (x(i) > 0) then
             if (c(i) > 2) then
               q = q + 1
               ind(q) = i
             endif
           endif
         enddo
         end";
    let p = parse_program(src).unwrap();
    let ctx = AnalysisCtx::new(&p);
    let infos = index_gathering_info(&ctx, loops_of(&p)[0]);
    assert_eq!(infos.len(), 1);
}

#[test]
fn gather_in_else_branch() {
    let src = "program t
         integer i, q, n, ind(100)
         real x(100), y(100)
         do i = 1, n
           if (x(i) > 0) then
             y(i) = x(i)
           else
             q = q + 1
             ind(q) = i
           endif
         enddo
         end";
    let p = parse_program(src).unwrap();
    let ctx = AnalysisCtx::new(&p);
    assert_eq!(index_gathering_info(&ctx, loops_of(&p)[0]).len(), 1);
}

#[test]
fn two_gathers_in_one_loop() {
    // Two disjoint gathers with independent counters both qualify.
    let src = "program t
         integer i, q, r, n, ind(100), jnd(100)
         real x(100)
         do i = 1, n
           if (x(i) > 0) then
             q = q + 1
             ind(q) = i
           else
             r = r + 1
             jnd(r) = i
           endif
         enddo
         end";
    let p = parse_program(src).unwrap();
    let ctx = AnalysisCtx::new(&p);
    let infos = index_gathering_info(&ctx, loops_of(&p)[0]);
    assert_eq!(infos.len(), 2);
}

#[test]
fn gather_with_extra_counter_use_is_rejected() {
    // q also feeds another array: its evolution is still an increment,
    // but ind's store of `q` (not the loop index) breaks condition 4 for
    // that array... here `other(q) = q` keeps ind valid and rejects
    // `other`.
    let src = "program t
         integer i, q, n, ind(100), other(100)
         real x(100)
         do i = 1, n
           if (x(i) > 0) then
             q = q + 1
             ind(q) = i
             other(q) = q
           endif
         enddo
         end";
    let p = parse_program(src).unwrap();
    let ctx = AnalysisCtx::new(&p);
    let infos = index_gathering_info(&ctx, loops_of(&p)[0]);
    assert_eq!(infos.len(), 1);
    assert_eq!(p.symbols.name(infos[0].array), "ind");
}

#[test]
fn counter_read_elsewhere_is_fine() {
    // Using q in a read position (e.g. a bound) does not break the
    // gather as long as its defs stay increments.
    let src = "program t
         integer i, j, q, n, ind(100)
         real x(100), z(100)
         q = 0
         do i = 1, n
           if (x(i) > 0) then
             q = q + 1
             ind(q) = i
           endif
         enddo
         do j = 1, q
           z(j) = ind(j)
         enddo
         end";
    let p = parse_program(src).unwrap();
    let ctx = AnalysisCtx::new(&p);
    let body = p.procedure(p.main()).body.clone();
    assert_eq!(find_index_gathering_loops(&ctx, &body).len(), 1);
}

#[test]
fn while_gathers_are_not_recognized() {
    // §4 condition 1: the gathering loop must be a do loop (a while
    // loop has no index to gather).
    let src = "program t
         integer i, q, n, ind(100)
         real x(100)
         i = 0
         while (i < n)
           i = i + 1
           if (x(i) > 0) then
             q = q + 1
             ind(q) = i
           endif
         endwhile
         end";
    let p = parse_program(src).unwrap();
    let ctx = AnalysisCtx::new(&p);
    let body = p.procedure(p.main()).body.clone();
    assert!(find_index_gathering_loops(&ctx, &body).is_empty());
}
