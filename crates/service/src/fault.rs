//! Deterministic service-level fault injection — the analysis-side
//! mirror of the executor's `FaultPlan`. Faults fire per *request*
//! (keyed on the service's submission sequence number), so a chaos
//! test can script "request 3 panics, request 7 stalls" and assert
//! exact attribution in the stats afterwards.

/// The four service-level faults of the chaos suite.
///
/// The three analysis-path faults (panic, stall, starvation) bypass
/// the verdict-cache probe on their request, so their coverage cannot
/// be masked by an earlier request having memoized the answer.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ServiceFault {
    /// The analysis pass panics mid-request: must be caught by the
    /// worker's `catch_unwind`, answered with a typed error, and the
    /// cache key quarantined — never a dead worker or a partial entry.
    PanicInAnalysis,
    /// The worker stalls for `ms` before analyzing: with a wall-clock
    /// budget the request must come back degraded (reason-coded
    /// `wall-clock`), not hang the queue.
    StallWorker { ms: u64 },
    /// The request's cache entry is marked poisoned before the probe:
    /// the cache must evict (counted) and recompute, never serve it.
    PoisonCacheEntry,
    /// The request's fuel is forced to zero: the ladder must descend
    /// to parse-only with every rung reason-coded `fuel`.
    BudgetStarvation,
}

impl ServiceFault {
    /// Stable name for telemetry and attribution assertions.
    pub fn name(&self) -> &'static str {
        match self {
            ServiceFault::PanicInAnalysis => "panic-in-analysis",
            ServiceFault::StallWorker { .. } => "stalled-worker",
            ServiceFault::PoisonCacheEntry => "poisoned-cache-entry",
            ServiceFault::BudgetStarvation => "budget-starvation",
        }
    }
}

/// One fired fault, for post-run attribution.
#[derive(Clone, Copy, Debug)]
pub struct ServiceFaultShot {
    /// The submission sequence number the fault fired on.
    pub request_seq: u64,
    pub fault: ServiceFault,
}

/// Decides which requests misbehave. `None` (the default plan) injects
/// nothing and adds one branch per request.
#[derive(Default)]
pub struct ServiceFaultPlan {
    /// Scripted faults: `(request seq, fault)`.
    scripted: Vec<(u64, ServiceFault)>,
    /// Randomized injection: SplitMix64 over the request seq.
    randomized: Option<(u64, u32, u64)>, // (seed, rate_per_mille, stall_ms)
    fired: Vec<ServiceFaultShot>,
}

impl ServiceFaultPlan {
    /// A plan that never fires.
    pub fn none() -> ServiceFaultPlan {
        ServiceFaultPlan::default()
    }

    /// Fires exactly the given faults on the given request sequence
    /// numbers (0-based submission order).
    pub fn scripted(faults: impl IntoIterator<Item = (u64, ServiceFault)>) -> ServiceFaultPlan {
        ServiceFaultPlan {
            scripted: faults.into_iter().collect(),
            ..ServiceFaultPlan::default()
        }
    }

    /// Fires a pseudo-random fault on ~`rate_per_mille`/1000 of
    /// requests, deterministically in `seed`.
    pub fn randomized(seed: u64, rate_per_mille: u32, stall_ms: u64) -> ServiceFaultPlan {
        ServiceFaultPlan {
            randomized: Some((seed, rate_per_mille, stall_ms)),
            ..ServiceFaultPlan::default()
        }
    }

    /// The fault for request `seq`, if any. Stateless per request, so
    /// concurrent workers can consult the plan under a short lock.
    pub fn decide(&self, seq: u64) -> Option<ServiceFault> {
        if let Some(f) = self
            .scripted
            .iter()
            .find(|(s, _)| *s == seq)
            .map(|(_, f)| *f)
        {
            return Some(f);
        }
        let (seed, rate, stall_ms) = self.randomized?;
        let mut z = seed ^ seq.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        if z % 1000 >= rate as u64 {
            return None;
        }
        Some(match (z >> 10) % 4 {
            0 => ServiceFault::PanicInAnalysis,
            1 => ServiceFault::StallWorker { ms: stall_ms },
            2 => ServiceFault::PoisonCacheEntry,
            _ => ServiceFault::BudgetStarvation,
        })
    }

    /// Records that `fault` actually fired on request `seq`.
    pub fn record_fired(&mut self, seq: u64, fault: ServiceFault) {
        self.fired.push(ServiceFaultShot {
            request_seq: seq,
            fault,
        });
    }

    /// Every fault that fired, in firing order.
    pub fn fired(&self) -> &[ServiceFaultShot] {
        &self.fired
    }

    /// How many fired shots carry `name`.
    pub fn fired_count(&self, name: &str) -> usize {
        self.fired.iter().filter(|s| s.fault.name() == name).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scripted_fires_exactly_where_told() {
        let p = ServiceFaultPlan::scripted([
            (3, ServiceFault::PanicInAnalysis),
            (7, ServiceFault::BudgetStarvation),
        ]);
        assert_eq!(p.decide(3), Some(ServiceFault::PanicInAnalysis));
        assert_eq!(p.decide(7), Some(ServiceFault::BudgetStarvation));
        for seq in [0, 1, 2, 4, 5, 6, 8, 100] {
            assert_eq!(p.decide(seq), None);
        }
    }

    #[test]
    fn randomized_is_deterministic_and_rate_bounded() {
        let p = ServiceFaultPlan::randomized(0xfeed, 100, 5);
        let a: Vec<_> = (0..1000).map(|s| p.decide(s)).collect();
        let b: Vec<_> = (0..1000).map(|s| p.decide(s)).collect();
        assert_eq!(a, b);
        let fired = a.iter().filter(|f| f.is_some()).count();
        assert!(fired > 50 && fired < 200, "~10% expected, got {fired}");
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(ServiceFault::PanicInAnalysis.name(), "panic-in-analysis");
        assert_eq!(ServiceFault::StallWorker { ms: 1 }.name(), "stalled-worker");
        assert_eq!(
            ServiceFault::PoisonCacheEntry.name(),
            "poisoned-cache-entry"
        );
        assert_eq!(ServiceFault::BudgetStarvation.name(), "budget-starvation");
    }

    #[test]
    fn attribution_tracks_fired_shots() {
        let mut p = ServiceFaultPlan::none();
        p.record_fired(9, ServiceFault::PoisonCacheEntry);
        p.record_fired(11, ServiceFault::PoisonCacheEntry);
        assert_eq!(p.fired_count("poisoned-cache-entry"), 2);
        assert_eq!(p.fired_count("stalled-worker"), 0);
        assert_eq!(p.fired()[0].request_seq, 9);
    }
}
