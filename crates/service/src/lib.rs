//! Analysis as a service: a concurrent front door over
//! `irr_driver::compile`.
//!
//! The north-star deployment analyzes untrusted programs for many
//! clients at once, so the pool is built robustness-first:
//!
//! - **admission control** — a bounded queue; overload sheds with a
//!   reason-coded retry-after instead of queueing without bound;
//! - **budgets** — every request gets a per-rung fuel allowance and a
//!   request-wide wall-clock deadline ([`irr_core::AnalysisBudget`]),
//!   threaded through the solver, evolution, and summary passes;
//! - **graceful degradation** — an exhausted budget descends the
//!   [`DegradeLevel`] ladder (full → summaries-off → evolution-off →
//!   parse-only); every rung is more conservative than the last, so a
//!   starved request gets a sound-but-weaker answer, never an error;
//! - **panic isolation** — each rung runs under `catch_unwind`; a
//!   panicking program yields a typed [`ServiceError`], quarantines its
//!   cache key, and cannot take down a worker or leave a partial cache
//!   entry;
//! - **memoization** — completed reports are shared through a
//!   versioned, LRU, quarantine-aware [`VerdictCache`];
//! - **fault injection** — [`ServiceFaultPlan`] scripts the four
//!   service-level faults the chaos suite must catch with exact
//!   attribution.

pub mod cache;
pub mod fault;

pub use cache::{program_hash, VerdictCache, VerdictKey, VerdictProbe};
pub use fault::{ServiceFault, ServiceFaultPlan, ServiceFaultShot};
pub use irr_driver::{ladder::tier_rank, CompilationReport, DegradeLevel, DriverOptions};

use irr_core::{AnalysisBudget, BudgetExhaustion};
use irr_driver::parse_only_report;
use irr_frontend::{parse_program, Program};
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread;
use std::time::{Duration, Instant};

/// Pool configuration.
pub struct ServiceConfig {
    /// Worker threads.
    pub workers: usize,
    /// Pending-request bound; submissions past it are shed.
    pub queue_capacity: usize,
    /// Fuel per ladder rung (`None` = unmetered). The ladder refuels
    /// on descent, so a request can spend up to `3 × fuel` before the
    /// free parse-only rung.
    pub fuel: Option<u64>,
    /// Request-wide wall-clock deadline shared by every rung.
    pub wall_budget: Option<Duration>,
    /// Verdict-cache capacity (entries).
    pub cache_capacity: usize,
    /// Degraded responses served before a quarantined key re-admits.
    pub quarantine_retries: u32,
    /// The rung requests start at (and the only rung whose results
    /// are cached). `Full` in production; tests descend from others.
    pub start_level: DegradeLevel,
    /// Base driver configuration for the start rung.
    pub options: DriverOptions,
    /// Injected faults (chaos suite); [`ServiceFaultPlan::none`]
    /// in production.
    pub fault_plan: ServiceFaultPlan,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: 4,
            queue_capacity: 64,
            fuel: None,
            wall_budget: None,
            cache_capacity: 256,
            quarantine_retries: 2,
            start_level: DegradeLevel::Full,
            options: DriverOptions::with_iaa(),
            fault_plan: ServiceFaultPlan::none(),
        }
    }
}

/// Why a submission was refused at the door.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ShedReason {
    /// The queue is at capacity; retry after the estimated drain time.
    QueueFull {
        /// Estimated milliseconds until the queue has room.
        retry_after_ms: u64,
    },
    /// The pool is shutting down; do not retry.
    ShuttingDown,
}

impl ShedReason {
    /// Stable reason code for telemetry.
    pub fn reason_code(&self) -> &'static str {
        match self {
            ShedReason::QueueFull { .. } => "queue-full",
            ShedReason::ShuttingDown => "shutting-down",
        }
    }
}

/// Why a completed response is weaker than a `start_level` analysis.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DegradeReason {
    /// A rung ran out of fuel; the ladder descended.
    Fuel,
    /// The request-wide deadline passed; straight to parse-only.
    WallClock,
    /// The cache key is quarantined after a panic; parse-only until
    /// re-admission.
    Quarantined,
}

impl DegradeReason {
    /// Stable reason code for telemetry.
    pub fn reason_code(&self) -> &'static str {
        match self {
            DegradeReason::Fuel => "fuel",
            DegradeReason::WallClock => "wall-clock",
            DegradeReason::Quarantined => "quarantined",
        }
    }
}

/// Typed failure: every variant carries a reason code; none of them
/// is ever an escaped panic.
#[derive(Debug)]
pub enum ServiceError {
    /// Refused at admission.
    Shed(ShedReason),
    /// The program does not parse (the expected outcome for malformed
    /// input — reported, not retried).
    Parse(String),
    /// A rung panicked; caught, attributed, and the key quarantined.
    AnalysisPanicked {
        /// The rung that panicked.
        rung: &'static str,
        /// The panic payload, when it was a string.
        message: String,
    },
    /// The worker's reply channel vanished (should not happen; kept
    /// typed so batch collection never panics).
    ReplyLost,
}

impl ServiceError {
    /// Stable reason code for telemetry.
    pub fn reason_code(&self) -> &'static str {
        match self {
            ServiceError::Shed(ShedReason::QueueFull { .. }) => "shed:queue-full",
            ServiceError::Shed(ShedReason::ShuttingDown) => "shed:shutting-down",
            ServiceError::Parse(_) => "parse-error",
            ServiceError::AnalysisPanicked { .. } => "panic",
            ServiceError::ReplyLost => "reply-lost",
        }
    }
}

/// A successful analysis (possibly degraded, possibly memoized).
#[derive(Debug)]
pub struct Analyzed {
    /// The report — computed at [`Analyzed::level`].
    pub report: CompilationReport,
    /// The ladder rung that produced the report.
    pub level: DegradeLevel,
    /// Why the response is below `start_level`; `None` at full
    /// strength. Degraded responses are always reason-coded.
    pub degraded: Option<DegradeReason>,
    /// Served from the verdict cache.
    pub cache_hit: bool,
}

/// One request's outcome.
#[derive(Debug)]
pub struct AnalysisResponse {
    /// Submission sequence number (fault plans key on this).
    pub seq: u64,
    /// Caller-supplied request name.
    pub name: String,
    /// Submission-to-response latency (includes queue wait).
    pub latency: Duration,
    /// The analysis or its typed failure.
    pub result: Result<Analyzed, ServiceError>,
}

impl AnalysisResponse {
    /// The response's reason code: `"ok"` for a full-strength answer,
    /// the degrade reason for weaker ones, the error code otherwise.
    pub fn reason_code(&self) -> &'static str {
        match &self.result {
            Ok(a) => a.degraded.map_or("ok", |d| d.reason_code()),
            Err(e) => e.reason_code(),
        }
    }
}

/// Monotone counters; read via [`Service::stats`].
#[derive(Default)]
struct Stats {
    submitted: AtomicU64,
    shed_queue_full: AtomicU64,
    shed_shutdown: AtomicU64,
    completed: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    parse_errors: AtomicU64,
    panics_caught: AtomicU64,
    quarantined_served: AtomicU64,
    degraded: AtomicU64,
    fuel_exhaustions: AtomicU64,
    wall_exhaustions: AtomicU64,
    busy_ns: AtomicU64,
}

/// A point-in-time copy of the service counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct StatsSnapshot {
    /// Requests offered to `submit` (accepted or shed).
    pub submitted: u64,
    /// Shed with `queue-full`.
    pub shed_queue_full: u64,
    /// Shed with `shutting-down`.
    pub shed_shutdown: u64,
    /// Responses produced by workers.
    pub completed: u64,
    /// Served from the verdict cache.
    pub cache_hits: u64,
    /// Probes that missed (and went on to analyze).
    pub cache_misses: u64,
    /// Requests whose program did not parse.
    pub parse_errors: u64,
    /// Panics caught by per-request isolation.
    pub panics_caught: u64,
    /// Degraded responses served for quarantined keys.
    pub quarantined_served: u64,
    /// Responses below the requested rung (any reason).
    pub degraded: u64,
    /// Ladder descents caused by fuel exhaustion.
    pub fuel_exhaustions: u64,
    /// Descents (straight to parse-only) caused by the deadline.
    pub wall_exhaustions: u64,
    /// Total worker-busy nanoseconds (drives retry-after estimates).
    pub busy_ns: u64,
}

impl StatsSnapshot {
    /// Cache hit rate over completed probes.
    pub fn cache_hit_rate(&self) -> f64 {
        let probes = self.cache_hits + self.cache_misses;
        if probes == 0 {
            0.0
        } else {
            self.cache_hits as f64 / probes as f64
        }
    }

    /// Fraction of submissions shed at the door.
    pub fn shed_rate(&self) -> f64 {
        if self.submitted == 0 {
            0.0
        } else {
            (self.shed_queue_full + self.shed_shutdown) as f64 / self.submitted as f64
        }
    }
}

struct Job {
    seq: u64,
    name: String,
    source: String,
    enqueued: Instant,
    reply: mpsc::Sender<AnalysisResponse>,
}

struct QueueState {
    jobs: VecDeque<Job>,
    shutdown: bool,
}

struct Shared {
    workers: usize,
    queue_capacity: usize,
    fuel: Option<u64>,
    wall_budget: Option<Duration>,
    quarantine_retries: u32,
    start_level: DegradeLevel,
    options: DriverOptions,
    queue: Mutex<QueueState>,
    available: Condvar,
    cache: Mutex<VerdictCache>,
    faults: Mutex<ServiceFaultPlan>,
    stats: Stats,
    next_seq: AtomicU64,
}

/// Outcome of a submission: a receiver for the eventual response, or
/// an immediate reason-coded shed response.
pub enum Submitted {
    /// Accepted; the response arrives on the receiver.
    Accepted(mpsc::Receiver<AnalysisResponse>),
    /// Refused; the shed response is complete and reason-coded.
    Shed(Box<AnalysisResponse>),
}

/// The worker pool. Dropping (or [`Service::shutdown`]) drains
/// in-flight work and joins every worker.
pub struct Service {
    shared: Arc<Shared>,
    threads: Vec<thread::JoinHandle<()>>,
}

impl Service {
    /// Starts the pool.
    pub fn start(config: ServiceConfig) -> Service {
        let shared = Arc::new(Shared {
            workers: config.workers.max(1),
            queue_capacity: config.queue_capacity.max(1),
            fuel: config.fuel,
            wall_budget: config.wall_budget,
            quarantine_retries: config.quarantine_retries,
            start_level: config.start_level,
            options: config.options,
            queue: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                shutdown: false,
            }),
            available: Condvar::new(),
            cache: Mutex::new(VerdictCache::new(config.cache_capacity)),
            faults: Mutex::new(config.fault_plan),
            stats: Stats::default(),
            next_seq: AtomicU64::new(0),
        });
        let threads = (0..shared.workers)
            .map(|_| {
                let shared = Arc::clone(&shared);
                thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        Service { shared, threads }
    }

    /// Offers one request. Returns immediately: either a receiver for
    /// the eventual response, or a complete shed response.
    pub fn submit(&self, name: &str, source: &str) -> Submitted {
        let s = &self.shared;
        let seq = s.next_seq.fetch_add(1, Relaxed);
        s.stats.submitted.fetch_add(1, Relaxed);
        let shed = |reason: ShedReason| {
            Submitted::Shed(Box::new(AnalysisResponse {
                seq,
                name: name.to_string(),
                latency: Duration::ZERO,
                result: Err(ServiceError::Shed(reason)),
            }))
        };
        let mut q = s.queue.lock().unwrap();
        if q.shutdown {
            drop(q);
            s.stats.shed_shutdown.fetch_add(1, Relaxed);
            return shed(ShedReason::ShuttingDown);
        }
        if q.jobs.len() >= s.queue_capacity {
            let backlog = q.jobs.len() as u64;
            drop(q);
            s.stats.shed_queue_full.fetch_add(1, Relaxed);
            return shed(ShedReason::QueueFull {
                retry_after_ms: self.retry_after_ms(backlog),
            });
        }
        let (tx, rx) = mpsc::channel();
        q.jobs.push_back(Job {
            seq,
            name: name.to_string(),
            source: source.to_string(),
            enqueued: Instant::now(),
            reply: tx,
        });
        drop(q);
        s.available.notify_one();
        Submitted::Accepted(rx)
    }

    /// Submits and blocks for the response (sheds still return
    /// immediately).
    pub fn analyze(&self, name: &str, source: &str) -> AnalysisResponse {
        match self.submit(name, source) {
            Submitted::Shed(resp) => *resp,
            Submitted::Accepted(rx) => rx.recv().unwrap_or(AnalysisResponse {
                seq: u64::MAX,
                name: name.to_string(),
                latency: Duration::ZERO,
                result: Err(ServiceError::ReplyLost),
            }),
        }
    }

    /// Submits a whole batch, then collects every response (sheds
    /// included, in submission order).
    pub fn analyze_batch<'a>(
        &self,
        requests: impl IntoIterator<Item = (&'a str, &'a str)>,
    ) -> Vec<AnalysisResponse> {
        let submitted: Vec<(String, Submitted)> = requests
            .into_iter()
            .map(|(name, source)| (name.to_string(), self.submit(name, source)))
            .collect();
        submitted
            .into_iter()
            .map(|(name, sub)| match sub {
                Submitted::Shed(resp) => *resp,
                Submitted::Accepted(rx) => rx.recv().unwrap_or(AnalysisResponse {
                    seq: u64::MAX,
                    name,
                    latency: Duration::ZERO,
                    result: Err(ServiceError::ReplyLost),
                }),
            })
            .collect()
    }

    /// Estimated milliseconds until a full queue has room: backlog ×
    /// average service time ÷ workers, floored at 1ms.
    fn retry_after_ms(&self, backlog: u64) -> u64 {
        let s = &self.shared;
        let avg_ms = (s.stats.busy_ns.load(Relaxed) / 1_000_000)
            .checked_div(s.stats.completed.load(Relaxed))
            .map_or(5, |ms| ms.max(1));
        (backlog * avg_ms / s.workers as u64).max(1)
    }

    /// Point-in-time counters.
    pub fn stats(&self) -> StatsSnapshot {
        let s = &self.shared.stats;
        StatsSnapshot {
            submitted: s.submitted.load(Relaxed),
            shed_queue_full: s.shed_queue_full.load(Relaxed),
            shed_shutdown: s.shed_shutdown.load(Relaxed),
            completed: s.completed.load(Relaxed),
            cache_hits: s.cache_hits.load(Relaxed),
            cache_misses: s.cache_misses.load(Relaxed),
            parse_errors: s.parse_errors.load(Relaxed),
            panics_caught: s.panics_caught.load(Relaxed),
            quarantined_served: s.quarantined_served.load(Relaxed),
            degraded: s.degraded.load(Relaxed),
            fuel_exhaustions: s.fuel_exhaustions.load(Relaxed),
            wall_exhaustions: s.wall_exhaustions.load(Relaxed),
            busy_ns: s.busy_ns.load(Relaxed),
        }
    }

    /// The cache's observable-state digest (see
    /// [`VerdictCache::fingerprint`]).
    pub fn cache_fingerprint(&self) -> u64 {
        self.shared.cache.lock().unwrap().fingerprint()
    }

    /// Entries currently memoized.
    pub fn cache_len(&self) -> usize {
        self.shared.cache.lock().unwrap().len()
    }

    /// Cache poison-eviction count (quarantines + poisoned probes).
    pub fn cache_poison_evictions(&self) -> u64 {
        self.shared.cache.lock().unwrap().poison_evictions()
    }

    /// Quarantined keys re-admitted so far.
    pub fn cache_readmissions(&self) -> u64 {
        self.shared.cache.lock().unwrap().readmissions()
    }

    /// Drops every memoized verdict (generation bump; O(1)).
    pub fn cache_invalidate_all(&self) {
        self.shared.cache.lock().unwrap().invalidate_all();
    }

    /// Fired fault shots, for chaos-suite attribution.
    pub fn faults_fired(&self) -> Vec<ServiceFaultShot> {
        self.shared.faults.lock().unwrap().fired().to_vec()
    }

    /// Fired shots carrying `name`.
    pub fn faults_fired_count(&self, name: &str) -> usize {
        self.shared.faults.lock().unwrap().fired_count(name)
    }

    /// Stops admissions, drains the queue, joins the workers, and
    /// returns the final counters.
    pub fn shutdown(mut self) -> StatsSnapshot {
        self.stop_and_join();
        self.stats()
    }

    fn stop_and_join(&mut self) {
        {
            let mut q = self.shared.queue.lock().unwrap();
            q.shutdown = true;
        }
        self.shared.available.notify_all();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut q = shared.queue.lock().unwrap();
            loop {
                if let Some(job) = q.jobs.pop_front() {
                    break job;
                }
                if q.shutdown {
                    return;
                }
                q = shared.available.wait(q).unwrap();
            }
        };
        let started = Instant::now();
        process(shared, job);
        shared
            .stats
            .busy_ns
            .fetch_add(started.elapsed().as_nanos() as u64, Relaxed);
    }
}

/// Runs one request end to end. Every exit path sends exactly one
/// reason-coded response; no panic can escape (analysis runs under
/// `catch_unwind`, and everything outside it is non-panicking by
/// construction and covered by the corpus tests).
fn process(shared: &Shared, job: Job) {
    let fault = shared.faults.lock().unwrap().decide(job.seq);
    let requested = shared.start_level;
    // The deadline holder carries the request-wide wall clock. It is
    // anchored here — before the probe, the parse, and any injected
    // stall — so a stalled worker shows up as wall-budget consumption,
    // and each rung refuels from it so fuel is per-rung but time is
    // global.
    let deadline = AnalysisBudget::limited(None, shared.wall_budget);
    let key: VerdictKey = (program_hash(&job.source), requested);
    let respond = |result: Result<Analyzed, ServiceError>| {
        shared.stats.completed.fetch_add(1, Relaxed);
        if let Ok(a) = &result {
            if a.degraded.is_some() {
                shared.stats.degraded.fetch_add(1, Relaxed);
            }
        }
        let _ = job.reply.send(AnalysisResponse {
            seq: job.seq,
            name: job.name.clone(),
            latency: job.enqueued.elapsed(),
            result,
        });
    };

    // Injected poisoned-cache-entry: corrupt the memo *before* the
    // probe so the cache's own defense (evict + recompute) is what
    // the request exercises.
    if fault == Some(ServiceFault::PoisonCacheEntry) {
        shared.cache.lock().unwrap().poison_entry(&key);
        shared
            .faults
            .lock()
            .unwrap()
            .record_fired(job.seq, ServiceFault::PoisonCacheEntry);
    }

    // Faults that fire inside the analysis path (panic, stall,
    // starvation) bypass the memo probe: chaos coverage must not
    // depend on whether an earlier request already cached the answer.
    let bypass_cache = matches!(
        fault,
        Some(
            ServiceFault::PanicInAnalysis
                | ServiceFault::StallWorker { .. }
                | ServiceFault::BudgetStarvation
        )
    );
    let probe = if bypass_cache {
        VerdictProbe::Miss
    } else {
        shared.cache.lock().unwrap().probe(&key)
    };
    match probe {
        VerdictProbe::Hit(report) => {
            shared.stats.cache_hits.fetch_add(1, Relaxed);
            respond(Ok(Analyzed {
                report: *report,
                level: requested,
                degraded: None,
                cache_hit: true,
            }));
            return;
        }
        VerdictProbe::Quarantined => {
            shared.stats.quarantined_served.fetch_add(1, Relaxed);
            match parse_isolated(&job.source) {
                Ok(program) => respond(Ok(Analyzed {
                    report: parse_only_report(program),
                    level: DegradeLevel::ParseOnly,
                    degraded: Some(DegradeReason::Quarantined),
                    cache_hit: false,
                })),
                Err(e) => {
                    shared.stats.parse_errors.fetch_add(1, Relaxed);
                    respond(Err(e));
                }
            }
            return;
        }
        VerdictProbe::Miss => {
            shared.stats.cache_misses.fetch_add(1, Relaxed);
        }
    }

    let program = match parse_isolated(&job.source) {
        Ok(p) => p,
        Err(e) => {
            shared.stats.parse_errors.fetch_add(1, Relaxed);
            respond(Err(e));
            return;
        }
    };

    // Injected stalled-worker: burn the wall budget before analyzing.
    if let Some(ServiceFault::StallWorker { ms }) = fault {
        thread::sleep(Duration::from_millis(ms));
        shared
            .faults
            .lock()
            .unwrap()
            .record_fired(job.seq, ServiceFault::StallWorker { ms });
    }

    // Injected budget starvation: this request's fuel is zero.
    let fuel = if fault == Some(ServiceFault::BudgetStarvation) {
        shared
            .faults
            .lock()
            .unwrap()
            .record_fired(job.seq, ServiceFault::BudgetStarvation);
        Some(0)
    } else {
        shared.fuel
    };

    let mut level = requested;
    let mut degrade_reason: Option<DegradeReason> = None;
    loop {
        if level != DegradeLevel::ParseOnly
            && deadline.exhausted() == Some(BudgetExhaustion::WallClock)
        {
            shared.stats.wall_exhaustions.fetch_add(1, Relaxed);
            degrade_reason = Some(DegradeReason::WallClock);
            level = DegradeLevel::ParseOnly;
        }
        if level == DegradeLevel::ParseOnly {
            let report = parse_only_report(program.clone());
            if requested == DegradeLevel::ParseOnly {
                shared.cache.lock().unwrap().insert(key, report.clone());
                degrade_reason = None;
            }
            respond(Ok(Analyzed {
                report,
                level,
                degraded: degrade_reason,
                cache_hit: false,
            }));
            return;
        }
        let budget = deadline.refueled(fuel);
        let inject_panic = fault == Some(ServiceFault::PanicInAnalysis) && level == requested;
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            if inject_panic {
                panic!("injected analysis fault");
            }
            level.compile_at(program.clone(), shared.options, Some(&budget))
        }));
        match outcome {
            Err(payload) => {
                if inject_panic {
                    shared
                        .faults
                        .lock()
                        .unwrap()
                        .record_fired(job.seq, ServiceFault::PanicInAnalysis);
                }
                shared.stats.panics_caught.fetch_add(1, Relaxed);
                shared
                    .cache
                    .lock()
                    .unwrap()
                    .quarantine(key, shared.quarantine_retries);
                let message = panic_message(payload.as_ref());
                respond(Err(ServiceError::AnalysisPanicked {
                    rung: level.name(),
                    message,
                }));
                return;
            }
            Ok(report) => match budget.exhausted() {
                None => {
                    if level == requested {
                        shared.cache.lock().unwrap().insert(key, report.clone());
                    }
                    respond(Ok(Analyzed {
                        report,
                        level,
                        degraded: degrade_reason,
                        cache_hit: false,
                    }));
                    return;
                }
                Some(BudgetExhaustion::Fuel) => {
                    shared.stats.fuel_exhaustions.fetch_add(1, Relaxed);
                    degrade_reason = Some(DegradeReason::Fuel);
                    level = level.next().unwrap_or(DegradeLevel::ParseOnly);
                }
                Some(BudgetExhaustion::WallClock) => {
                    shared.stats.wall_exhaustions.fetch_add(1, Relaxed);
                    degrade_reason = Some(DegradeReason::WallClock);
                    level = DegradeLevel::ParseOnly;
                }
            },
        }
    }
}

/// Parses under `catch_unwind`: a parse panic (there should be none —
/// the corpus tests enforce it) becomes a typed error, not a dead
/// worker.
fn parse_isolated(source: &str) -> Result<Program, ServiceError> {
    match catch_unwind(AssertUnwindSafe(|| parse_program(source))) {
        Ok(Ok(p)) => Ok(p),
        Ok(Err(e)) => Err(ServiceError::Parse(e.to_string())),
        Err(payload) => Err(ServiceError::AnalysisPanicked {
            rung: "parse",
            message: panic_message(payload.as_ref()),
        }),
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}
