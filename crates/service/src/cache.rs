//! The shared verdict cache: memoized [`CompilationReport`]s keyed on
//! program hash + analysis rung, with the same three defenses the
//! runtime's `ScheduleCache` earned in its chaos suite:
//!
//! - **versioning** — `invalidate_all` bumps a generation counter and
//!   stale entries die lazily on probe, so invalidation is O(1) and
//!   never blocks the pool;
//! - **bounded capacity** — LRU eviction with an eviction counter, so
//!   a hostile request stream cannot grow the cache without bound;
//! - **quarantine** — a key whose analysis panicked serves degraded
//!   (parse-only) responses for `quarantine_retries` requests, then is
//!   re-admitted; re-admission and every poison eviction is counted.
//!
//! The insert-after-success discipline lives in the caller (`lib.rs`):
//! nothing is inserted until a report completed at the requested rung,
//! which is what makes "a panicking request leaves the cache
//! byte-identical" a one-line invariant instead of a cleanup path.

use irr_driver::{ladder::tier_rank, CompilationReport, DegradeLevel};
use std::collections::HashMap;

/// FNV-1a over the program source: stable, dependency-free, and fast
/// enough that hashing never shows up next to an analysis run.
pub fn program_hash(source: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in source.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Cache key: program hash plus the rung the report was computed at.
pub type VerdictKey = (u64, DegradeLevel);

struct Entry {
    report: CompilationReport,
    version: u64,
    /// LRU tick of the last probe hit (or insert).
    last_used: u64,
    poisoned: bool,
}

/// Outcome of a cache probe.
pub enum VerdictProbe {
    /// A valid entry: the caller gets a clone of the memoized report.
    Hit(Box<CompilationReport>),
    /// No entry (or a stale-version entry, lazily discarded).
    Miss,
    /// The key is quarantined: serve a degraded response. One retry
    /// was consumed; after the last one the key is re-admitted.
    Quarantined,
}

/// The shared memo table. Callers wrap it in a `Mutex`; every method
/// is O(1) except LRU eviction's scan (bounded by capacity).
pub struct VerdictCache {
    entries: HashMap<VerdictKey, Entry>,
    /// Keys serving degraded responses, with retries remaining.
    quarantined: HashMap<VerdictKey, u32>,
    capacity: usize,
    version: u64,
    tick: u64,
    evictions: u64,
    poison_evictions: u64,
    readmissions: u64,
}

impl VerdictCache {
    pub fn new(capacity: usize) -> VerdictCache {
        VerdictCache {
            entries: HashMap::new(),
            quarantined: HashMap::new(),
            capacity: capacity.max(1),
            version: 0,
            tick: 0,
            evictions: 0,
            poison_evictions: 0,
            readmissions: 0,
        }
    }

    /// Probes for `key`. Quarantine takes precedence over any stored
    /// entry — a quarantined key must not serve its old (suspect)
    /// report.
    pub fn probe(&mut self, key: &VerdictKey) -> VerdictProbe {
        if let Some(left) = self.quarantined.get_mut(key) {
            if *left > 0 {
                *left -= 1;
                return VerdictProbe::Quarantined;
            }
            // Last retry already consumed: re-admit.
            self.quarantined.remove(key);
            self.readmissions += 1;
        }
        self.tick += 1;
        match self.entries.get_mut(key) {
            Some(e) if e.poisoned => {
                self.entries.remove(key);
                self.poison_evictions += 1;
                VerdictProbe::Miss
            }
            Some(e) if e.version == self.version => {
                e.last_used = self.tick;
                VerdictProbe::Hit(Box::new(e.report.clone()))
            }
            Some(_) => {
                // Stale generation: lazy invalidation.
                self.entries.remove(key);
                VerdictProbe::Miss
            }
            None => VerdictProbe::Miss,
        }
    }

    /// Inserts a completed report. Callers only insert results that
    /// finished at the requested rung with an unexhausted budget —
    /// degraded or suspect reports never enter the table.
    pub fn insert(&mut self, key: VerdictKey, report: CompilationReport) {
        self.tick += 1;
        if self.entries.len() >= self.capacity && !self.entries.contains_key(&key) {
            if let Some(lru) = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| *k)
            {
                self.entries.remove(&lru);
                self.evictions += 1;
            }
        }
        self.entries.insert(
            key,
            Entry {
                report,
                version: self.version,
                last_used: self.tick,
                poisoned: false,
            },
        );
    }

    /// Quarantines `key` for `retries` probes and drops any stored
    /// entry (a panicking analysis may mean the memo is suspect too).
    pub fn quarantine(&mut self, key: VerdictKey, retries: u32) {
        if self.entries.remove(&key).is_some() {
            self.poison_evictions += 1;
        }
        self.quarantined.insert(key, retries);
    }

    /// Marks a stored entry poisoned (the injected `poisoned-cache-
    /// entry` fault): the next probe evicts it instead of serving it.
    /// Returns whether an entry existed to poison.
    pub fn poison_entry(&mut self, key: &VerdictKey) -> bool {
        match self.entries.get_mut(key) {
            Some(e) => {
                e.poisoned = true;
                true
            }
            None => false,
        }
    }

    /// Whether `key` currently serves degraded responses.
    pub fn is_quarantined(&self, key: &VerdictKey) -> bool {
        self.quarantined.get(key).is_some_and(|left| *left > 0)
    }

    /// Bumps the generation: every existing entry becomes stale and
    /// dies on its next probe.
    pub fn invalidate_all(&mut self) {
        self.version += 1;
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    pub fn poison_evictions(&self) -> u64 {
        self.poison_evictions
    }

    pub fn readmissions(&self) -> u64 {
        self.readmissions
    }

    /// An order-independent digest of the cache's observable state:
    /// keys, generations, and a per-entry verdict summary. Two caches
    /// with the same fingerprint serve the same answers — the
    /// cache-poisoning regression test asserts a panicking request
    /// leaves this value untouched.
    pub fn fingerprint(&self) -> u64 {
        let mut acc: u64 = 0;
        for ((hash, level), e) in &self.entries {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            let mut mix = |v: u64| {
                h ^= v;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            };
            mix(*hash);
            mix(*level as u64);
            mix(e.version);
            mix(e.report.verdicts.len() as u64);
            for v in &e.report.verdicts {
                mix(program_hash(&v.label));
                mix(tier_rank(&v.tier) as u64);
                mix(v.parallel as u64);
                mix(v.retired_checks.len() as u64);
                mix(v.blockers.len() as u64);
            }
            acc ^= h; // XOR: iteration order independent
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use irr_driver::{compile_source, DriverOptions};

    fn report() -> CompilationReport {
        compile_source(
            "program t\ninteger i\nreal x(10)\ndo i = 1, 10\nx(i) = 1\nenddo\nend\n",
            DriverOptions::with_iaa(),
        )
        .unwrap()
    }

    const KEY: VerdictKey = (42, DegradeLevel::Full);

    #[test]
    fn probe_insert_roundtrip() {
        let mut c = VerdictCache::new(8);
        assert!(matches!(c.probe(&KEY), VerdictProbe::Miss));
        c.insert(KEY, report());
        assert!(matches!(c.probe(&KEY), VerdictProbe::Hit(_)));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn lru_eviction_is_counted() {
        let mut c = VerdictCache::new(2);
        c.insert((1, DegradeLevel::Full), report());
        c.insert((2, DegradeLevel::Full), report());
        // Touch 1 so 2 is the LRU victim.
        assert!(matches!(
            c.probe(&(1, DegradeLevel::Full)),
            VerdictProbe::Hit(_)
        ));
        c.insert((3, DegradeLevel::Full), report());
        assert_eq!(c.evictions(), 1);
        assert!(matches!(
            c.probe(&(2, DegradeLevel::Full)),
            VerdictProbe::Miss
        ));
        assert!(matches!(
            c.probe(&(1, DegradeLevel::Full)),
            VerdictProbe::Hit(_)
        ));
    }

    #[test]
    fn invalidation_is_lazy_and_generational() {
        let mut c = VerdictCache::new(8);
        c.insert(KEY, report());
        c.invalidate_all();
        assert!(matches!(c.probe(&KEY), VerdictProbe::Miss));
        assert!(c.is_empty());
    }

    #[test]
    fn quarantine_serves_degraded_then_readmits() {
        let mut c = VerdictCache::new(8);
        c.insert(KEY, report());
        c.quarantine(KEY, 2);
        assert!(c.is_quarantined(&KEY));
        assert!(matches!(c.probe(&KEY), VerdictProbe::Quarantined));
        assert!(matches!(c.probe(&KEY), VerdictProbe::Quarantined));
        // Retries consumed: next probe re-admits (and the old entry
        // was dropped at quarantine time, so it is a miss).
        assert!(matches!(c.probe(&KEY), VerdictProbe::Miss));
        assert_eq!(c.readmissions(), 1);
        assert!(!c.is_quarantined(&KEY));
    }

    #[test]
    fn poisoned_entries_are_evicted_not_served() {
        let mut c = VerdictCache::new(8);
        c.insert(KEY, report());
        assert!(c.poison_entry(&KEY));
        assert!(matches!(c.probe(&KEY), VerdictProbe::Miss));
        assert_eq!(c.poison_evictions(), 1);
        assert!(c.is_empty());
    }

    #[test]
    fn fingerprint_tracks_observable_state_only() {
        let mut a = VerdictCache::new(8);
        let mut b = VerdictCache::new(8);
        assert_eq!(a.fingerprint(), b.fingerprint());
        a.insert(KEY, report());
        assert_ne!(a.fingerprint(), b.fingerprint());
        b.insert(KEY, report());
        assert_eq!(a.fingerprint(), b.fingerprint());
        // Probes (LRU ticks) do not change the fingerprint.
        let before = a.fingerprint();
        let _ = a.probe(&KEY);
        assert_eq!(a.fingerprint(), before);
    }
}
