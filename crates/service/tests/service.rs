//! Service behavior under normal (fault-free) operation: memoization,
//! admission control, budget-driven degradation, typed parse errors,
//! and reason-coded responses for a mixed workload.

use irr_service::{
    AnalysisResponse, DegradeLevel, Service, ServiceConfig, ServiceError, ServiceFault,
    ServiceFaultPlan, ShedReason, Submitted,
};
use std::time::Duration;

const GOOD: &str = "program t
integer i
integer idx(10)
real x(10)
do i = 1, 10
idx(i) = i
enddo
do 10 i = 1, 10
x(idx(i)) = 1.0
10 continue
print x(1)
end
";

#[test]
fn full_strength_roundtrip_then_cache_hit() {
    let svc = Service::start(ServiceConfig::default());
    let first = svc.analyze("good", GOOD);
    let a = first.result.as_ref().expect("full analysis succeeds");
    assert_eq!(a.level, DegradeLevel::Full);
    assert_eq!(a.degraded, None);
    assert!(!a.cache_hit);
    assert_eq!(first.reason_code(), "ok");

    let second = svc.analyze("good-again", GOOD);
    let b = second.result.as_ref().expect("cached analysis succeeds");
    assert!(b.cache_hit);
    assert_eq!(b.level, DegradeLevel::Full);
    // The memoized report answers identically.
    assert_eq!(a.report.verdicts.len(), b.report.verdicts.len());

    let stats = svc.shutdown();
    assert_eq!(stats.submitted, 2);
    assert_eq!(stats.completed, 2);
    assert_eq!(stats.cache_hits, 1);
    assert_eq!(stats.cache_misses, 1);
    assert!((stats.cache_hit_rate() - 0.5).abs() < 1e-9);
}

#[test]
fn parse_errors_are_typed_not_panics() {
    let svc = Service::start(ServiceConfig::default());
    let resp = svc.analyze("broken", "program t\ndo i = 1, 10\nend\n");
    match &resp.result {
        Err(ServiceError::Parse(msg)) => assert!(!msg.is_empty()),
        other => panic!("expected Parse error, got {other:?}"),
    }
    assert_eq!(resp.reason_code(), "parse-error");
    assert_eq!(svc.stats().parse_errors, 1);
}

#[test]
fn zero_fuel_descends_the_whole_ladder_with_reason() {
    let svc = Service::start(ServiceConfig {
        fuel: Some(0),
        ..ServiceConfig::default()
    });
    let resp = svc.analyze("starved", GOOD);
    let a = resp.result.as_ref().expect("degraded is Ok, not an error");
    assert_eq!(a.level, DegradeLevel::ParseOnly);
    assert_eq!(resp.reason_code(), "fuel");
    // Parse-only still names every loop, all sequential.
    assert_eq!(a.report.verdicts.len(), 2);
    assert!(a.report.verdicts.iter().all(|v| !v.parallel));

    let stats = svc.stats();
    // Full, summaries-off, and evolution-off each ran dry once.
    assert_eq!(stats.fuel_exhaustions, 3);
    assert_eq!(stats.degraded, 1);

    // Degraded results are never memoized.
    assert_eq!(svc.cache_len(), 0);
    let again = svc.analyze("starved-again", GOOD);
    assert!(!again.result.unwrap().cache_hit);
}

#[test]
fn expired_deadline_jumps_straight_to_parse_only() {
    let svc = Service::start(ServiceConfig {
        wall_budget: Some(Duration::ZERO),
        ..ServiceConfig::default()
    });
    let resp = svc.analyze("deadline", GOOD);
    let a = resp.result.as_ref().expect("degraded is Ok");
    assert_eq!(a.level, DegradeLevel::ParseOnly);
    assert_eq!(resp.reason_code(), "wall-clock");
    assert!(svc.stats().wall_exhaustions >= 1);
    assert_eq!(svc.cache_len(), 0);
}

#[test]
fn overload_sheds_with_reason_coded_retry_after() {
    // One worker pinned by a stall, queue of one: of five submissions
    // at most two are ever admitted (one in flight + one queued).
    let svc = Service::start(ServiceConfig {
        workers: 1,
        queue_capacity: 1,
        fault_plan: ServiceFaultPlan::scripted([(0, ServiceFault::StallWorker { ms: 300 })]),
        ..ServiceConfig::default()
    });
    let mut pending = Vec::new();
    let mut shed: Vec<AnalysisResponse> = Vec::new();
    for i in 0..5 {
        match svc.submit(&format!("r{i}"), GOOD) {
            Submitted::Accepted(rx) => pending.push(rx),
            Submitted::Shed(resp) => shed.push(*resp),
        }
    }
    assert!(shed.len() >= 3, "expected >=3 sheds, got {}", shed.len());
    for resp in &shed {
        match &resp.result {
            Err(ServiceError::Shed(ShedReason::QueueFull { retry_after_ms })) => {
                assert!(*retry_after_ms >= 1);
            }
            other => panic!("expected QueueFull shed, got {other:?}"),
        }
        assert_eq!(resp.reason_code(), "shed:queue-full");
    }
    for rx in pending {
        let resp = rx.recv().expect("accepted requests complete");
        assert!(resp.result.is_ok());
    }
    let stats = svc.stats();
    assert_eq!(stats.shed_queue_full, shed.len() as u64);
    assert!(stats.shed_rate() > 0.5);
}

#[test]
fn batch_of_mixed_good_and_malformed_is_fully_reason_coded() {
    let corpus = irr_frontend::malformed_corpus(30);
    let benchmarks = irr_programs::all(irr_programs::Scale::Test);
    let mut requests: Vec<(String, String)> = Vec::new();
    for b in &benchmarks {
        requests.push((b.name.to_string(), b.source.clone()));
    }
    for c in &corpus {
        requests.push((c.name.to_string(), c.source.clone()));
    }
    // A second wave repeats the benchmarks so the cache gets hits;
    // `analyze_batch` drains the first wave before it is submitted.
    let again: Vec<(String, String)> = benchmarks
        .iter()
        .map(|b| (format!("{}-again", b.name), b.source.clone()))
        .collect();

    let svc = Service::start(ServiceConfig {
        workers: 4,
        queue_capacity: requests.len() + again.len(),
        ..ServiceConfig::default()
    });
    let mut responses = svc.analyze_batch(requests.iter().map(|(n, s)| (n.as_str(), s.as_str())));
    responses.extend(svc.analyze_batch(again.iter().map(|(n, s)| (n.as_str(), s.as_str()))));
    assert_eq!(responses.len(), requests.len() + again.len());

    let known = [
        "ok",
        "fuel",
        "wall-clock",
        "quarantined",
        "parse-error",
        "shed:queue-full",
        "shed:shutting-down",
        "panic",
    ];
    for resp in &responses {
        assert!(
            known.contains(&resp.reason_code()),
            "{}: unknown reason {}",
            resp.name,
            resp.reason_code()
        );
        // Nothing in the corpus panics analysis.
        assert!(!matches!(
            resp.result,
            Err(ServiceError::AnalysisPanicked { .. })
        ));
    }
    let stats = svc.shutdown();
    assert_eq!(stats.completed, (requests.len() + again.len()) as u64);
    assert_eq!(stats.panics_caught, 0);
    assert_eq!(stats.cache_hits, benchmarks.len() as u64);
}
