//! Chaos suite: the four service-level injected faults, each caught
//! with exact attribution, plus the cache-poisoning regression — a
//! panicking request leaves the shared verdict cache byte-identical
//! (same fingerprint) and its key quarantined, then re-admitted after
//! `quarantine_retries` degraded responses.

use irr_service::{
    DegradeLevel, Service, ServiceConfig, ServiceError, ServiceFault, ServiceFaultPlan,
};
use std::time::Duration;

const VICTIM: &str = "program v
integer i
integer idx(10)
real x(10)
do i = 1, 10
idx(i) = i
enddo
do 10 i = 1, 10
x(idx(i)) = 1.0
10 continue
print x(1)
end
";

const BYSTANDER: &str = "program b
integer i
real y(20)
do i = 1, 20
y(i) = 2.0
enddo
print y(1)
end
";

fn single_worker(plan: ServiceFaultPlan) -> Service {
    Service::start(ServiceConfig {
        workers: 1, // deterministic request ordering for scripted seqs
        fault_plan: plan,
        ..ServiceConfig::default()
    })
}

#[test]
fn panic_in_analysis_is_caught_attributed_and_quarantines() {
    let svc = single_worker(ServiceFaultPlan::scripted([(
        0,
        ServiceFault::PanicInAnalysis,
    )]));

    let resp = svc.analyze("victim", VICTIM);
    match &resp.result {
        Err(ServiceError::AnalysisPanicked { rung, message }) => {
            assert_eq!(*rung, "full");
            assert!(message.contains("injected"), "payload lost: {message}");
        }
        other => panic!("expected AnalysisPanicked, got {other:?}"),
    }
    assert_eq!(resp.reason_code(), "panic");
    assert_eq!(svc.faults_fired_count("panic-in-analysis"), 1);
    assert_eq!(svc.faults_fired()[0].request_seq, 0);
    assert_eq!(svc.stats().panics_caught, 1);

    // The key is quarantined: default retries = 2 degraded responses.
    for i in 0..2 {
        let resp = svc.analyze(&format!("retry{i}"), VICTIM);
        let a = resp
            .result
            .as_ref()
            .expect("quarantined is degraded, not an error");
        assert_eq!(a.level, DegradeLevel::ParseOnly);
        assert_eq!(resp.reason_code(), "quarantined");
    }
    // Retries consumed: the key is re-admitted and analyzed in full.
    let resp = svc.analyze("readmitted", VICTIM);
    let a = resp.result.expect("re-admitted analysis succeeds");
    assert_eq!(a.level, DegradeLevel::Full);
    assert_eq!(a.degraded, None);
    assert_eq!(svc.cache_readmissions(), 1);
    assert_eq!(svc.stats().quarantined_served, 2);
    // And now it is memoized again.
    assert!(svc.analyze("hit", VICTIM).result.unwrap().cache_hit);
}

#[test]
fn panicking_request_leaves_the_cache_byte_identical() {
    // Warm the cache, then panic an uncached request: the fingerprint
    // (keys, generations, verdict digests) must not move at all.
    let svc = single_worker(ServiceFaultPlan::scripted([(
        2,
        ServiceFault::PanicInAnalysis,
    )]));
    assert!(svc.analyze("warm-1", VICTIM).result.is_ok()); // seq 0
    assert!(svc.analyze("warm-2", BYSTANDER).result.is_ok()); // seq 1
    let before = svc.cache_fingerprint();
    assert_eq!(svc.cache_len(), 2);

    let third =
        "program c\ninteger i\nreal z(5)\ndo i = 1, 5\nz(i) = 1.0\nenddo\nprint z(1)\nend\n";
    let resp = svc.analyze("panicker", third); // seq 2
    assert!(matches!(
        resp.result,
        Err(ServiceError::AnalysisPanicked { .. })
    ));
    assert_eq!(svc.cache_fingerprint(), before, "panic touched the cache");
    assert_eq!(svc.cache_len(), 2);

    // The bystanders still hit.
    assert!(svc.analyze("still-1", VICTIM).result.unwrap().cache_hit);
    assert!(svc.analyze("still-2", BYSTANDER).result.unwrap().cache_hit);

    // After the quarantine drains, the third program completes and the
    // fingerprint finally (legitimately) changes.
    for i in 0..2 {
        assert_eq!(
            svc.analyze(&format!("q{i}"), third).reason_code(),
            "quarantined"
        );
    }
    let a = svc.analyze("fresh", third).result.expect("re-admitted");
    assert_eq!(a.level, DegradeLevel::Full);
    assert_ne!(svc.cache_fingerprint(), before);
    assert_eq!(svc.cache_len(), 3);
}

#[test]
fn stalled_worker_degrades_on_the_wall_clock() {
    let svc = Service::start(ServiceConfig {
        workers: 1,
        wall_budget: Some(Duration::from_millis(150)),
        fault_plan: ServiceFaultPlan::scripted([(0, ServiceFault::StallWorker { ms: 400 })]),
        ..ServiceConfig::default()
    });
    let resp = svc.analyze("stalled", VICTIM);
    let a = resp.result.as_ref().expect("stall degrades, not errors");
    assert_eq!(a.level, DegradeLevel::ParseOnly);
    assert_eq!(resp.reason_code(), "wall-clock");
    assert_eq!(svc.faults_fired_count("stalled-worker"), 1);
    assert!(svc.stats().wall_exhaustions >= 1);
    // A suspect (degraded) result is never memoized.
    assert_eq!(svc.cache_len(), 0);

    // The next request is unaffected: full strength.
    let a = svc.analyze("after", VICTIM).result.expect("recovers");
    assert_eq!(a.level, DegradeLevel::Full);
}

#[test]
fn budget_starvation_descends_with_fuel_attribution() {
    let svc = single_worker(ServiceFaultPlan::scripted([(
        0,
        ServiceFault::BudgetStarvation,
    )]));
    let resp = svc.analyze("starved", VICTIM);
    let a = resp.result.as_ref().expect("starvation degrades");
    assert_eq!(a.level, DegradeLevel::ParseOnly);
    assert_eq!(resp.reason_code(), "fuel");
    assert_eq!(svc.faults_fired_count("budget-starvation"), 1);
    assert_eq!(svc.stats().fuel_exhaustions, 3); // one per analysis rung

    // Only that request was starved; the next runs unmetered.
    let a = svc.analyze("after", VICTIM).result.expect("recovers");
    assert_eq!(a.level, DegradeLevel::Full);
    assert_eq!(a.degraded, None);
}

#[test]
fn poisoned_cache_entry_is_evicted_and_recomputed_never_served() {
    let svc = single_worker(ServiceFaultPlan::scripted([(
        1,
        ServiceFault::PoisonCacheEntry,
    )]));
    assert!(!svc.analyze("seed", VICTIM).result.unwrap().cache_hit); // seq 0: fills
    let resp = svc.analyze("poisoned-probe", VICTIM); // seq 1: poisons, then probes
    let a = resp.result.as_ref().expect("recomputes");
    assert!(!a.cache_hit, "served a poisoned entry");
    assert_eq!(a.level, DegradeLevel::Full);
    assert_eq!(resp.reason_code(), "ok");
    assert_eq!(svc.faults_fired_count("poisoned-cache-entry"), 1);
    assert_eq!(svc.cache_poison_evictions(), 1);
    // The recomputed entry serves the next probe.
    assert!(svc.analyze("hit", VICTIM).result.unwrap().cache_hit);
}

#[test]
fn randomized_chaos_sweep_never_escapes_a_panic() {
    let corpus = irr_frontend::malformed_corpus(40);
    let benchmarks = irr_programs::all(irr_programs::Scale::Test);
    let mut requests: Vec<(String, String)> = Vec::new();
    for round in 0..4 {
        for b in &benchmarks {
            requests.push((format!("{}-{round}", b.name), b.source.clone()));
        }
    }
    for c in &corpus {
        requests.push((c.name.to_string(), c.source.clone()));
    }

    let svc = Service::start(ServiceConfig {
        workers: 4,
        queue_capacity: requests.len(),
        fuel: Some(200_000),
        wall_budget: Some(Duration::from_millis(250)),
        fault_plan: ServiceFaultPlan::randomized(0xc4a05, 150, 5),
        ..ServiceConfig::default()
    });
    let responses = svc.analyze_batch(requests.iter().map(|(n, s)| (n.as_str(), s.as_str())));
    assert_eq!(responses.len(), requests.len());

    let known = [
        "ok",
        "fuel",
        "wall-clock",
        "quarantined",
        "parse-error",
        "panic",
        "shed:queue-full",
        "shed:shutting-down",
    ];
    for resp in &responses {
        assert!(
            known.contains(&resp.reason_code()),
            "{}: unknown reason {}",
            resp.name,
            resp.reason_code()
        );
    }
    // The only panics are the injected ones, each one attributed.
    let injected = svc.faults_fired_count("panic-in-analysis") as u64;
    assert_eq!(svc.stats().panics_caught, injected);
    assert!(
        !svc.faults_fired().is_empty(),
        "the randomized plan never fired at rate 150/1000"
    );
    let stats = svc.shutdown();
    assert_eq!(stats.completed, requests.len() as u64);
}
