//! Degradation-monotonicity property: on every sparse kernel and every
//! figure benchmark, each rung of the ladder is at least as
//! conservative as the one above it — a degraded verdict only ever
//! moves toward Sequential, never from Sequential toward parallel.
//! The sanitizer audit then replays the degraded reports to confirm
//! the weaker verdicts are still dependence-clean (sound), not merely
//! different.

use irr_core::AnalysisBudget;
use irr_sanitizer::{audit_report_seeded, AuditConfig, AuditMode};
use irr_service::{tier_rank, CompilationReport, DegradeLevel, DriverOptions};
use irr_sparse::Structure;
use std::collections::HashMap;

struct Case {
    name: String,
    source: String,
    /// `(array name, data)` presets for the audit interpreter.
    presets: Vec<(&'static str, irr_exec::ArrayData)>,
}

fn cases() -> Vec<Case> {
    let scale = irr_programs::sparse::SparseScale::test(Structure::Uniform, 0xdecaf);
    let mut out: Vec<Case> = irr_programs::sparse::kernels(&scale)
        .into_iter()
        .chain(irr_programs::sparse::producer_kernels(&scale))
        .map(|k| Case {
            name: k.name.to_string(),
            source: k.source,
            presets: k.presets,
        })
        .collect();
    out.extend(
        irr_programs::all(irr_programs::Scale::Test)
            .into_iter()
            .map(|b| Case {
                name: b.name.to_string(),
                source: b.source,
                presets: Vec::new(),
            }),
    );
    out
}

fn ranks(report: &CompilationReport) -> HashMap<String, u8> {
    report
        .verdicts
        .iter()
        .map(|v| (v.label.clone(), tier_rank(&v.tier)))
        .collect()
}

fn compile_rung(source: &str, level: DegradeLevel) -> CompilationReport {
    let program = irr_frontend::parse_program(source).expect("case parses");
    level.compile_at(program, DriverOptions::with_iaa(), None)
}

#[test]
fn every_rung_is_more_conservative_than_the_one_above() {
    for case in cases() {
        let reports: Vec<(DegradeLevel, CompilationReport)> = DegradeLevel::ALL
            .iter()
            .map(|&l| (l, compile_rung(&case.source, l)))
            .collect();
        for pair in reports.windows(2) {
            let (upper_level, upper) = &pair[0];
            let (lower_level, lower) = &pair[1];
            let upper = ranks(upper);
            for (label, lower_rank) in ranks(lower) {
                let Some(&upper_rank) = upper.get(&label) else {
                    continue;
                };
                assert!(
                    lower_rank <= upper_rank,
                    "{}: {label} strengthened from rank {upper_rank} ({}) to \
                     rank {lower_rank} ({})",
                    case.name,
                    upper_level.name(),
                    lower_level.name(),
                );
            }
        }
        // The bottom rung trusts nothing.
        let (_, parse_only) = &reports[3];
        assert!(
            parse_only.verdicts.iter().all(|v| !v.parallel),
            "{}: parse-only emitted a parallel verdict",
            case.name
        );
    }
}

#[test]
fn starved_budgets_never_strengthen_a_verdict() {
    for case in cases() {
        let full = ranks(&compile_rung(&case.source, DegradeLevel::Full));
        for fuel in [0, 64, 4096] {
            let program = irr_frontend::parse_program(&case.source).unwrap();
            let budget = AnalysisBudget::limited(Some(fuel), None);
            let starved =
                DegradeLevel::Full.compile_at(program, DriverOptions::with_iaa(), Some(&budget));
            for (label, rank) in ranks(&starved) {
                let Some(&full_rank) = full.get(&label) else {
                    continue;
                };
                assert!(
                    rank <= full_rank,
                    "{} (fuel {fuel}): {label} strengthened from {full_rank} to {rank}",
                    case.name
                );
            }
        }
    }
}

#[test]
fn degraded_verdicts_replay_dependence_clean() {
    let config = AuditConfig {
        inputs: 2,
        mode: AuditMode::Soundness,
        ..AuditConfig::default()
    };
    for case in cases() {
        for level in DegradeLevel::ALL {
            let report = compile_rung(&case.source, level);
            let presets: Vec<_> =
                case.presets
                    .iter()
                    .map(|(name, data)| {
                        let var =
                            report.program.symbols.lookup(name).unwrap_or_else(|| {
                                panic!("{}: preset `{name}` missing", case.name)
                            });
                        (var, data.clone())
                    })
                    .collect();
            let audit = audit_report_seeded(&report, &config, &presets);
            assert!(
                audit.is_sound(),
                "{} at {}: degraded verdict contradicted by replay: {:?}",
                case.name,
                level.name(),
                audit
                    .findings
                    .iter()
                    .map(|f| f.detail.clone())
                    .collect::<Vec<_>>()
            );
        }
    }
}
