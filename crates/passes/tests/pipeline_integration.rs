//! The whole Fig. 15 pass pipeline on tricky programs: interactions
//! between phases and semantic preservation.

use irr_exec::Interp;
use irr_frontend::{parse_program, print_program, Program};
use irr_passes::{
    eliminate_dead_code, forward_substitute, inline_small_procedures, normalize_loops,
    propagate_constants, substitute_induction_variables,
};

fn pipeline(p: &mut Program) {
    inline_small_procedures(p, 50);
    propagate_constants(p);
    normalize_loops(p);
    substitute_induction_variables(p);
    propagate_constants(p);
    forward_substitute(p);
    eliminate_dead_code(p);
}

fn outputs(p: &Program) -> Vec<String> {
    Interp::new(p).run().expect("program runs").output
}

#[test]
fn induction_after_normalization() {
    // A strided loop with a derived induction variable: normalization
    // introduces a unit-step loop, then induction substitution rewrites
    // the pointer.
    let src = "program t
         integer i, q
         real x(200)
         q = 0
         do i = 2, 40, 2
           q = q + 1
           x(q) = i * 1.0
         enddo
         print x(1), x(20), q
         end";
    let mut p = parse_program(src).unwrap();
    let before = outputs(&p);
    pipeline(&mut p);
    let after = outputs(&p);
    assert_eq!(before, after);
    assert_eq!(before, vec!["2 40 20"]);
    // The irregular q subscripts became affine in the new index.
    let printed = print_program(&p);
    assert!(
        !printed.contains("q = (q + 1)"),
        "increment hoisted:\n{printed}"
    );
}

#[test]
fn constants_flow_through_inlined_calls() {
    let src = "program t
         integer n, i
         real x(64)
         n = 8
         call dbl
         do i = 1, n
           x(i) = i
         enddo
         print x(n), n
         end
         subroutine dbl
         n = n * 2
         end";
    let mut p = parse_program(src).unwrap();
    let before = outputs(&p);
    pipeline(&mut p);
    assert_eq!(before, outputs(&p));
    // n*2 inlined and folded: the loop bound is literal 16.
    let printed = print_program(&p);
    assert!(printed.contains("do i = 1, 16"), "{printed}");
}

#[test]
fn dce_never_removes_observable_state() {
    let src = "program t
         integer a, b, c
         a = 1
         b = a + 1
         c = b + 1
         print c
         end";
    let mut p = parse_program(src).unwrap();
    let before = outputs(&p);
    pipeline(&mut p);
    assert_eq!(before, outputs(&p));
    assert_eq!(before, vec!["3"]);
}

#[test]
fn gather_idiom_survives_the_whole_pipeline() {
    // The pipeline must not destroy the conditional-increment gather
    // idiom (the irregular analyses depend on it).
    let src = "program t
         integer i, q, ind(32)
         real w(32)
         call init
         q = 0
         do 9 i = 1, 32
           if (w(i) > 0.5) then
             q = q + 1
             ind(q) = i
           endif
 9       continue
         print q, ind(1)
         end
         subroutine init
         integer k
         do k = 1, 32
           w(k) = mod(k * 7, 10) * 0.1
         enddo
         end";
    let mut p = parse_program(src).unwrap();
    let before = outputs(&p);
    pipeline(&mut p);
    assert_eq!(before, outputs(&p));
    let printed = print_program(&p);
    assert!(printed.contains("q = (q + 1)"), "gather kept:\n{printed}");
    assert!(printed.contains("ind(q)"), "gather kept:\n{printed}");
    // And the gather is still recognized afterwards.
    let ctx = irr_core::AnalysisCtx::new(&p);
    let main_body = p.procedures[p.main().index()].body.clone();
    let found = irr_core::find_index_gathering_loops(&ctx, &main_body);
    assert_eq!(found.len(), 1);
}

#[test]
fn pipeline_is_idempotent_on_its_own_output() {
    for b in irr_programs::all(irr_programs::Scale::Test) {
        let mut p = parse_program(&b.source).unwrap();
        pipeline(&mut p);
        let once = print_program(&p);
        pipeline(&mut p);
        let twice = print_program(&p);
        assert_eq!(once, twice, "{} pipeline not idempotent", b.name);
    }
}
