//! Procedure inlining.
//!
//! Polaris' default auto-inliner inlines procedures "that contain no I/O
//! statements and contain less than fifty lines of code" (§5.1.1).
//! Because the language passes everything through globals, inlining is a
//! pure statement-tree clone.

use irr_frontend::{ProcId, Program, Stmt, StmtId, StmtKind};

/// Inlines eligible calls (callee has fewer than `max_stmts` statements,
/// no `print`, no `return`, and is not (mutually) recursive). Returns
/// the number of call sites inlined.
pub fn inline_small_procedures(program: &mut Program, max_stmts: usize) -> usize {
    let mut inlined = 0;
    // Iterate to a fixpoint so chains of small calls flatten, with a
    // safety cap.
    for _ in 0..8 {
        let mut changed = 0;
        for i in 0..program.procedures.len() {
            let body = program.procedures[i].body.clone();
            let new_body = inline_in_body(program, ProcId(i as u32), body, max_stmts, &mut changed);
            program.procedures[i].body = new_body;
        }
        if changed == 0 {
            break;
        }
        inlined += changed;
    }
    inlined
}

fn eligible(program: &Program, caller: ProcId, callee: ProcId, max_stmts: usize) -> bool {
    if caller == callee {
        return false;
    }
    let body = &program.procedures[callee.index()].body;
    let stmts = program.stmts_in(body);
    if stmts.len() >= max_stmts {
        return false;
    }
    for s in &stmts {
        match &program.stmt(*s).kind {
            StmtKind::Print { .. } | StmtKind::Return => return false,
            // Nested calls are fine (they'll be considered next round),
            // but direct recursion is not.
            StmtKind::Call { proc } if *proc == callee => return false,
            // Labeled loops identify code the evaluation tracks by name
            // (`INTGRL/do140`); inlining would lose the attribution. In
            // the original programs these routines are far larger than
            // the inlining threshold anyway.
            StmtKind::Do { label: Some(_), .. } => return false,
            _ => {}
        }
    }
    true
}

fn inline_in_body(
    program: &mut Program,
    caller: ProcId,
    body: Vec<StmtId>,
    max_stmts: usize,
    changed: &mut usize,
) -> Vec<StmtId> {
    let mut out = Vec::with_capacity(body.len());
    for s in body {
        match program.stmt(s).kind.clone() {
            StmtKind::Call { proc } if eligible(program, caller, proc, max_stmts) => {
                let callee_body = program.procedures[proc.index()].body.clone();
                for t in callee_body {
                    out.push(clone_stmt(program, t));
                }
                *changed += 1;
            }
            StmtKind::Do {
                var,
                lo,
                hi,
                step,
                body: inner,
                label,
            } => {
                let inner = inline_in_body(program, caller, inner, max_stmts, changed);
                program.stmt_mut(s).kind = StmtKind::Do {
                    var,
                    lo,
                    hi,
                    step,
                    body: inner,
                    label,
                };
                out.push(s);
            }
            StmtKind::While { cond, body: inner } => {
                let inner = inline_in_body(program, caller, inner, max_stmts, changed);
                program.stmt_mut(s).kind = StmtKind::While { cond, body: inner };
                out.push(s);
            }
            StmtKind::If {
                cond,
                then_body,
                else_body,
            } => {
                let then_body = inline_in_body(program, caller, then_body, max_stmts, changed);
                let else_body = inline_in_body(program, caller, else_body, max_stmts, changed);
                program.stmt_mut(s).kind = StmtKind::If {
                    cond,
                    then_body,
                    else_body,
                };
                out.push(s);
            }
            _ => out.push(s),
        }
    }
    out
}

/// Deep-clones a statement (and its nested bodies) into fresh arena
/// slots.
fn clone_stmt(program: &mut Program, s: StmtId) -> StmtId {
    let loc = program.stmt(s).loc;
    let kind = match program.stmt(s).kind.clone() {
        StmtKind::Do {
            var,
            lo,
            hi,
            step,
            body,
            label,
        } => {
            let body = body.into_iter().map(|t| clone_stmt(program, t)).collect();
            StmtKind::Do {
                var,
                lo,
                hi,
                step,
                body,
                label,
            }
        }
        StmtKind::While { cond, body } => {
            let body = body.into_iter().map(|t| clone_stmt(program, t)).collect();
            StmtKind::While { cond, body }
        }
        StmtKind::If {
            cond,
            then_body,
            else_body,
        } => {
            let then_body = then_body
                .into_iter()
                .map(|t| clone_stmt(program, t))
                .collect();
            let else_body = else_body
                .into_iter()
                .map(|t| clone_stmt(program, t))
                .collect();
            StmtKind::If {
                cond,
                then_body,
                else_body,
            }
        }
        other => other,
    };
    let id = StmtId(program.stmts.len() as u32);
    program.stmts.push(Stmt { id, kind, loc });
    id
}

#[cfg(test)]
mod tests {
    use super::*;
    use irr_frontend::parse_program;

    #[test]
    fn small_callee_is_inlined() {
        let mut p = parse_program(
            "program t
             integer k
             call bump
             call bump
             end
             subroutine bump
             k = k + 1
             end",
        )
        .unwrap();
        let n = inline_small_procedures(&mut p, 50);
        assert_eq!(n, 2);
        let printed = irr_frontend::print_program(&p);
        assert!(!printed.contains("call bump"), "printed:\n{printed}");
        assert_eq!(printed.matches("k = (k + 1)").count(), 3); // 2 inlined + original
    }

    #[test]
    fn chains_flatten() {
        let mut p = parse_program(
            "program t
             integer k
             call a
             end
             subroutine a
             call b
             end
             subroutine b
             k = 1
             end",
        )
        .unwrap();
        inline_small_procedures(&mut p, 50);
        let printed = irr_frontend::print_program(&p);
        assert!(!printed.contains("call"), "printed:\n{printed}");
    }

    #[test]
    fn big_callee_is_not_inlined() {
        let mut body = String::new();
        for i in 0..60 {
            body.push_str(&format!("k = {i}\n"));
        }
        let src = format!("program t\ninteger k\ncall big\nend\nsubroutine big\n{body}end\n");
        let mut p = parse_program(&src).unwrap();
        assert_eq!(inline_small_procedures(&mut p, 50), 0);
    }

    #[test]
    fn recursive_callee_is_not_inlined() {
        let mut p = parse_program(
            "program t
             integer k
             call a
             end
             subroutine a
             k = k + 1
             call a
             end",
        )
        .unwrap();
        assert_eq!(inline_small_procedures(&mut p, 50), 0);
    }

    #[test]
    fn inlined_loops_get_fresh_statement_ids() {
        let mut p = parse_program(
            "program t
             integer k, i
             real x(10)
             call fill
             call fill
             end
             subroutine fill
             do i = 1, 10
               x(i) = 1
             enddo
             end",
        )
        .unwrap();
        inline_small_procedures(&mut p, 50);
        let main_body = p.procedure(p.main()).body.clone();
        let loops: Vec<StmtId> = p
            .stmts_in(&main_body)
            .into_iter()
            .filter(|s| p.stmt(*s).kind.is_loop())
            .collect();
        assert_eq!(loops.len(), 2);
        assert_ne!(loops[0], loops[1]);
    }
}
