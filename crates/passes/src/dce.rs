//! Dead scalar-assignment elimination.
//!
//! Removes assignments to scalars that are never read anywhere in the
//! program (after the other scalar passes have rewritten uses away).
//! Array writes and anything with observable effects are kept.

use irr_frontend::{Expr, LValue, Program, StmtId, StmtKind, VarId};
use std::collections::HashSet;

/// Removes dead scalar assignments; returns how many were removed.
pub fn eliminate_dead_code(program: &mut Program) -> usize {
    let mut removed = 0;
    loop {
        let live = collect_read_vars(program);
        let mut removed_this_round = 0;
        for i in 0..program.procedures.len() {
            let body = program.procedures[i].body.clone();
            let new_body = prune_body(program, body, &live, &mut removed_this_round);
            program.procedures[i].body = new_body;
        }
        if removed_this_round == 0 {
            break;
        }
        removed += removed_this_round;
    }
    removed
}

/// Every scalar that is *read* somewhere: in any expression, as a loop
/// induction variable (its value is observable after the loop), or
/// printed.
fn collect_read_vars(program: &Program) -> HashSet<VarId> {
    let mut live = HashSet::new();
    fn record(live: &mut HashSet<VarId>, e: &Expr) {
        let mut vars = Vec::new();
        e.collect_vars(&mut vars);
        live.extend(vars);
    }
    for proc in &program.procedures {
        for s in program.stmts_in(&proc.body) {
            match &program.stmt(s).kind {
                StmtKind::Assign { lhs, rhs } => {
                    record(&mut live, rhs);
                    for e in lhs.subscripts() {
                        record(&mut live, e);
                    }
                }
                StmtKind::Do {
                    var, lo, hi, step, ..
                } => {
                    live.insert(*var);
                    record(&mut live, lo);
                    record(&mut live, hi);
                    if let Some(st) = step {
                        record(&mut live, st);
                    }
                }
                StmtKind::While { cond, .. } => record(&mut live, cond),
                StmtKind::If { cond, .. } => record(&mut live, cond),
                StmtKind::Print { args } => {
                    for e in args {
                        record(&mut live, e);
                    }
                }
                StmtKind::Call { .. } | StmtKind::Return => {}
            }
        }
    }
    live
}

fn prune_body(
    program: &mut Program,
    body: Vec<StmtId>,
    live: &HashSet<VarId>,
    removed: &mut usize,
) -> Vec<StmtId> {
    let mut out = Vec::with_capacity(body.len());
    for s in body {
        let kind = program.stmt(s).kind.clone();
        match kind {
            StmtKind::Assign {
                lhs: LValue::Scalar(v),
                ..
            } if !live.contains(&v) => {
                *removed += 1;
            }
            StmtKind::Do {
                var,
                lo,
                hi,
                step,
                body: inner,
                label,
            } => {
                let inner = prune_body(program, inner, live, removed);
                program.stmt_mut(s).kind = StmtKind::Do {
                    var,
                    lo,
                    hi,
                    step,
                    body: inner,
                    label,
                };
                out.push(s);
            }
            StmtKind::While { cond, body: inner } => {
                let inner = prune_body(program, inner, live, removed);
                program.stmt_mut(s).kind = StmtKind::While { cond, body: inner };
                out.push(s);
            }
            StmtKind::If {
                cond,
                then_body,
                else_body,
            } => {
                let then_body = prune_body(program, then_body, live, removed);
                let else_body = prune_body(program, else_body, live, removed);
                program.stmt_mut(s).kind = StmtKind::If {
                    cond,
                    then_body,
                    else_body,
                };
                out.push(s);
            }
            _ => out.push(s),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use irr_frontend::parse_program;

    #[test]
    fn removes_unread_scalar() {
        let mut p = parse_program(
            "program t
             integer a, b
             real x(10)
             a = 5
             b = 2
             x(b) = 1
             end",
        )
        .unwrap();
        let n = eliminate_dead_code(&mut p);
        assert_eq!(n, 1);
        let printed = irr_frontend::print_program(&p);
        assert!(!printed.contains("a = 5"), "printed:\n{printed}");
        assert!(printed.contains("b = 2"), "printed:\n{printed}");
    }

    #[test]
    fn cascading_removal() {
        let mut p = parse_program(
            "program t
             integer a, b
             a = 5
             b = a + 1
             end",
        )
        .unwrap();
        // b unread -> removed; then a unread -> removed.
        let n = eliminate_dead_code(&mut p);
        assert_eq!(n, 2);
    }

    #[test]
    fn printed_and_array_values_are_kept() {
        let mut p = parse_program(
            "program t
             integer a
             real x(10)
             a = 5
             x(1) = 2
             print a
             end",
        )
        .unwrap();
        assert_eq!(eliminate_dead_code(&mut p), 0);
    }
}
