//! Flow-sensitive scalar constant propagation, with a simple
//! interprocedural fixpoint across call sites.

use irr_frontend::{
    BinOp, Expr, Intrinsic, LValue, ProcId, Program, StmtId, StmtKind, UnOp, VarId,
};
use std::collections::HashMap;

/// The abstract value of a scalar.
#[derive(Clone, Copy, PartialEq, Debug)]
enum Lattice {
    /// A known integer constant.
    Int(i64),
    /// A known real constant.
    Real(f64),
    /// Not a constant.
    Bottom,
}

impl Lattice {
    fn join(self, other: Lattice) -> Lattice {
        match (self, other) {
            (a, b) if a == b => a,
            _ => Lattice::Bottom,
        }
    }
}

type State = HashMap<VarId, Lattice>;

fn join_states(a: &State, b: &State) -> State {
    let mut out = State::new();
    for (v, &la) in a {
        let lb = b.get(v).copied().unwrap_or(Lattice::Bottom);
        out.insert(*v, la.join(lb));
    }
    // Vars only in b join with Bottom (absent means Bottom).
    for v in b.keys() {
        out.entry(*v).or_insert(Lattice::Bottom);
    }
    out.retain(|_, l| !matches!(l, Lattice::Bottom));
    out
}

/// Propagates scalar constants through the whole program, rewriting uses
/// of known-constant scalars into literals. Returns the number of
/// expression sites rewritten.
///
/// Interprocedural behavior: each procedure's entry state is the join of
/// the states at all of its call sites, iterated to a fixpoint; this is
/// the "interprocedural constant propagation" phase of Fig. 15.
pub fn propagate_constants(program: &mut Program) -> usize {
    // Fixpoint over procedure entry states.
    let nprocs = program.procedures.len();
    let mut entry_states: Vec<State> = vec![State::new()]
        .into_iter()
        .cycle()
        .take(nprocs)
        .collect();
    // Main starts with everything unknown-but-joinable (Top is implicit:
    // absent vars in a *seen* state are Bottom, so track "never called"
    // separately).
    let mut seen: Vec<bool> = vec![false; nprocs];
    let main = program.main();
    seen[main.index()] = true;
    for _ in 0..4 {
        let mut next_states = entry_states.clone();
        let mut next_seen = seen.clone();
        for (i, proc) in program.procedures.iter().enumerate() {
            if !seen[i] {
                continue;
            }
            let mut st = entry_states[i].clone();
            walk_collect(
                program,
                &proc.body.clone(),
                &mut st,
                &mut |callee, call_state| {
                    let ci = callee.index();
                    if !next_seen[ci] {
                        next_seen[ci] = true;
                        next_states[ci] = call_state.clone();
                    } else {
                        next_states[ci] = join_states(&next_states[ci], call_state);
                    }
                },
            );
        }
        if next_states == entry_states && next_seen == seen {
            break;
        }
        entry_states = next_states;
        seen = next_seen;
    }
    // Rewrite pass: walk each procedure with its entry state and fold
    // constant uses.
    let mut rewrites = 0;
    for i in 0..nprocs {
        if !seen[i] {
            continue;
        }
        let body = program.procedures[i].body.clone();
        let mut st = entry_states[i].clone();
        rewrites += walk_rewrite(program, &body, &mut st);
    }
    rewrites
}

/// Effect of an assignment on the state.
fn eval(state: &State, e: &Expr) -> Lattice {
    match e {
        Expr::IntLit(v) => Lattice::Int(*v),
        Expr::RealLit(v) => Lattice::Real(*v),
        Expr::Var(v) => state.get(v).copied().unwrap_or(Lattice::Bottom),
        Expr::Bin(op, a, b) => {
            let (la, lb) = (eval(state, a), eval(state, b));
            match (la, lb) {
                (Lattice::Int(x), Lattice::Int(y)) => match op {
                    BinOp::Add => Lattice::Int(x.wrapping_add(y)),
                    BinOp::Sub => Lattice::Int(x.wrapping_sub(y)),
                    BinOp::Mul => Lattice::Int(x.wrapping_mul(y)),
                    BinOp::Div if y != 0 => Lattice::Int(x.div_euclid(y)),
                    BinOp::Mod if y != 0 => Lattice::Int(x.rem_euclid(y)),
                    _ => Lattice::Bottom,
                },
                _ => Lattice::Bottom,
            }
        }
        Expr::Un(UnOp::Neg, a) => match eval(state, a) {
            Lattice::Int(x) => Lattice::Int(-x),
            Lattice::Real(x) => Lattice::Real(-x),
            _ => Lattice::Bottom,
        },
        Expr::Call(Intrinsic::Min, args) if args.len() == 2 => {
            match (eval(state, &args[0]), eval(state, &args[1])) {
                (Lattice::Int(x), Lattice::Int(y)) => Lattice::Int(x.min(y)),
                _ => Lattice::Bottom,
            }
        }
        Expr::Call(Intrinsic::Max, args) if args.len() == 2 => {
            match (eval(state, &args[0]), eval(state, &args[1])) {
                (Lattice::Int(x), Lattice::Int(y)) => Lattice::Int(x.max(y)),
                _ => Lattice::Bottom,
            }
        }
        _ => Lattice::Bottom,
    }
}

/// Walks a body updating `state`, reporting call-site states to `on_call`.
fn walk_collect(
    program: &Program,
    body: &[StmtId],
    state: &mut State,
    on_call: &mut impl FnMut(ProcId, &State),
) {
    for &s in body {
        match &program.stmt(s).kind {
            StmtKind::Assign { lhs, rhs } => {
                if let LValue::Scalar(v) = lhs {
                    let l = eval(state, rhs);
                    match l {
                        Lattice::Bottom => {
                            state.remove(v);
                        }
                        _ => {
                            state.insert(*v, l);
                        }
                    }
                }
            }
            StmtKind::Do { var, body, .. } => {
                // The induction variable and everything assigned in the
                // body become unknown.
                state.remove(var);
                kill_assigned(program, body, state);
                walk_collect(program, &body.clone(), state, on_call);
                // Run the body effects twice so constants established in
                // the first iteration don't leak (conservative).
                kill_assigned(program, body, state);
            }
            StmtKind::While { body, .. } => {
                kill_assigned(program, body, state);
                walk_collect(program, &body.clone(), state, on_call);
                kill_assigned(program, body, state);
            }
            StmtKind::If {
                then_body,
                else_body,
                ..
            } => {
                let mut st_then = state.clone();
                let mut st_else = state.clone();
                walk_collect(program, &then_body.clone(), &mut st_then, on_call);
                walk_collect(program, &else_body.clone(), &mut st_else, on_call);
                *state = join_states(&st_then, &st_else);
            }
            StmtKind::Call { proc } => {
                on_call(*proc, state);
                // Everything the callee (transitively) assigns is killed.
                kill_callee_effects(program, *proc, state, &mut Vec::new());
            }
            StmtKind::Print { .. } | StmtKind::Return => {}
        }
    }
}

fn kill_assigned(program: &Program, body: &[StmtId], state: &mut State) {
    for v in irr_frontend::visit::scalars_assigned_in(program, body) {
        state.remove(&v);
    }
    // Calls in the body kill their callees' effects too.
    for s in program.stmts_in(body) {
        if let StmtKind::Call { proc } = &program.stmt(s).kind {
            kill_callee_effects(program, *proc, state, &mut Vec::new());
        }
    }
}

fn kill_callee_effects(
    program: &Program,
    proc: ProcId,
    state: &mut State,
    visiting: &mut Vec<ProcId>,
) {
    if visiting.contains(&proc) {
        return;
    }
    visiting.push(proc);
    let body = &program.procedures[proc.index()].body;
    for v in irr_frontend::visit::scalars_assigned_in(program, body) {
        state.remove(&v);
    }
    for s in program.stmts_in(body) {
        if let StmtKind::Call { proc: q } = &program.stmt(s).kind {
            kill_callee_effects(program, *q, state, visiting);
        }
    }
    visiting.pop();
}

/// Walks and rewrites: replaces constant scalar uses with literals.
fn walk_rewrite(program: &mut Program, body: &[StmtId], state: &mut State) -> usize {
    let mut rewrites = 0;
    for &s in body {
        // Rewrite the expressions of this statement first (uses see the
        // state *before* the statement executes).
        let kind = program.stmt(s).kind.clone();
        match kind {
            StmtKind::Assign { lhs, rhs } => {
                let mut rhs = rhs;
                rewrites += rewrite_expr(&mut rhs, state);
                let lhs = match lhs {
                    LValue::Scalar(v) => LValue::Scalar(v),
                    LValue::Element(a, mut subs) => {
                        for e in &mut subs {
                            rewrites += rewrite_expr(e, state);
                        }
                        LValue::Element(a, subs)
                    }
                };
                if let LValue::Scalar(v) = &lhs {
                    let l = eval(state, &rhs);
                    match l {
                        Lattice::Bottom => {
                            state.remove(v);
                        }
                        _ => {
                            state.insert(*v, l);
                        }
                    }
                }
                program.stmt_mut(s).kind = StmtKind::Assign { lhs, rhs };
            }
            StmtKind::Do {
                var,
                mut lo,
                mut hi,
                mut step,
                body: inner,
                label,
            } => {
                rewrites += rewrite_expr(&mut lo, state);
                rewrites += rewrite_expr(&mut hi, state);
                if let Some(st) = &mut step {
                    rewrites += rewrite_expr(st, state);
                }
                program.stmt_mut(s).kind = StmtKind::Do {
                    var,
                    lo,
                    hi,
                    step,
                    body: inner.clone(),
                    label,
                };
                state.remove(&var);
                kill_assigned(program, &inner, state);
                rewrites += walk_rewrite(program, &inner, state);
                kill_assigned(program, &inner, state);
            }
            StmtKind::While {
                mut cond,
                body: inner,
            } => {
                // The condition is evaluated after body effects too.
                kill_assigned(program, &inner, state);
                rewrites += rewrite_expr(&mut cond, state);
                program.stmt_mut(s).kind = StmtKind::While {
                    cond,
                    body: inner.clone(),
                };
                rewrites += walk_rewrite(program, &inner, state);
                kill_assigned(program, &inner, state);
            }
            StmtKind::If {
                mut cond,
                then_body,
                else_body,
            } => {
                rewrites += rewrite_expr(&mut cond, state);
                program.stmt_mut(s).kind = StmtKind::If {
                    cond,
                    then_body: then_body.clone(),
                    else_body: else_body.clone(),
                };
                let mut st_then = state.clone();
                let mut st_else = state.clone();
                rewrites += walk_rewrite(program, &then_body, &mut st_then);
                rewrites += walk_rewrite(program, &else_body, &mut st_else);
                *state = join_states(&st_then, &st_else);
            }
            StmtKind::Call { proc } => {
                kill_callee_effects(program, proc, state, &mut Vec::new());
            }
            StmtKind::Print { mut args } => {
                for e in &mut args {
                    rewrites += rewrite_expr(e, state);
                }
                program.stmt_mut(s).kind = StmtKind::Print { args };
            }
            StmtKind::Return => {}
        }
    }
    rewrites
}

fn rewrite_expr(e: &mut Expr, state: &State) -> usize {
    match e {
        Expr::Var(v) => match state.get(v) {
            Some(Lattice::Int(c)) => {
                *e = Expr::IntLit(*c);
                1
            }
            Some(Lattice::Real(c)) => {
                *e = Expr::RealLit(*c);
                1
            }
            _ => 0,
        },
        Expr::IntLit(_) | Expr::RealLit(_) => 0,
        Expr::Element(_, subs) => subs.iter_mut().map(|x| rewrite_expr(x, state)).sum(),
        Expr::Bin(_, a, b) => rewrite_expr(a, state) + rewrite_expr(b, state),
        Expr::Un(_, a) => rewrite_expr(a, state),
        Expr::Call(_, args) => args.iter_mut().map(|x| rewrite_expr(x, state)).sum(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use irr_frontend::parse_program;

    #[test]
    fn straight_line_propagation() {
        let mut p = parse_program(
            "program t
             integer n, m
             real x(100)
             n = 100
             m = n - 1
             x(m) = 1
             end",
        )
        .unwrap();
        let rewrites = propagate_constants(&mut p);
        assert!(rewrites >= 2);
        let printed = irr_frontend::print_program(&p);
        assert!(printed.contains("x(99)"), "printed:\n{printed}");
    }

    #[test]
    fn loop_kills_induction_and_assigned() {
        let mut p = parse_program(
            "program t
             integer i, q, n
             real x(100)
             n = 10
             q = 5
             do i = 1, n
               q = q + 1
               x(q) = i
             enddo
             x(q) = 0
             end",
        )
        .unwrap();
        propagate_constants(&mut p);
        let printed = irr_frontend::print_program(&p);
        // n propagated into the loop bound; q not constant inside/after.
        assert!(printed.contains("do i = 1, 10"), "printed:\n{printed}");
        assert!(printed.contains("x(q)"), "printed:\n{printed}");
    }

    #[test]
    fn branch_join() {
        let mut p = parse_program(
            "program t
             integer a, b, c
             real x(10)
             if (c > 0) then
               a = 1
               b = 7
             else
               a = 2
               b = 7
             endif
             x(a) = 1
             x(b) = 2
             end",
        )
        .unwrap();
        propagate_constants(&mut p);
        let printed = irr_frontend::print_program(&p);
        // b = 7 on both arms: propagates; a differs: stays.
        assert!(printed.contains("x(7)"), "printed:\n{printed}");
        assert!(printed.contains("x(a)"), "printed:\n{printed}");
    }

    #[test]
    fn interprocedural_entry_state() {
        let mut p = parse_program(
            "program t
             integer n
             real x(100)
             n = 100
             call init
             end
             subroutine init
             integer i
             do i = 1, n
               x(i) = 0
             enddo
             end",
        )
        .unwrap();
        propagate_constants(&mut p);
        let printed = irr_frontend::print_program(&p);
        assert!(printed.contains("do i = 1, 100"), "printed:\n{printed}");
    }

    #[test]
    fn conflicting_call_sites_do_not_propagate() {
        let mut p = parse_program(
            "program t
             integer n
             real x(100)
             n = 100
             call init
             n = 50
             call init
             end
             subroutine init
             integer i
             do i = 1, n
               x(i) = 0
             enddo
             end",
        )
        .unwrap();
        propagate_constants(&mut p);
        let printed = irr_frontend::print_program(&p);
        assert!(printed.contains("do i = 1, n"), "printed:\n{printed}");
    }

    #[test]
    fn callee_assignment_kills_after_call() {
        let mut p = parse_program(
            "program t
             integer n
             real x(100)
             n = 100
             call setn
             x(n) = 1
             end
             subroutine setn
             n = 7
             end",
        )
        .unwrap();
        propagate_constants(&mut p);
        let printed = irr_frontend::print_program(&p);
        // n is rewritten by the callee: use after call must stay symbolic.
        assert!(printed.contains("x(n)"), "printed:\n{printed}");
    }
}
