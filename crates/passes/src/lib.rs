//! The scalar optimization phases of the parallelizer pipeline
//! (Fig. 15 of the paper).
//!
//! Polaris runs a fixed sequence of normalizing transformations before
//! the analyses: inlining, interprocedural constant propagation, program
//! normalization, induction variable substitution, constant propagation,
//! forward substitution, and dead-code elimination. These are
//! implemented here as real (if modest) AST-to-AST passes; §5.1.1's
//! reorganization — running every transformation on every program unit
//! *before* any analysis — is what makes the interprocedural array
//! property analysis possible, and is reproduced in `irr-driver`.

pub mod constprop;
pub mod dce;
pub mod forward_sub;
pub mod induction;
pub mod inline;
pub mod normalize;
pub mod reduction;

pub use constprop::propagate_constants;
pub use dce::eliminate_dead_code;
pub use forward_sub::forward_substitute;
pub use induction::substitute_induction_variables;
pub use inline::inline_small_procedures;
pub use normalize::normalize_loops;
pub use reduction::{recognize_reductions, Reduction, ReductionOp};
